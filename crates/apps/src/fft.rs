//! Radix-2 fast Fourier transform whose data reordering is an offline
//! permutation.
//!
//! The paper's Section IV names bit-reversal as "used for data reordering
//! in the FFT algorithms"; this module is that application, library-grade:
//! forward/inverse transforms, circular convolution, and the reordering
//! step factored through [`hmm_perm::families::bit_reversal`] so the same
//! permutation object can also be executed on the simulated HMM or the
//! parallel CPU backend.

use hmm_perm::{families, PermError, Permutation};
use std::f64::consts::PI;

/// A complex number (f64 re/im). Deliberately minimal — just what the
/// transform needs — so the crate stays dependency-free.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl core::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl core::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl core::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl core::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

/// A planned FFT of size `n` (power of two): the bit-reversal permutation
/// plus precomputed twiddle factors, reusable across transforms.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    reorder: Permutation,
    /// `twiddles[s]` holds the `len/2` roots for the stage with butterfly
    /// span `len = 2^{s+1}`.
    twiddles: Vec<Vec<Complex>>,
}

impl FftPlan {
    /// Plan a transform of size `n` (power of two, `n ≥ 1`).
    pub fn new(n: usize) -> Result<Self, PermError> {
        let reorder = families::bit_reversal(n)?;
        let stages = n.trailing_zeros() as usize;
        let mut twiddles = Vec::with_capacity(stages);
        for s in 0..stages {
            let len = 1usize << (s + 1);
            let base = -2.0 * PI / len as f64;
            twiddles.push(
                (0..len / 2)
                    .map(|k| Complex::cis(base * k as f64))
                    .collect(),
            );
        }
        Ok(FftPlan {
            n,
            reorder,
            twiddles,
        })
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-0 plan (which `new` rejects).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The data-reordering permutation (bit-reversal) this plan applies —
    /// hand it to the HMM simulator or the native backend to benchmark the
    /// reordering step itself.
    pub fn reorder_permutation(&self) -> &Permutation {
        &self.reorder
    }

    /// In-place forward DFT: `X[k] = Σ_t x[t]·e^{-2πikt/n}`.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "FFT plan size mismatch");
        // Offline permutation first (decimation in time), butterflies after.
        self.reorder
            .permute_in_place(data)
            .expect("length checked above");
        for tw in &self.twiddles {
            let len = tw.len() * 2;
            for base in (0..self.n).step_by(len) {
                for (k, &w) in tw.iter().enumerate() {
                    let u = data[base + k];
                    let v = data[base + k + len / 2] * w;
                    data[base + k] = u + v;
                    data[base + k + len / 2] = u - v;
                }
            }
        }
    }

    /// In-place inverse DFT (unitary up to the usual `1/n`):
    /// `x[t] = (1/n) Σ_k X[k]·e^{+2πikt/n}`.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "FFT plan size mismatch");
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let scale = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.conj() * scale;
        }
    }
}

/// The six-step FFT's data-reordering chain for an `rows × (n/rows)`
/// factoring of an `n`-point transform, in **application order**: the
/// decimation-in-time bit-reversal first, then the row-major →
/// column-major transpose that regroups each length-`n/rows` column for
/// the second butterfly pass.
///
/// Feed the chain to `SharedEngine::permute_fused` (or collapse it
/// yourself with [`six_step_reorder_fused`]) to pay **one** memory round
/// trip for the whole reorder instead of one per link. Both links are
/// affine over GF(2), so the composite is again affine and the planner's
/// structured fast path emits its plan in closed form — no König
/// coloring.
///
/// `n` and `rows` must be powers of two with `rows` dividing `n`.
pub fn six_step_reorder_chain(n: usize, rows: usize) -> Result<Vec<Permutation>, PermError> {
    if rows == 0 || !n.is_multiple_of(rows) {
        return Err(PermError::NotPowerOfTwo { n: rows });
    }
    Ok(vec![
        families::bit_reversal(n)?,
        families::transpose(rows, n / rows, n)?,
    ])
}

/// [`six_step_reorder_chain`] collapsed into the single composite
/// permutation it realises, via [`Permutation::compose_chain`].
pub fn six_step_reorder_fused(n: usize, rows: usize) -> Result<Permutation, PermError> {
    let chain = six_step_reorder_chain(n, rows)?;
    let refs: Vec<&Permutation> = chain.iter().collect();
    Permutation::compose_chain(&refs)
}

/// Circular convolution of two real sequences of equal power-of-two
/// length via the FFT.
pub fn circular_convolve(a: &[f64], b: &[f64]) -> Result<Vec<f64>, PermError> {
    assert_eq!(a.len(), b.len(), "convolution operands must match");
    let n = a.len();
    let plan = FftPlan::new(n)?;
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = *x * *y;
    }
    plan.inverse(&mut fa);
    Ok(fa.into_iter().map(|c| c.re).collect())
}

/// Naive `O(n²)` DFT used to verify the fast path.
pub fn naive_dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (t, &x) in input.iter().enumerate() {
                acc = acc + x * Complex::cis(-2.0 * PI * ((k * t) % n) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn assert_spectra_match(got: &[Complex], want: &[Complex], tol: f64) {
        for (k, (&g, &w)) in got.iter().zip(want).enumerate() {
            assert!(close(g, w, tol), "bin {k}: {g:?} vs {w:?}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 16, 64, 256] {
            let input: Vec<Complex> = (0..n)
                .map(|t| Complex::new((t as f64 * 0.7).sin(), (t as f64 * 1.3).cos()))
                .collect();
            let plan = FftPlan::new(n).unwrap();
            let mut fast = input.clone();
            plan.forward(&mut fast);
            assert_spectra_match(&fast, &naive_dft(&input), 1e-9 * (n as f64 + 1.0));
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 1024;
        let input: Vec<Complex> = (0..n)
            .map(|t| Complex::new((t % 17) as f64, (t % 5) as f64 - 2.0))
            .collect();
        let plan = FftPlan::new(n).unwrap();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_spectra_match(&data, &input, 1e-9);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 64;
        let mut data = vec![Complex::default(); n];
        data[0] = Complex::new(1.0, 0.0);
        FftPlan::new(n).unwrap().forward(&mut data);
        for (k, &x) in data.iter().enumerate() {
            assert!(close(x, Complex::new(1.0, 0.0), 1e-12), "bin {k}");
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 512;
        let f = 37;
        let mut data: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * PI * (f * t) as f64 / n as f64))
            .collect();
        FftPlan::new(n).unwrap().forward(&mut data);
        for (k, &x) in data.iter().enumerate() {
            let want = if k == f { n as f64 } else { 0.0 };
            assert!((x.abs() - want).abs() < 1e-8, "bin {k}: |X| = {}", x.abs());
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let input: Vec<Complex> = (0..n)
            .map(|t| Complex::new((t as f64).sin(), (t as f64 / 3.0).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|c| c.abs().powi(2)).sum();
        let mut data = input;
        FftPlan::new(n).unwrap().forward(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.abs().powi(2)).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn linearity() {
        let n = 128;
        let a: Vec<Complex> = (0..n).map(|t| Complex::new(t as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n)
            .map(|t| Complex::new(0.0, (t * t % 7) as f64))
            .collect();
        let plan = FftPlan::new(n).unwrap();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fab);
        for k in 0..n {
            assert!(close(fab[k], fa[k] + fb[k], 1e-9), "bin {k}");
        }
    }

    #[test]
    fn convolution_matches_naive() {
        let n = 64;
        let a: Vec<f64> = (0..n).map(|t| ((t * 3) % 11) as f64).collect();
        let b: Vec<f64> = (0..n).map(|t| ((t * 7) % 5) as f64 - 2.0).collect();
        let fast = circular_convolve(&a, &b).unwrap();
        for k in 0..n {
            let naive: f64 = (0..n).map(|j| a[j] * b[(n + k - j) % n]).sum();
            assert!((fast[k] - naive).abs() < 1e-7, "lag {k}");
        }
    }

    #[test]
    fn plan_exposes_bit_reversal() {
        let plan = FftPlan::new(256).unwrap();
        assert_eq!(plan.len(), 256);
        assert!(!plan.is_empty());
        assert!(plan.reorder_permutation().is_involution());
        assert_eq!(
            plan.reorder_permutation(),
            &families::bit_reversal(256).unwrap()
        );
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(FftPlan::new(100).is_err());
        assert!(FftPlan::new(0).is_err());
    }

    #[test]
    fn six_step_chain_fuses_to_one_affine_permutation() {
        let n = 1 << 12;
        let rows = 1 << 5;
        let chain = six_step_reorder_chain(n, rows).unwrap();
        let fused = six_step_reorder_fused(n, rows).unwrap();
        // Fused-once equals link-by-link.
        let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(2654435761)).collect();
        let mut mid = vec![0u32; n];
        let mut two_step = vec![0u32; n];
        chain[0].permute(&src, &mut mid).unwrap();
        chain[1].permute(&mid, &mut two_step).unwrap();
        let mut one_step = vec![0u32; n];
        fused.permute(&src, &mut one_step).unwrap();
        assert_eq!(one_step, two_step);
        // Both links are affine, so the composite must be recognised by
        // the structured planner (bit-reversal ∘ transpose is BMMC).
        assert!(fused.as_bmmc().is_some());
        assert!(six_step_reorder_chain(n, 0).is_err());
        assert!(six_step_reorder_chain(n, 3).is_err());
    }

    #[test]
    fn engine_plans_fused_reorder_without_koenig() {
        use hmm_native::SharedEngine;
        let n = 1 << 12;
        let chain = six_step_reorder_chain(n, 1 << 6).unwrap();
        let refs: Vec<&hmm_perm::Permutation> = chain.iter().collect();
        let engine: SharedEngine<u32> = SharedEngine::new(32);
        // Force the scheduled backend so the plan construction path (and
        // its structured/König split) is what's measured.
        engine.set_gamma_threshold(0.0);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut fused_out = vec![0u32; n];
        engine.permute_fused(&refs, &src, &mut fused_out).unwrap();
        let mut mid = vec![0u32; n];
        let mut chained_out = vec![0u32; n];
        engine.permute(&chain[0], &src, &mut mid).unwrap();
        engine.permute(&chain[1], &mid, &mut chained_out).unwrap();
        assert_eq!(fused_out, chained_out);
        let stats = engine.stats();
        // Every plan this test built (the fused composite and both
        // links) is affine: the König colorer must never have run.
        assert!(stats.plans_structured >= 3, "{stats:?}");
        assert_eq!(stats.builds, 0, "{stats:?}");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_length_panics() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex::default(); 4];
        plan.forward(&mut data);
    }
}
