//! The Omega (shuffle–exchange) multistage interconnection network.
//!
//! The paper models the machines' MMU as "a multistage interconnection
//! network in which memory access requests are moved to destination memory
//! banks in a pipeline fashion" (Section I, citing Hsiao & Chen). This
//! module implements the classic instance: `log₂ n` stages, each a perfect
//! shuffle (the paper's *shuffle* permutation!) followed by a column of
//! `n/2` two-input switches.
//!
//! Omega networks are *blocking*: only some permutations can be routed
//! with all `n` packets in flight simultaneously. [`OmegaNetwork::route_permutation`]
//! decides routability by the standard destination-tag algorithm and
//! reports either the full switch schedule or the first conflict — the
//! quantitative reason the HMM's casual access costs more than coalesced
//! access.

use hmm_perm::{families, PermError, Permutation};

/// Switch states of one routed permutation: `settings[stage][switch]`,
/// `false` = straight, `true` = crossed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchSchedule {
    /// `n` inputs.
    pub n: usize,
    /// Per-stage, per-switch state.
    pub settings: Vec<Vec<bool>>,
}

/// Why a permutation could not be routed in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocking {
    /// Stage at which two packets demanded opposite states of one switch.
    pub stage: usize,
    /// The switch index within the stage.
    pub switch: usize,
    /// The two packet sources that collided.
    pub packets: (usize, usize),
}

/// The Omega network on `n = 2^k` terminals.
#[derive(Debug, Clone)]
pub struct OmegaNetwork {
    n: usize,
    stages: usize,
}

impl OmegaNetwork {
    /// Build for a power-of-two `n ≥ 2`.
    pub fn new(n: usize) -> Result<Self, PermError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(PermError::NotPowerOfTwo { n });
        }
        Ok(OmegaNetwork {
            n,
            stages: n.trailing_zeros() as usize,
        })
    }

    /// Number of terminals.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a zero-terminal network (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of switch stages (`log₂ n`).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The inter-stage wiring: the paper's shuffle permutation.
    pub fn stage_wiring(&self) -> Permutation {
        families::shuffle(self.n).expect("n validated power of two")
    }

    /// The port a packet occupies after `stage` full stages, given its
    /// source and destination (destination-tag routing: after stage `s`,
    /// the top `s+1` address bits are replaced by destination bits).
    fn port_after(&self, src: usize, dst: usize, stage: usize) -> usize {
        let k = self.stages;
        // Start: port = src. Each stage: shuffle (rotate left), then the
        // switch sets the low bit to the destination bit being consumed.
        let mut port = src;
        for s in 0..=stage {
            port = ((port << 1) | (port >> (k - 1))) & (self.n - 1);
            let dst_bit = (dst >> (k - 1 - s)) & 1;
            port = (port & !1) | dst_bit;
        }
        port
    }

    /// Try to route all `n` packets of permutation `p` simultaneously.
    /// Returns the switch schedule, or the first [`Blocking`] conflict.
    pub fn route_permutation(&self, p: &Permutation) -> Result<SwitchSchedule, Blocking> {
        assert_eq!(p.len(), self.n, "permutation size mismatch");
        let mut settings = vec![vec![false; self.n / 2]; self.stages];
        let mut owner: Vec<Vec<Option<usize>>> = vec![vec![None; self.n / 2]; self.stages];
        for src in 0..self.n {
            let dst = p.apply(src);
            for stage in 0..self.stages {
                let before = if stage == 0 {
                    src
                } else {
                    self.port_after(src, dst, stage - 1)
                };
                // Shuffle wiring moves the packet to this input port:
                let k = self.stages;
                let inp = ((before << 1) | (before >> (k - 1))) & (self.n - 1);
                let after = self.port_after(src, dst, stage);
                let switch = inp >> 1;
                let crossed = (inp & 1) != (after & 1);
                match owner[stage][switch] {
                    None => {
                        owner[stage][switch] = Some(src);
                        settings[stage][switch] = crossed;
                    }
                    Some(other) => {
                        // Two packets per switch are fine iff they use
                        // different input ports and agree on the state.
                        let other_dst = p.apply(other);
                        let other_inp = {
                            let ob = if stage == 0 {
                                other
                            } else {
                                self.port_after(other, other_dst, stage - 1)
                            };
                            ((ob << 1) | (ob >> (k - 1))) & (self.n - 1)
                        };
                        if other_inp == inp || settings[stage][switch] != crossed {
                            return Err(Blocking {
                                stage,
                                switch,
                                packets: (other, src),
                            });
                        }
                    }
                }
            }
        }
        Ok(SwitchSchedule {
            n: self.n,
            settings,
        })
    }

    /// Fraction of `samples` random permutations routable in one pass —
    /// vanishingly small for large `n` (there are `2^{(n/2)·log n}` switch
    /// states vs `n!` permutations), which is *why* casual memory access
    /// serializes.
    pub fn random_routability(&self, samples: usize, seed: u64) -> f64 {
        let mut ok = 0usize;
        for i in 0..samples {
            let p = families::random(self.n, seed + i as u64);
            if self.route_permutation(&p).is_ok() {
                ok += 1;
            }
        }
        ok as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_routes_on_any_size() {
        for n in [2usize, 4, 8, 64, 256] {
            let net = OmegaNetwork::new(n).unwrap();
            let sched = net.route_permutation(&families::identical(n)).unwrap();
            assert_eq!(sched.settings.len(), net.stages());
        }
    }

    #[test]
    fn bit_reversal_blocks() {
        // The FFT's own reordering cannot pass an omega network in one
        // round — the concrete face of "casual access serializes" for the
        // paper's headline permutation.
        for n in [8usize, 16, 64] {
            let net = OmegaNetwork::new(n).unwrap();
            assert!(
                net.route_permutation(&families::bit_reversal(n).unwrap())
                    .is_err(),
                "bit-reversal unexpectedly routed at n = {n}"
            );
        }
    }

    #[test]
    fn rotations_route() {
        // Uniform shifts are classic omega-routable permutations.
        let n = 32;
        let net = OmegaNetwork::new(n).unwrap();
        for shift in [1usize, 5, 16, 31] {
            assert!(
                net.route_permutation(&families::rotation(n, shift)).is_ok(),
                "shift {shift}"
            );
        }
    }

    #[test]
    fn some_permutation_blocks() {
        // Omega networks are blocking: exhibit a conflicting permutation.
        // Swapping 0<->1 while fixing everything else collides: packets
        // from 0 and 1 share every early switch but need opposite states
        // somewhere for most sizes.
        let n = 8;
        let net = OmegaNetwork::new(n).unwrap();
        let mut blocked = 0;
        for seed in 0..50 {
            let p = families::random(n, seed);
            if net.route_permutation(&p).is_err() {
                blocked += 1;
            }
        }
        assert!(blocked > 0, "no random permutation blocked at n = {n}");
    }

    #[test]
    fn routability_decays_with_size() {
        let small = OmegaNetwork::new(4).unwrap().random_routability(200, 1);
        let large = OmegaNetwork::new(64).unwrap().random_routability(200, 1);
        assert!(large < small, "routability {large} !< {small}");
        assert!(large < 0.05, "64-wide omega should block almost everything");
    }

    #[test]
    fn schedule_replay_reaches_destinations() {
        // Replaying the switch settings must deliver every packet.
        let n = 16;
        let net = OmegaNetwork::new(n).unwrap();
        let p = families::rotation(n, 3);
        let sched = net.route_permutation(&p).unwrap();
        let k = net.stages();
        for src in 0..n {
            let mut port = src;
            for (stage, stage_settings) in sched.settings.iter().enumerate() {
                let _ = stage;
                port = ((port << 1) | (port >> (k - 1))) & (n - 1);
                if stage_settings[port >> 1] {
                    port ^= 1; // crossed switch
                }
            }
            assert_eq!(port, p.apply(src), "packet from {src}");
        }
    }

    #[test]
    fn wiring_is_the_shuffle_family() {
        let net = OmegaNetwork::new(32).unwrap();
        assert_eq!(net.stage_wiring(), families::shuffle(32).unwrap());
        assert_eq!(net.stages(), 5);
        assert_eq!(net.len(), 32);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(OmegaNetwork::new(0).is_err());
        assert!(OmegaNetwork::new(1).is_err());
        assert!(OmegaNetwork::new(12).is_err());
    }
}
