//! Permutation routing on a 2-D mesh — the other processor network the
//! paper's introduction names ("hypercubes, meshes, and so on").
//!
//! Packets use **XY (dimension-ordered) routing**: all the way along the
//! row first, then along the column. The module measures per-link
//! congestion for the paper's permutation families; the matrix transpose
//! is again the adversary (every packet of row `i` crosses the diagonal
//! node `(i, i)`), and the randomized two-phase variant flattens it at the
//! cost of extra hops — the mesh rendition of the paper's trade-off.

use hmm_perm::Permutation;
use rand::Rng;

/// A directed mesh link between orthogonal neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshLink {
    /// Source node (row, col).
    pub from: (usize, usize),
    /// Destination node (row, col), Manhattan-adjacent to `from`.
    pub to: (usize, usize),
}

/// Congestion statistics of one routed permutation (same shape as
/// [`crate::hypercube::Congestion`]).
pub use crate::hypercube::Congestion;

/// A `side × side` mesh of `n = side²` nodes.
#[derive(Debug, Clone, Copy)]
pub struct Mesh {
    side: usize,
}

impl Mesh {
    /// Build with `side ≥ 1` (at most 2^12 to keep link tables
    /// addressable).
    pub fn new(side: usize) -> Self {
        assert!((1..=1 << 12).contains(&side), "side out of range");
        Mesh { side }
    }

    /// Mesh side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Node count `side²`.
    pub fn nodes(&self) -> usize {
        self.side * self.side
    }

    /// (row, col) of a flat node id.
    #[inline]
    pub fn coords(&self, id: usize) -> (usize, usize) {
        (id / self.side, id % self.side)
    }

    /// The XY path between two nodes: column-correcting moves first (along
    /// the row), then row-correcting moves.
    pub fn xy_path(&self, src: usize, dst: usize) -> Vec<MeshLink> {
        let (sr, sc) = self.coords(src);
        let (dr, dc) = self.coords(dst);
        let mut path = Vec::with_capacity(sr.abs_diff(dr) + sc.abs_diff(dc));
        let mut c = sc;
        while c != dc {
            let next = if dc > c { c + 1 } else { c - 1 };
            path.push(MeshLink {
                from: (sr, c),
                to: (sr, next),
            });
            c = next;
        }
        let mut r = sr;
        while r != dr {
            let next = if dr > r { r + 1 } else { r - 1 };
            path.push(MeshLink {
                from: (r, dc),
                to: (next, dc),
            });
            r = next;
        }
        path
    }

    fn congest(&self, paths: impl Iterator<Item = Vec<MeshLink>>) -> Congestion {
        use std::collections::HashMap;
        let mut load: HashMap<MeshLink, usize> = HashMap::new();
        let mut total_hops = 0usize;
        for path in paths {
            for link in path {
                *load.entry(link).or_insert(0) += 1;
                total_hops += 1;
            }
        }
        Congestion {
            max: load.values().copied().max().unwrap_or(0),
            mean: if load.is_empty() {
                0.0
            } else {
                load.values().sum::<usize>() as f64 / load.len() as f64
            },
            total_hops,
        }
    }

    /// Route permutation `p` (of `self.nodes()` elements) with XY paths.
    pub fn route_xy(&self, p: &Permutation) -> Congestion {
        assert_eq!(p.len(), self.nodes(), "permutation size mismatch");
        self.congest((0..self.nodes()).map(|src| self.xy_path(src, p.apply(src))))
    }

    /// Two-phase randomized routing: to a random intermediate (XY), then
    /// to the destination (XY).
    pub fn route_two_phase<R: Rng + ?Sized>(&self, p: &Permutation, rng: &mut R) -> Congestion {
        assert_eq!(p.len(), self.nodes(), "permutation size mismatch");
        let n = self.nodes();
        self.congest((0..n).map(|src| {
            let mid = rng.gen_range(0..n);
            let mut path = self.xy_path(src, mid);
            path.extend(self.xy_path(mid, p.apply(src)));
            path
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xy_paths_have_manhattan_length_and_connect() {
        let m = Mesh::new(8);
        for (src, dst) in [(0usize, 63usize), (7, 56), (20, 20), (35, 12)] {
            let path = m.xy_path(src, dst);
            let (sr, sc) = m.coords(src);
            let (dr, dc) = m.coords(dst);
            assert_eq!(path.len(), sr.abs_diff(dr) + sc.abs_diff(dc));
            if let (Some(first), Some(last)) = (path.first(), path.last()) {
                assert_eq!(first.from, (sr, sc));
                assert_eq!(last.to, (dr, dc));
            }
            // Links are contiguous and unit-length.
            for pair in path.windows(2) {
                assert_eq!(pair[0].to, pair[1].from);
            }
            for l in &path {
                let dist = l.from.0.abs_diff(l.to.0) + l.from.1.abs_diff(l.to.1);
                assert_eq!(dist, 1);
            }
        }
    }

    #[test]
    fn identity_is_free() {
        let m = Mesh::new(16);
        let c = m.route_xy(&families::identical(m.nodes()));
        assert_eq!(c.total_hops, 0);
    }

    #[test]
    fn transpose_congests_xy() {
        // Row i's packets all turn at column... their destinations are
        // column i — XY routing funnels Θ(side) packets through the turn
        // column links.
        let m = Mesh::new(32);
        let t = families::transpose(32, 32, m.nodes()).unwrap();
        let c = m.route_xy(&t);
        assert!(c.max >= 16, "transpose max load {} too small", c.max);
    }

    #[test]
    fn two_phase_flattens_transpose() {
        let m = Mesh::new(32);
        let t = families::transpose(32, 32, m.nodes()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let det = m.route_xy(&t);
        let rnd = m.route_two_phase(&t, &mut rng);
        assert!(rnd.max < det.max, "two-phase {} vs xy {}", rnd.max, det.max);
        assert!(rnd.total_hops > det.total_hops);
    }

    #[test]
    fn random_permutation_load_is_moderate() {
        // Random permutations on a mesh have Θ(side) average link load
        // (bisection-limited) — well below the transpose hot spot relative
        // to totals.
        let m = Mesh::new(16);
        let c = m.route_xy(&families::random(m.nodes(), 9));
        assert!(c.max > 0);
        assert!(c.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "side out of range")]
    fn zero_side_rejected() {
        Mesh::new(0);
    }

    #[test]
    fn accessors() {
        let m = Mesh::new(5);
        assert_eq!(m.side(), 5);
        assert_eq!(m.nodes(), 25);
        assert_eq!(m.coords(13), (2, 3));
    }
}
