//! # hmm-apps — the applications that motivate offline permutation
//!
//! Section I of the paper motivates the offline permutation problem with
//! four application domains; this crate implements one representative of
//! each, all built on the same [`hmm_perm::Permutation`] objects the
//! permutation algorithms move:
//!
//! * [`fft`] — radix-2 FFT whose decimation-in-time reordering *is* the
//!   bit-reversal permutation ("Bit-reversal is used for data reordering
//!   in the FFT algorithms");
//! * [`sortnet`] — bitonic and odd–even mergesort comparator networks,
//!   whose layers exchange data along butterfly permutations ("Sorting
//!   networks such as bitonic sorting also involve permutation in each
//!   stage");
//! * [`omega`] — the shuffle–exchange multistage interconnection network
//!   the paper cites as the model of the machines' MMU, including the
//!   blocking analysis that explains why casual access serializes;
//! * [`hypercube`] / [`mesh`] — permutation routing on hypercubes and
//!   2-D meshes with deterministic
//!   e-cube vs Valiant's randomized two-phase routing ("communication on
//!   processor networks such as hypercubes ... can be emulated by
//!   permutation"; "random permutation is very helpful for randomized
//!   algorithms").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fft;
pub mod hypercube;
pub mod mesh;
pub mod omega;
pub mod onhmm;
pub mod sortnet;

pub use fft::{
    circular_convolve, six_step_reorder_chain, six_step_reorder_fused, Complex, FftPlan,
};
pub use hypercube::{Congestion, Hypercube};
pub use mesh::Mesh;
pub use omega::{Blocking, OmegaNetwork, SwitchSchedule};
pub use onhmm::{application_permutations, PermVerdict};
pub use sortnet::{bitonic, fused_layer_permutation, odd_even_mergesort, Network};
