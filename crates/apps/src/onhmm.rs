//! Which application permutations actually need the scheduled algorithm?
//!
//! The paper's cost theory (Lemma 4) says the conventional algorithm's
//! time tracks the distribution `γ_w(P)`; this module evaluates the
//! permutations of the application modules **on the simulated HMM** and
//! classifies each: sorting-network butterfly exchanges have `γ_w = 1`
//! (the conventional kernel is already optimal for them!), while the FFT's
//! bit-reversal and the matrix transpose sit at `γ_w = w` and are exactly
//! the workloads the scheduled algorithm was built for.

use hmm_machine::{Hmm, MachineConfig, Word};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_offperm::Result;
use hmm_perm::{distribution, families, Permutation};

/// Cost verdict for one application permutation.
#[derive(Debug, Clone)]
pub struct PermVerdict {
    /// Short label.
    pub name: String,
    /// The distribution `γ_w(P)`.
    pub gamma: f64,
    /// Conventional (D-designated) time units.
    pub conventional: u64,
    /// Scheduled time units.
    pub scheduled: u64,
}

impl PermVerdict {
    /// True when the scheduled algorithm is the right choice.
    pub fn scheduled_wins(&self) -> bool {
        self.scheduled < self.conventional
    }
}

/// Measure one permutation both ways on a fresh machine per run.
pub fn evaluate(name: &str, p: &Permutation, cfg: &MachineConfig) -> Result<PermVerdict> {
    let input: Vec<Word> = (0..p.len() as Word).collect();
    let time = |alg: Algorithm| -> Result<u64> {
        let mut hmm = Hmm::new(cfg.clone())?;
        Ok(run_on(&mut hmm, alg, p, &input)?.0.time)
    };
    Ok(PermVerdict {
        name: name.to_string(),
        gamma: distribution(p, cfg.width),
        conventional: time(Algorithm::DDesignated)?,
        scheduled: time(Algorithm::Scheduled)?,
    })
}

/// Evaluate the permutations the application modules generate, at size `n`
/// on configuration `cfg`:
///
/// * every distinct butterfly stage of a bitonic sort (`i XOR 2^s`),
/// * the FFT's bit-reversal,
/// * the square matrix transpose,
/// * the hypercube's bit-complement.
pub fn application_permutations(n: usize, cfg: &MachineConfig) -> Result<Vec<PermVerdict>> {
    let mut out = Vec::new();
    let stages = n.trailing_zeros();
    // A representative sample of exchange distances: smallest, one below
    // the width, at the width, largest.
    let wlog = cfg.width.trailing_zeros();
    let sample: Vec<u32> = [0, wlog.saturating_sub(1), wlog, stages - 1]
        .into_iter()
        .filter(|&s| s < stages)
        .collect();
    for s in sample {
        let p = families::butterfly(n, s)?;
        out.push(evaluate(&format!("butterfly 2^{s}"), &p, cfg)?);
    }
    out.push(evaluate(
        "FFT bit-reversal",
        &families::bit_reversal(n)?,
        cfg,
    )?);
    out.push(evaluate(
        "matrix transpose",
        &families::Family::Transpose.build(n, 0)?,
        cfg,
    )?);
    let complement = Permutation::from_vec_unchecked((0..n).map(|i| !i & (n - 1)).collect());
    out.push(evaluate("bit-complement", &complement, cfg)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 14;

    fn cfg() -> MachineConfig {
        MachineConfig::pure(32, 64)
    }

    #[test]
    fn butterfly_stages_have_gamma_one() {
        // i XOR 2^s maps each aligned 32-block onto an aligned 32-block:
        // the conventional kernel is already coalesced.
        for s in [0u32, 4, 5, 10] {
            let p = families::butterfly(N, s).unwrap();
            assert_eq!(distribution(&p, 32), 1.0, "stage {s}");
        }
    }

    #[test]
    fn conventional_wins_sorting_network_stages() {
        let verdicts = application_permutations(N, &cfg()).unwrap();
        for v in verdicts.iter().filter(|v| v.name.starts_with("butterfly")) {
            assert!(!v.scheduled_wins(), "{}: γ = {}", v.name, v.gamma);
            assert_eq!(v.gamma, 1.0, "{}", v.name);
        }
    }

    #[test]
    fn scheduled_wins_fft_and_transpose_at_scale() {
        // On the pure model at this latency the crossover needs a larger n;
        // use a big-n configuration via small latency instead.
        let cfg = MachineConfig::pure(32, 2);
        let verdicts = application_permutations(1 << 16, &cfg).unwrap();
        for v in verdicts {
            match v.name.as_str() {
                "FFT bit-reversal" | "matrix transpose" => {
                    assert!(v.scheduled_wins(), "{}: {:?}", v.name, v);
                    assert_eq!(v.gamma, 32.0, "{}", v.name);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn bit_complement_also_has_gamma_one() {
        // !i maps each aligned block onto an aligned block (reversed within
        // the group — same address group): conventional-friendly.
        let verdicts = application_permutations(N, &cfg()).unwrap();
        let v = verdicts
            .iter()
            .find(|v| v.name == "bit-complement")
            .unwrap();
        assert_eq!(v.gamma, 1.0);
        assert!(!v.scheduled_wins());
    }

    #[test]
    fn evaluate_is_deterministic() {
        let p = families::bit_reversal(1 << 12).unwrap();
        let a = evaluate("x", &p, &cfg()).unwrap();
        let b = evaluate("x", &p, &cfg()).unwrap();
        assert_eq!(a.conventional, b.conventional);
        assert_eq!(a.scheduled, b.scheduled);
    }
}
