//! Sorting networks — the paper's second motivating application
//! ("Sorting networks such as bitonic sorting also involve permutation in
//! each stage", Section I, citing Batcher).
//!
//! Two classic constructions are provided as explicit comparator networks:
//! **bitonic sort** and Batcher's **odd–even mergesort**. A network is a
//! sequence of layers of disjoint comparators, so each layer's partner
//! fetch is one fixed permutation of the whole array — the exact shape the
//! offline permutation algorithms accelerate. The partner permutation of
//! every bitonic layer is exposed as a [`hmm_perm::Permutation`]
//! (a butterfly `i ↦ i XOR 2^s`).

use hmm_perm::{families, PermError, Permutation};

/// One comparator: sorts the pair so `min → lo`, `max → hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// The smaller index (receives the minimum).
    pub lo: usize,
    /// The larger index (receives the maximum).
    pub hi: usize,
}

/// A comparator network: layers of pairwise-disjoint comparators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    n: usize,
    layers: Vec<Vec<Comparator>>,
}

impl Network {
    /// Input width.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a width-0 network.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of layers (the network's depth).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total comparator count.
    pub fn size(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// The layers themselves.
    pub fn layers(&self) -> &[Vec<Comparator>] {
        &self.layers
    }

    /// Apply the network in place.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the network width.
    pub fn apply<T: Ord + Copy>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.n, "network width mismatch");
        for layer in &self.layers {
            for c in layer {
                if data[c.lo] > data[c.hi] {
                    data.swap(c.lo, c.hi);
                }
            }
        }
    }

    /// Check structural validity: indices in range, `lo < hi`, and no
    /// element touched twice within a layer (disjointness is what makes a
    /// layer a single parallel round).
    pub fn validate(&self) -> bool {
        for layer in &self.layers {
            let mut touched = vec![false; self.n];
            for c in layer {
                if c.lo >= c.hi || c.hi >= self.n || touched[c.lo] || touched[c.hi] {
                    return false;
                }
                touched[c.lo] = true;
                touched[c.hi] = true;
            }
        }
        true
    }

    /// Exhaustively verify the 0-1 principle on all `2^n` boolean inputs —
    /// a comparator network sorts every input iff it sorts every 0/1
    /// input. Only feasible for small `n` (tests use `n ≤ 16`).
    pub fn sorts_all_binary_inputs(&self) -> bool {
        assert!(self.n <= 20, "exhaustive check infeasible for n > 20");
        for mask in 0u64..(1u64 << self.n) {
            let mut data: Vec<u8> = (0..self.n).map(|i| ((mask >> i) & 1) as u8).collect();
            self.apply(&mut data);
            if data.windows(2).any(|w| w[0] > w[1]) {
                return false;
            }
        }
        true
    }
}

/// Build the bitonic sorting network for a power-of-two `n`.
///
/// Depth `k(k+1)/2` with `k = log₂ n`; every layer's partner pattern is
/// the butterfly permutation `i ↦ i XOR j`.
pub fn bitonic(n: usize) -> Result<Network, PermError> {
    if n == 0 || !n.is_power_of_two() {
        return Err(PermError::NotPowerOfTwo { n });
    }
    let mut layers = Vec::new();
    let mut k = 2usize;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            let mut layer = Vec::with_capacity(n / 2);
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    // Blocks of size k alternate direction: ascending when
                    // the k-bit of i is clear. Direction is encoded by
                    // which index receives the minimum, so a descending
                    // comparator has lo > hi (validate() only applies to
                    // all-ascending networks).
                    let c = if i & k == 0 {
                        Comparator { lo: i, hi: partner }
                    } else {
                        Comparator { lo: partner, hi: i }
                    };
                    layer.push(c);
                }
            }
            layers.push(layer);
            j /= 2;
        }
        k *= 2;
    }
    Ok(Network { n, layers })
}

/// Build Batcher's odd–even mergesort network for a power-of-two `n`.
pub fn odd_even_mergesort(n: usize) -> Result<Network, PermError> {
    if n == 0 || !n.is_power_of_two() {
        return Err(PermError::NotPowerOfTwo { n });
    }
    // Classic iterative formulation (Knuth TAOCP 5.2.2M): phases p = 1, 2,
    // 4, ...; within each phase, sub-steps k = p, p/2, ..., 1.
    let mut layers = Vec::new();
    let mut p = 1usize;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut layer = Vec::new();
            for j in (k % p..n.saturating_sub(k)).step_by(2 * k) {
                for i in 0..k.min(n - j - k) {
                    if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                        layer.push(Comparator {
                            lo: i + j,
                            hi: i + j + k,
                        });
                    }
                }
            }
            if !layer.is_empty() {
                layers.push(layer);
            }
            k /= 2;
        }
        p *= 2;
    }
    Ok(Network { n, layers })
}

/// The partner permutation of a bitonic layer with exchange distance
/// `2^stage`: the butterfly `i ↦ i XOR 2^stage` — what a data-parallel
/// implementation fetches with one offline permutation per layer.
pub fn bitonic_layer_permutation(n: usize, stage: u32) -> Result<Permutation, PermError> {
    families::butterfly(n, stage)
}

/// The fused partner permutation for a run of consecutive bitonic
/// exchange layers with distances `2^stages[0]`, `2^stages[1]`, … applied
/// in that order. Butterflies compose by XOR-ing their masks, so any
/// run collapses to the single exchange `i ↦ i XOR (2^s₀ ⊕ 2^s₁ ⊕ …)` —
/// one offline permutation (and one memory round trip through
/// `SharedEngine::permute_fused`) where the unfused pipeline pays one
/// per layer. The composite is linear over GF(2), so the planner's
/// structured fast path applies.
///
/// Errors on an empty `stages` (via [`Permutation::compose_chain`]) or
/// an out-of-range stage.
pub fn fused_layer_permutation(n: usize, stages: &[u32]) -> Result<Permutation, PermError> {
    let links = stages
        .iter()
        .map(|&s| families::butterfly(n, s))
        .collect::<Result<Vec<_>, _>>()?;
    let refs: Vec<&Permutation> = links.iter().collect();
    Permutation::compose_chain(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_sorts(net: &Network, seed: u64) {
        let n = net.len();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let mut data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            let mut want = data.clone();
            net.apply(&mut data);
            want.sort_unstable();
            assert_eq!(data, want);
        }
    }

    #[test]
    fn bitonic_sorts_random_inputs() {
        for n in [2usize, 4, 8, 32, 128, 1024] {
            let net = bitonic(n).unwrap();
            assert_sorts(&net, n as u64);
        }
    }

    #[test]
    fn odd_even_sorts_random_inputs() {
        for n in [2usize, 4, 8, 32, 128, 1024] {
            let net = odd_even_mergesort(n).unwrap();
            assert_sorts(&net, n as u64);
        }
    }

    #[test]
    fn zero_one_principle_exhaustive() {
        for n in [2usize, 4, 8, 16] {
            assert!(bitonic(n).unwrap().sorts_all_binary_inputs(), "bitonic {n}");
            assert!(
                odd_even_mergesort(n).unwrap().sorts_all_binary_inputs(),
                "odd-even {n}"
            );
        }
    }

    #[test]
    fn bitonic_depth_is_k_choose_2ish() {
        // depth = k(k+1)/2 for n = 2^k.
        for k in 1usize..=7 {
            let n = 1 << k;
            let net = bitonic(n).unwrap();
            assert_eq!(net.depth(), k * (k + 1) / 2, "n = {n}");
            assert_eq!(net.size(), net.depth() * n / 2, "n = {n}");
        }
    }

    #[test]
    fn odd_even_uses_fewer_comparators_than_bitonic() {
        for k in 3usize..=8 {
            let n = 1 << k;
            let b = bitonic(n).unwrap().size();
            let oe = odd_even_mergesort(n).unwrap().size();
            assert!(oe < b, "n = {n}: odd-even {oe} vs bitonic {b}");
        }
    }

    #[test]
    fn bitonic_layer_partner_pattern_is_butterfly() {
        // Every comparator of a distance-j layer pairs i with i XOR j.
        let n = 64;
        let net = bitonic(n).unwrap();
        for layer in net.layers() {
            let dist = layer[0].lo.max(layer[0].hi) ^ layer[0].lo.min(layer[0].hi);
            assert!(dist.is_power_of_two());
            let p = bitonic_layer_permutation(n, dist.trailing_zeros()).unwrap();
            for c in layer {
                assert_eq!(p.apply(c.lo), c.hi);
                assert_eq!(p.apply(c.hi), c.lo);
            }
        }
    }

    #[test]
    fn fused_layer_run_collapses_to_one_exchange() {
        let n = 256;
        // Three consecutive exchange layers, distances 4, 2, 1 (the tail
        // of a bitonic merge phase).
        let stages = [2u32, 1, 0];
        let fused = fused_layer_permutation(n, &stages).unwrap();
        let src: Vec<u32> = (0..n as u32).map(|v| v ^ 0xa5).collect();
        let mut step = src.clone();
        for &s in &stages {
            let p = bitonic_layer_permutation(n, s).unwrap();
            let prev = step.clone();
            p.permute(&prev, &mut step).unwrap();
        }
        let mut once = vec![0u32; n];
        fused.permute(&src, &mut once).unwrap();
        assert_eq!(once, step);
        // XOR-of-masks: the run is the single butterfly with mask 0b111.
        for i in 0..n {
            assert_eq!(fused.apply(i), i ^ 0b111);
        }
        // Linear over GF(2) ⇒ structured-plannable.
        assert!(fused.as_bmmc().is_some());
        assert!(fused_layer_permutation(n, &[]).is_err());
        assert!(fused_layer_permutation(n, &[31]).is_err());
    }

    #[test]
    fn networks_validate_structurally() {
        // Bitonic descending blocks encode direction by (lo, hi) order, so
        // structural validation applies to odd-even (all ascending) only.
        for n in [4usize, 16, 64] {
            assert!(odd_even_mergesort(n).unwrap().validate(), "n = {n}");
        }
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(bitonic(0).is_err());
        assert!(bitonic(12).is_err());
        assert!(odd_even_mergesort(7).is_err());
    }

    #[test]
    fn sorts_with_duplicates_and_reverse() {
        let net = bitonic(256).unwrap();
        let mut rev: Vec<u32> = (0..256).rev().map(|v| v / 4).collect();
        net.apply(&mut rev);
        assert!(rev.windows(2).all(|w| w[0] <= w[1]));
        let mut all_same = vec![7u32; 256];
        net.apply(&mut all_same);
        assert_eq!(all_same, vec![7u32; 256]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn apply_checks_width() {
        bitonic(8).unwrap().apply(&mut [1, 2, 3]);
    }
}
