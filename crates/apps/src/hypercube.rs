//! Permutation routing on a hypercube — the paper's fourth motivation
//! ("communication on processor networks such as hypercubes, meshes, and
//! so on can be emulated by permutation") plus its pointer to randomized
//! algorithms ("random permutation is very helpful for randomized
//! algorithms", citing Motwani–Raghavan).
//!
//! Implements oblivious **e-cube** (dimension-ordered) routing and
//! Valiant's **two-phase randomized** routing, measuring per-link
//! congestion. The classic contrast this reproduces: deterministic e-cube
//! suffers `Θ(√n)` congestion on adversarial permutations such as
//! bit-complement, while routing via random intermediates flattens every
//! permutation to near-uniform load — the same "scatter the hot spots"
//! idea behind the paper's scheduled permutation.

use hmm_perm::Permutation;
use rand::Rng;

/// A directed hypercube link: from `node` along dimension `dim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source node id.
    pub node: usize,
    /// Dimension crossed (0-based).
    pub dim: usize,
}

/// Congestion statistics of one routed permutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Congestion {
    /// Maximum packets over any directed link.
    pub max: usize,
    /// Mean packets per *used* link.
    pub mean: f64,
    /// Total hops taken by all packets.
    pub total_hops: usize,
}

/// A `d`-dimensional hypercube (`n = 2^d` nodes).
#[derive(Debug, Clone, Copy)]
pub struct Hypercube {
    dim: usize,
}

impl Hypercube {
    /// Build with dimension `d ≥ 1` (at most 24 to keep the link table
    /// addressable).
    pub fn new(dim: usize) -> Self {
        assert!((1..=24).contains(&dim), "dimension out of range");
        Hypercube { dim }
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Node count `2^d`.
    pub fn nodes(&self) -> usize {
        1 << self.dim
    }

    /// The e-cube path from `src` to `dst`: correct differing bits in
    /// ascending dimension order.
    pub fn ecube_path(&self, src: usize, dst: usize) -> Vec<Link> {
        let mut path = Vec::new();
        let mut cur = src;
        for d in 0..self.dim {
            if (cur ^ dst) & (1 << d) != 0 {
                path.push(Link { node: cur, dim: d });
                cur ^= 1 << d;
            }
        }
        debug_assert_eq!(cur, dst);
        path
    }

    fn congest(&self, paths: impl Iterator<Item = Vec<Link>>) -> Congestion {
        let mut load = vec![0usize; self.nodes() * self.dim];
        let mut total_hops = 0usize;
        for path in paths {
            for link in path {
                load[link.node * self.dim + link.dim] += 1;
                total_hops += 1;
            }
        }
        let used: Vec<usize> = load.iter().copied().filter(|&l| l > 0).collect();
        Congestion {
            max: used.iter().copied().max().unwrap_or(0),
            mean: if used.is_empty() {
                0.0
            } else {
                used.iter().sum::<usize>() as f64 / used.len() as f64
            },
            total_hops,
        }
    }

    /// Route permutation `p` with deterministic e-cube paths and measure
    /// congestion.
    pub fn route_ecube(&self, p: &Permutation) -> Congestion {
        assert_eq!(p.len(), self.nodes(), "permutation size mismatch");
        self.congest((0..self.nodes()).map(|src| self.ecube_path(src, p.apply(src))))
    }

    /// Valiant's two-phase routing: each packet goes to a uniformly random
    /// intermediate node first, then on to its destination (both phases
    /// e-cube).
    pub fn route_valiant<R: Rng + ?Sized>(&self, p: &Permutation, rng: &mut R) -> Congestion {
        assert_eq!(p.len(), self.nodes(), "permutation size mismatch");
        let n = self.nodes();
        self.congest((0..n).map(|src| {
            let mid = rng.gen_range(0..n);
            let mut path = self.ecube_path(src, mid);
            path.extend(self.ecube_path(mid, p.apply(src)));
            path
        }))
    }

    /// The **bit-complement** permutation `i ↦ !i`. Every packet crosses
    /// all `d` dimensions, yet under e-cube routing no two packets ever
    /// share a link (their corrected prefixes differ wherever they differ)
    /// — maximum total traffic, perfectly balanced.
    pub fn bit_complement(&self) -> Permutation {
        let n = self.nodes();
        Permutation::from_vec_unchecked((0..n).map(|i| !i & (n - 1)).collect())
    }

    /// The **bit-transpose** permutation (swap the high and low halves of
    /// the address bits — the hypercube face of the paper's matrix
    /// transpose): the classic adversarial input for dimension-ordered
    /// routing, funneling `2^{d/2} = √n` packets through shared
    /// intermediate nodes (`Θ(√n)` congestion). Requires even `d`.
    pub fn bit_transpose(&self) -> Permutation {
        assert!(
            self.dim.is_multiple_of(2),
            "bit-transpose needs even dimension"
        );
        let half = self.dim / 2;
        let mask = (1usize << half) - 1;
        let n = self.nodes();
        Permutation::from_vec_unchecked(
            (0..n).map(|i| ((i & mask) << half) | (i >> half)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ecube_paths_are_shortest() {
        let h = Hypercube::new(6);
        for (src, dst) in [(0usize, 63usize), (5, 5), (12, 34), (63, 0)] {
            let path = h.ecube_path(src, dst);
            assert_eq!(path.len(), (src ^ dst).count_ones() as usize);
        }
    }

    #[test]
    fn identity_needs_no_hops() {
        let h = Hypercube::new(5);
        let c = h.route_ecube(&families::identical(h.nodes()));
        assert_eq!(c.total_hops, 0);
        assert_eq!(c.max, 0);
    }

    #[test]
    fn single_dimension_exchange_is_uniform() {
        // The butterfly permutation crosses one dimension once per node:
        // every used link carries exactly one packet.
        let h = Hypercube::new(6);
        let p = families::butterfly(h.nodes(), 3).unwrap();
        let c = h.route_ecube(&p);
        assert_eq!(c.max, 1);
        assert_eq!(c.total_hops, h.nodes());
    }

    #[test]
    fn bit_transpose_congests_ecube() {
        // Classic lower bound: e-cube on the bit-transpose funnels Θ(√n)
        // packets through shared intermediates.
        let h = Hypercube::new(10); // n = 1024, √n = 32
        let c = h.route_ecube(&h.bit_transpose());
        assert!(c.max >= 16, "max congestion {} << √n", c.max);
    }

    #[test]
    fn bit_complement_is_heavy_but_perfectly_balanced() {
        // Every packet crosses all d dimensions, but no link is shared.
        let h = Hypercube::new(8);
        let c = h.route_ecube(&h.bit_complement());
        assert_eq!(c.total_hops, h.nodes() * h.dim());
        assert_eq!(c.max, 1);
    }

    #[test]
    fn valiant_flattens_bit_transpose() {
        let h = Hypercube::new(10);
        let mut rng = StdRng::seed_from_u64(7);
        let det = h.route_ecube(&h.bit_transpose());
        let rnd = h.route_valiant(&h.bit_transpose(), &mut rng);
        // Valiant doubles path lengths but crushes the hot spot.
        assert!(
            rnd.max * 2 < det.max,
            "valiant {} vs ecube {}",
            rnd.max,
            det.max
        );
        assert!(rnd.total_hops > det.total_hops);
    }

    #[test]
    fn random_permutations_are_already_flat() {
        let h = Hypercube::new(8);
        let c = h.route_ecube(&families::random(h.nodes(), 3));
        // With n packets of ~d/2 hops over n·d links, expected load is ~0.5;
        // max should be small (log-ish), far below the adversarial √n.
        assert!(c.max <= 8, "max congestion {}", c.max);
        assert!(c.mean < 3.0);
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let h = Hypercube::new(6);
        let p = h.bit_complement();
        assert!(p.is_involution());
        assert_eq!(p.fixed_points(), 0);
    }

    #[test]
    #[should_panic(expected = "dimension out of range")]
    fn zero_dimension_rejected() {
        Hypercube::new(0);
    }

    #[test]
    fn accessors() {
        let h = Hypercube::new(4);
        assert_eq!(h.dim(), 4);
        assert_eq!(h.nodes(), 16);
    }
}
