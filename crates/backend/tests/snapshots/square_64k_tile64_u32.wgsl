// Offline permutation sweep module (generated — do not edit).
//
// Plan geometry: 256x256 = 65536 elements of u32; transpose tile
// 64 (+1 pad). Five passes: gather_g1, transpose_s2, gather_g2,
// transpose_s4, row_permute_g3 — dispatch them in that order with the
// per-kernel geometry noted above each entry point, with a buffer
// barrier between passes. The host uploads the plan's three gather maps
// into map1/map2/map3; scratch_a/scratch_b are 65536-element device
// temporaries.

@group(0) @binding(0) var<storage, read> src: array<u32>;
@group(0) @binding(1) var<storage, read_write> scratch_a: array<u32>;
@group(0) @binding(2) var<storage, read_write> scratch_b: array<u32>;
@group(0) @binding(3) var<storage, read_write> dst: array<u32>;
@group(0) @binding(4) var<storage, read> map1: array<u32>;
@group(0) @binding(5) var<storage, read> map2: array<u32>;
@group(0) @binding(6) var<storage, read> map3: array<u32>;

// 0u is this module's element zero; shared tiles start undefined in
// WGSL, and the kernels never read a slot they did not write, so no
// explicit clear is emitted.

// Step 1: row-local gather over a 256x256 matrix,
// src -> scratch_a via map1; one thread per element.
// Dispatch: (1024, 1, 1) workgroups of 64.
@compute @workgroup_size(64)
fn gather_g1(@builtin(global_invocation_id) gid: vec3<u32>) {
    let i = gid.x;
    if (i < 65536u) {
        let base = (i / 256u) * 256u;
        scratch_a[i] = src[base + map1[i]];
    }
}

// Step 2: tiled transpose of a 256x256 matrix, scratch_a -> scratch_b.
// 64x64 tiles staged in workgroup memory with a +1
// column pad (stride 65) so the transposed read hits 65
// distinct banks instead of one. Each workgroup moves one tile with
// 64x4 threads, striding 4 rows per iteration.
// Dispatch: (4, 4, 1) workgroups of 64x4.
var<workgroup> tile_2: array<u32, 4160u>;

@compute @workgroup_size(64, 4)
fn transpose_s2(@builtin(workgroup_id) wid: vec3<u32>,
          @builtin(local_invocation_id) lid: vec3<u32>) {
    let j0 = wid.x * 64u;
    let i0 = wid.y * 64u;
    // Load phase: tile[ti][tj] = src[i0 + ti][j0 + tj].
    for (var ti = lid.y; ti < 64u; ti = ti + 4u) {
        let i = i0 + ti;
        let j = j0 + lid.x;
        if (i < 256u && j < 256u) {
            tile_2[ti * 65u + lid.x] = scratch_a[i * 256u + j];
        }
    }
    workgroupBarrier();
    // Store phase: dst[j0 + ti][i0 + tj] = tile[tj][ti] (transposed read).
    for (var ti = lid.y; ti < 64u; ti = ti + 4u) {
        let j = j0 + ti;
        let i = i0 + lid.x;
        if (j < 256u && i < 256u) {
            scratch_b[j * 256u + i] = tile_2[lid.x * 65u + ti];
        }
    }
}

// Step 3: row-local gather over a 256x256 matrix,
// scratch_b -> scratch_a via map2; one thread per element.
// Dispatch: (1024, 1, 1) workgroups of 64.
@compute @workgroup_size(64)
fn gather_g2(@builtin(global_invocation_id) gid: vec3<u32>) {
    let i = gid.x;
    if (i < 65536u) {
        let base = (i / 256u) * 256u;
        scratch_a[i] = scratch_b[base + map2[i]];
    }
}

// Step 4: tiled transpose of a 256x256 matrix, scratch_a -> scratch_b.
// 64x64 tiles staged in workgroup memory with a +1
// column pad (stride 65) so the transposed read hits 65
// distinct banks instead of one. Each workgroup moves one tile with
// 64x4 threads, striding 4 rows per iteration.
// Dispatch: (4, 4, 1) workgroups of 64x4.
var<workgroup> tile_4: array<u32, 4160u>;

@compute @workgroup_size(64, 4)
fn transpose_s4(@builtin(workgroup_id) wid: vec3<u32>,
          @builtin(local_invocation_id) lid: vec3<u32>) {
    let j0 = wid.x * 64u;
    let i0 = wid.y * 64u;
    // Load phase: tile[ti][tj] = src[i0 + ti][j0 + tj].
    for (var ti = lid.y; ti < 64u; ti = ti + 4u) {
        let i = i0 + ti;
        let j = j0 + lid.x;
        if (i < 256u && j < 256u) {
            tile_4[ti * 65u + lid.x] = scratch_a[i * 256u + j];
        }
    }
    workgroupBarrier();
    // Store phase: dst[j0 + ti][i0 + tj] = tile[tj][ti] (transposed read).
    for (var ti = lid.y; ti < 64u; ti = ti + 4u) {
        let j = j0 + ti;
        let i = i0 + lid.x;
        if (j < 256u && i < 256u) {
            scratch_b[j * 256u + i] = tile_4[lid.x * 65u + ti];
        }
    }
}

// Step 5: row-local gather over a 256x256 matrix,
// scratch_b -> dst via map3; one thread per element.
// Dispatch: (1024, 1, 1) workgroups of 64.
@compute @workgroup_size(64)
fn row_permute_g3(@builtin(global_invocation_id) gid: vec3<u32>) {
    let i = gid.x;
    if (i < 65536u) {
        let base = (i / 256u) * 256u;
        dst[i] = scratch_b[base + map3[i]];
    }
}
