// Offline permutation sweep module (generated — do not edit).
//
// Plan geometry: 32x32 = 1024 elements of u32; transpose tile
// 16 (+1 pad). Five passes: gather_g1, transpose_s2, gather_g2,
// transpose_s4, row_permute_g3 — dispatch them in that order with the
// per-kernel geometry noted above each entry point, with a buffer
// barrier between passes. This plan's gathers are computed-index
// (affine folds baked into the kernels): map1/map2/map3 are declared
// for binding-layout compatibility but never read, so the host may
// bind any placeholder buffers; scratch_a/scratch_b are 1024-element
// device temporaries.

@group(0) @binding(0) var<storage, read> src: array<u32>;
@group(0) @binding(1) var<storage, read_write> scratch_a: array<u32>;
@group(0) @binding(2) var<storage, read_write> scratch_b: array<u32>;
@group(0) @binding(3) var<storage, read_write> dst: array<u32>;
@group(0) @binding(4) var<storage, read> map1: array<u32>;
@group(0) @binding(5) var<storage, read> map2: array<u32>;
@group(0) @binding(6) var<storage, read> map3: array<u32>;

// 0u is this module's element zero; shared tiles start undefined in
// WGSL, and the kernels never read a slot they did not write, so no
// explicit clear is emitted.

// Step 1: computed-index row gather over a 32x32 matrix,
// src -> scratch_a; one thread per element. The gather index is the
// plan's affine fold evaluated in registers; the map1 binding is
// declared but never read by this kernel.
// Dispatch: (16, 1, 1) workgroups of 64.
@compute @workgroup_size(64)
fn gather_g1(@builtin(global_invocation_id) gid: vec3<u32>) {
    let i = gid.x;
    if (i < 1024u) {
        let base = (i / 32u) * 32u;
        var v = 0u;
        v = v ^ (1u * ((i >> 0u) & 1u));
        v = v ^ (2u * ((i >> 1u) & 1u));
        v = v ^ (4u * ((i >> 2u) & 1u));
        v = v ^ (8u * ((i >> 3u) & 1u));
        v = v ^ (16u * ((i >> 4u) & 1u));
        v = v ^ (1u * ((i >> 5u) & 1u));
        v = v ^ (2u * ((i >> 6u) & 1u));
        v = v ^ (4u * ((i >> 7u) & 1u));
        v = v ^ (8u * ((i >> 8u) & 1u));
        v = v ^ (16u * ((i >> 9u) & 1u));
        scratch_a[i] = src[base + v];
    }
}

// Step 2: tiled transpose of a 32x32 matrix, scratch_a -> scratch_b.
// 16x16 tiles staged in workgroup memory with a +1
// column pad (stride 17) so the transposed read hits 17
// distinct banks instead of one. Each workgroup moves one tile with
// 16x16 threads, striding 16 rows per iteration.
// Dispatch: (2, 2, 1) workgroups of 16x16.
var<workgroup> tile_2: array<u32, 272u>;

@compute @workgroup_size(16, 16)
fn transpose_s2(@builtin(workgroup_id) wid: vec3<u32>,
          @builtin(local_invocation_id) lid: vec3<u32>) {
    let j0 = wid.x * 16u;
    let i0 = wid.y * 16u;
    // Load phase: tile[ti][tj] = src[i0 + ti][j0 + tj].
    for (var ti = lid.y; ti < 16u; ti = ti + 16u) {
        let i = i0 + ti;
        let j = j0 + lid.x;
        if (i < 32u && j < 32u) {
            tile_2[ti * 17u + lid.x] = scratch_a[i * 32u + j];
        }
    }
    workgroupBarrier();
    // Store phase: dst[j0 + ti][i0 + tj] = tile[tj][ti] (transposed read).
    for (var ti = lid.y; ti < 16u; ti = ti + 16u) {
        let j = j0 + ti;
        let i = i0 + lid.x;
        if (j < 32u && i < 32u) {
            scratch_b[j * 32u + i] = tile_2[lid.x * 17u + ti];
        }
    }
}

// Step 3: computed-index row gather over a 32x32 matrix,
// scratch_b -> scratch_a; one thread per element. The gather index is the
// plan's affine fold evaluated in registers; the map2 binding is
// declared but never read by this kernel.
// Dispatch: (16, 1, 1) workgroups of 64.
@compute @workgroup_size(64)
fn gather_g2(@builtin(global_invocation_id) gid: vec3<u32>) {
    let i = gid.x;
    if (i < 1024u) {
        let base = (i / 32u) * 32u;
        var v = 0u;
        v = v ^ (16u * ((i >> 0u) & 1u));
        v = v ^ (8u * ((i >> 1u) & 1u));
        v = v ^ (4u * ((i >> 2u) & 1u));
        v = v ^ (2u * ((i >> 3u) & 1u));
        v = v ^ (1u * ((i >> 4u) & 1u));
        v = v ^ (1u * ((i >> 5u) & 1u));
        v = v ^ (2u * ((i >> 6u) & 1u));
        v = v ^ (4u * ((i >> 7u) & 1u));
        v = v ^ (8u * ((i >> 8u) & 1u));
        v = v ^ (16u * ((i >> 9u) & 1u));
        scratch_a[i] = scratch_b[base + v];
    }
}

// Step 4: tiled transpose of a 32x32 matrix, scratch_a -> scratch_b.
// 16x16 tiles staged in workgroup memory with a +1
// column pad (stride 17) so the transposed read hits 17
// distinct banks instead of one. Each workgroup moves one tile with
// 16x16 threads, striding 16 rows per iteration.
// Dispatch: (2, 2, 1) workgroups of 16x16.
var<workgroup> tile_4: array<u32, 272u>;

@compute @workgroup_size(16, 16)
fn transpose_s4(@builtin(workgroup_id) wid: vec3<u32>,
          @builtin(local_invocation_id) lid: vec3<u32>) {
    let j0 = wid.x * 16u;
    let i0 = wid.y * 16u;
    // Load phase: tile[ti][tj] = src[i0 + ti][j0 + tj].
    for (var ti = lid.y; ti < 16u; ti = ti + 16u) {
        let i = i0 + ti;
        let j = j0 + lid.x;
        if (i < 32u && j < 32u) {
            tile_4[ti * 17u + lid.x] = scratch_a[i * 32u + j];
        }
    }
    workgroupBarrier();
    // Store phase: dst[j0 + ti][i0 + tj] = tile[tj][ti] (transposed read).
    for (var ti = lid.y; ti < 16u; ti = ti + 16u) {
        let j = j0 + ti;
        let i = i0 + lid.x;
        if (j < 32u && i < 32u) {
            scratch_b[j * 32u + i] = tile_4[lid.x * 17u + ti];
        }
    }
}

// Step 5: computed-index row gather over a 32x32 matrix,
// scratch_b -> dst; one thread per element. The gather index is the
// plan's affine fold evaluated in registers; the map3 binding is
// declared but never read by this kernel.
// Dispatch: (16, 1, 1) workgroups of 64.
@compute @workgroup_size(64)
fn row_permute_g3(@builtin(global_invocation_id) gid: vec3<u32>) {
    let i = gid.x;
    if (i < 1024u) {
        let base = (i / 32u) * 32u;
        var v = 0u;
        v = v ^ (16u * ((i >> 0u) & 1u));
        v = v ^ (8u * ((i >> 1u) & 1u));
        v = v ^ (4u * ((i >> 2u) & 1u));
        v = v ^ (2u * ((i >> 3u) & 1u));
        v = v ^ (1u * ((i >> 4u) & 1u));
        v = v ^ (16u * ((i >> 5u) & 1u));
        v = v ^ (8u * ((i >> 6u) & 1u));
        v = v ^ (4u * ((i >> 7u) & 1u));
        v = v ^ (2u * ((i >> 8u) & 1u));
        v = v ^ (1u * ((i >> 9u) & 1u));
        dst[i] = scratch_b[base + v];
    }
}
