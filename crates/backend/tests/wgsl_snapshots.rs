//! Golden-snapshot tests for the WGSL generator.
//!
//! The generator is a deterministic text lowering: for a given plan
//! geometry (rows × cols, tile, element type) the module text is fully
//! decided, so the right regression net is a byte-level snapshot. Each
//! case renders [`module_wgsl`] for one (n, tile, element) cell —
//! covering all three kernel templates (row gather, tiled transpose, row
//! permute) across square and rectangular shapes and both element
//! widths — and compares against a checked-in `.wgsl` file.
//!
//! To regenerate after an intentional generator change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p hmm-backend --test wgsl_snapshots
//! ```
//!
//! then review the diff like any other source change.

use hmm_backend::{module_wgsl, KernelConfig, SweepIr, WgslElem};
use hmm_perm::families;
use hmm_plan::PlanIr;
use std::path::PathBuf;

/// Which permutation a snapshot case lowers. Random plans carry no
/// affine descriptors, so they pin the map-lowered templates (the text
/// is geometry-keyed — any random seed gives the same module).
/// Structured families carry descriptors and lower computed-index under
/// the default config, so their modules additionally bake the family's
/// masks — the text is permutation-keyed, which is exactly why each
/// family needs its own snapshot.
#[derive(Clone, Copy)]
enum Family {
    Random,
    BitReversal,
    Shuffle,
}

/// The snapshot matrix: (case name, n, tile, element type, family). The
/// map-lowered cases pick three distinct geometries — 32×32 (tile spans
/// the whole matrix), 128×64 rectangular, and 256×256 with the default
/// 64-tile — and the first shape repeats at u64 to pin the `vec2<u32>`
/// lowering. The computed cases pin the affine XOR-fold gather kernels
/// for two structured families and both element widths.
fn cases() -> Vec<(&'static str, usize, usize, WgslElem, Family)> {
    vec![
        (
            "square_1k_tile16_u32",
            1 << 10,
            16,
            WgslElem::U32,
            Family::Random,
        ),
        (
            "rect_8k_tile32_u32",
            1 << 13,
            32,
            WgslElem::U32,
            Family::Random,
        ),
        (
            "square_64k_tile64_u32",
            1 << 16,
            64,
            WgslElem::U32,
            Family::Random,
        ),
        (
            "square_1k_tile16_u64",
            1 << 10,
            16,
            WgslElem::U64,
            Family::Random,
        ),
        (
            "computed_bitrev_1k_tile16_u32",
            1 << 10,
            16,
            WgslElem::U32,
            Family::BitReversal,
        ),
        (
            "computed_shuffle_8k_tile32_u32",
            1 << 13,
            32,
            WgslElem::U32,
            Family::Shuffle,
        ),
        (
            "computed_bitrev_1k_tile16_u64",
            1 << 10,
            16,
            WgslElem::U64,
            Family::BitReversal,
        ),
    ]
}

fn render(n: usize, tile: usize, elem: WgslElem, family: Family) -> String {
    let p = match family {
        Family::Random => families::random(n, 0x5eed),
        Family::BitReversal => families::bit_reversal(n).unwrap(),
        Family::Shuffle => families::shuffle(n).unwrap(),
    };
    let ir = PlanIr::build(&p, 32).unwrap();
    let cfg = KernelConfig {
        tile,
        ..KernelConfig::default()
    };
    let sweep = SweepIr::lower(&ir, &cfg);
    // Sanity-pin the lowering form each case means to snapshot.
    match family {
        Family::Random => assert!(sweep.affine().is_none()),
        _ => assert!(sweep.affine().is_some()),
    }
    module_wgsl(&sweep, elem)
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.wgsl"))
}

#[test]
fn generated_wgsl_matches_golden_snapshots() {
    let update = std::env::var_os("UPDATE_SNAPSHOTS").is_some();
    let mut mismatches = Vec::new();
    for (name, n, tile, elem, family) in cases() {
        let got = render(n, tile, elem, family);
        let path = snapshot_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
        if got != want {
            mismatches.push(name);
        }
    }
    assert!(
        mismatches.is_empty(),
        "WGSL generator output diverged from golden snapshots {mismatches:?}; \
         if the change is intentional, regenerate with UPDATE_SNAPSHOTS=1 and \
         review the diff"
    );
}

/// Each snapshot embeds its own geometry: the tile and shape constants
/// named in the header must match the case that generated it, so a
/// snapshot can never silently pin the wrong case.
#[test]
fn snapshots_are_self_describing() {
    for (name, n, tile, elem, family) in cases() {
        let text = render(n, tile, elem, family);
        assert!(
            text.contains(&format!("= {n} elements of {}", elem.type_name())),
            "{name}: header lost the element count/type"
        );
        assert!(
            text.contains(&format!("transpose tile\n// {tile} ")),
            "{name}: header lost the tile side"
        );
        // The index form is part of a snapshot's self-description too:
        // computed cases must carry the fold, map-lowered cases the load.
        let computed = matches!(family, Family::BitReversal | Family::Shuffle);
        assert_eq!(
            text.contains("computed-index row gather"),
            computed,
            "{name}: wrong index form"
        );
        assert_eq!(text.contains("map1[i]"), !computed, "{name}");
    }
}
