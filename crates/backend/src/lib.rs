//! # hmm-backend — the backend-neutral execution layer
//!
//! The paper's headline claim is a *GPU* implementation of the 3-pass
//! offline permutation, but this reproduction's execution stack was
//! hardwired to the CPU executor inside `hmm-native`. This crate is the
//! seam that unhardwires it, split into three layers (DESIGN.md §13):
//!
//! 1. **Traits** — [`Backend`] turns a backend-neutral plan
//!    ([`ExecPlan`]: a scatter permutation or a scheduled
//!    [`hmm_plan::PlanIr`]) plus a [`KernelConfig`] into a boxed
//!    [`Executable`]; the engines in `hmm-native` dispatch every
//!    execution through these two traits and never name a concrete
//!    executor again. [`Capabilities`] lets a backend opt out of a route
//!    (a GPU backend with no scatter kernel, say) and
//!    [`Executable::runs`] is the per-executable stats hook.
//! 2. **Sweep-kernel IR** — [`SweepIr`] lowers a validated `PlanIr` +
//!    its pass layouts into five steps of three kernel kinds
//!    ([`SweepKernel`]: row-local gather, tiled transpose with an
//!    explicit bank-offset pad, row permute) over four logical buffers
//!    ([`BufferId`]). The tile side and bank pad are explicit IR
//!    parameters, not executor folklore.
//! 3. **Consumers** — [`wgsl::module_wgsl`] emits WGSL compute-shader
//!    text from the IR (kubecl-style monomorphised lowering,
//!    golden-snapshot tested), and [`InterpBackend`] interprets the same
//!    IR deterministically on the CPU — a second registered backend the
//!    conformance suite pins byte-identical against `hmm-native` and
//!    the naive reference.
//!
//! The crate also owns the strict environment-override helper
//! ([`env::parse_env`]): every `HMM_*` knob (`HMM_NATIVE_SIMD`,
//! `HMM_NATIVE_THREADS`, `HMM_BACKEND`) parses strictly and warns once
//! per variable on garbage instead of silently guessing.
//!
//! No `unsafe` anywhere in this crate: the interpreter is the *reference*
//! executor, so it stays trivially auditable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod env;
pub mod interp;
pub mod sweep;
pub mod traits;
pub mod wgsl;

pub use config::{
    KernelConfig, COMPUTED_INDEX_ENV, DEFAULT_STAGE_BYTES, DEFAULT_STAGING_DEPTH, DEFAULT_TILE,
    SIMD_ENV,
};
pub use interp::InterpBackend;
pub use sweep::{BufferId, GatherMap, IndexSource, SweepIr, SweepKernel, SweepStep};
pub use traits::{Backend, Capabilities, ExecPlan, Executable, Route};
pub use wgsl::{kernel_wgsl, module_wgsl, WgslElem};
