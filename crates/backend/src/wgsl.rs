//! WGSL code generation from the sweep-kernel IR — the GPU-facing
//! consumer of [`SweepIr`].
//!
//! [`module_wgsl`] emits one self-contained WGSL compute module per
//! lowered plan: a constants block baked from the plan's geometry, four
//! storage bindings matching [`BufferId`], and one entry point per
//! [`SweepStep`] instantiated from three kernel templates (row gather,
//! tiled transpose, row permute). The style is a monomorphising text
//! lowering, kubecl-style: no runtime uniforms, no specialisation
//! constants — every shape, tile side, and pad is a `const` in the
//! source, so the shader text *is* the program and two map-lowered
//! plans with the same geometry produce byte-identical modules. That
//! determinism is what the golden-snapshot tests pin. Computed-index
//! programs (structured plans lowered with their affine descriptors)
//! additionally bake the descriptor's masks into the gather kernels,
//! so their text is keyed by the *permutation*, not just the geometry
//! — still deterministic, snapshot-pinned per structured family.
//!
//! WGSL has no 64-bit integer type, so 8-byte elements lower to
//! `vec2<u32>` ([`WgslElem::U64`]) — the kernels only move values, never
//! inspect them, so the lane split is free.
//!
//! The gather maps are *not* embedded in the text (they are plan-sized
//! data); a host runtime uploads them into the `map1/map2/map3` storage
//! buffers the module declares. Computed-index programs skip the upload
//! entirely — their gather kernels never read the map bindings, which
//! are kept declared so both module forms share one bind-group layout.
//! Dispatch geometry for each entry point is derivable from the baked
//! constants and is restated in the header comment the generator emits.

use crate::sweep::{BufferId, GatherMap, IndexSource, SweepIr, SweepKernel, SweepStep};
use std::fmt::Write;

/// Workgroup size of the one-thread-per-element gather kernels.
pub const GATHER_WG: usize = 64;

/// Hard WGSL limit on threads per workgroup, which caps the transpose
/// workgroup at `tile × (MAX_WG / tile)` threads.
pub const MAX_WG: usize = 256;

/// Element type a module is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WgslElem {
    /// 4-byte elements: WGSL `u32`.
    U32,
    /// 8-byte elements: WGSL `vec2<u32>` (WGSL has no `u64`).
    U64,
}

impl WgslElem {
    /// The WGSL type name values of this element type use.
    pub fn type_name(&self) -> &'static str {
        match self {
            WgslElem::U32 => "u32",
            WgslElem::U64 => "vec2<u32>",
        }
    }

    /// The zero literal of the type (used to initialise shared tiles).
    fn zero(&self) -> &'static str {
        match self {
            WgslElem::U32 => "0u",
            WgslElem::U64 => "vec2<u32>(0u, 0u)",
        }
    }

    /// Short tag used in entry-point and file names.
    pub fn tag(&self) -> &'static str {
        match self {
            WgslElem::U32 => "u32",
            WgslElem::U64 => "u64",
        }
    }
}

/// The module-level names the templates address buffers by.
fn buffer_var(id: BufferId) -> &'static str {
    match id {
        BufferId::Input => "src",
        BufferId::ScratchA => "scratch_a",
        BufferId::ScratchB => "scratch_b",
        BufferId::Output => "dst",
    }
}

fn map_var(map: GatherMap) -> &'static str {
    match map {
        GatherMap::G1 => "map1",
        GatherMap::G2 => "map2",
        GatherMap::G3 => "map3",
    }
}

/// The entry-point name for step `idx` (1-based in the name, matching
/// the paper's pass numbering).
fn entry_name(step: &SweepStep, idx: usize) -> String {
    match step.kernel {
        SweepKernel::Gather { map } | SweepKernel::RowPermute { map } => {
            let tag = match map {
                GatherMap::G1 => "g1",
                GatherMap::G2 => "g2",
                GatherMap::G3 => "g3",
            };
            let kind = match step.kernel {
                SweepKernel::RowPermute { .. } => "row_permute",
                _ => "gather",
            };
            format!("{kind}_{tag}")
        }
        SweepKernel::TiledTranspose { .. } => format!("transpose_s{}", idx + 1),
    }
}

/// Rows of threads per transpose workgroup: as many full tile rows as
/// fit under the [`MAX_WG`] thread budget (at least one).
fn transpose_wg_rows(tile: usize) -> usize {
    (MAX_WG / tile).max(1)
}

/// Generate the WGSL for one step of the program.
///
/// `idx` is the step's 0-based position (names and dispatch comments use
/// `idx + 1`). The text addresses the module-level bindings emitted by
/// [`module_wgsl`]; generating a single kernel is primarily a test seam
/// — real consumers emit whole modules.
pub fn kernel_wgsl(ir: &SweepIr, step: &SweepStep, idx: usize, elem: WgslElem) -> String {
    let mut s = String::new();
    let name = entry_name(step, idx);
    let ty = elem.type_name();
    let (rows, cols) = (step.rows, step.cols);
    let n = step.len();
    let src = buffer_var(step.src);
    let dst = buffer_var(step.dst);
    match step.kernel {
        SweepKernel::Gather { map } | SweepKernel::RowPermute { map } => {
            let groups = n.div_ceil(GATHER_WG);
            match ir.index_source(map) {
                IndexSource::Materialized(_) => {
                    let map = map_var(map);
                    let _ = write!(
                        s,
                        "\
// Step {pass}: row-local gather over a {rows}x{cols} matrix,
// {src} -> {dst} via {map}; one thread per element.
// Dispatch: ({groups}, 1, 1) workgroups of {wg}.
@compute @workgroup_size({wg})
fn {name}(@builtin(global_invocation_id) gid: vec3<u32>) {{
    let i = gid.x;
    if (i < {n}u) {{
        let base = (i / {cols}u) * {cols}u;
        {dst}[i] = {src}[base + {map}[i]];
    }}
}}
",
                        pass = idx + 1,
                        wg = GATHER_WG,
                    );
                }
                IndexSource::Affine(step_a) => {
                    // Computed-index form: the gather index is the plan's
                    // affine GF(2) fold, unrolled into one XOR per non-zero
                    // mask with every mask baked as a literal — no map
                    // load, no uniform, no loop. `mask * bit` is a
                    // branch-free select (bit is 0 or 1).
                    let map = map_var(map);
                    let mut fold = String::new();
                    for (b, &m) in step_a.masks().iter().enumerate() {
                        if m != 0 {
                            let _ = writeln!(fold, "        v = v ^ ({m}u * ((i >> {b}u) & 1u));");
                        }
                    }
                    let _ = write!(
                        s,
                        "\
// Step {pass}: computed-index row gather over a {rows}x{cols} matrix,
// {src} -> {dst}; one thread per element. The gather index is the
// plan's affine fold evaluated in registers; the {map} binding is
// declared but never read by this kernel.
// Dispatch: ({groups}, 1, 1) workgroups of {wg}.
@compute @workgroup_size({wg})
fn {name}(@builtin(global_invocation_id) gid: vec3<u32>) {{
    let i = gid.x;
    if (i < {n}u) {{
        let base = (i / {cols}u) * {cols}u;
        var v = {offset}u;
{fold}        {dst}[i] = {src}[base + v];
    }}
}}
",
                        pass = idx + 1,
                        wg = GATHER_WG,
                        offset = step_a.offset(),
                    );
                }
            }
        }
        SweepKernel::TiledTranspose { tile, bank_pad } => {
            let wg_rows = transpose_wg_rows(tile);
            let stride = tile + bank_pad;
            let groups_x = cols.div_ceil(tile);
            let groups_y = rows.div_ceil(tile);
            let _ = write!(
                s,
                "\
// Step {pass}: tiled transpose of a {rows}x{cols} matrix, {src} -> {dst}.
// {tile}x{tile} tiles staged in workgroup memory with a +{bank_pad}
// column pad (stride {stride}) so the transposed read hits {stride}
// distinct banks instead of one. Each workgroup moves one tile with
// {tile}x{wg_rows} threads, striding {wg_rows} rows per iteration.
// Dispatch: ({groups_x}, {groups_y}, 1) workgroups of {tile}x{wg_rows}.
var<workgroup> tile_{pass}: array<{ty}, {stage}u>;

@compute @workgroup_size({tile}, {wg_rows})
fn {name}(@builtin(workgroup_id) wid: vec3<u32>,
          @builtin(local_invocation_id) lid: vec3<u32>) {{
    let j0 = wid.x * {tile}u;
    let i0 = wid.y * {tile}u;
    // Load phase: tile[ti][tj] = src[i0 + ti][j0 + tj].
    for (var ti = lid.y; ti < {tile}u; ti = ti + {wg_rows}u) {{
        let i = i0 + ti;
        let j = j0 + lid.x;
        if (i < {rows}u && j < {cols}u) {{
            tile_{pass}[ti * {stride}u + lid.x] = {src}[i * {cols}u + j];
        }}
    }}
    workgroupBarrier();
    // Store phase: dst[j0 + ti][i0 + tj] = tile[tj][ti] (transposed read).
    for (var ti = lid.y; ti < {tile}u; ti = ti + {wg_rows}u) {{
        let j = j0 + ti;
        let i = i0 + lid.x;
        if (j < {cols}u && i < {rows}u) {{
            {dst}[j * {rows}u + i] = tile_{pass}[lid.x * {stride}u + ti];
        }}
    }}
}}
",
                pass = idx + 1,
                stage = stride * tile,
            );
        }
    }
    debug_assert_eq!(n, ir.len());
    s
}

/// Generate the complete WGSL module for a lowered plan: header,
/// bindings, and all five entry points.
pub fn module_wgsl(ir: &SweepIr, elem: WgslElem) -> String {
    let ty = elem.type_name();
    let (rows, cols) = (ir.rows(), ir.cols());
    let n = ir.len();
    let tile = ir.tile();
    let maps_note = if ir.affine().is_some() {
        "// barrier between passes. This plan's gathers are computed-index
// (affine folds baked into the kernels): map1/map2/map3 are declared
// for binding-layout compatibility but never read, so the host may
// bind any placeholder buffers; scratch_a/scratch_b are {n}-element
// device temporaries."
    } else {
        "// barrier between passes. The host uploads the plan's three gather maps
// into map1/map2/map3; scratch_a/scratch_b are {n}-element device
// temporaries."
    };
    let maps_note = maps_note.replace("{n}", &n.to_string());
    let mut s = String::new();
    let _ = write!(
        s,
        "\
// Offline permutation sweep module (generated — do not edit).
//
// Plan geometry: {rows}x{cols} = {n} elements of {ty}; transpose tile
// {tile} (+{pad} pad). Five passes: gather_g1, transpose_s2, gather_g2,
// transpose_s4, row_permute_g3 — dispatch them in that order with the
// per-kernel geometry noted above each entry point, with a buffer
{maps_note}

@group(0) @binding(0) var<storage, read> src: array<{ty}>;
@group(0) @binding(1) var<storage, read_write> scratch_a: array<{ty}>;
@group(0) @binding(2) var<storage, read_write> scratch_b: array<{ty}>;
@group(0) @binding(3) var<storage, read_write> dst: array<{ty}>;
@group(0) @binding(4) var<storage, read> map1: array<u32>;
@group(0) @binding(5) var<storage, read> map2: array<u32>;
@group(0) @binding(6) var<storage, read> map3: array<u32>;

// {zero} is this module's element zero; shared tiles start undefined in
// WGSL, and the kernels never read a slot they did not write, so no
// explicit clear is emitted.
",
        pad = crate::sweep::BANK_PAD,
        zero = elem.zero(),
    );
    for (idx, step) in ir.steps().iter().enumerate() {
        s.push('\n');
        s.push_str(&kernel_wgsl(ir, step, idx, elem));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use hmm_perm::families;
    use hmm_plan::PlanIr;

    fn lowered(n: usize, tile: usize) -> SweepIr {
        let p = families::random(n, 11);
        let ir = PlanIr::build(&p, 32).unwrap();
        let cfg = KernelConfig {
            tile,
            ..KernelConfig::default()
        };
        SweepIr::lower(&ir, &cfg)
    }

    #[test]
    fn module_has_all_five_entry_points_in_order() {
        let ir = lowered(1 << 10, 16);
        let text = module_wgsl(&ir, WgslElem::U32);
        let order = [
            "fn gather_g1(",
            "fn transpose_s2(",
            "fn gather_g2(",
            "fn transpose_s4(",
            "fn row_permute_g3(",
        ];
        let mut at = 0;
        for name in order {
            let pos = text[at..]
                .find(name)
                .unwrap_or_else(|| panic!("missing or out of order: {name}"));
            at += pos;
        }
    }

    #[test]
    fn u64_elements_lower_to_vec2_u32() {
        let ir = lowered(1 << 10, 16);
        let text = module_wgsl(&ir, WgslElem::U64);
        assert!(text.contains("array<vec2<u32>>"));
        // The gather maps stay u32 regardless of element width.
        assert!(text.contains("var<storage, read> map1: array<u32>"));
        assert!(!module_wgsl(&ir, WgslElem::U32).contains("vec2<u32>"));
    }

    #[test]
    fn transpose_respects_the_workgroup_budget() {
        for tile in [8usize, 16, 32, 64, 128] {
            let ir = lowered(1 << 12, tile);
            let wg_rows = transpose_wg_rows(tile);
            assert!(tile * wg_rows <= MAX_WG || wg_rows == 1, "tile={tile}");
            let text = module_wgsl(&ir, WgslElem::U32);
            assert!(
                text.contains(&format!("@compute @workgroup_size({tile}, {wg_rows})")),
                "tile={tile}"
            );
            // The padded stride shows up in the shared-tile declaration.
            let stage = (tile + 1) * tile;
            assert!(
                text.contains(&format!("array<u32, {stage}u>")),
                "tile={tile}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_and_geometry_keyed() {
        let a = module_wgsl(&lowered(1 << 10, 16), WgslElem::U32);
        let b = module_wgsl(&lowered(1 << 10, 16), WgslElem::U32);
        assert_eq!(a, b, "same plan, same text");
        // A *different* permutation of the same size lowers to the same
        // module text: maps are data, not code.
        let p2 = families::random(1 << 10, 99);
        let ir2 = PlanIr::build(&p2, 32).unwrap();
        let cfg = KernelConfig {
            tile: 16,
            ..KernelConfig::default()
        };
        let c = module_wgsl(&SweepIr::lower(&ir2, &cfg), WgslElem::U32);
        assert_eq!(a, c);
    }

    fn lowered_structured(n: usize) -> SweepIr {
        let p = families::bit_reversal(n).unwrap();
        let ir = PlanIr::build(&p, 32).unwrap();
        SweepIr::lower(&ir, &KernelConfig::default())
    }

    #[test]
    fn computed_index_modules_fold_in_registers() {
        let ir = lowered_structured(1 << 10);
        assert!(ir.affine().is_some());
        let text = module_wgsl(&ir, WgslElem::U32);
        // The gather kernels compute `v` instead of loading a map entry...
        assert!(text.contains("var v = "));
        assert!(text.contains("v = v ^ ("));
        assert!(text.contains("computed-index row gather"));
        // ...and never index the map bindings, which stay declared so the
        // bind-group layout is shared with map-lowered modules.
        for m in ["map1[", "map2[", "map3["] {
            assert!(!text.contains(m), "no {m} load in computed module");
        }
        for m in ["map1", "map2", "map3"] {
            assert!(
                text.contains(&format!("var<storage, read> {m}: array<u32>")),
                "{m} binding kept"
            );
        }
        // Transposes are untouched by the index form.
        assert!(text.contains("fn transpose_s2("));
        assert!(text.contains("workgroupBarrier()"));
    }

    #[test]
    fn computed_index_folds_match_the_descriptor() {
        // Every baked `mask * ((i >> b) & 1)` line must reproduce the
        // descriptor: re-parse the g1 kernel's fold and evaluate it at
        // every position, comparing against the plan's materialized map.
        let p = families::shuffle(1 << 10).unwrap();
        let plan = PlanIr::build(&p, 32).unwrap();
        let ir = SweepIr::lower(&plan, &KernelConfig::default());
        let text = kernel_wgsl(&ir, &ir.steps()[0], 0, WgslElem::U32);
        let offset: u32 = text
            .lines()
            .find_map(|l| {
                l.trim()
                    .strip_prefix("var v = ")?
                    .strip_suffix("u;")?
                    .parse()
                    .ok()
            })
            .expect("baked offset");
        let terms: Vec<(u32, u32)> = text
            .lines()
            .filter_map(|l| {
                let l = l.trim().strip_prefix("v = v ^ (")?;
                let (m, rest) = l.split_once("u * ((i >> ")?;
                let b = rest.strip_suffix("u) & 1u));")?;
                Some((m.parse().ok()?, b.parse().ok()?))
            })
            .collect();
        assert!(!terms.is_empty());
        for (i, &want) in plan.gather1().iter().enumerate() {
            let mut v = offset;
            for &(m, b) in &terms {
                v ^= m * ((i as u32 >> b) & 1);
            }
            assert_eq!(v, want, "i={i}");
        }
    }

    #[test]
    fn scalar_config_keeps_structured_modules_map_lowered() {
        let p = families::bit_reversal(1 << 10).unwrap();
        let plan = PlanIr::build(&p, 32).unwrap();
        let ir = SweepIr::lower(&plan, &KernelConfig::scalar());
        let text = module_wgsl(&ir, WgslElem::U32);
        assert!(text.contains("map1[i]"));
        assert!(!text.contains("computed-index"));
    }
}
