//! The sweep-kernel IR — layer 2 of the backend split.
//!
//! [`SweepIr::lower`] turns a validated [`PlanIr`] plus a
//! [`KernelConfig`] into an explicit five-step program over four logical
//! buffers. The steps are the *unfused* form of the paper's three-pass
//! schedule (the form the seed executed, and the form a GPU executes as
//! five kernel launches):
//!
//! ```text
//! PlanIr { g1 (r×c), g2 (c×r), g3 (r×c) }      KernelConfig { tile }
//!        │                                             │
//!        └──────────────── lower ─────────────────────┘
//!                            │
//!   step 1  Gather(G1)        r×c   Input    → ScratchA
//!   step 2  TiledTranspose    r×c   ScratchA → ScratchB   (tile, pad)
//!   step 3  Gather(G2)        c×r   ScratchB → ScratchA
//!   step 4  TiledTranspose    c×r   ScratchA → ScratchB   (tile, pad)
//!   step 5  RowPermute(G3)    r×c   ScratchB → Output
//! ```
//!
//! Three kernel *kinds* cover all five steps, which is why the WGSL
//! generator has exactly three templates. The gather and row-permute
//! kernels are the same memory access pattern (`out[row][k] =
//! in[row][g[row][k]]`); they are distinct IR nodes because the final
//! row permute is the only step whose destination is the caller's output
//! buffer — a GPU backend can fuse a layout conversion or an epilogue
//! into it without touching the interior steps.
//!
//! The tile side and the shared-memory bank-offset pad are explicit IR
//! parameters. The pad (+1 column on the workgroup tile) is the standard
//! remedy for shared-memory bank conflicts in a tiled transpose: without
//! it, a 32×32 tile of 4-byte words puts an entire tile column in one
//! bank and the transposed read serialises 32-way. The CPU interpreter
//! carries the pad faithfully (same buffer layout, stride `tile + pad`)
//! so the interpreted execution is step-for-step the program a GPU runs.

use crate::config::KernelConfig;
use hmm_plan::PlanIr;

/// Smallest tile side the lowering will emit. A degenerate configured
/// tile (0 or 1) would turn the tiled transpose into a scalar loop with
/// all of the indexing overhead and none of the locality.
pub const MIN_TILE: usize = 8;

/// Shared-tile bank-offset pad in elements: the `+1` column that breaks
/// shared-memory bank conflicts in the transposed read.
pub const BANK_PAD: usize = 1;

/// Which of the plan's three gather maps a step applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherMap {
    /// First-pass map (`r×c`, row-local over the input matrix).
    G1,
    /// Second-pass map (`c×r`, row-local over the transposed matrix).
    G2,
    /// Third-pass map (`r×c`, the final row permute).
    G3,
}

/// The four logical buffers a sweep program addresses. The binding to
/// real storage is the consumer's business: the interpreter splits one
/// caller scratch slice in two, a GPU backend binds four device buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferId {
    /// The caller's source buffer (read-only).
    Input,
    /// First temporary, `n` elements.
    ScratchA,
    /// Second temporary, `n` elements.
    ScratchB,
    /// The caller's destination buffer (write-only).
    Output,
}

/// One kernel kind, with its parameters. The gather maps themselves are
/// *not* stored in the kernel (they are plan-sized data, not program
/// text); a kernel names which map it applies and the consumer fetches
/// it from the owning [`SweepIr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKernel {
    /// Row-local gather: `out[i*cols + k] = in[i*cols + g[i*cols + k]]`.
    Gather {
        /// The gather map this step applies.
        map: GatherMap,
    },
    /// Tiled transpose of a `rows×cols` matrix:
    /// `out[j*rows + i] = in[i*cols + j]`, staged through a
    /// `(tile + bank_pad) × tile` tile.
    TiledTranspose {
        /// Tile side in elements.
        tile: usize,
        /// Extra pad columns on the staging tile (bank-conflict remedy).
        bank_pad: usize,
    },
    /// Row-local gather whose destination is the caller's output — the
    /// schedule's final pass. Same access pattern as [`SweepKernel::Gather`].
    RowPermute {
        /// The gather map this step applies.
        map: GatherMap,
    },
}

/// One step of a sweep program: a kernel, the matrix geometry it runs
/// over, and its source/destination buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStep {
    /// The kernel this step launches.
    pub kernel: SweepKernel,
    /// Rows of the matrix this step reads.
    pub rows: usize,
    /// Columns of the matrix this step reads.
    pub cols: usize,
    /// Buffer the step reads from.
    pub src: BufferId,
    /// Buffer the step writes to.
    pub dst: BufferId,
}

impl SweepStep {
    /// Elements this step moves (`rows * cols`, always the plan's `n`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True for a zero-element step (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A lowered sweep program: five [`SweepStep`]s plus owned copies of the
/// three gather maps they reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepIr {
    rows: usize,
    cols: usize,
    steps: [SweepStep; 5],
    g1: Vec<u32>,
    g2: Vec<u32>,
    g3: Vec<u32>,
}

impl SweepIr {
    /// Lower a plan into the five-step program above. `config.tile`
    /// becomes the transpose tile side, clamped to at least
    /// [`MIN_TILE`]; the bank pad is always [`BANK_PAD`].
    ///
    /// The plan is *not* re-validated here — lowering is pure structure.
    /// Backends validate (`PlanIr::validate`) in `prepare` before
    /// lowering, so a corrupt IR is rejected with a typed error rather
    /// than lowered into a program that would gather out of bounds.
    pub fn lower(ir: &PlanIr, config: &KernelConfig) -> Self {
        let shape = ir.shape();
        let (r, c) = (shape.rows, shape.cols);
        let tile = config.tile.max(MIN_TILE);
        let transpose = SweepKernel::TiledTranspose {
            tile,
            bank_pad: BANK_PAD,
        };
        let step = |kernel, rows, cols, src, dst| SweepStep {
            kernel,
            rows,
            cols,
            src,
            dst,
        };
        use BufferId::*;
        SweepIr {
            rows: r,
            cols: c,
            steps: [
                step(
                    SweepKernel::Gather { map: GatherMap::G1 },
                    r,
                    c,
                    Input,
                    ScratchA,
                ),
                step(transpose, r, c, ScratchA, ScratchB),
                step(
                    SweepKernel::Gather { map: GatherMap::G2 },
                    c,
                    r,
                    ScratchB,
                    ScratchA,
                ),
                step(transpose, c, r, ScratchA, ScratchB),
                step(
                    SweepKernel::RowPermute { map: GatherMap::G3 },
                    r,
                    c,
                    ScratchB,
                    Output,
                ),
            ],
            g1: ir.gather1().to_vec(),
            g2: ir.gather2().to_vec(),
            g3: ir.gather3().to_vec(),
        }
    }

    /// Rows of the plan's matrix view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the plan's matrix view.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements the program permutes.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True for the empty program (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The five steps, in execution order.
    pub fn steps(&self) -> &[SweepStep; 5] {
        &self.steps
    }

    /// Resolve a [`GatherMap`] name to the map's data.
    pub fn map(&self, which: GatherMap) -> &[u32] {
        match which {
            GatherMap::G1 => &self.g1,
            GatherMap::G2 => &self.g2,
            GatherMap::G3 => &self.g3,
        }
    }

    /// The transpose tile side the program was lowered with.
    pub fn tile(&self) -> usize {
        match self.steps[1].kernel {
            SweepKernel::TiledTranspose { tile, .. } => tile,
            _ => unreachable!("step 2 is always the first transpose"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    fn lowered(n: usize, tile: usize) -> SweepIr {
        let p = families::random(n, 42);
        let ir = PlanIr::build(&p, 32).unwrap();
        let cfg = KernelConfig {
            tile,
            ..KernelConfig::default()
        };
        SweepIr::lower(&ir, &cfg)
    }

    #[test]
    fn five_steps_in_the_canonical_shape() {
        let ir = lowered(1 << 10, 64);
        let (r, c) = (ir.rows(), ir.cols());
        assert_eq!(r * c, 1 << 10);
        let s = ir.steps();
        use BufferId::*;
        // Kernel kinds and geometry.
        assert!(matches!(
            s[0].kernel,
            SweepKernel::Gather { map: GatherMap::G1 }
        ));
        assert_eq!((s[0].rows, s[0].cols), (r, c));
        assert!(matches!(s[1].kernel, SweepKernel::TiledTranspose { .. }));
        assert_eq!((s[1].rows, s[1].cols), (r, c));
        assert!(matches!(
            s[2].kernel,
            SweepKernel::Gather { map: GatherMap::G2 }
        ));
        assert_eq!((s[2].rows, s[2].cols), (c, r));
        assert!(matches!(s[3].kernel, SweepKernel::TiledTranspose { .. }));
        assert_eq!((s[3].rows, s[3].cols), (c, r));
        assert!(matches!(
            s[4].kernel,
            SweepKernel::RowPermute { map: GatherMap::G3 }
        ));
        assert_eq!((s[4].rows, s[4].cols), (r, c));
        // Buffer chaining: Input → A → B → A → B → Output, each step
        // reading what the previous one wrote.
        assert_eq!((s[0].src, s[0].dst), (Input, ScratchA));
        assert_eq!((s[1].src, s[1].dst), (ScratchA, ScratchB));
        assert_eq!((s[2].src, s[2].dst), (ScratchB, ScratchA));
        assert_eq!((s[3].src, s[3].dst), (ScratchA, ScratchB));
        assert_eq!((s[4].src, s[4].dst), (ScratchB, Output));
        for w in s.windows(2) {
            assert_eq!(w[0].dst, w[1].src, "steps must chain");
        }
    }

    #[test]
    fn gather_maps_have_step_sized_lengths() {
        let ir = lowered(1 << 12, 64);
        let n = ir.len();
        assert_eq!(ir.map(GatherMap::G1).len(), n);
        assert_eq!(ir.map(GatherMap::G2).len(), n);
        assert_eq!(ir.map(GatherMap::G3).len(), n);
        // Every map entry is row-local: g[i] < cols of that step's matrix.
        let s = ir.steps();
        for (map, cols) in [
            (GatherMap::G1, s[0].cols),
            (GatherMap::G2, s[2].cols),
            (GatherMap::G3, s[4].cols),
        ] {
            assert!(ir.map(map).iter().all(|&g| (g as usize) < cols));
        }
    }

    #[test]
    fn tile_comes_from_the_config_and_is_clamped() {
        assert_eq!(lowered(1 << 10, 64).tile(), 64);
        assert_eq!(lowered(1 << 10, 16).tile(), 16);
        // Degenerate configured tiles are clamped up to MIN_TILE.
        assert_eq!(lowered(1 << 10, 0).tile(), MIN_TILE);
        assert_eq!(lowered(1 << 10, 3).tile(), MIN_TILE);
        // The pad is always the single bank-offset column.
        match lowered(1 << 10, 64).steps()[1].kernel {
            SweepKernel::TiledTranspose { bank_pad, .. } => assert_eq!(bank_pad, BANK_PAD),
            _ => unreachable!(),
        }
    }
}
