//! The sweep-kernel IR — layer 2 of the backend split.
//!
//! [`SweepIr::lower`] turns a validated [`PlanIr`] plus a
//! [`KernelConfig`] into an explicit five-step program over four logical
//! buffers. The steps are the *unfused* form of the paper's three-pass
//! schedule (the form the seed executed, and the form a GPU executes as
//! five kernel launches):
//!
//! ```text
//! PlanIr { g1 (r×c), g2 (c×r), g3 (r×c) }      KernelConfig { tile }
//!        │                                             │
//!        └──────────────── lower ─────────────────────┘
//!                            │
//!   step 1  Gather(G1)        r×c   Input    → ScratchA
//!   step 2  TiledTranspose    r×c   ScratchA → ScratchB   (tile, pad)
//!   step 3  Gather(G2)        c×r   ScratchB → ScratchA
//!   step 4  TiledTranspose    c×r   ScratchA → ScratchB   (tile, pad)
//!   step 5  RowPermute(G3)    r×c   ScratchB → Output
//! ```
//!
//! Three kernel *kinds* cover all five steps, which is why the WGSL
//! generator has exactly three templates. The gather and row-permute
//! kernels are the same memory access pattern (`out[row][k] =
//! in[row][g[row][k]]`); they are distinct IR nodes because the final
//! row permute is the only step whose destination is the caller's output
//! buffer — a GPU backend can fuse a layout conversion or an epilogue
//! into it without touching the interior steps.
//!
//! The tile side and the shared-memory bank-offset pad are explicit IR
//! parameters. The pad (+1 column on the workgroup tile) is the standard
//! remedy for shared-memory bank conflicts in a tiled transpose: without
//! it, a 32×32 tile of 4-byte words puts an entire tile column in one
//! bank and the transposed read serialises 32-way. The CPU interpreter
//! carries the pad faithfully (same buffer layout, stride `tile + pad`)
//! so the interpreted execution is step-for-step the program a GPU runs.

use crate::config::KernelConfig;
use hmm_plan::{AffineStep, PlanIr};

/// Smallest tile side the lowering will emit. A degenerate configured
/// tile (0 or 1) would turn the tiled transpose into a scalar loop with
/// all of the indexing overhead and none of the locality.
pub const MIN_TILE: usize = 8;

/// Shared-tile bank-offset pad in elements: the `+1` column that breaks
/// shared-memory bank conflicts in the transposed read.
pub const BANK_PAD: usize = 1;

/// Which of the plan's three gather maps a step applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherMap {
    /// First-pass map (`r×c`, row-local over the input matrix).
    G1,
    /// Second-pass map (`c×r`, row-local over the transposed matrix).
    G2,
    /// Third-pass map (`r×c`, the final row permute).
    G3,
}

/// The four logical buffers a sweep program addresses. The binding to
/// real storage is the consumer's business: the interpreter splits one
/// caller scratch slice in two, a GPU backend binds four device buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferId {
    /// The caller's source buffer (read-only).
    Input,
    /// First temporary, `n` elements.
    ScratchA,
    /// Second temporary, `n` elements.
    ScratchB,
    /// The caller's destination buffer (write-only).
    Output,
}

/// One kernel kind, with its parameters. The gather maps themselves are
/// *not* stored in the kernel (they are plan-sized data, not program
/// text); a kernel names which map it applies and the consumer fetches
/// it from the owning [`SweepIr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKernel {
    /// Row-local gather: `out[i*cols + k] = in[i*cols + g[i*cols + k]]`.
    Gather {
        /// The gather map this step applies.
        map: GatherMap,
    },
    /// Tiled transpose of a `rows×cols` matrix:
    /// `out[j*rows + i] = in[i*cols + j]`, staged through a
    /// `(tile + bank_pad) × tile` tile.
    TiledTranspose {
        /// Tile side in elements.
        tile: usize,
        /// Extra pad columns on the staging tile (bank-conflict remedy).
        bank_pad: usize,
    },
    /// Row-local gather whose destination is the caller's output — the
    /// schedule's final pass. Same access pattern as [`SweepKernel::Gather`].
    RowPermute {
        /// The gather map this step applies.
        map: GatherMap,
    },
}

/// One step of a sweep program: a kernel, the matrix geometry it runs
/// over, and its source/destination buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStep {
    /// The kernel this step launches.
    pub kernel: SweepKernel,
    /// Rows of the matrix this step reads.
    pub rows: usize,
    /// Columns of the matrix this step reads.
    pub cols: usize,
    /// Buffer the step reads from.
    pub src: BufferId,
    /// Buffer the step writes to.
    pub dst: BufferId,
}

impl SweepStep {
    /// Elements this step moves (`rows * cols`, always the plan's `n`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True for a zero-element step (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How a gather step's indices reach the kernel: loaded from a
/// materialized plan-sized map, or computed in registers from an affine
/// descriptor (an XOR-fold over O(log n) masks). Both describe the same
/// row-local function `k ↦ g[k]`; the computed form trades a dependent
/// memory load per element for a handful of register ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexSource<'a> {
    /// Indices are loaded from this plan-sized map.
    Materialized(&'a [u32]),
    /// Indices are computed from this verified affine descriptor.
    Affine(&'a AffineStep),
}

/// A lowered sweep program: five [`SweepStep`]s plus the index data the
/// gather steps reference — owned copies of the three materialized maps
/// and, for structured plans lowered under a computed-index config, the
/// three affine descriptors (in which case the map copies are elided:
/// the program carries O(log² n) bytes of index data instead of O(n)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepIr {
    rows: usize,
    cols: usize,
    steps: [SweepStep; 5],
    g1: Vec<u32>,
    g2: Vec<u32>,
    g3: Vec<u32>,
    affine: Option<[AffineStep; 3]>,
}

impl SweepIr {
    /// Lower a plan into the five-step program above. `config.tile`
    /// becomes the transpose tile side, clamped to at least
    /// [`MIN_TILE`]; the bank pad is always [`BANK_PAD`].
    ///
    /// The plan is *not* re-validated here — lowering is pure structure.
    /// Backends validate (`PlanIr::validate`) in `prepare` before
    /// lowering, so a corrupt IR is rejected with a typed error rather
    /// than lowered into a program that would gather out of bounds.
    ///
    /// When the plan carries affine descriptors and
    /// `config.computed_index` is set, the map copies are elided and the
    /// gather steps resolve to [`IndexSource::Affine`]; otherwise the
    /// maps are copied and the steps resolve to
    /// [`IndexSource::Materialized`].
    pub fn lower(ir: &PlanIr, config: &KernelConfig) -> Self {
        let shape = ir.shape();
        let (r, c) = (shape.rows, shape.cols);
        let affine = if config.computed_index {
            ir.affine().cloned()
        } else {
            None
        };
        let tile = config.tile.max(MIN_TILE);
        let transpose = SweepKernel::TiledTranspose {
            tile,
            bank_pad: BANK_PAD,
        };
        let step = |kernel, rows, cols, src, dst| SweepStep {
            kernel,
            rows,
            cols,
            src,
            dst,
        };
        use BufferId::*;
        SweepIr {
            rows: r,
            cols: c,
            steps: [
                step(
                    SweepKernel::Gather { map: GatherMap::G1 },
                    r,
                    c,
                    Input,
                    ScratchA,
                ),
                step(transpose, r, c, ScratchA, ScratchB),
                step(
                    SweepKernel::Gather { map: GatherMap::G2 },
                    c,
                    r,
                    ScratchB,
                    ScratchA,
                ),
                step(transpose, c, r, ScratchA, ScratchB),
                step(
                    SweepKernel::RowPermute { map: GatherMap::G3 },
                    r,
                    c,
                    ScratchB,
                    Output,
                ),
            ],
            g1: if affine.is_some() {
                Vec::new()
            } else {
                ir.gather1().to_vec()
            },
            g2: if affine.is_some() {
                Vec::new()
            } else {
                ir.gather2().to_vec()
            },
            g3: if affine.is_some() {
                Vec::new()
            } else {
                ir.gather3().to_vec()
            },
            affine,
        }
    }

    /// Rows of the plan's matrix view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the plan's matrix view.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements the program permutes.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True for the empty program (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The five steps, in execution order.
    pub fn steps(&self) -> &[SweepStep; 5] {
        &self.steps
    }

    /// Resolve a [`GatherMap`] name to the materialized map's data.
    /// Empty when the program was lowered computed-index (the maps were
    /// elided) — consumers that execute either form go through
    /// [`SweepIr::index_source`] instead.
    pub fn map(&self, which: GatherMap) -> &[u32] {
        match which {
            GatherMap::G1 => &self.g1,
            GatherMap::G2 => &self.g2,
            GatherMap::G3 => &self.g3,
        }
    }

    /// Resolve a [`GatherMap`] name to the form the program carries:
    /// the affine descriptor when lowered computed-index, the
    /// materialized map otherwise.
    pub fn index_source(&self, which: GatherMap) -> IndexSource<'_> {
        match &self.affine {
            Some(steps) => IndexSource::Affine(match which {
                GatherMap::G1 => &steps[0],
                GatherMap::G2 => &steps[1],
                GatherMap::G3 => &steps[2],
            }),
            None => IndexSource::Materialized(self.map(which)),
        }
    }

    /// The affine descriptors the program carries, if it was lowered
    /// computed-index from a structured plan (order `g1, g2, g3`).
    pub fn affine(&self) -> Option<&[AffineStep; 3]> {
        self.affine.as_ref()
    }

    /// The transpose tile side the program was lowered with.
    pub fn tile(&self) -> usize {
        match self.steps[1].kernel {
            SweepKernel::TiledTranspose { tile, .. } => tile,
            _ => unreachable!("step 2 is always the first transpose"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    fn lowered(n: usize, tile: usize) -> SweepIr {
        let p = families::random(n, 42);
        let ir = PlanIr::build(&p, 32).unwrap();
        let cfg = KernelConfig {
            tile,
            ..KernelConfig::default()
        };
        SweepIr::lower(&ir, &cfg)
    }

    #[test]
    fn five_steps_in_the_canonical_shape() {
        let ir = lowered(1 << 10, 64);
        let (r, c) = (ir.rows(), ir.cols());
        assert_eq!(r * c, 1 << 10);
        let s = ir.steps();
        use BufferId::*;
        // Kernel kinds and geometry.
        assert!(matches!(
            s[0].kernel,
            SweepKernel::Gather { map: GatherMap::G1 }
        ));
        assert_eq!((s[0].rows, s[0].cols), (r, c));
        assert!(matches!(s[1].kernel, SweepKernel::TiledTranspose { .. }));
        assert_eq!((s[1].rows, s[1].cols), (r, c));
        assert!(matches!(
            s[2].kernel,
            SweepKernel::Gather { map: GatherMap::G2 }
        ));
        assert_eq!((s[2].rows, s[2].cols), (c, r));
        assert!(matches!(s[3].kernel, SweepKernel::TiledTranspose { .. }));
        assert_eq!((s[3].rows, s[3].cols), (c, r));
        assert!(matches!(
            s[4].kernel,
            SweepKernel::RowPermute { map: GatherMap::G3 }
        ));
        assert_eq!((s[4].rows, s[4].cols), (r, c));
        // Buffer chaining: Input → A → B → A → B → Output, each step
        // reading what the previous one wrote.
        assert_eq!((s[0].src, s[0].dst), (Input, ScratchA));
        assert_eq!((s[1].src, s[1].dst), (ScratchA, ScratchB));
        assert_eq!((s[2].src, s[2].dst), (ScratchB, ScratchA));
        assert_eq!((s[3].src, s[3].dst), (ScratchA, ScratchB));
        assert_eq!((s[4].src, s[4].dst), (ScratchB, Output));
        for w in s.windows(2) {
            assert_eq!(w[0].dst, w[1].src, "steps must chain");
        }
    }

    #[test]
    fn gather_maps_have_step_sized_lengths() {
        let ir = lowered(1 << 12, 64);
        let n = ir.len();
        assert_eq!(ir.map(GatherMap::G1).len(), n);
        assert_eq!(ir.map(GatherMap::G2).len(), n);
        assert_eq!(ir.map(GatherMap::G3).len(), n);
        // Every map entry is row-local: g[i] < cols of that step's matrix.
        let s = ir.steps();
        for (map, cols) in [
            (GatherMap::G1, s[0].cols),
            (GatherMap::G2, s[2].cols),
            (GatherMap::G3, s[4].cols),
        ] {
            assert!(ir.map(map).iter().all(|&g| (g as usize) < cols));
        }
    }

    #[test]
    fn tile_comes_from_the_config_and_is_clamped() {
        assert_eq!(lowered(1 << 10, 64).tile(), 64);
        assert_eq!(lowered(1 << 10, 16).tile(), 16);
        // Degenerate configured tiles are clamped up to MIN_TILE.
        assert_eq!(lowered(1 << 10, 0).tile(), MIN_TILE);
        assert_eq!(lowered(1 << 10, 3).tile(), MIN_TILE);
        // The pad is always the single bank-offset column.
        match lowered(1 << 10, 64).steps()[1].kernel {
            SweepKernel::TiledTranspose { bank_pad, .. } => assert_eq!(bank_pad, BANK_PAD),
            _ => unreachable!(),
        }
    }

    #[test]
    fn structured_plans_lower_map_free_under_computed_index() {
        let p = families::bit_reversal(1 << 12).unwrap();
        let ir = PlanIr::build(&p, 32).unwrap();
        assert!(ir.affine().is_some(), "structured plan carries descriptors");

        // Computed-index config: maps elided, steps resolve to Affine,
        // and each descriptor reproduces the plan's gather exactly.
        let computed = SweepIr::lower(&ir, &KernelConfig::default());
        assert!(computed.affine().is_some());
        for (which, gather) in [
            (GatherMap::G1, ir.gather1()),
            (GatherMap::G2, ir.gather2()),
            (GatherMap::G3, ir.gather3()),
        ] {
            assert!(computed.map(which).is_empty(), "map copies are elided");
            match computed.index_source(which) {
                IndexSource::Affine(step) => assert!(step.matches_map(gather)),
                IndexSource::Materialized(_) => panic!("expected affine source"),
            }
        }

        // Scalar (reference) config: same plan lowers to materialized
        // maps — the flag, not the plan, picks the form.
        let materialized = SweepIr::lower(&ir, &KernelConfig::scalar());
        assert!(materialized.affine().is_none());
        for which in [GatherMap::G1, GatherMap::G2, GatherMap::G3] {
            match materialized.index_source(which) {
                IndexSource::Materialized(map) => assert_eq!(map.len(), 1 << 12),
                IndexSource::Affine(_) => panic!("expected materialized source"),
            }
        }
    }

    #[test]
    fn unstructured_plans_always_lower_materialized() {
        let ir = lowered(1 << 10, 64);
        assert!(ir.affine().is_none());
        for which in [GatherMap::G1, GatherMap::G2, GatherMap::G3] {
            match ir.index_source(which) {
                IndexSource::Materialized(map) => assert_eq!(map.len(), 1 << 10),
                IndexSource::Affine(_) => panic!("random plans have no descriptors"),
            }
        }
    }
}
