//! Tuning knobs for the sweep kernels — the `KernelConfig` seam.
//!
//! The seed hard-coded the staging-buffer budget (256 KB) and the
//! transpose tile side (64) for one cache size, and its inner loops were
//! scalar. This module centralises those constants, adds the
//! double-buffering depth and the SIMD/prefetch toggles, and gives every
//! front door (the native executor, the engines, the queue drainers, and
//! every [`crate::traits::Backend`]) one place to read them from:
//!
//! * [`KernelConfig::default`] — the seed's values, SIMD on;
//! * [`KernelConfig::from_env`] — the default with [`SIMD_ENV`]
//!   (`HMM_NATIVE_SIMD`) and [`COMPUTED_INDEX_ENV`]
//!   (`HMM_NATIVE_COMPUTED_INDEX`) applied, so a deployment can force
//!   the scalar reference path or the materialized-map gather path
//!   without recompiling;
//! * [`KernelConfig::global`] — the process-wide snapshot engines use
//!   unless a caller threads an explicit config through;
//! * [`KernelConfig::scalar`] — the always-available scalar reference:
//!   no SIMD, no prefetch, single staging buffer. The differential suite
//!   uses it as the correctness oracle for every other config point.
//!
//! The config is backend-neutral on purpose: the CPU executor reads
//! `stage_bytes`/`depth`/`simd`/`prefetch`, while the sweep-kernel IR
//! lowering ([`crate::sweep::SweepIr`]) reads `tile` as the tiled
//! transpose's side — so a calibrated tile travels to the WGSL codegen
//! and the interpreter unchanged.

use crate::env::parse_env;
use std::sync::OnceLock;

/// Environment variable: set to `0`/`off`/`false` to disable the SIMD
/// kernel tiers process-wide, `1`/`on`/`true` to leave them enabled
/// (also the unset default; the `core::arch` tier additionally requires
/// runtime CPU support). Anything else is loudly ignored — like
/// `HMM_NATIVE_THREADS`, a typo'd override must never silently select
/// the wrong kernels.
pub const SIMD_ENV: &str = "HMM_NATIVE_SIMD";

/// Environment variable: set to `0`/`off`/`false` to disable the
/// computed-index (affine-fold) kernel path for structured plans —
/// forcing every gather sweep back onto materialized map loads — or
/// `1`/`on`/`true` to leave it enabled (also the unset default). Parsed
/// with the same strict warn-once rules as [`SIMD_ENV`]: a typo'd value
/// never silently selects a kernel path.
pub const COMPUTED_INDEX_ENV: &str = "HMM_NATIVE_COMPUTED_INDEX";

/// Default per-worker staging-buffer budget in bytes (the seed's
/// `262_144`): one gathered input block must fit in the last-level
/// private cache alongside the output tile being written.
pub const DEFAULT_STAGE_BYTES: usize = 262_144;

/// Default blocked-transpose tile side in elements (the seed's `64`):
/// 64×64 u32 tiles are 16 KB, comfortably L1/L2-resident.
pub const DEFAULT_TILE: usize = 64;

/// Default staging-buffer count per worker: two, so block *k+1* streams
/// into one buffer while block *k* transposes out of the other.
pub const DEFAULT_STAGING_DEPTH: usize = 2;

/// Tuning parameters for the three fused sweep kernels.
///
/// All fields are plain data; a config is cheap to copy and carries no
/// invariants beyond "non-zero where zero makes no sense" — the kernels
/// clamp degenerate values (`tile` to ≥ 8, `depth` to 1..=2,
/// `stage_bytes` to at least one input row) instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Per-worker staging-buffer budget in bytes. Bounds how many input
    /// rows one gather block stages before transposing out;
    /// `HMM_NATIVE_CALIBRATE=1` replaces the default with a measured
    /// value.
    pub stage_bytes: usize,
    /// Blocked-transpose tile side in elements. Also the tile side the
    /// sweep-kernel IR lowers into [`crate::sweep::SweepKernel`]'s tiled
    /// transpose (clamped there to the matrix's smaller dimension).
    pub tile: usize,
    /// Staging buffers per worker: `2` double-buffers the gather and
    /// transpose stages, `1` degenerates to the strict
    /// gather-then-transpose alternation (a config point the
    /// differential suite exercises). Values outside `1..=2` are
    /// clamped.
    pub depth: usize,
    /// Enable the vectorized kernel tiers: the width-specialized
    /// no-bounds-check chunked paths everywhere, plus the `core::arch`
    /// AVX2 paths on x86-64 hosts that support them (runtime-detected).
    /// `false` selects the scalar reference kernels.
    pub simd: bool,
    /// Software-prefetch the gather map one block ahead while the
    /// current block is being gathered.
    pub prefetch: bool,
    /// Compute gather indices in registers (the affine XOR-fold) for
    /// plans that carry verified descriptors, instead of loading the
    /// materialized map alongside the data. Plans without descriptors
    /// (König-colored) always use map loads regardless of this flag.
    pub computed_index: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            stage_bytes: DEFAULT_STAGE_BYTES,
            tile: DEFAULT_TILE,
            depth: DEFAULT_STAGING_DEPTH,
            simd: true,
            prefetch: true,
            computed_index: true,
        }
    }
}

impl KernelConfig {
    /// The default config with [`SIMD_ENV`] applied: a disabling value
    /// (`0`/`off`/`false`) turns both the SIMD tiers and the prefetch
    /// hints off (the full scalar reference pipeline), an enabling value
    /// (`1`/`on`/`true`) or unset keeps the default, and anything else
    /// warns once (via [`crate::env::parse_env`]) and keeps the default.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(simd) = parse_env(
            SIMD_ENV,
            "0/1/on/off/true/false; keeping SIMD enabled",
            parse_simd_override,
        ) {
            cfg.simd = simd;
            cfg.prefetch = simd;
        }
        if let Some(computed) = parse_env(
            COMPUTED_INDEX_ENV,
            "0/1/on/off/true/false; keeping computed-index enabled",
            parse_simd_override,
        ) {
            cfg.computed_index = computed;
        }
        cfg
    }

    /// The process-wide config: [`KernelConfig::from_env`] evaluated
    /// once, at first use. Callers that need a different config per
    /// plan thread one through explicitly instead.
    pub fn global() -> Self {
        static GLOBAL: OnceLock<KernelConfig> = OnceLock::new();
        *GLOBAL.get_or_init(Self::from_env)
    }

    /// The scalar reference configuration: no SIMD, no prefetch, one
    /// staging buffer, map-loaded indices (no computed-index fold).
    /// This is the correctness oracle every vectorized or computed
    /// config point is differentially tested against, and the "before"
    /// side of the bench's `engine_simd_off` rows.
    pub fn scalar() -> Self {
        KernelConfig {
            simd: false,
            prefetch: false,
            depth: 1,
            computed_index: false,
            ..Self::default()
        }
    }
}

/// Parse an `HMM_NATIVE_SIMD` override: `1`/`on`/`true` enable,
/// `0`/`off`/`false` disable (ASCII case-insensitive, surrounding
/// whitespace ignored); anything else is invalid and yields `None`.
/// Factored out of [`KernelConfig::from_env`] so the parse rules are
/// testable without racing on the process-global environment (the same
/// split `HMM_NATIVE_THREADS` uses).
fn parse_simd_override(v: &str) -> Option<bool> {
    match v.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "true" => Some(true),
        "0" | "off" | "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_seed_constants() {
        let cfg = KernelConfig::default();
        assert_eq!(cfg.stage_bytes, 262_144);
        assert_eq!(cfg.tile, 64);
        assert_eq!(cfg.depth, 2);
        assert!(cfg.simd);
        assert!(cfg.prefetch);
        assert!(cfg.computed_index);
    }

    #[test]
    fn scalar_is_the_reference_point() {
        let cfg = KernelConfig::scalar();
        assert!(!cfg.simd);
        assert!(!cfg.prefetch);
        assert!(!cfg.computed_index);
        assert_eq!(cfg.depth, 1);
        assert_eq!(cfg.stage_bytes, DEFAULT_STAGE_BYTES);
    }

    #[test]
    fn simd_override_parse_matrix() {
        // Disabling spellings — the old code only honored the literal "0",
        // so "off"/"false" silently *enabled* SIMD.
        for v in ["0", "off", "false", "OFF", "False", " 0 ", "\toff\n"] {
            assert_eq!(parse_simd_override(v), Some(false), "{v:?}");
        }
        for v in ["1", "on", "true", "ON", "True", " 1 "] {
            assert_eq!(parse_simd_override(v), Some(true), "{v:?}");
        }
        // Invalid values are rejected (from_env warns and keeps the
        // default) rather than being treated as "enable".
        for v in ["", "2", "yes", "no", "garbage", "0x1", "-1"] {
            assert_eq!(parse_simd_override(v), None, "{v:?}");
        }
    }
}
