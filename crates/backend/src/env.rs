//! Strict, warn-once environment-override parsing — one helper for every
//! `HMM_*` knob.
//!
//! PR 7 made `HMM_NATIVE_SIMD` strict (a typo'd override must never
//! silently select the wrong kernels) but left `HMM_NATIVE_THREADS` with
//! its own ad-hoc copy of the same policy, minus the warn-once guard.
//! This module is the shared implementation both now use, along with
//! `HMM_BACKEND`:
//!
//! * **Strict** — the caller supplies the parse function; anything it
//!   rejects is treated as absent (the caller keeps its default), never
//!   coerced.
//! * **Warn once per variable** — the first rejected value prints one
//!   `warning:` line naming the variable, the offending value, and what
//!   was expected; repeats stay silent so a hot loop reading the config
//!   does not spam stderr.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Variables that have already warned about an invalid value, so each
/// warns at most once per process.
fn warned_set() -> &'static Mutex<BTreeSet<&'static str>> {
    static WARNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Record that `var` produced an invalid value; returns `true` when this
/// is the first time (i.e. the caller should emit the warning). Public
/// as a test seam — the warn-once contract is asserted without having to
/// capture stderr.
pub fn first_invalid(var: &'static str) -> bool {
    warned_set()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(var)
}

/// Read `var` and run `parse` over it. Returns `Some(value)` when the
/// variable is set and parses; `None` when it is unset **or** invalid —
/// an invalid value additionally warns once per variable, quoting
/// `expected` so the fix is obvious. Callers keep their default on
/// `None`, so a typo can never silently select the wrong configuration.
pub fn parse_env<T>(
    var: &'static str,
    expected: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Option<T> {
    let v = std::env::var(var).ok()?;
    match parse(&v) {
        Some(t) => Some(t),
        None => {
            if first_invalid(var) {
                eprintln!("warning: ignoring invalid {var}={v:?} (expected {expected})");
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_variable_yields_none_without_warning() {
        assert_eq!(
            parse_env("HMM_TEST_ENV_UNSET_XYZ", "anything", |_| Some(1)),
            None
        );
        // No warning was consumed for an unset variable.
        assert!(first_invalid("HMM_TEST_ENV_UNSET_XYZ"));
    }

    #[test]
    fn valid_value_parses_through() {
        std::env::set_var("HMM_TEST_ENV_VALID", " 7 ");
        assert_eq!(
            parse_env("HMM_TEST_ENV_VALID", "an integer", |v| v
                .trim()
                .parse::<u32>()
                .ok()),
            Some(7)
        );
        std::env::remove_var("HMM_TEST_ENV_VALID");
    }

    #[test]
    fn invalid_value_yields_none_and_warns_once() {
        std::env::set_var("HMM_TEST_ENV_BAD", "garbage");
        let parse = |v: &str| v.parse::<u32>().ok();
        assert_eq!(parse_env("HMM_TEST_ENV_BAD", "an integer", parse), None);
        assert_eq!(parse_env("HMM_TEST_ENV_BAD", "an integer", parse), None);
        // Both rejects consumed the single warning budget for this var.
        assert!(
            !first_invalid("HMM_TEST_ENV_BAD"),
            "an invalid value must register the variable as warned"
        );
        std::env::remove_var("HMM_TEST_ENV_BAD");
    }

    #[test]
    fn warn_once_is_per_variable() {
        assert!(first_invalid("HMM_TEST_ENV_A"));
        assert!(
            !first_invalid("HMM_TEST_ENV_A"),
            "second warn is suppressed"
        );
        assert!(
            first_invalid("HMM_TEST_ENV_B"),
            "other variables unaffected"
        );
    }
}
