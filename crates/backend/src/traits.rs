//! The `Backend` / `Executable` traits — the seam every engine execution
//! crosses.
//!
//! A backend is a *factory*: [`Backend::prepare`] turns a backend-neutral
//! plan ([`ExecPlan`]) plus a [`KernelConfig`] into a boxed
//! [`Executable`], doing whatever backend-specific compilation it wants
//! (the native backend builds its fused sweep executor; the interpreter
//! lowers the plan to [`crate::sweep::SweepIr`]; a GPU backend would
//! compile shaders). An executable is then run any number of times with
//! caller-provided buffers — the engines pool the scratch.
//!
//! The split mirrors the plan/execute split the paper's Section 5 needs:
//! plan construction (the König coloring) is backend-neutral and cached;
//! *preparation* (this trait) is per-backend and cheap; *execution* is
//! the three memory sweeps.

use crate::config::KernelConfig;
use hmm_perm::Permutation;
use hmm_plan::{PlanIr, Result};

/// How a plan executes: the γ_w decision's two arms (paper Table II).
///
/// Until this refactor the enum was `hmm_native::Backend`; it is renamed
/// `Route` so "backend" can mean what it now is — *which implementation
/// executes* ([`Backend`]), orthogonal to *which algorithm* (this enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Single scattered pass (`dst[P[i]] = src[i]`) — wins at low γ_w.
    Scatter,
    /// Three-sweep scheduled permutation from a [`PlanIr`].
    Scheduled,
}

/// The backend-neutral input to [`Backend::prepare`]: either arm carries
/// exactly what that route needs — the scatter arm has no `PlanIr` (no
/// König coloring is ever built for it), the scheduled arm nothing but
/// the IR.
#[derive(Debug, Clone, Copy)]
pub enum ExecPlan<'a> {
    /// Execute as a single scattered pass of this permutation.
    Scatter(&'a Permutation),
    /// Execute the three-sweep schedule this IR encodes.
    Scheduled(&'a PlanIr),
}

impl ExecPlan<'_> {
    /// The route this plan executes on.
    pub fn route(&self) -> Route {
        match self {
            ExecPlan::Scatter(_) => Route::Scatter,
            ExecPlan::Scheduled(_) => Route::Scheduled,
        }
    }

    /// Number of elements the plan permutes.
    pub fn len(&self) -> usize {
        match self {
            ExecPlan::Scatter(p) => p.len(),
            ExecPlan::Scheduled(ir) => ir.len(),
        }
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a backend can execute. The engine consults this before routing:
/// a backend without a scatter kernel gets scheduled plans even at low
/// γ_w, and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// The backend can prepare [`ExecPlan::Scatter`] plans.
    pub scatter: bool,
    /// The backend can prepare [`ExecPlan::Scheduled`] plans.
    pub scheduled: bool,
}

impl Capabilities {
    /// Both routes supported — the common case for CPU backends.
    pub const fn all() -> Self {
        Capabilities {
            scatter: true,
            scheduled: true,
        }
    }

    /// True when the backend supports `route`.
    pub fn supports(&self, route: Route) -> bool {
        match route {
            Route::Scatter => self.scatter,
            Route::Scheduled => self.scheduled,
        }
    }
}

/// A prepared, immutable, reusable execution of one plan on one backend.
///
/// `run` is `&self` and thread-safe: the engines call it concurrently
/// from many threads with distinct buffer triples. Implementations keep
/// any per-run mutable state on the stack (or in the caller's scratch),
/// never in `self`.
pub trait Executable<T>: Send + Sync {
    /// Execute `dst[P[i]] = src[i]`. `scratch` must be exactly
    /// [`Executable::scratch_len`] elements; its contents on entry are
    /// irrelevant and on exit unspecified.
    ///
    /// # Panics
    /// Implementations panic when `src`/`dst`/`scratch` lengths disagree
    /// with the plan — the engines validate before calling.
    fn run(&self, src: &[T], dst: &mut [T], scratch: &mut [T]);

    /// Scratch elements `run` requires: 0 for scatter executables, `n`
    /// for the native fused executor, `2n` for the IR interpreter (its
    /// five unfused steps ping-pong between two temporaries).
    fn scratch_len(&self) -> usize;

    /// Number of elements one run permutes.
    fn len(&self) -> usize;

    /// True for the empty permutation (no backend currently prepares
    /// one — `ExecPlan` lengths are at least `w²` — but the pair keeps
    /// the trait's length API conventional).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The route this executable implements.
    fn route(&self) -> Route;

    /// Name of the backend that prepared this executable.
    fn backend_name(&self) -> &'static str;

    /// The kernel config the executable was prepared with.
    fn kernel_config(&self) -> KernelConfig;

    /// Stats hook: completed `run` calls on this executable.
    fn runs(&self) -> u64;

    /// Downcast seam, so backend-specific tooling (e.g. the native
    /// backend's sweep timer) can recover its concrete executor from a
    /// cached plan without the engine naming the type.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A registered execution backend: a named factory from backend-neutral
/// plans to [`Executable`]s.
///
/// Implementations are zero-sized or cheaply shareable (`Arc<dyn
/// Backend<T>>` is the engine-side handle); all real state lives in the
/// executables they prepare.
pub trait Backend<T>: Send + Sync {
    /// Stable registry name (`"native"`, `"interp"`, ...) — what
    /// `HMM_BACKEND` selects and what `EngineStats::backend` reports.
    fn name(&self) -> &'static str;

    /// Which routes this backend can prepare.
    fn capabilities(&self) -> Capabilities;

    /// Compile `plan` into an executable under `config`. Scheduled plans
    /// must be validated (`PlanIr::validate`) before use — a corrupt IR
    /// is rejected with a typed error, never executed.
    fn prepare(&self, plan: ExecPlan<'_>, config: KernelConfig) -> Result<Box<dyn Executable<T>>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    #[test]
    fn route_and_len_follow_the_plan_arm() {
        let p = families::random(1 << 10, 1);
        let plan = ExecPlan::Scatter(&p);
        assert_eq!(plan.route(), Route::Scatter);
        assert_eq!(plan.len(), 1 << 10);
        assert!(!plan.is_empty());

        let ir = PlanIr::build(&p, 32).unwrap();
        let plan = ExecPlan::Scheduled(&ir);
        assert_eq!(plan.route(), Route::Scheduled);
        assert_eq!(plan.len(), 1 << 10);
    }

    #[test]
    fn capabilities_gate_routes() {
        let all = Capabilities::all();
        assert!(all.supports(Route::Scatter) && all.supports(Route::Scheduled));
        let sched_only = Capabilities {
            scatter: false,
            scheduled: true,
        };
        assert!(!sched_only.supports(Route::Scatter));
        assert!(sched_only.supports(Route::Scheduled));
    }
}
