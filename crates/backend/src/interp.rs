//! The deterministic CPU interpreter — the IR's reference consumer and
//! the second registered backend.
//!
//! [`InterpBackend`] prepares scheduled plans by lowering them to
//! [`SweepIr`] and then *interpreting* the five steps literally: single
//! thread, no SIMD, the tiled transpose staged through an explicit
//! `(tile + pad) × tile` buffer with the same layout a GPU's shared
//! memory tile would have. It exists to be read and trusted, not to be
//! fast — the conformance suite pins it byte-identical against the
//! native fused executor and the naive reference, which makes it the
//! oracle that transitively certifies the WGSL the code generator emits
//! (the shaders encode the same IR this module executes).
//!
//! Scatter plans interpret as the one-line serial loop
//! (`dst[p[i]] = src[i]`), so the backend covers both routes and can be
//! dropped into every engine test unchanged.

use crate::config::KernelConfig;
use crate::sweep::{BufferId, IndexSource, SweepIr, SweepKernel, SweepStep};
use crate::traits::{Backend, Capabilities, ExecPlan, Executable, Route};
use hmm_perm::Permutation;
use hmm_plan::Result;
use std::sync::atomic::{AtomicU64, Ordering};

/// Registry name of the interpreter backend.
pub const INTERP_BACKEND_NAME: &str = "interp";

/// The interpreter backend: zero-sized, both routes supported.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpBackend;

impl<T: Copy + Default + Send + Sync + 'static> Backend<T> for InterpBackend {
    fn name(&self) -> &'static str {
        INTERP_BACKEND_NAME
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn prepare(&self, plan: ExecPlan<'_>, config: KernelConfig) -> Result<Box<dyn Executable<T>>> {
        match plan {
            ExecPlan::Scatter(p) => Ok(Box::new(InterpScatterExec {
                perm: p.clone(),
                config,
                runs: AtomicU64::new(0),
            })),
            ExecPlan::Scheduled(ir) => {
                ir.validate()?;
                Ok(Box::new(InterpExec {
                    ir: SweepIr::lower(ir, &config),
                    config,
                    runs: AtomicU64::new(0),
                }))
            }
        }
    }
}

/// A prepared scheduled plan: the lowered program plus the config it was
/// lowered under.
pub struct InterpExec {
    ir: SweepIr,
    config: KernelConfig,
    runs: AtomicU64,
}

impl InterpExec {
    /// The lowered program this executable interprets — the seam the
    /// snapshot tests and the WGSL generator share.
    pub fn sweep_ir(&self) -> &SweepIr {
        &self.ir
    }
}

impl<T: Copy + Default + Send + Sync + 'static> Executable<T> for InterpExec {
    fn run(&self, src: &[T], dst: &mut [T], scratch: &mut [T]) {
        let n = self.ir.len();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        assert_eq!(scratch.len(), 2 * n, "scratch length mismatch");
        let (a, b) = scratch.split_at_mut(n);
        for step in self.ir.steps() {
            // Borrow exactly the two buffers the step names. Input/Output
            // never alias the scratch halves, and the lowering never emits
            // A→A or B→B, so every arm below is a disjoint pair.
            match (step.src, step.dst) {
                (BufferId::Input, BufferId::ScratchA) => exec_step(&self.ir, step, src, a),
                (BufferId::ScratchA, BufferId::ScratchB) => exec_step(&self.ir, step, a, b),
                (BufferId::ScratchB, BufferId::ScratchA) => exec_step(&self.ir, step, b, a),
                (BufferId::ScratchB, BufferId::Output) => exec_step(&self.ir, step, b, dst),
                (src_id, dst_id) => {
                    unreachable!("lowering never emits a {src_id:?} -> {dst_id:?} step")
                }
            }
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    fn scratch_len(&self) -> usize {
        2 * self.ir.len()
    }

    fn len(&self) -> usize {
        self.ir.len()
    }

    fn route(&self) -> Route {
        Route::Scheduled
    }

    fn backend_name(&self) -> &'static str {
        INTERP_BACKEND_NAME
    }

    fn kernel_config(&self) -> KernelConfig {
        self.config
    }

    fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A prepared scatter plan: the serial reference loop.
pub struct InterpScatterExec {
    perm: Permutation,
    config: KernelConfig,
    runs: AtomicU64,
}

impl<T: Copy + Default + Send + Sync + 'static> Executable<T> for InterpScatterExec {
    fn run(&self, src: &[T], dst: &mut [T], _scratch: &mut [T]) {
        let n = self.perm.len();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        for (i, &d) in self.perm.as_slice().iter().enumerate() {
            dst[d] = src[i];
        }
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    fn scratch_len(&self) -> usize {
        0
    }

    fn len(&self) -> usize {
        self.perm.len()
    }

    fn route(&self) -> Route {
        Route::Scatter
    }

    fn backend_name(&self) -> &'static str {
        INTERP_BACKEND_NAME
    }

    fn kernel_config(&self) -> KernelConfig {
        self.config
    }

    fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Interpret one step: `inp` is the step's `rows × cols` source matrix,
/// `out` its destination (same length; the transpose writes it as
/// `cols × rows`).
fn exec_step<T: Copy + Default>(ir: &SweepIr, step: &SweepStep, inp: &[T], out: &mut [T]) {
    match step.kernel {
        SweepKernel::Gather { map } | SweepKernel::RowPermute { map } => {
            let cols = step.cols;
            match ir.index_source(map) {
                IndexSource::Materialized(g) => {
                    debug_assert_eq!(g.len(), out.len());
                    for (i, slot) in out.iter_mut().enumerate() {
                        let base = (i / cols) * cols;
                        *slot = inp[base + g[i] as usize];
                    }
                }
                IndexSource::Affine(step_a) => {
                    // Computed-index form: within a row the gather index
                    // is an XOR-fold of the descriptor's low masks, so
                    // walk positions in Gray-delta style — consecutive k
                    // differ in the masks selected by the bits that flip
                    // between k and k+1. The interpreter keeps the
                    // simpler direct fold per element (it is the oracle,
                    // not the fast path).
                    debug_assert_eq!(step_a.col_bits(), cols.trailing_zeros());
                    for (row, out_row) in out.chunks_mut(cols).enumerate() {
                        let base = row * cols;
                        let row_base = step_a.row_base(row);
                        for (k, slot) in out_row.iter_mut().enumerate() {
                            let mut idx = row_base;
                            let mut rest = k;
                            while rest != 0 {
                                let b = rest.trailing_zeros();
                                idx ^= step_a.lo_masks()[b as usize];
                                rest &= rest - 1;
                            }
                            *slot = inp[base + idx as usize];
                        }
                    }
                }
            }
        }
        SweepKernel::TiledTranspose { tile, bank_pad } => {
            tiled_transpose(inp, step.rows, step.cols, tile, bank_pad, out);
        }
    }
}

/// Transpose `rows × cols` → `cols × rows` through an explicit staging
/// tile of `(tile + bank_pad)` columns — the same padded layout the WGSL
/// kernel declares as its workgroup array, so the interpreter exercises
/// the exact buffer geometry the shader does (on a CPU the pad buys
/// nothing; it is kept for fidelity, not speed).
fn tiled_transpose<T: Copy + Default>(
    inp: &[T],
    rows: usize,
    cols: usize,
    tile: usize,
    bank_pad: usize,
    out: &mut [T],
) {
    debug_assert_eq!(inp.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    let stride = tile + bank_pad;
    let mut stage = vec![T::default(); stride * tile];
    for i0 in (0..rows).step_by(tile) {
        let ih = tile.min(rows - i0);
        for j0 in (0..cols).step_by(tile) {
            let jw = tile.min(cols - j0);
            // Load phase: stage[ti][tj] = in[i0+ti][j0+tj].
            for ti in 0..ih {
                let row = &inp[(i0 + ti) * cols + j0..(i0 + ti) * cols + j0 + jw];
                stage[ti * stride..ti * stride + jw].copy_from_slice(row);
            }
            // Store phase (after the barrier, on a GPU): read the stage
            // transposed — the access the pad de-conflicts.
            for tj in 0..jw {
                for ti in 0..ih {
                    out[(j0 + tj) * rows + (i0 + ti)] = stage[ti * stride + tj];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;
    use hmm_plan::PlanIr;

    fn naive_reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; src.len()];
        for (i, &d) in p.as_slice().iter().enumerate() {
            out[d] = src[i];
        }
        out
    }

    fn run_scheduled(p: &Permutation, cfg: KernelConfig) -> Vec<u32> {
        let ir = PlanIr::build(p, 32).unwrap();
        let exec: Box<dyn Executable<u32>> = InterpBackend
            .prepare(ExecPlan::Scheduled(&ir), cfg)
            .unwrap();
        let n = p.len();
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut scratch = vec![0u32; exec.scratch_len()];
        exec.run(&src, &mut dst, &mut scratch);
        assert_eq!(exec.runs(), 1);
        assert_eq!(dst, naive_reference(p, &src));
        dst
    }

    #[test]
    fn scheduled_interpretation_matches_the_naive_reference() {
        for n in [1usize << 10, 1 << 12, 1 << 14] {
            for seed in [1, 7] {
                let p = families::random(n, seed);
                run_scheduled(&p, KernelConfig::default());
            }
        }
    }

    #[test]
    fn tile_geometry_does_not_change_the_answer() {
        let p = families::random(1 << 12, 3);
        let base = run_scheduled(&p, KernelConfig::default());
        for tile in [8, 16, 33, 64, 100] {
            let cfg = KernelConfig {
                tile,
                ..KernelConfig::default()
            };
            assert_eq!(run_scheduled(&p, cfg), base, "tile={tile}");
        }
    }

    #[test]
    fn computed_index_interpretation_is_byte_identical() {
        // Structured plans carry affine descriptors, so the default
        // (computed-index) config interprets them map-free; the scalar
        // config forces materialized maps. Both must match the naive
        // reference bit-for-bit — run_scheduled asserts that — and each
        // other.
        for n in [1usize << 10, 1 << 12] {
            for p in [
                families::bit_reversal(n).unwrap(),
                families::shuffle(n).unwrap(),
                families::transpose_square(n).unwrap(),
            ] {
                let computed = run_scheduled(&p, KernelConfig::default());
                let materialized = run_scheduled(&p, KernelConfig::scalar());
                assert_eq!(computed, materialized);
            }
        }
    }

    #[test]
    fn computed_index_executions_really_lower_map_free() {
        let p = families::bit_reversal(1 << 12).unwrap();
        let ir = PlanIr::build(&p, 32).unwrap();
        let exec: Box<dyn Executable<u32>> = InterpBackend
            .prepare(ExecPlan::Scheduled(&ir), KernelConfig::default())
            .unwrap();
        let exec = exec.as_any().downcast_ref::<InterpExec>().unwrap();
        assert!(exec.sweep_ir().affine().is_some(), "descriptors carried");
        for which in [
            crate::sweep::GatherMap::G1,
            crate::sweep::GatherMap::G2,
            crate::sweep::GatherMap::G3,
        ] {
            assert!(exec.sweep_ir().map(which).is_empty(), "maps elided");
        }
    }

    #[test]
    fn scatter_interpretation_matches_the_naive_reference() {
        let p = families::random(1 << 10, 9);
        let exec: Box<dyn Executable<u64>> = InterpBackend
            .prepare(ExecPlan::Scatter(&p), KernelConfig::default())
            .unwrap();
        assert_eq!(exec.scratch_len(), 0);
        assert_eq!(exec.route(), Route::Scatter);
        let src: Vec<u64> = (0..1u64 << 10).map(|v| v.wrapping_mul(0x9E37)).collect();
        let mut dst = vec![0u64; src.len()];
        exec.run(&src, &mut dst, &mut []);
        let mut want = vec![0u64; src.len()];
        for (i, &d) in p.as_slice().iter().enumerate() {
            want[d] = src[i];
        }
        assert_eq!(dst, want);
        assert_eq!(exec.runs(), 1);
    }

    #[test]
    fn bare_transpose_is_exact_on_ragged_tiles() {
        // 5×7 with tile 4 exercises partial tiles on both edges.
        let (rows, cols, tile) = (5usize, 7usize, 4usize);
        let inp: Vec<u32> = (0..(rows * cols) as u32).collect();
        let mut out = vec![0u32; rows * cols];
        tiled_transpose(&inp, rows, cols, tile, 1, &mut out);
        for i in 0..rows {
            for j in 0..cols {
                assert_eq!(out[j * rows + i], inp[i * cols + j]);
            }
        }
    }
}
