//! A minimal chunked parallel-for on crossbeam scoped threads.
//!
//! The offline list for this reproduction does not include `rayon`, so this
//! module provides the one primitive the wall-clock backend needs: split a
//! mutable slice (or an index range) into contiguous chunks and process
//! them on all available cores. Static chunking is the right shape here —
//! every task in this crate is a uniform sweep over a dense array, so work
//! stealing would buy nothing.

use std::num::NonZeroUsize;

/// Number of worker threads to use: the machine's available parallelism,
/// overridable with the `HMM_NATIVE_THREADS` environment variable (useful
/// for scaling experiments).
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("HMM_NATIVE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f(chunk_start, chunk)` over contiguous chunks of `data` in
/// parallel. Chunks are at least `min_chunk` long (except possibly the
/// last); with a single worker or a small slice the call degenerates to a
/// plain loop with no thread spawn.
pub fn par_chunks_mut<T, F>(data: &mut [T], min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let workers = worker_threads();
    let chunk = n.div_ceil(workers).max(min_chunk.max(1));
    if workers == 1 || chunk >= n {
        f(0, data);
        return;
    }
    crossbeam::scope(|s| {
        for (idx, piece) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| f(idx * chunk, piece));
        }
    })
    .expect("worker thread panicked");
}

/// Like [`par_chunks_mut`], but every chunk (except the last) is *exactly*
/// `chunk_len` long — required when workers must own whole rows or tiles.
/// Spawns one scoped thread per chunk; callers choose `chunk_len` so the
/// chunk count stays near the worker count.
pub fn par_chunks_mut_exact<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    if worker_threads() == 1 || chunk_len >= n {
        f(0, data);
        return;
    }
    crossbeam::scope(|s| {
        for (idx, piece) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move |_| f(idx * chunk_len, piece));
        }
    })
    .expect("worker thread panicked");
}

/// Run `f(start, end)` over contiguous sub-ranges of `0..n` in parallel.
pub fn par_ranges<F>(n: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = worker_threads();
    let chunk = n.div_ceil(workers).max(min_chunk.max(1));
    if workers == 1 || chunk >= n {
        f(0, n);
        return;
    }
    crossbeam::scope(|s| {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let f = &f;
            s.spawn(move |_| f(start, end));
            start = end;
        }
    })
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u64; 100_000];
        par_chunks_mut(&mut data, 1, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (start + i) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn par_ranges_covers_exactly() {
        let n = 12_345;
        let hits = AtomicUsize::new(0);
        par_ranges(n, 1, |s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 8, |_, _| panic!("should not run"));
        par_ranges(0, 8, |_, _| panic!("should not run"));
    }

    #[test]
    fn min_chunk_respected() {
        // With min_chunk = n the closure runs exactly once, inline.
        let n = 1000;
        let calls = AtomicUsize::new(0);
        par_ranges(n, n, |s, e| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!((s, e), (0, n));
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}
