//! Chunked parallel-for primitives on the persistent worker pool.
//!
//! Every task in this crate is a uniform sweep over a dense array, so the
//! right shape is static chunking with dynamic claiming: a job is split
//! into contiguous chunks, and the pool's fixed set of workers claim them
//! from an atomic cursor (see [`crate::pool`]). Unlike the seed
//! implementation — which spawned a fresh scoped OS thread per chunk per
//! call — no thread is ever created on these paths, and the number of live
//! workers is bounded by [`worker_threads`] regardless of chunk count.

use crate::pool::WorkerPool;
use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count: a positive
/// integer, read once when the global pool is first constructed. Invalid
/// values warn once and fall back to hardware parallelism — the same
/// strict, warn-once policy [`hmm_backend::env::parse_env`] applies to
/// `HMM_NATIVE_SIMD` and `HMM_BACKEND`.
pub const THREADS_ENV: &str = "HMM_NATIVE_THREADS";

/// Number of worker threads the pool was (or will be) built with: the
/// machine's available parallelism, overridable with the
/// [`THREADS_ENV`] environment variable **before first use** (the
/// pool is created once per process).
pub fn worker_threads() -> usize {
    WorkerPool::global().threads()
}

/// Parse an `HMM_NATIVE_THREADS` override: a positive integer. Anything
/// else (`0`, `abc`, empty) is invalid and yields `None`. Factored out of
/// [`configured_threads`] so the parse rules are testable without racing
/// on the process-global environment.
fn parse_thread_override(v: &str) -> Option<usize> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Thread count read from the environment/machine — used once, when the
/// global pool is first constructed. An *invalid* override is loudly
/// ignored, once per process (a typo'd benchmark run must not silently
/// measure hardware parallelism instead of the intended thread count).
pub(crate) fn configured_threads() -> usize {
    hmm_backend::env::parse_env(
        THREADS_ENV,
        "a positive integer; using hardware parallelism",
        parse_thread_override,
    )
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Shared base pointer for handing disjoint chunks of one slice to pool
/// tasks.
///
/// # Safety contract
/// Tasks must derive pairwise-disjoint sub-slices. Both users below index
/// chunks by a task id claimed exactly once from the pool's cursor, with
/// chunk boundaries computed from that id — so no two tasks overlap.
struct SliceParts<T>(*mut T);

impl<T> SliceParts<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer itself.
    fn base(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Sync for SliceParts<T> {}

/// Run `f(chunk_start, chunk)` over contiguous chunks of `data` in
/// parallel. Chunks are at least `min_chunk` long (except possibly the
/// last); with a single worker or a small slice the call degenerates to a
/// plain loop with no dispatch.
pub fn par_chunks_mut<T, F>(data: &mut [T], min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let pool = WorkerPool::global();
    let chunk = n.div_ceil(pool.threads()).max(min_chunk.max(1));
    if pool.threads() == 1 || chunk >= n {
        f(0, data);
        return;
    }
    let num_chunks = n.div_ceil(chunk);
    let parts = SliceParts(data.as_mut_ptr());
    pool.run(num_chunks, |i| {
        let start = i * chunk;
        let len = chunk.min(n - start);
        // SAFETY: task `i` is claimed exactly once and chunks
        // `[start, start + len)` are pairwise disjoint by construction.
        let piece = unsafe { std::slice::from_raw_parts_mut(parts.base().add(start), len) };
        f(start, piece);
    });
}

/// Like [`par_chunks_mut`], but every chunk (except the last) is *exactly*
/// `chunk_len` long — required when workers must own whole rows or tiles.
///
/// Chunks are grouped into at most [`worker_threads`] contiguous tasks, so
/// a small `chunk_len` on a large slice costs one pool dispatch — the seed
/// version spawned one OS thread per chunk, which for a 64-row tile band
/// on a 16M-element array meant thousands of threads.
pub fn par_chunks_mut_exact<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let pool = WorkerPool::global();
    if pool.threads() == 1 || chunk_len >= n {
        // Serial, but with the same per-chunk call granularity callers
        // rely on (each call sees exactly one chunk).
        for (c, piece) in data.chunks_mut(chunk_len).enumerate() {
            f(c * chunk_len, piece);
        }
        return;
    }
    let num_chunks = n.div_ceil(chunk_len);
    let num_tasks = num_chunks.min(pool.threads());
    let chunks_per_task = num_chunks.div_ceil(num_tasks);
    let parts = SliceParts(data.as_mut_ptr());
    pool.run(num_tasks, |t| {
        let first = t * chunks_per_task;
        let last = ((t + 1) * chunks_per_task).min(num_chunks);
        for c in first..last {
            let start = c * chunk_len;
            let len = chunk_len.min(n - start);
            // SAFETY: task `t` exclusively owns chunks [first, last); all
            // derived ranges are pairwise disjoint by construction.
            let piece = unsafe { std::slice::from_raw_parts_mut(parts.base().add(start), len) };
            f(start, piece);
        }
    });
}

/// Run `f(start, end)` over contiguous sub-ranges of `0..n` in parallel.
pub fn par_ranges<F>(n: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let pool = WorkerPool::global();
    let chunk = n.div_ceil(pool.threads()).max(min_chunk.max(1));
    if pool.threads() == 1 || chunk >= n {
        f(0, n);
        return;
    }
    let num_chunks = n.div_ceil(chunk);
    pool.run(num_chunks, |i| {
        let start = i * chunk;
        let end = (start + chunk).min(n);
        f(start, end);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u64; 100_000];
        par_chunks_mut(&mut data, 1, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (start + i) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn par_chunks_mut_exact_covers_with_exact_chunks() {
        // Small chunk_len on a large slice: the seed spawned one thread
        // per chunk here; now it is one bounded pool dispatch.
        let n = 64 * 1024;
        let chunk_len = 64;
        let mut data = vec![0u32; n];
        let calls = AtomicUsize::new(0);
        par_chunks_mut_exact(&mut data, chunk_len, |start, chunk| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(start % chunk_len, 0);
            assert!(chunk.len() == chunk_len || start + chunk.len() == n);
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as u32;
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), n / chunk_len);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_exact_ragged_tail() {
        let n = 1000;
        let mut data = vec![0u8; n];
        par_chunks_mut_exact(&mut data, 333, |start, chunk| {
            assert!(chunk.len() == 333 || start + chunk.len() == n);
            chunk.fill(1);
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_ranges_covers_exactly() {
        let n = 12_345;
        let hits = AtomicUsize::new(0);
        par_ranges(n, 1, |s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 8, |_, _| panic!("should not run"));
        par_chunks_mut_exact(&mut empty, 8, |_, _| panic!("should not run"));
        par_ranges(0, 8, |_, _| panic!("should not run"));
    }

    #[test]
    fn min_chunk_respected() {
        // With min_chunk = n the closure runs exactly once, inline.
        let n = 1000;
        let calls = AtomicUsize::new(0);
        par_ranges(n, n, |s, e| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!((s, e), (0, n));
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn thread_override_parse_accepts_positive_integers_only() {
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override("128"), Some(128));
        // Invalid values must be rejected (configured_threads then warns
        // and falls back to hardware parallelism).
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override("abc"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("-2"), None);
        assert_eq!(parse_thread_override("4 "), None);
        assert_eq!(parse_thread_override("3.5"), None);
    }

    #[test]
    fn panic_in_chunk_propagates() {
        let mut data = vec![0u8; 1 << 20];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_chunks_mut(&mut data, 1, |start, _| {
                if start == 0 {
                    panic!("chunk panicked");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool keeps serving jobs after the panic.
        par_chunks_mut(&mut data, 1, |_, chunk| chunk.fill(7));
        assert!(data.iter().all(|&v| v == 7));
    }
}
