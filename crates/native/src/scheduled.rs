//! The scheduled permutation on a real CPU, executed as **three fused
//! memory sweeps**.
//!
//! The GPU implementation (and the simulator) run five passes: row gather,
//! transpose, row gather, transpose, row gather. On the CPU the transposes
//! are pure data movement, so each one is fused into the row gather that
//! precedes it: a single *gather-transpose* sweep reads each input row in
//! the gather order and writes the result transposed. That turns
//!
//! ```text
//! row(g1); transpose; row(g2); transpose; row(g3)     (5 sweeps, 2 scratch)
//! ```
//!
//! into
//!
//! ```text
//! gather_transpose(g1); gather_transpose(g2); row(g3) (3 sweeps, 1 scratch)
//! ```
//!
//! Every sweep still writes memory sequentially (within a blocked tile),
//! and reads stay within one matrix row at a time — a row of a √n-sided
//! matrix fits in L1/L2 — so cache-line and TLB behaviour remains the CPU
//! analog of coalesced access.
//!
//! # The two-stage, double-buffered block pipeline
//!
//! Each gather-transpose worker processes its output band in *input-row
//! blocks* through per-thread staging buffers ([`crate::stage`] — pooled
//! for the life of the worker, replacing the seed's per-band
//! `to_vec()` copy-allocation):
//!
//! ```text
//!           ┌── gather block k+1 ──► staging buffer B ──┐
//! input ────┤                                           ├──► output band
//!           └── staging buffer A ──► transpose block k ─┘
//! ```
//!
//! 1. **Gather stage**: block *k+1*'s rows are gathered into the idle
//!    staging buffer (reads stay inside one contiguous row — L1-resident
//!    for √n-sided shapes — and buffer writes are sequential), while the
//!    next block's slice of the gather map is software-prefetched;
//! 2. **Transpose stage**: block *k* is transposed out of the other
//!    buffer into the output band (buffer reads hit L2; output writes are
//!    contiguous runs).
//!
//! Issuing block *k+1*'s cache-missing gathers *before* block *k*'s
//! transpose stores gives the out-of-order core a full block of
//! independent work to overlap the misses with. With
//! [`KernelConfig::depth`] `= 1` the pipeline degenerates to the seed's
//! strict gather-then-transpose alternation over a single buffer — a
//! config point the differential suite pins against the default.
//!
//! Determinism and parallel safety are unchanged from the seed: workers
//! own **disjoint output bands** (whole output rows), every output
//! element is written exactly once, and which buffer a value stages
//! through cannot affect the value written — so every config point
//! (SIMD on/off, any depth, any block size) produces byte-identical
//! output.
//!
//! The inner loops are vectorized per [`KernelConfig::simd`]: clamped,
//! unrolled width-specialized paths by default and `core::arch` AVX2
//! gathers/tile-transposes behind runtime detection, with the scalar
//! loops kept as the always-available reference ([`crate::simd`] — the
//! only module that touches `core::arch`). The unfused five-pass path is
//! kept as [`NativeScheduled::run_unfused`] for benchmarking the fusion
//! win.

use crate::config::KernelConfig;
use crate::par::{par_chunks_mut, par_chunks_mut_exact, worker_threads};
use crate::simd::{self, Tier};
use crate::stage;
use core::mem::size_of;
use hmm_perm::{MatrixShape, Permutation};
use hmm_plan::{AffineStep, PassLayout, PlanIr, Result};
use std::time::{Duration, Instant};

/// A CPU-executable scheduled permutation: the three-step decomposition
/// with per-row *gather* maps (destination-ordered) precomputed, plus
/// the kernel tuning the sweeps run with.
#[derive(Debug, Clone)]
pub struct NativeScheduled {
    shape: MatrixShape,
    /// Per-pass geometry, derived from the plan (`PlanIr::pass_layouts`).
    layouts: [PassLayout; 3],
    /// Sweep 1 gather map, flattened `r × c`: row `i` of the intermediate
    /// is `in[i][g1[i*c + k]]` for `k` in `0..c`.
    g1: Vec<u32>,
    /// Sweep 2 gather map on the transposed matrix, flattened `c × r`.
    g2: Vec<u32>,
    /// Sweep 3 gather map, flattened `r × c`.
    g3: Vec<u32>,
    /// The plan's affine descriptors (order `g1, g2, g3`) when it is
    /// structured. With [`KernelConfig::computed_index`] set, the sweeps
    /// compute gather indices from these in registers instead of loading
    /// the materialized maps — the maps are still kept (they are what
    /// [`run_unfused`](Self::run_unfused) and the map-load config point
    /// execute), so the flag alone decides the kernel form at run time.
    affine: Option<[AffineStep; 3]>,
    /// Kernel tuning (block size, staging depth, SIMD, prefetch).
    config: KernelConfig,
}

impl NativeScheduled {
    /// Build from a permutation; `width` is the tiling constraint handed to
    /// the decomposition (any power of two dividing both matrix dimensions
    /// — 32 matches the GPU schedule and is always safe here). Kernels run
    /// with the process-wide [`KernelConfig::global`].
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        let ir = PlanIr::build_par(p, width, worker_threads())?;
        Self::from_plan(&ir)
    }

    /// Build and also hand back the backend-neutral plan IR, so the caller
    /// can reuse it — stage a simulator run via `hmm-offperm`'s
    /// `Decomposition::from_ir`, or persist it in an `hmm_plan::PlanStore`
    /// — without paying for the König coloring twice.
    pub fn build_shared(p: &Permutation, width: usize) -> Result<(Self, PlanIr)> {
        let ir = PlanIr::build_par(p, width, worker_threads())?;
        let sched = Self::from_plan(&ir)?;
        Ok((sched, ir))
    }

    /// Build from an existing plan IR (shared with a simulator run, or
    /// loaded from the on-disk plan store) with the process-wide
    /// [`KernelConfig::global`]. The IR already carries the flat gather
    /// maps, so this is a validation pass plus three copies — no
    /// coloring, no per-row inversion.
    pub fn from_plan(ir: &PlanIr) -> Result<Self> {
        Self::from_plan_with(ir, KernelConfig::global())
    }

    /// Build from an existing plan IR with an explicit kernel config —
    /// the seam the engines ([`crate::plan::SharedEngine`]), the bench's
    /// SIMD on/off rows, and the differential suite thread their configs
    /// through.
    ///
    /// The plan contract is checked here (`PlanIr::validate`): the SIMD
    /// gather tiers *clamp* indices instead of bounds-checking them
    /// (`crate::simd`), so a corrupted plan that got past the codec and
    /// store front doors would otherwise mis-gather silently. A violated
    /// contract is a typed [`PlanError::Invalid`](hmm_plan::PlanError)
    /// error, never wrong output.
    pub fn from_plan_with(ir: &PlanIr, config: KernelConfig) -> Result<Self> {
        ir.validate()?;
        Ok(NativeScheduled {
            shape: ir.shape(),
            layouts: ir.pass_layouts(),
            g1: ir.gather1().to_vec(),
            g2: ir.gather2().to_vec(),
            g3: ir.gather3().to_vec(),
            affine: ir.affine().cloned(),
            config,
        })
    }

    /// True when the sweeps will run the computed-index kernels: the
    /// plan carries verified affine descriptors *and* the config has
    /// them enabled.
    pub fn computed_index(&self) -> bool {
        self.affine.is_some() && self.config.computed_index
    }

    /// The per-pass index sources the sweeps run with.
    fn sources(&self) -> [IndexSrc<'_>; 3] {
        match &self.affine {
            Some(steps) if self.config.computed_index => [
                IndexSrc::Affine(&steps[0]),
                IndexSrc::Affine(&steps[1]),
                IndexSrc::Affine(&steps[2]),
            ],
            _ => [
                IndexSrc::Map(&self.g1),
                IndexSrc::Map(&self.g2),
                IndexSrc::Map(&self.g3),
            ],
        }
    }

    /// This schedule with a different kernel config.
    pub fn with_config(mut self, config: KernelConfig) -> Self {
        self.config = config;
        self
    }

    /// The kernel config the sweeps run with.
    pub fn kernel_config(&self) -> KernelConfig {
        self.config
    }

    /// The matrix shape of the passes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True for a zero-element schedule (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Required scratch length for [`run_with_scratch`](Self::run_with_scratch).
    pub fn scratch_len(&self) -> usize {
        self.len()
    }

    /// Execute `dst[P[i]] = src[i]`, allocating one scratch buffer.
    ///
    /// # Panics
    /// Panics if `src` or `dst` length differs from the schedule's `n`.
    pub fn run<T: Copy + Send + Sync + Default>(&self, src: &[T], dst: &mut [T]) {
        let mut scratch = vec![T::default(); self.scratch_len()];
        self.run_with_scratch(src, dst, &mut scratch);
    }

    /// Execute with a caller-provided scratch buffer of length `n`,
    /// allocation-free after worker warm-up: three fused sweeps,
    /// `src → dst → scratch → dst`.
    pub fn run_with_scratch<T: Copy + Send + Sync>(
        &self,
        src: &[T],
        dst: &mut [T],
        scratch: &mut [T],
    ) {
        self.check_lengths(src, dst, scratch);
        let [s1, s2, s3] = self.sources();
        // Sweep 1: row gather (g1) fused with transpose; r×c -> c×r in dst.
        gather_transpose(src, s1, self.layouts[0], dst, &self.config);
        // Sweep 2: row gather (g2) fused with transpose; c×r -> r×c.
        gather_transpose(dst, s2, self.layouts[1], scratch, &self.config);
        // Sweep 3: plain row gather (g3) on the r×c matrix.
        row_pass(scratch, s3, self.layouts[2], dst, &self.config);
    }

    /// [`run_with_scratch`](Self::run_with_scratch), timing each of the
    /// three sweeps: `[gather-transpose 1, gather-transpose 2, row pass]`.
    /// The output is identical; the bench's `sweep_gather` /
    /// `sweep_transpose` / `sweep_row` rows come from here.
    pub fn run_sweeps_timed<T: Copy + Send + Sync>(
        &self,
        src: &[T],
        dst: &mut [T],
        scratch: &mut [T],
    ) -> [Duration; 3] {
        self.check_lengths(src, dst, scratch);
        let [s1, s2, s3] = self.sources();
        let t0 = Instant::now();
        gather_transpose(src, s1, self.layouts[0], dst, &self.config);
        let t1 = Instant::now();
        gather_transpose(dst, s2, self.layouts[1], scratch, &self.config);
        let t2 = Instant::now();
        row_pass(scratch, s3, self.layouts[2], dst, &self.config);
        [t1 - t0, t2 - t1, t2.elapsed()]
    }

    fn check_lengths<T>(&self, src: &[T], dst: &[T], scratch: &[T]) {
        let n = self.len();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        assert_eq!(scratch.len(), n, "scratch length mismatch");
    }

    /// The seed's five-pass execution, kept as the benchmark reference
    /// the fused path is measured against: row gather (with the
    /// per-element `pos % cols` row lookup the seed used), blocked
    /// transpose, row gather, blocked transpose, row gather, with the two
    /// scratch buffers the seed's `run` allocated per call. Runs the
    /// scalar kernel tier regardless of this schedule's config.
    pub fn run_unfused<T: Copy + Send + Sync + Default>(&self, src: &[T], dst: &mut [T]) {
        let n = self.len();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        let (r, c) = (self.shape.rows, self.shape.cols);
        let scalar = KernelConfig::scalar();
        let mut t1 = vec![T::default(); n];
        let mut t2 = vec![T::default(); n];
        row_pass_seed(src, &self.g1, c, &mut t1);
        transpose_blocked(&t1, r, c, &mut t2, &scalar);
        row_pass_seed(&t2, &self.g2, r, &mut t1);
        transpose_blocked(&t1, c, r, &mut t2, &scalar);
        row_pass_seed(&t2, &self.g3, c, dst);
    }
}

/// How a sweep's gather indices reach the kernels: loaded from a
/// materialized flat map, or computed in registers from the plan's
/// affine descriptor. Mirrors `hmm_backend::IndexSource`, kept local so
/// the hot paths stay free of cross-crate enum matching concerns.
#[derive(Clone, Copy)]
enum IndexSrc<'a> {
    /// Plan-sized flat map, one entry per element.
    Map(&'a [u32]),
    /// Affine descriptor: O(log n) masks folded per element.
    Affine(&'a AffineStep),
}

/// Row-local gather: `out[row][k] = in[row][g[row*cols + k]]`, parallel
/// over bands of rows.
///
/// Band chunks are always whole rows (the band length is a multiple of
/// `cols`), so the row base is hoisted out of the inner loop — the seed
/// computed `pos % cols` per element. The inner gather runs the
/// config-selected kernel tier. On the map path the next row's slice of
/// the gather map is prefetched while the current row is gathered; the
/// computed path has no map stream to prefetch — that absent stream is
/// the optimization.
fn row_pass<T: Copy + Send + Sync>(
    input: &[T],
    g: IndexSrc<'_>,
    layout: PassLayout,
    out: &mut [T],
    cfg: &KernelConfig,
) {
    debug_assert_eq!(input.len(), out.len());
    debug_assert!(!layout.fused_transpose);
    let cols = layout.cols;
    let rows = out.len() / cols;
    debug_assert_eq!(rows, layout.rows);
    let tier = simd::select::<T>(cfg.simd);
    let band = rows_per_band(rows) * cols;
    match g {
        IndexSrc::Map(g) => {
            debug_assert_eq!(g.len(), out.len());
            par_chunks_mut(out, band, |start, chunk| {
                debug_assert_eq!(start % cols, 0);
                debug_assert_eq!(chunk.len() % cols, 0);
                for (rr, out_row) in chunk.chunks_exact_mut(cols).enumerate() {
                    let base = start + rr * cols;
                    if cfg.prefetch {
                        if let Some(next_map) = g.get(base + cols..base + 2 * cols) {
                            simd::prefetch_lines(next_map);
                        }
                    }
                    simd::gather_row(
                        tier,
                        &input[base..base + cols],
                        &g[base..base + cols],
                        out_row,
                    );
                }
            });
        }
        IndexSrc::Affine(step) => {
            debug_assert_eq!(step.col_bits(), cols.trailing_zeros());
            let aff = simd::AffineRow::new(step.lo_masks());
            par_chunks_mut(out, band, |start, chunk| {
                debug_assert_eq!(start % cols, 0);
                let row0 = start / cols;
                for (rr, out_row) in chunk.chunks_exact_mut(cols).enumerate() {
                    let base = (row0 + rr) * cols;
                    simd::gather_row_affine(
                        tier,
                        &input[base..base + cols],
                        &aff,
                        step.row_base(row0 + rr),
                        0,
                        out_row,
                    );
                }
            });
        }
    }
}

/// The seed's row-local gather, unchanged: recomputes the row base with a
/// `pos % cols` division on every element. Used only by
/// [`NativeScheduled::run_unfused`] so benchmarks measure the fused path
/// against exactly what shipped before.
fn row_pass_seed<T: Copy + Send + Sync>(input: &[T], g: &[u32], cols: usize, out: &mut [T]) {
    debug_assert_eq!(input.len(), out.len());
    debug_assert_eq!(g.len(), out.len());
    let rows = out.len() / cols;
    let band = rows_per_band(rows) * cols;
    par_chunks_mut(out, band, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let pos = start + off;
            let row_base = pos - pos % cols;
            *slot = input[row_base + g[pos] as usize];
        }
    });
}

/// Fused row-gather + transpose: for a `rows × cols` input,
/// `out[j*rows + i] = input[i*cols + g[i*cols + j]]` — i.e. apply the
/// per-row gather `g` and store the result transposed (`cols × rows`), in
/// one sweep over memory, through the double-buffered block pipeline
/// described in the module docs.
///
/// The input and the gather map are streamed from memory exactly once and
/// the output is written exactly once; the staging buffers
/// (≤ `cfg.stage_bytes` each) never leave the cache.
fn gather_transpose<T: Copy + Send + Sync>(
    input: &[T],
    g: IndexSrc<'_>,
    layout: PassLayout,
    out: &mut [T],
    cfg: &KernelConfig,
) {
    let (rows, cols) = (layout.rows, layout.cols);
    debug_assert!(layout.fused_transpose);
    debug_assert_eq!(input.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    if let IndexSrc::Map(g) = g {
        debug_assert_eq!(g.len(), rows * cols);
    }
    if input.is_empty() {
        return;
    }
    let tile = cfg.tile.max(8);
    let tier = simd::select::<T>(cfg.simd);
    // Each worker owns a band of output rows that is a multiple of the
    // tile (or the ragged tail), so tile boundaries never straddle two
    // workers.
    let band_rows = rows_per_band(cols).next_multiple_of(tile);
    let seed = input[0];
    par_chunks_mut_exact(out, band_rows * rows, |start, chunk| {
        let out_row0 = start / rows;
        let out_rows = chunk.len() / rows;
        // Input rows staged per block: block × out_rows elements, sized
        // by the plan's layout hint against the staging budget.
        let block = layout.staging_rows(size_of::<T>(), cfg.stage_bytes, out_rows);
        let buf_len = block * out_rows;
        // A single block needs no second buffer regardless of depth.
        let depth = if block >= rows {
            1
        } else {
            cfg.depth.clamp(1, 2)
        };
        stage::with_stage(buf_len * depth, seed, |stage_buf| {
            if depth == 2 {
                // Double-buffered: gather block k+1 into the idle buffer
                // *before* transposing block k out of the other, so the
                // core overlaps the next block's gather misses with this
                // block's transpose stores.
                gather_block(GatherArgs {
                    input,
                    g,
                    rows,
                    cols,
                    out_row0,
                    out_rows,
                    i0: 0,
                    imax: block.min(rows),
                    tier,
                    prefetch: cfg.prefetch,
                    temp: &mut stage_buf[..buf_len],
                });
                let mut parity = 0usize;
                let mut i0 = 0;
                while i0 < rows {
                    let imax = (i0 + block).min(rows);
                    let (a, b) = stage_buf.split_at_mut(buf_len);
                    let (cur, next) = if parity == 0 { (a, b) } else { (b, a) };
                    if imax < rows {
                        let nmax = (imax + block).min(rows);
                        gather_block(GatherArgs {
                            input,
                            g,
                            rows,
                            cols,
                            out_row0,
                            out_rows,
                            i0: imax,
                            imax: nmax,
                            tier,
                            prefetch: cfg.prefetch,
                            temp: &mut next[..(nmax - imax) * out_rows],
                        });
                    }
                    transpose_block(
                        &cur[..(imax - i0) * out_rows],
                        out_rows,
                        i0,
                        rows,
                        tile,
                        tier,
                        chunk,
                    );
                    parity ^= 1;
                    i0 = imax;
                }
            } else {
                // Single buffer: the seed's strict alternation.
                let mut i0 = 0;
                while i0 < rows {
                    let imax = (i0 + block).min(rows);
                    let blk = imax - i0;
                    gather_block(GatherArgs {
                        input,
                        g,
                        rows,
                        cols,
                        out_row0,
                        out_rows,
                        i0,
                        imax,
                        tier,
                        prefetch: cfg.prefetch,
                        temp: &mut stage_buf[..blk * out_rows],
                    });
                    transpose_block(
                        &stage_buf[..blk * out_rows],
                        out_rows,
                        i0,
                        rows,
                        tile,
                        tier,
                        chunk,
                    );
                    i0 = imax;
                }
            }
        });
    });
}

/// Arguments for one gather stage: rows `i0..imax` of the band into the
/// staging buffer (a struct, because nine positional parameters invite
/// transposition bugs).
struct GatherArgs<'a, T> {
    input: &'a [T],
    g: IndexSrc<'a>,
    rows: usize,
    cols: usize,
    out_row0: usize,
    out_rows: usize,
    i0: usize,
    imax: usize,
    tier: Tier,
    prefetch: bool,
    temp: &'a mut [T],
}

/// Gather stage: stage rows `i0..imax` (this worker's `out_rows`-wide
/// slice of each) into `temp`, row-major. On the map path, while row `i`
/// is gathered the same row of the *next* block's gather-map slice is
/// prefetched — the map is the one stream the hardware prefetcher cannot
/// anticipate across the block-strided access pattern. The computed
/// path folds each index in registers instead, so there is no map
/// stream to fetch, prefetch, or evict data with.
fn gather_block<T: Copy>(args: GatherArgs<'_, T>) {
    let GatherArgs {
        input,
        g,
        rows,
        cols,
        out_row0,
        out_rows,
        i0,
        imax,
        tier,
        prefetch,
        temp,
    } = args;
    debug_assert_eq!(temp.len(), (imax - i0) * out_rows);
    let block = imax - i0;
    match g {
        IndexSrc::Map(g) => {
            for i in i0..imax {
                if prefetch {
                    let pi = i + block;
                    if pi < rows {
                        simd::prefetch_lines(
                            &g[pi * cols + out_row0..pi * cols + out_row0 + out_rows],
                        );
                    }
                }
                let in_row = &input[i * cols..(i + 1) * cols];
                let g_row = &g[i * cols + out_row0..i * cols + out_row0 + out_rows];
                let t_row = &mut temp[(i - i0) * out_rows..(i - i0 + 1) * out_rows];
                simd::gather_row(tier, in_row, g_row, t_row);
            }
        }
        IndexSrc::Affine(step) => {
            let aff = simd::AffineRow::new(step.lo_masks());
            for i in i0..imax {
                let in_row = &input[i * cols..(i + 1) * cols];
                let t_row = &mut temp[(i - i0) * out_rows..(i - i0 + 1) * out_rows];
                simd::gather_row_affine(tier, in_row, &aff, step.row_base(i), out_row0, t_row);
            }
        }
    }
}

/// Transpose stage: `blk × out_rows` staging buffer `temp` out into the
/// band's columns `i0..i0+blk` — vector tiles when the tier has them,
/// the seed's tile loop otherwise.
fn transpose_block<T: Copy>(
    temp: &[T],
    out_rows: usize,
    i0: usize,
    rows: usize,
    tile: usize,
    tier: Tier,
    chunk: &mut [T],
) {
    let blk = temp.len() / out_rows.max(1);
    if simd::transpose_strided(tier, temp, 0, out_rows, chunk, i0, rows, blk, out_rows) {
        return;
    }
    let mut jj0 = 0;
    while jj0 < out_rows {
        let jjmax = (jj0 + tile).min(out_rows);
        for jj in jj0..jjmax {
            let run = &mut chunk[jj * rows + i0..jj * rows + i0 + blk];
            for (k, slot) in run.iter_mut().enumerate() {
                *slot = temp[k * out_rows + jj];
            }
        }
        jj0 = jjmax;
    }
}

/// Cache-blocked transpose of a `rows × cols` row-major matrix into a
/// `cols × rows` one, parallel over bands of output rows, with vector
/// tiles inside each cache block when the config's tier has them. Used
/// only by the unfused reference path (which passes the scalar config)
/// and its tests.
fn transpose_blocked<T: Copy + Send + Sync>(
    input: &[T],
    rows: usize,
    cols: usize,
    out: &mut [T],
    cfg: &KernelConfig,
) {
    debug_assert_eq!(input.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    let tile = cfg.tile.max(1);
    let tier = simd::select::<T>(cfg.simd);
    let band_rows = rows_per_band(cols).next_multiple_of(tile);
    par_chunks_mut_exact(out, band_rows * rows, |start, chunk| {
        let out_row0 = start / rows;
        let out_rows = chunk.len() / rows;
        let mut jr0 = 0;
        while jr0 < out_rows {
            let jrmax = (jr0 + tile).min(out_rows);
            let mut i0 = 0;
            while i0 < rows {
                let imax = (i0 + tile).min(rows);
                // chunk[jr*rows + i] = input[i*cols + out_row0 + jr]
                if !simd::transpose_strided(
                    tier,
                    input,
                    i0 * cols + out_row0 + jr0,
                    cols,
                    chunk,
                    jr0 * rows + i0,
                    rows,
                    imax - i0,
                    jrmax - jr0,
                ) {
                    for jr in jr0..jrmax {
                        let out_base = jr * rows;
                        for i in i0..imax {
                            chunk[out_base + i] = input[i * cols + out_row0 + jr];
                        }
                    }
                }
                i0 = imax;
            }
            jr0 = jrmax;
        }
    });
}

/// Rows per parallel band: enough rows that each worker gets a contiguous,
/// reasonably large piece.
fn rows_per_band(rows: usize) -> usize {
    rows.div_ceil(worker_threads()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 32;

    fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    fn fused_layout(rows: usize, cols: usize) -> PassLayout {
        PassLayout {
            rows,
            cols,
            fused_transpose: true,
        }
    }

    #[test]
    fn correct_for_all_families() {
        let n = 1 << 12;
        let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(2654435761)).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 71).unwrap();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, reference(&p, &src), "{}", fam.name());
        }
    }

    #[test]
    fn correct_for_rectangular_sizes() {
        for n in [1 << 11, 1 << 13] {
            let p = families::random(n, 72);
            let src: Vec<u32> = (0..n as u32).collect();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, reference(&p, &src), "n = {n}");
        }
    }

    #[test]
    fn agrees_with_scatter_backend() {
        let n = 1 << 14;
        let p = families::random(n, 73);
        let src: Vec<u32> = (0..n as u32).collect();
        let sched = NativeScheduled::build(&p, W).unwrap();
        let mut via_sched = vec![0u32; n];
        sched.run(&src, &mut via_sched);
        let mut via_scatter = vec![0u32; n];
        crate::scatter::scatter_permute(&src, &p, &mut via_scatter);
        assert_eq!(via_sched, via_scatter);
    }

    #[test]
    fn fused_matches_unfused_for_all_families() {
        let n = 1 << 13;
        let src: Vec<u32> = (0..n as u32).map(|v| v.rotate_left(7)).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 9).unwrap();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut fused = vec![0u32; n];
            sched.run(&src, &mut fused);
            let mut unfused = vec![0u32; n];
            sched.run_unfused(&src, &mut unfused);
            assert_eq!(fused, unfused, "{}", fam.name());
        }
    }

    #[test]
    fn run_with_scratch_reuses_buffers() {
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let sched = NativeScheduled::build(&p, W).unwrap();
        let src: Vec<u64> = (0..n as u64).collect();
        let mut dst = vec![0u64; n];
        let mut scratch = vec![0u64; sched.scratch_len()];
        for _ in 0..3 {
            sched.run_with_scratch(&src, &mut dst, &mut scratch);
        }
        assert_eq!(dst, reference_u64(&p, &src));
    }

    fn reference_u64(p: &Permutation, src: &[u64]) -> Vec<u64> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn build_shared_plan_recomposes() {
        let n = 1 << 10;
        let p = families::random(n, 5);
        let (sched, ir) = NativeScheduled::build_shared(&p, W).unwrap();
        assert_eq!(sched.shape(), ir.shape());
        assert!(ir.matches(&p));
        assert_eq!(ir.recompose().as_slice(), p.as_slice());
    }

    #[test]
    fn from_plan_matches_direct_build() {
        let n = 1 << 10;
        let p = families::random(n, 6);
        let ir = PlanIr::build(&p, W).unwrap();
        let via_plan = NativeScheduled::from_plan(&ir).unwrap();
        let src: Vec<u32> = (0..n as u32).collect();
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        via_plan.run(&src, &mut a);
        NativeScheduled::build(&p, W).unwrap().run(&src, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, reference(&p, &src));
    }

    #[test]
    fn every_config_point_is_byte_identical() {
        let n = 1 << 12;
        let p = families::random(n, 77);
        let ir = PlanIr::build(&p, W).unwrap();
        let src: Vec<u32> = (0..n as u32).map(|v| v ^ 0x5a5a).collect();
        let want = reference(&p, &src);
        let configs = [
            KernelConfig::scalar(),
            KernelConfig::default(),
            KernelConfig {
                depth: 1,
                ..Default::default()
            },
            KernelConfig {
                stage_bytes: 4096, // many block tails
                tile: 8,
                ..Default::default()
            },
            KernelConfig {
                simd: false,
                depth: 2,
                prefetch: true,
                ..Default::default()
            },
        ];
        for cfg in configs {
            let sched = NativeScheduled::from_plan_with(&ir, cfg).unwrap();
            assert_eq!(sched.kernel_config(), cfg);
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, want, "{cfg:?}");
        }
    }

    #[test]
    fn computed_index_is_byte_identical_across_configs_and_widths() {
        // The full computed-index differential: for every structured
        // family that carries descriptors, the computed kernels (every
        // tier, both staging depths, ragged block shapes) must reproduce
        // the map-loaded scalar reference byte for byte, at u32 and u64.
        let n = 1 << 13;
        let src32: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(2654435761)).collect();
        let src64: Vec<u64> = (0..n as u64).map(|v| v << 32 | v ^ 0xabcd).collect();
        let configs = [
            KernelConfig::default(),
            KernelConfig {
                simd: false,
                ..KernelConfig::default()
            },
            KernelConfig {
                depth: 1,
                stage_bytes: 4096,
                tile: 8,
                ..KernelConfig::default()
            },
        ];
        for fam in families::Family::ALL {
            let p = fam.build(n, 13).unwrap();
            let ir = PlanIr::build(&p, W).unwrap();
            let reference = NativeScheduled::from_plan_with(&ir, KernelConfig::scalar()).unwrap();
            assert!(!reference.computed_index(), "scalar forces map loads");
            let mut want32 = vec![0u32; n];
            reference.run(&src32, &mut want32);
            let mut want64 = vec![0u64; n];
            reference.run(&src64, &mut want64);
            for cfg in configs {
                let sched = NativeScheduled::from_plan_with(&ir, cfg).unwrap();
                assert_eq!(sched.computed_index(), ir.affine().is_some());
                let mut got32 = vec![0u32; n];
                sched.run(&src32, &mut got32);
                assert_eq!(got32, want32, "{} {cfg:?}", fam.name());
                let mut got64 = vec![0u64; n];
                sched.run(&src64, &mut got64);
                assert_eq!(got64, want64, "{} {cfg:?}", fam.name());
            }
        }
    }

    #[test]
    fn computed_index_flag_is_config_driven() {
        let p = families::bit_reversal(1 << 10).unwrap();
        let ir = PlanIr::build(&p, W).unwrap();
        assert!(ir.affine().is_some());
        let on = NativeScheduled::from_plan_with(&ir, KernelConfig::default()).unwrap();
        assert!(on.computed_index());
        let off = on.clone().with_config(KernelConfig {
            computed_index: false,
            ..KernelConfig::default()
        });
        assert!(!off.computed_index());
        // Random plans have no descriptors: the flag alone is not enough.
        let pr = families::random(1 << 10, 3);
        let irr = PlanIr::build(&pr, W).unwrap();
        let sched = NativeScheduled::from_plan_with(&irr, KernelConfig::default()).unwrap();
        assert!(!sched.computed_index());
    }

    #[test]
    fn computed_index_handles_ragged_worker_bands() {
        // Rectangular shape (r != c) at a size where worker bands and
        // block tails land on unaligned column offsets — the j0 seams of
        // the affine gather.
        let n = 1 << 11;
        let p = families::shuffle(n).unwrap();
        let ir = PlanIr::build(&p, W).unwrap();
        let src: Vec<u32> = (0..n as u32).collect();
        let want = reference(&p, &src);
        for stage_bytes in [1 << 9, 1 << 12, 1 << 18] {
            let cfg = KernelConfig {
                stage_bytes,
                ..KernelConfig::default()
            };
            let sched = NativeScheduled::from_plan_with(&ir, cfg).unwrap();
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, want, "stage_bytes={stage_bytes}");
        }
    }

    #[test]
    fn run_sweeps_timed_matches_run() {
        let n = 1 << 12;
        let p = families::random(n, 78);
        let sched = NativeScheduled::build(&p, W).unwrap();
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut scratch = vec![0u32; n];
        let sweeps = sched.run_sweeps_timed(&src, &mut dst, &mut scratch);
        assert_eq!(dst, reference(&p, &src));
        assert!(sweeps.iter().all(|d| *d > Duration::ZERO));
    }

    #[test]
    fn transpose_blocked_is_correct() {
        for cfg in [KernelConfig::scalar(), KernelConfig::default()] {
            for (r, c) in [(64, 64), (64, 128), (128, 64), (192, 320), (33, 57)] {
                let input: Vec<u32> = (0..(r * c) as u32).collect();
                let mut out = vec![0u32; r * c];
                transpose_blocked(&input, r, c, &mut out, &cfg);
                for i in 0..r {
                    for j in 0..c {
                        assert_eq!(out[j * r + i], input[i * c + j], "({i},{j}) r={r} c={c}");
                    }
                }
            }
        }
    }

    #[test]
    fn gather_transpose_with_identity_gather_is_transpose() {
        for cfg in [KernelConfig::scalar(), KernelConfig::default()] {
            for (r, c) in [(64, 64), (64, 128), (192, 320)] {
                let input: Vec<u32> = (0..(r * c) as u32).collect();
                let identity: Vec<u32> = (0..r).flat_map(|_| 0..c as u32).collect();
                let mut fused = vec![0u32; r * c];
                gather_transpose(
                    &input,
                    IndexSrc::Map(&identity),
                    fused_layout(r, c),
                    &mut fused,
                    &cfg,
                );
                let mut plain = vec![0u32; r * c];
                transpose_blocked(&input, r, c, &mut plain, &cfg);
                assert_eq!(fused, plain, "r={r} c={c} {cfg:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn size_mismatch_panics() {
        let p = families::random(1 << 10, 1);
        let sched = NativeScheduled::build(&p, W).unwrap();
        let src = vec![0u32; 1 << 10];
        let mut dst = vec![0u32; 512];
        sched.run(&src, &mut dst);
    }

    #[test]
    fn accessors() {
        let p = families::random(1 << 10, 2);
        let sched = NativeScheduled::build(&p, W).unwrap();
        assert_eq!(sched.len(), 1 << 10);
        assert!(!sched.is_empty());
        assert_eq!(sched.shape().len(), 1 << 10);
        assert_eq!(sched.scratch_len(), 1 << 10);
        let cfg = sched.kernel_config();
        let scalar = sched.clone().with_config(KernelConfig::scalar());
        assert_eq!(scalar.kernel_config(), KernelConfig::scalar());
        assert_eq!(cfg.tile, KernelConfig::global().tile);
    }
}
