//! The scheduled permutation on a real CPU: the same five-pass structure
//! as the GPU implementation (row pass, transpose, row pass, transpose,
//! row pass), with cache-blocked transposes and row-local gathers.
//!
//! Every pass reads or writes memory sequentially (or within a row /
//! blocked tile), so its cache-line and TLB behaviour is the CPU analog of
//! coalesced access — whereas the direct scatter of
//! [`crate::scatter::scatter_permute`] touches a new cache line per element
//! for high-distribution permutations. This is the wall-clock counterpart
//! of the paper's Table II comparison.

use crate::par::{par_chunks_mut, par_chunks_mut_exact, worker_threads};
use hmm_offperm::schedule::Decomposition;
use hmm_offperm::Result;
use hmm_perm::{MatrixShape, Permutation};

/// Blocked-transpose tile side (elements). 64×64 u32 tiles are 16 KB —
/// comfortably L1/L2-resident on anything current.
const TILE: usize = 64;

/// A CPU-executable scheduled permutation: the three-step decomposition
/// with per-row *gather* maps (destination-ordered) precomputed.
#[derive(Debug, Clone)]
pub struct NativeScheduled {
    shape: MatrixShape,
    /// Pass 1 gather map, flattened `r × c`: `out[i][k] = in[i][g1[i*c+k]]`.
    g1: Vec<u32>,
    /// Pass 2 gather map on the transposed matrix, flattened `c × r`.
    g2: Vec<u32>,
    /// Pass 3 gather map, flattened `r × c`.
    g3: Vec<u32>,
}

impl NativeScheduled {
    /// Build from a permutation; `width` is the tiling constraint handed to
    /// the decomposition (any power of two dividing both matrix dimensions
    /// — 32 matches the GPU schedule and is always safe here).
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        let d = Decomposition::build(p, width)?;
        Ok(Self::from_decomposition(&d))
    }

    /// Build from an existing decomposition (shared with a simulator run).
    pub fn from_decomposition(d: &Decomposition) -> Self {
        let shape = d.shape;
        let (r, c) = (shape.rows, shape.cols);
        let row_gathers = |perms: &[Permutation], cols: usize| -> Vec<u32> {
            let mut g = vec![0u32; perms.len() * cols];
            for (i, p) in perms.iter().enumerate() {
                let inv = p.inverse();
                let row = &mut g[i * cols..(i + 1) * cols];
                for (k, slot) in row.iter_mut().enumerate() {
                    *slot = inv.apply(k) as u32;
                }
            }
            g
        };
        NativeScheduled {
            shape,
            g1: row_gathers(&d.step1_rows, c),
            g2: row_gathers(&d.step2_cols, r),
            g3: row_gathers(&d.step3_rows, c),
        }
    }

    /// The matrix shape of the passes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True for a zero-element schedule (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute `dst[P[i]] = src[i]`, allocating two scratch buffers.
    ///
    /// # Panics
    /// Panics if `src` or `dst` length differs from the schedule's `n`.
    pub fn run<T: Copy + Send + Sync + Default>(&self, src: &[T], dst: &mut [T]) {
        let mut t1 = vec![T::default(); self.len()];
        let mut t2 = vec![T::default(); self.len()];
        self.run_with_scratch(src, dst, &mut t1, &mut t2);
    }

    /// Execute with caller-provided scratch (both of length `n`) to keep
    /// benchmarks allocation-free.
    pub fn run_with_scratch<T: Copy + Send + Sync>(
        &self,
        src: &[T],
        dst: &mut [T],
        t1: &mut [T],
        t2: &mut [T],
    ) {
        let n = self.len();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        assert_eq!(t1.len(), n, "t1 length mismatch");
        assert_eq!(t2.len(), n, "t2 length mismatch");
        let (r, c) = (self.shape.rows, self.shape.cols);
        // Pass 1 (row-wise, r×c): src -> t1.
        row_pass(src, &self.g1, c, t1);
        // Pass 2a (transpose r×c -> c×r): t1 -> t2.
        transpose_blocked(t1, r, c, t2);
        // Pass 2b (row-wise on c×r): t2 -> t1.
        row_pass(t2, &self.g2, r, t1);
        // Pass 2c (transpose c×r -> r×c): t1 -> t2.
        transpose_blocked(t1, c, r, t2);
        // Pass 3 (row-wise, r×c): t2 -> dst.
        row_pass(t2, &self.g3, c, dst);
    }
}

/// Row-local gather: `out[row][k] = in[row][g[row*cols + k]]`, parallel
/// over bands of rows.
fn row_pass<T: Copy + Send + Sync>(input: &[T], g: &[u32], cols: usize, out: &mut [T]) {
    debug_assert_eq!(input.len(), out.len());
    debug_assert_eq!(g.len(), out.len());
    let rows = out.len() / cols;
    let band = rows_per_band(rows) * cols;
    par_chunks_mut(out, band, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let pos = start + off;
            let row_base = pos - pos % cols;
            *slot = input[row_base + g[pos] as usize];
        }
    });
}

/// Cache-blocked transpose of a `rows × cols` row-major matrix into a
/// `cols × rows` one, parallel over bands of output rows.
fn transpose_blocked<T: Copy + Send + Sync>(input: &[T], rows: usize, cols: usize, out: &mut [T]) {
    debug_assert_eq!(input.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    // Each worker owns a band of output rows that is a multiple of TILE (or
    // the ragged tail), so tile boundaries never straddle two workers.
    let band_rows = rows_per_band(cols).next_multiple_of(TILE);
    par_chunks_mut_exact(out, band_rows * rows, |start, chunk| {
        let out_row0 = start / rows;
        let out_rows = chunk.len() / rows;
        // Tiles: output rows [out_row0, out_row0+out_rows) x input rows.
        let mut j0 = out_row0;
        while j0 < out_row0 + out_rows {
            let jmax = (j0 + TILE).min(out_row0 + out_rows);
            let mut i0 = 0;
            while i0 < rows {
                let imax = (i0 + TILE).min(rows);
                for j in j0..jmax {
                    let out_base = (j - out_row0) * rows;
                    for i in i0..imax {
                        chunk[out_base + i] = input[i * cols + j];
                    }
                }
                i0 = imax;
            }
            j0 = jmax;
        }
    });
}

/// Rows per parallel band: enough rows that each worker gets a contiguous,
/// reasonably large piece.
fn rows_per_band(rows: usize) -> usize {
    rows.div_ceil(worker_threads()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 32;

    fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn correct_for_all_families() {
        let n = 1 << 12;
        let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(2654435761)).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 71).unwrap();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, reference(&p, &src), "{}", fam.name());
        }
    }

    #[test]
    fn correct_for_rectangular_sizes() {
        for n in [1 << 11, 1 << 13] {
            let p = families::random(n, 72);
            let src: Vec<u32> = (0..n as u32).collect();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, reference(&p, &src), "n = {n}");
        }
    }

    #[test]
    fn agrees_with_scatter_backend() {
        let n = 1 << 14;
        let p = families::random(n, 73);
        let src: Vec<u32> = (0..n as u32).collect();
        let sched = NativeScheduled::build(&p, W).unwrap();
        let mut via_sched = vec![0u32; n];
        sched.run(&src, &mut via_sched);
        let mut via_scatter = vec![0u32; n];
        crate::scatter::scatter_permute(&src, &p, &mut via_scatter);
        assert_eq!(via_sched, via_scatter);
    }

    #[test]
    fn run_with_scratch_reuses_buffers() {
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let sched = NativeScheduled::build(&p, W).unwrap();
        let src: Vec<u64> = (0..n as u64).collect();
        let mut dst = vec![0u64; n];
        let mut t1 = vec![0u64; n];
        let mut t2 = vec![0u64; n];
        for _ in 0..3 {
            sched.run_with_scratch(&src, &mut dst, &mut t1, &mut t2);
        }
        assert_eq!(dst, reference_u64(&p, &src));
    }

    fn reference_u64(p: &Permutation, src: &[u64]) -> Vec<u64> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn transpose_blocked_is_correct() {
        for (r, c) in [(64, 64), (64, 128), (128, 64), (192, 320)] {
            let input: Vec<u32> = (0..(r * c) as u32).collect();
            let mut out = vec![0u32; r * c];
            transpose_blocked(&input, r, c, &mut out);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(out[j * r + i], input[i * c + j], "({i},{j}) r={r} c={c}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn size_mismatch_panics() {
        let p = families::random(1 << 10, 1);
        let sched = NativeScheduled::build(&p, W).unwrap();
        let src = vec![0u32; 1 << 10];
        let mut dst = vec![0u32; 512];
        sched.run(&src, &mut dst);
    }

    #[test]
    fn accessors() {
        let p = families::random(1 << 10, 2);
        let sched = NativeScheduled::build(&p, W).unwrap();
        assert_eq!(sched.len(), 1 << 10);
        assert!(!sched.is_empty());
        assert_eq!(sched.shape().len(), 1 << 10);
    }
}
