//! The scheduled permutation on a real CPU, executed as **three fused
//! memory sweeps**.
//!
//! The GPU implementation (and the simulator) run five passes: row gather,
//! transpose, row gather, transpose, row gather. On the CPU the transposes
//! are pure data movement, so each one is fused into the row gather that
//! precedes it: a single *gather-transpose* sweep reads each input row in
//! the gather order and writes the result transposed. That turns
//!
//! ```text
//! row(g1); transpose; row(g2); transpose; row(g3)     (5 sweeps, 2 scratch)
//! ```
//!
//! into
//!
//! ```text
//! gather_transpose(g1); gather_transpose(g2); row(g3) (3 sweeps, 1 scratch)
//! ```
//!
//! Every sweep still writes memory sequentially (within a blocked tile),
//! and reads stay within one matrix row at a time — a row of a √n-sided
//! matrix fits in L1/L2 — so cache-line and TLB behaviour remains the CPU
//! analog of coalesced access. The unfused five-pass path is kept as
//! [`NativeScheduled::run_unfused`] for benchmarking the fusion win.

use crate::par::{par_chunks_mut, par_chunks_mut_exact, worker_threads};
use hmm_perm::{MatrixShape, Permutation};
use hmm_plan::{PlanIr, Result};

/// Blocked-transpose tile side (elements). 64×64 u32 tiles are 16 KB —
/// comfortably L1/L2-resident on anything current.
const TILE: usize = 64;

/// A CPU-executable scheduled permutation: the three-step decomposition
/// with per-row *gather* maps (destination-ordered) precomputed.
#[derive(Debug, Clone)]
pub struct NativeScheduled {
    shape: MatrixShape,
    /// Sweep 1 gather map, flattened `r × c`: row `i` of the intermediate
    /// is `in[i][g1[i*c + k]]` for `k` in `0..c`.
    g1: Vec<u32>,
    /// Sweep 2 gather map on the transposed matrix, flattened `c × r`.
    g2: Vec<u32>,
    /// Sweep 3 gather map, flattened `r × c`.
    g3: Vec<u32>,
}

impl NativeScheduled {
    /// Build from a permutation; `width` is the tiling constraint handed to
    /// the decomposition (any power of two dividing both matrix dimensions
    /// — 32 matches the GPU schedule and is always safe here).
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        let ir = PlanIr::build_par(p, width, worker_threads())?;
        Ok(Self::from_plan(&ir))
    }

    /// Build and also hand back the backend-neutral plan IR, so the caller
    /// can reuse it — stage a simulator run via `hmm-offperm`'s
    /// `Decomposition::from_ir`, or persist it in an `hmm_plan::PlanStore`
    /// — without paying for the König coloring twice.
    pub fn build_shared(p: &Permutation, width: usize) -> Result<(Self, PlanIr)> {
        let ir = PlanIr::build_par(p, width, worker_threads())?;
        let sched = Self::from_plan(&ir);
        Ok((sched, ir))
    }

    /// Build from an existing plan IR (shared with a simulator run, or
    /// loaded from the on-disk plan store). The IR already carries the
    /// flat gather maps, so this is three copies — no coloring, no
    /// per-row inversion.
    pub fn from_plan(ir: &PlanIr) -> Self {
        NativeScheduled {
            shape: ir.shape(),
            g1: ir.gather1().to_vec(),
            g2: ir.gather2().to_vec(),
            g3: ir.gather3().to_vec(),
        }
    }

    /// The matrix shape of the passes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True for a zero-element schedule (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Required scratch length for [`run_with_scratch`](Self::run_with_scratch).
    pub fn scratch_len(&self) -> usize {
        self.len()
    }

    /// Execute `dst[P[i]] = src[i]`, allocating one scratch buffer.
    ///
    /// # Panics
    /// Panics if `src` or `dst` length differs from the schedule's `n`.
    pub fn run<T: Copy + Send + Sync + Default>(&self, src: &[T], dst: &mut [T]) {
        let mut scratch = vec![T::default(); self.scratch_len()];
        self.run_with_scratch(src, dst, &mut scratch);
    }

    /// Execute with a caller-provided scratch buffer of length `n`,
    /// allocation-free: three fused sweeps, `src → dst → scratch → dst`.
    pub fn run_with_scratch<T: Copy + Send + Sync>(
        &self,
        src: &[T],
        dst: &mut [T],
        scratch: &mut [T],
    ) {
        let n = self.len();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        assert_eq!(scratch.len(), n, "scratch length mismatch");
        let (r, c) = (self.shape.rows, self.shape.cols);
        // Sweep 1: row gather (g1) fused with transpose; r×c -> c×r in dst.
        gather_transpose(src, &self.g1, r, c, dst);
        // Sweep 2: row gather (g2) fused with transpose; c×r -> r×c.
        gather_transpose(dst, &self.g2, c, r, scratch);
        // Sweep 3: plain row gather (g3) on the r×c matrix.
        row_pass(scratch, &self.g3, c, dst);
    }

    /// The seed's five-pass execution, kept verbatim as the benchmark
    /// reference the fused path is measured against: row gather (with the
    /// per-element `pos % cols` row lookup the seed used), blocked
    /// transpose, row gather, blocked transpose, row gather, with the two
    /// scratch buffers the seed's `run` allocated per call.
    pub fn run_unfused<T: Copy + Send + Sync + Default>(&self, src: &[T], dst: &mut [T]) {
        let n = self.len();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        let (r, c) = (self.shape.rows, self.shape.cols);
        let mut t1 = vec![T::default(); n];
        let mut t2 = vec![T::default(); n];
        row_pass_seed(src, &self.g1, c, &mut t1);
        transpose_blocked(&t1, r, c, &mut t2);
        row_pass_seed(&t2, &self.g2, r, &mut t1);
        transpose_blocked(&t1, c, r, &mut t2);
        row_pass_seed(&t2, &self.g3, c, dst);
    }
}

/// Row-local gather: `out[row][k] = in[row][g[row*cols + k]]`, parallel
/// over bands of rows.
///
/// Band chunks are always whole rows (the band length is a multiple of
/// `cols`), so the row base is hoisted out of the inner loop — the seed
/// computed `pos % cols` per element.
fn row_pass<T: Copy + Send + Sync>(input: &[T], g: &[u32], cols: usize, out: &mut [T]) {
    debug_assert_eq!(input.len(), out.len());
    debug_assert_eq!(g.len(), out.len());
    let rows = out.len() / cols;
    let band = rows_per_band(rows) * cols;
    par_chunks_mut(out, band, |start, chunk| {
        debug_assert_eq!(start % cols, 0);
        debug_assert_eq!(chunk.len() % cols, 0);
        for (rr, out_row) in chunk.chunks_exact_mut(cols).enumerate() {
            let base = start + rr * cols;
            let in_row = &input[base..base + cols];
            let g_row = &g[base..base + cols];
            for (slot, &gi) in out_row.iter_mut().zip(g_row) {
                *slot = in_row[gi as usize];
            }
        }
    });
}

/// The seed's row-local gather, unchanged: recomputes the row base with a
/// `pos % cols` division on every element. Used only by
/// [`NativeScheduled::run_unfused`] so benchmarks measure the fused path
/// against exactly what shipped before.
fn row_pass_seed<T: Copy + Send + Sync>(input: &[T], g: &[u32], cols: usize, out: &mut [T]) {
    debug_assert_eq!(input.len(), out.len());
    debug_assert_eq!(g.len(), out.len());
    let rows = out.len() / cols;
    let band = rows_per_band(rows) * cols;
    par_chunks_mut(out, band, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let pos = start + off;
            let row_base = pos - pos % cols;
            *slot = input[row_base + g[pos] as usize];
        }
    });
}

/// Fused row-gather + transpose: for a `rows × cols` input,
/// `out[j*rows + i] = input[i*cols + g[i*cols + j]]` — i.e. apply the
/// per-row gather `g` and store the result transposed (`cols × rows`), in
/// one sweep over memory.
///
/// The gather indices are arbitrary within a row, so unlike the plain
/// transpose there is no cache-line reuse to tile for on the read side.
/// Each worker instead processes its band in *input-row blocks* through a
/// small cache-resident staging buffer:
///
/// 1. gather the block's rows into the buffer (reads stay inside one
///    contiguous row — L1-resident for √n-sided shapes — and buffer writes
///    are sequential, exactly the `row_pass` access pattern);
/// 2. blocked-transpose the buffer into the output band (buffer reads hit
///    L2; output writes are contiguous `block`-element runs).
///
/// The input and the gather map are streamed from memory exactly once and
/// the output is written exactly once; the staging buffer (≤ ~256 KB)
/// never leaves the cache.
fn gather_transpose<T: Copy + Send + Sync>(
    input: &[T],
    g: &[u32],
    rows: usize,
    cols: usize,
    out: &mut [T],
) {
    debug_assert_eq!(input.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    debug_assert_eq!(g.len(), rows * cols);
    // Each worker owns a band of output rows that is a multiple of TILE (or
    // the ragged tail), so tile boundaries never straddle two workers.
    let band_rows = rows_per_band(cols).next_multiple_of(TILE);
    par_chunks_mut_exact(out, band_rows * rows, |start, chunk| {
        let out_row0 = start / rows;
        let out_rows = chunk.len() / rows;
        // Input rows staged per block: block × out_rows elements ≤ ~256 KB.
        let block = (262_144 / (out_rows * core::mem::size_of::<T>()).max(1)).clamp(1, rows);
        let mut temp: Vec<T> = input[..block * out_rows].to_vec();
        let mut i0 = 0;
        while i0 < rows {
            let imax = (i0 + block).min(rows);
            // 1) Gather rows i0..imax into temp ((imax-i0) × out_rows, row-major).
            for i in i0..imax {
                let in_row = &input[i * cols..(i + 1) * cols];
                let g_row = &g[i * cols + out_row0..i * cols + out_row0 + out_rows];
                let t_row = &mut temp[(i - i0) * out_rows..(i - i0 + 1) * out_rows];
                for (slot, &gi) in t_row.iter_mut().zip(g_row) {
                    *slot = in_row[gi as usize];
                }
            }
            // 2) Blocked transpose of temp into the band's columns i0..imax.
            let mut jj0 = 0;
            while jj0 < out_rows {
                let jjmax = (jj0 + TILE).min(out_rows);
                for jj in jj0..jjmax {
                    let run = &mut chunk[jj * rows + i0..jj * rows + imax];
                    for (k, slot) in run.iter_mut().enumerate() {
                        *slot = temp[k * out_rows + jj];
                    }
                }
                jj0 = jjmax;
            }
            i0 = imax;
        }
    });
}

/// Cache-blocked transpose of a `rows × cols` row-major matrix into a
/// `cols × rows` one, parallel over bands of output rows. Used only by the
/// unfused reference path.
fn transpose_blocked<T: Copy + Send + Sync>(input: &[T], rows: usize, cols: usize, out: &mut [T]) {
    debug_assert_eq!(input.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    let band_rows = rows_per_band(cols).next_multiple_of(TILE);
    par_chunks_mut_exact(out, band_rows * rows, |start, chunk| {
        let out_row0 = start / rows;
        let out_rows = chunk.len() / rows;
        let mut j0 = out_row0;
        while j0 < out_row0 + out_rows {
            let jmax = (j0 + TILE).min(out_row0 + out_rows);
            let mut i0 = 0;
            while i0 < rows {
                let imax = (i0 + TILE).min(rows);
                for j in j0..jmax {
                    let out_base = (j - out_row0) * rows;
                    for i in i0..imax {
                        chunk[out_base + i] = input[i * cols + j];
                    }
                }
                i0 = imax;
            }
            j0 = jmax;
        }
    });
}

/// Rows per parallel band: enough rows that each worker gets a contiguous,
/// reasonably large piece.
fn rows_per_band(rows: usize) -> usize {
    rows.div_ceil(worker_threads()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 32;

    fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn correct_for_all_families() {
        let n = 1 << 12;
        let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(2654435761)).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 71).unwrap();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, reference(&p, &src), "{}", fam.name());
        }
    }

    #[test]
    fn correct_for_rectangular_sizes() {
        for n in [1 << 11, 1 << 13] {
            let p = families::random(n, 72);
            let src: Vec<u32> = (0..n as u32).collect();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut dst = vec![0u32; n];
            sched.run(&src, &mut dst);
            assert_eq!(dst, reference(&p, &src), "n = {n}");
        }
    }

    #[test]
    fn agrees_with_scatter_backend() {
        let n = 1 << 14;
        let p = families::random(n, 73);
        let src: Vec<u32> = (0..n as u32).collect();
        let sched = NativeScheduled::build(&p, W).unwrap();
        let mut via_sched = vec![0u32; n];
        sched.run(&src, &mut via_sched);
        let mut via_scatter = vec![0u32; n];
        crate::scatter::scatter_permute(&src, &p, &mut via_scatter);
        assert_eq!(via_sched, via_scatter);
    }

    #[test]
    fn fused_matches_unfused_for_all_families() {
        let n = 1 << 13;
        let src: Vec<u32> = (0..n as u32).map(|v| v.rotate_left(7)).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 9).unwrap();
            let sched = NativeScheduled::build(&p, W).unwrap();
            let mut fused = vec![0u32; n];
            sched.run(&src, &mut fused);
            let mut unfused = vec![0u32; n];
            sched.run_unfused(&src, &mut unfused);
            assert_eq!(fused, unfused, "{}", fam.name());
        }
    }

    #[test]
    fn run_with_scratch_reuses_buffers() {
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let sched = NativeScheduled::build(&p, W).unwrap();
        let src: Vec<u64> = (0..n as u64).collect();
        let mut dst = vec![0u64; n];
        let mut scratch = vec![0u64; sched.scratch_len()];
        for _ in 0..3 {
            sched.run_with_scratch(&src, &mut dst, &mut scratch);
        }
        assert_eq!(dst, reference_u64(&p, &src));
    }

    fn reference_u64(p: &Permutation, src: &[u64]) -> Vec<u64> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn build_shared_plan_recomposes() {
        let n = 1 << 10;
        let p = families::random(n, 5);
        let (sched, ir) = NativeScheduled::build_shared(&p, W).unwrap();
        assert_eq!(sched.shape(), ir.shape());
        assert!(ir.matches(&p));
        assert_eq!(ir.recompose().as_slice(), p.as_slice());
    }

    #[test]
    fn from_plan_matches_direct_build() {
        let n = 1 << 10;
        let p = families::random(n, 6);
        let ir = PlanIr::build(&p, W).unwrap();
        let via_plan = NativeScheduled::from_plan(&ir);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        via_plan.run(&src, &mut a);
        NativeScheduled::build(&p, W).unwrap().run(&src, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, reference(&p, &src));
    }

    #[test]
    fn transpose_blocked_is_correct() {
        for (r, c) in [(64, 64), (64, 128), (128, 64), (192, 320)] {
            let input: Vec<u32> = (0..(r * c) as u32).collect();
            let mut out = vec![0u32; r * c];
            transpose_blocked(&input, r, c, &mut out);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(out[j * r + i], input[i * c + j], "({i},{j}) r={r} c={c}");
                }
            }
        }
    }

    #[test]
    fn gather_transpose_with_identity_gather_is_transpose() {
        for (r, c) in [(64, 64), (64, 128), (192, 320)] {
            let input: Vec<u32> = (0..(r * c) as u32).collect();
            let identity: Vec<u32> = (0..r).flat_map(|_| 0..c as u32).collect();
            let mut fused = vec![0u32; r * c];
            gather_transpose(&input, &identity, r, c, &mut fused);
            let mut plain = vec![0u32; r * c];
            transpose_blocked(&input, r, c, &mut plain);
            assert_eq!(fused, plain, "r={r} c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn size_mismatch_panics() {
        let p = families::random(1 << 10, 1);
        let sched = NativeScheduled::build(&p, W).unwrap();
        let src = vec![0u32; 1 << 10];
        let mut dst = vec![0u32; 512];
        sched.run(&src, &mut dst);
    }

    #[test]
    fn accessors() {
        let p = families::random(1 << 10, 2);
        let sched = NativeScheduled::build(&p, W).unwrap();
        assert_eq!(sched.len(), 1 << 10);
        assert!(!sched.is_empty());
        assert_eq!(sched.shape().len(), 1 << 10);
        assert_eq!(sched.scratch_len(), 1 << 10);
    }
}
