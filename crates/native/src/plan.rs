//! Plan cache and throughput engine for repeated permutations.
//!
//! Building a scheduled plan is expensive — a König edge-coloring of the
//! r×c transfer matrix plus three gather-map materialisations — while
//! *executing* one is three memory sweeps. Offline permutation workloads
//! (FFT reorderings, matrix layouts, routing tables) apply the same few
//! permutations over and over, so the front door caches built plans in an
//! LRU keyed by a 64-bit fingerprint of the permutation, and keeps a small
//! pool of scratch buffers so steady-state calls allocate nothing.
//!
//! Two front doors share that machinery:
//!
//! * [`SharedEngine`] — the concurrent plan service: usable as `&self`
//!   from any number of threads, with a **sharded** `RwLock` LRU (readers
//!   never contend across shards), **single-flight** plan construction
//!   (N threads requesting the same uncached permutation pay one König
//!   coloring; the rest wait on that build, not on the cache), a
//!   **lock-free** scratch-buffer pool, and [`EngineStats`] counters kept
//!   on atomics so they are readable without locking.
//! * [`Engine`] — the original single-threaded front door, kept as a thin
//!   wrapper over a one-shard [`SharedEngine`] so existing call sites and
//!   the exact LRU semantics are unchanged.
//!
//! Every cache hit verifies the stored permutation against the requested
//! one (an O(n) memcmp, trivial next to the run): a 64-bit fingerprint
//! collision is therefore *detected* rather than silently applying the
//! wrong plan — the mismatch counts as [`EngineStats::collisions`] and the
//! entry is rebuilt for the requested permutation.
//!
//! Below the in-memory LRU sits an optional **tier-2 on-disk store**
//! ([`SharedEngine::with_store`]): scheduled plans are serialized through
//! [`hmm_plan`]'s versioned codec and keyed by `(fingerprint, n, width)`,
//! so a *cold process* pointed at a warm store skips the König coloring
//! entirely ([`EngineStats::builds`] stays 0). Disk is never trusted:
//! every load re-verifies the decoded plan against the requested
//! permutation, and corrupt or colliding files are counted
//! ([`EngineStats::store_rejects`]), deleted, and rebuilt.
//!
//! The engine also chooses the backend per plan: the paper's Table II shows
//! the conventional (scatter) kernel beating the scheduled one when the
//! distribution `γ_w(P)` is small — few distinct destination groups per
//! warp means the single scattered pass is nearly coalesced, and no
//! three-sweep rewrite can beat one sweep. The same crossover exists on the
//! CPU with cache lines in place of address groups, so plans are built with
//! a measured-γ decision: `γ_w(P) ≤ threshold` → scatter, else scheduled.
//! The threshold defaults to the static [`DEFAULT_GAMMA_THRESHOLD`]; set
//! `HMM_NATIVE_CALIBRATE=1` (or call
//! [`SharedEngine::calibrate_gamma_threshold`]) to replace it with a
//! crossover measured on the running host.

use crate::config::KernelConfig;
use crate::queue::{
    BatchHandle, Bounded, JobError, JobHandle, JobReport, JobState, Payload, QueuedJob,
    DEFAULT_QUEUE_CAPACITY,
};
use hmm_backend::{Backend, ExecPlan, Executable, Route};
use hmm_perm::distribution::distribution;
use hmm_perm::{families, Permutation};
use hmm_plan::{PlanError, PlanIr, PlanStore, Result, StoreKey};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError, RwLock, Weak};
use std::time::{Duration, Instant};

/// Default per-shard LRU capacity (plans held at once per shard; the
/// single-shard [`Engine`] therefore defaults to 8 plans total).
pub const DEFAULT_CAPACITY: usize = 8;

/// Default shard count for [`SharedEngine::new`].
pub const DEFAULT_SHARDS: usize = 8;

/// Default γ_w crossover: at or below this measured distribution the
/// scatter kernel wins. One scattered sweep costs about `γ/w` cache lines
/// per element versus the fused path's three sequential sweeps, so the
/// break-even sits in the low single digits; 4 matches the paper's
/// Table II shape (scatter wins for identical/rotation/shuffle classes,
/// scheduled for random/bit-reversal/transpose).
pub const DEFAULT_GAMMA_THRESHOLD: f64 = 4.0;

/// Scratch buffers retained for reuse.
const SCRATCH_POOL_CAP: usize = 4;

/// Environment variable: set to `1` to run
/// [`SharedEngine::calibrate_gamma_threshold`] automatically at engine
/// construction, replacing [`DEFAULT_GAMMA_THRESHOLD`] with a crossover
/// measured on this host.
pub const CALIBRATE_ENV: &str = "HMM_NATIVE_CALIBRATE";

/// The engine's default fingerprint: [`Permutation::fingerprint`] — the
/// one identity shared by the in-memory cache, the on-disk store, the
/// codec, and the CLI. Two distinct permutations colliding on both
/// fingerprint *and* length is a ~2⁻⁶⁴ event — and since every hit
/// verifies the full image, a collision costs a rebuild rather than a
/// wrong answer.
fn default_fingerprint(p: &Permutation) -> u64 {
    p.fingerprint()
}

/// Best-of-`reps` wall-clock time of `f` — the minimum filters scheduler
/// noise better than a mean at these sub-millisecond scales.
fn min_time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Measure the γ_w crossover between the scatter and scheduled routes
/// on this host, at a probe size large enough to spill the cache hierarchy
/// the way real workloads do. Probes run on `backend` — the crossover
/// belongs to whichever implementation will actually execute the plans.
///
/// Model: a scattered pass costs `a + b·γ` (more destination groups per
/// warp-sized window ⇒ more distinct cache lines touched), while the fused
/// three-sweep costs a γ-independent constant. Two scatter samples (low-γ
/// rotation, high-γ random) pin the line; one scheduled sample pins the
/// constant; the intersection is the crossover. Returns `None` when the
/// width cannot be scheduled at the probe size, the backend lacks a
/// route, or the fitted slope is non-positive (timer noise) — callers
/// keep the static default then.
fn measured_crossover(
    backend: &dyn Backend<u32>,
    width: usize,
    config: KernelConfig,
) -> Option<f64> {
    let caps = backend.capabilities();
    if !(caps.scatter && caps.scheduled) {
        return None;
    }
    let n = width
        .saturating_mul(width)
        .next_power_of_two()
        .clamp(1 << 14, 1 << 22);
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];

    let p_lo = families::rotation(n, width.max(2) / 2);
    let p_hi = families::random(n, 0x5eed);
    let g_lo = distribution(&p_lo, width);
    let g_hi = distribution(&p_hi, width);
    if g_hi <= g_lo + 1e-9 {
        return None;
    }

    let ir = PlanIr::build_par(&p_hi, width, crate::par::worker_threads()).ok()?;
    let sched = backend.prepare(ExecPlan::Scheduled(&ir), config).ok()?;
    let scatter_lo = backend.prepare(ExecPlan::Scatter(&p_lo), config).ok()?;
    let scatter_hi = backend.prepare(ExecPlan::Scatter(&p_hi), config).ok()?;
    let mut scratch = vec![0u32; sched.scratch_len()];
    let reps = 3;
    let t_sched = min_time(reps, || sched.run(&src, &mut dst, &mut scratch));
    let t_lo = min_time(reps, || scatter_lo.run(&src, &mut dst, &mut []));
    let t_hi = min_time(reps, || scatter_hi.run(&src, &mut dst, &mut []));

    let b = (t_hi.as_secs_f64() - t_lo.as_secs_f64()) / (g_hi - g_lo);
    if !(b.is_finite() && b > 0.0) {
        return None;
    }
    let a = t_lo.as_secs_f64() - b * g_lo;
    let crossover = (t_sched.as_secs_f64() - a) / b;
    if !crossover.is_finite() {
        return None;
    }
    Some(crossover.clamp(1.0, width as f64))
}

/// Time the scheduled route over a small grid of staging-block budgets
/// and return the fastest, or `None` when the width cannot be scheduled
/// at the probe size or the backend has no scheduled route. Candidates
/// bracket the default 256 KB: hosts with small private caches win at
/// 64–128 KB, large-L2 parts at 512 KB. Each candidate is a fresh
/// [`Backend::prepare`], so the measurement exercises exactly the
/// executable the engine would build at that config.
fn measured_stage_bytes(
    backend: &dyn Backend<u32>,
    width: usize,
    base: KernelConfig,
) -> Option<usize> {
    if !backend.capabilities().scheduled {
        return None;
    }
    let n = width
        .saturating_mul(width)
        .next_power_of_two()
        .clamp(1 << 16, 1 << 22);
    let p = families::random(n, 0x57a9e);
    let ir = PlanIr::build_par(&p, width, crate::par::worker_threads()).ok()?;
    let src: Vec<u32> = (0..n as u32).collect();
    let mut dst = vec![0u32; n];
    let mut best: Option<(Duration, usize)> = None;
    for stage_bytes in [1 << 16, 1 << 17, 1 << 18, 1 << 19] {
        let tuned = backend
            .prepare(
                ExecPlan::Scheduled(&ir),
                KernelConfig {
                    stage_bytes,
                    ..base
                },
            )
            .ok()?;
        let mut scratch = vec![0u32; tuned.scratch_len()];
        let t = min_time(3, || tuned.run(&src, &mut dst, &mut scratch));
        if best.is_none_or(|(bt, _)| t < bt) {
            best = Some((t, stage_bytes));
        }
    }
    best.map(|(_, stage_bytes)| stage_bytes)
}

/// Cache key: permutation fingerprint + length + schedule width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    fingerprint: u64,
    len: usize,
    width: usize,
}

/// A built, cached execution plan for one permutation: the route
/// decision (γ_w against the engine's threshold) plus the [`Executable`]
/// some [`Backend`] prepared for it. The engines never name a concrete
/// executor — scatter and scheduled plans alike run through the boxed
/// trait object.
pub struct PermutePlan<T> {
    route: Route,
    gamma: f64,
    exec: Box<dyn Executable<T>>,
    /// Kept for hit verification and for callers that want it back.
    permutation: Permutation,
}

impl<T> std::fmt::Debug for PermutePlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PermutePlan")
            .field("route", &self.route)
            .field("gamma", &self.gamma)
            .field("backend", &self.exec.backend_name())
            .field("len", &self.permutation.len())
            .finish()
    }
}

impl<T: Copy + Send + Sync + Default + 'static> PermutePlan<T> {
    /// Build a plan on the process-default backend, measuring γ_w(P) to
    /// pick the route.
    pub fn build(p: &Permutation, width: usize, gamma_threshold: f64) -> Result<Self> {
        let backend = crate::backend::default_backend::<T>();
        let gamma = distribution(p, width);
        if gamma <= gamma_threshold && backend.capabilities().scatter {
            Self::scatter_on(&*backend, p, gamma, KernelConfig::global())
        } else {
            Self::from_ir_on(
                &*backend,
                &PlanIr::build_par(p, width, crate::par::worker_threads())?,
                KernelConfig::global(),
            )
        }
    }

    /// Wrap an already-built backend-neutral [`PlanIr`] as a scheduled
    /// plan — no König coloring happens here. The permutation the plan
    /// answers for is recomposed from the IR's own three passes, so the
    /// wrapper is correct for exactly the permutation the IR encodes,
    /// wherever the IR came from (a fresh build, another engine, or a
    /// plan-store file). Prepared on the process-default backend with the
    /// process-wide [`KernelConfig::global`]. Fails with a typed error
    /// when the IR violates its contract (`PlanIr::validate`).
    pub fn from_ir(ir: &PlanIr) -> Result<Self> {
        Self::from_ir_with(ir, KernelConfig::global())
    }

    /// [`from_ir`](Self::from_ir) with an explicit kernel config — the
    /// seam through which the engines thread their (possibly calibrated
    /// or caller-overridden) config into every scheduled execution,
    /// whichever front door ran it: blocking `permute`, `permute_batch`,
    /// or the queue drainers behind `submit`.
    pub fn from_ir_with(ir: &PlanIr, config: KernelConfig) -> Result<Self> {
        Self::from_ir_on(&*crate::backend::default_backend::<T>(), ir, config)
    }

    /// Prepare a scheduled plan for this IR on an explicit backend — the
    /// one construction path every engine plan build funnels through.
    pub fn from_ir_on(backend: &dyn Backend<T>, ir: &PlanIr, config: KernelConfig) -> Result<Self> {
        Ok(PermutePlan {
            route: Route::Scheduled,
            gamma: ir.gamma(),
            exec: backend.prepare(ExecPlan::Scheduled(ir), config)?,
            permutation: ir.recompose(),
        })
    }

    /// Prepare a scatter plan on an explicit backend.
    pub fn scatter_on(
        backend: &dyn Backend<T>,
        p: &Permutation,
        gamma: f64,
        config: KernelConfig,
    ) -> Result<Self> {
        Ok(PermutePlan {
            route: Route::Scatter,
            gamma,
            exec: backend.prepare(ExecPlan::Scatter(p), config)?,
            permutation: p.clone(),
        })
    }
}

impl<T> PermutePlan<T> {
    /// The route (scatter or scheduled) this plan executes with.
    pub fn route(&self) -> Route {
        self.route
    }

    /// The measured distribution γ_w(P) the decision was based on.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of elements the plan permutes.
    pub fn len(&self) -> usize {
        self.permutation.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The permutation this plan was built for.
    pub fn permutation(&self) -> &Permutation {
        &self.permutation
    }

    /// The prepared executable behind this plan — the seam for
    /// capability checks, stats ([`Executable::runs`]), and
    /// backend-specific downcasts
    /// ([`crate::backend::as_native_scheduled`]).
    pub fn executable(&self) -> &dyn Executable<T> {
        &*self.exec
    }

    /// Scratch elements [`PermutePlan::run_with_scratch`] requires (0
    /// for scatter plans).
    pub fn scratch_len(&self) -> usize {
        self.exec.scratch_len()
    }

    /// Execute `dst[P[i]] = src[i]` with caller-provided scratch of
    /// exactly [`PermutePlan::scratch_len`] elements (scatter plans take
    /// an empty slice).
    pub fn run_with_scratch(&self, src: &[T], dst: &mut [T], scratch: &mut [T]) {
        self.exec.run(src, dst, scratch);
    }
}

/// Cache/engine counters, for tests and bench reports. A snapshot of the
/// engine's atomics — reading them never takes a lock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Cache hits (plan reused, full permutation verified).
    pub hits: u64,
    /// Cache misses (this caller built a plan).
    pub misses: u64,
    /// Plans evicted to respect capacity.
    pub evictions: u64,
    /// Fingerprint collisions detected on hit verification (the stored
    /// plan's permutation differed from the requested one; the entry was
    /// rebuilt and the output stayed correct).
    pub collisions: u64,
    /// Builds avoided by single-flight: callers that waited for another
    /// thread's in-flight construction of the same plan instead of
    /// duplicating the work.
    pub builds_deduped: u64,
    /// Executions that took the scatter backend.
    pub scatter_runs: u64,
    /// Executions that took the scheduled backend.
    pub scheduled_runs: u64,
    /// König colorings actually performed by this process: scheduled
    /// plans constructed from scratch rather than served from the
    /// on-disk store. A cold process running against a warm store
    /// reports 0.
    pub builds: u64,
    /// Scheduled plans emitted by the structured (BMMC) fast path: the
    /// permutation was recognised as affine over GF(2) and its three
    /// pass permutations were produced in closed form, with no König
    /// coloring. Disjoint from [`EngineStats::builds`].
    pub plans_structured: u64,
    /// Scheduled plans prepared from an IR carrying verified affine
    /// descriptors — the plans whose gather sweeps run the
    /// computed-index kernels when
    /// [`EngineStats::kernel_computed_index`] is set. Counts structured
    /// builds and store loads alike (a compact store entry rebuilds its
    /// maps from the descriptors, so a warm-store cold start is still
    /// descriptor-backed); König-colored plans never carry descriptors.
    pub plans_affine: u64,
    /// Scheduled plans served from the on-disk store, each verified
    /// against the requested permutation before use.
    pub store_hits: u64,
    /// Store files discarded: unreadable, corrupt, wrong format version,
    /// or decoded fine but encoding a *different* permutation than the
    /// requested one (a fingerprint collision). Each reject deletes the
    /// file and falls through to a fresh build.
    pub store_rejects: u64,
    /// Jobs accepted by [`SharedEngine::submit`] /
    /// [`SharedEngine::submit_batch`] — queue-routed
    /// [`SharedEngine::permute_batch`] members included. Every submitted
    /// job eventually lands in exactly one of [`EngineStats::completed`]
    /// or [`EngineStats::cancelled`].
    pub submitted: u64,
    /// Queued jobs resolved by a worker — successfully or with an error
    /// (failed build, panic, shutdown). `submitted == completed +
    /// cancelled` once every handle has resolved.
    pub completed: u64,
    /// Queued jobs cancelled (via [`JobHandle::cancel`]) before a worker
    /// began executing them.
    pub cancelled: u64,
    /// Jobs or registrations an admission-control layer refused *before*
    /// submission (never enqueued, so disjoint from every queue counter).
    /// The engine itself admits everything; front doors with quotas —
    /// the `hmm-server` per-client limits — report their rejections here
    /// via [`SharedEngine::note_admission_reject`] so one snapshot tells
    /// the whole story.
    pub admission_rejects: u64,
    /// Jobs sitting in the submission queue at snapshot time — a gauge,
    /// not a counter (in-flight jobs a worker has claimed are excluded).
    pub queue_depth: u64,
    /// The γ_w scatter/scheduled crossover in effect at snapshot time.
    pub gamma_threshold: f64,
    /// True once [`SharedEngine::calibrate_gamma_threshold`] has replaced
    /// the static default with a measured crossover.
    pub calibrated: bool,
    /// Staging-block budget (bytes) of the kernel config scheduled plans
    /// are built with at snapshot time — the default, a calibrated value,
    /// or a [`SharedEngine::set_kernel_config`] override.
    pub kernel_stage_bytes: usize,
    /// Whether the kernel config enables the vectorized sweep tiers.
    pub kernel_simd: bool,
    /// Whether the kernel config enables the computed-index (affine
    /// fold) gather kernels for plans that carry descriptors.
    pub kernel_computed_index: bool,
    /// Registry name of the backend this engine prepares plans on
    /// (`"native"`, `"interp"`, ...). Empty in a default-constructed
    /// snapshot.
    pub backend: &'static str,
}

/// The engine's live counters, on atomics so `&self` paths can bump them
/// and `stats()` can snapshot without locking. Shared (via `Arc`) with
/// job handles and queue workers, so cancellation and completion stay
/// countable after the engine itself is gone.
#[derive(Default)]
pub(crate) struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
    builds_deduped: AtomicU64,
    scatter_runs: AtomicU64,
    scheduled_runs: AtomicU64,
    builds: AtomicU64,
    plans_structured: AtomicU64,
    plans_affine: AtomicU64,
    store_hits: AtomicU64,
    store_rejects: AtomicU64,
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) admission_rejects: AtomicU64,
}

impl AtomicStats {
    fn snapshot(
        &self,
        gamma_threshold: f64,
        calibrated: bool,
        queue_depth: u64,
        kernel: KernelConfig,
        backend: &'static str,
    ) -> EngineStats {
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            builds_deduped: self.builds_deduped.load(Ordering::Relaxed),
            scatter_runs: self.scatter_runs.load(Ordering::Relaxed),
            scheduled_runs: self.scheduled_runs.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            plans_structured: self.plans_structured.load(Ordering::Relaxed),
            plans_affine: self.plans_affine.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_rejects: self.store_rejects.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            queue_depth,
            gamma_threshold,
            calibrated,
            kernel_stage_bytes: kernel.stage_bytes,
            kernel_simd: kernel.simd,
            kernel_computed_index: kernel.computed_index,
            backend,
        }
    }
}

/// Single-flight build slot: the first thread to miss inserts one in the
/// `Building` state and constructs the plan outside every lock; later
/// threads wait on the condvar instead of re-running the König coloring.
struct BuildSlot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

enum SlotState<T> {
    Building,
    Ready(Arc<PermutePlan<T>>),
    Failed(PlanError),
}

impl<T> BuildSlot<T> {
    fn new() -> Self {
        BuildSlot {
            state: Mutex::new(SlotState::Building),
            cv: Condvar::new(),
        }
    }

    /// Block until the slot resolves. Returns the outcome and whether this
    /// caller had to wait for an in-flight build (a deduped build).
    fn wait(&self) -> (Result<Arc<PermutePlan<T>>>, bool) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut waited = false;
        loop {
            match &*st {
                SlotState::Building => {
                    waited = true;
                    st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                SlotState::Ready(plan) => return (Ok(Arc::clone(plan)), waited),
                SlotState::Failed(e) => return (Err(e.clone()), waited),
            }
        }
    }

    fn fill(&self, outcome: Result<Arc<PermutePlan<T>>>) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *st = match outcome {
            Ok(plan) => SlotState::Ready(plan),
            Err(e) => SlotState::Failed(e),
        };
        self.cv.notify_all();
    }

    fn is_building(&self) -> bool {
        matches!(
            &*self.state.lock().unwrap_or_else(PoisonError::into_inner),
            SlotState::Building
        )
    }
}

/// Fills a slot with an error if the build panics, so waiters are not
/// stranded in `Building` forever.
struct FillOnPanic<'a, T> {
    slot: &'a BuildSlot<T>,
    n: usize,
    armed: bool,
}

impl<T> Drop for FillOnPanic<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            self.slot.fill(Err(PlanError::UnsupportedSize {
                n: self.n,
                reason: "plan construction panicked",
            }));
        }
    }
}

struct ShardEntry<T> {
    slot: Arc<BuildSlot<T>>,
    /// Engine-clock timestamp of the last touch; an atomic so hits can
    /// refresh it under the shard's *read* lock.
    last_used: AtomicU64,
}

type Shard<T> = RwLock<HashMap<PlanKey, ShardEntry<T>>>;

/// Lock-free pool of scratch buffers: a fixed array of `AtomicPtr` slots.
/// `take` swaps a buffer out (or allocates), `put` swaps one back in (or
/// drops it when every slot is occupied) — steady-state `permute` never
/// takes an exclusive lock for scratch.
struct ScratchPool<T> {
    slots: [AtomicPtr<Vec<T>>; SCRATCH_POOL_CAP],
}

// SAFETY: the pool owns the pointed-to `Vec<T>`s exclusively (a buffer is
// either in exactly one slot or checked out by exactly one caller — the
// `swap`/`compare_exchange` transitions are atomic), so sharing the pool
// is safe whenever the element type can move between threads.
unsafe impl<T: Send> Send for ScratchPool<T> {}
unsafe impl<T: Send> Sync for ScratchPool<T> {}

impl<T: Copy + Default> ScratchPool<T> {
    fn new() -> Self {
        ScratchPool {
            slots: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        }
    }

    fn take(&self, n: usize) -> Vec<T> {
        for slot in &self.slots {
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: the pointer came from `Box::into_raw` in `put`
                // and the swap above made this thread its sole owner.
                let mut buf = *unsafe { Box::from_raw(p) };
                if buf.len() != n {
                    buf.clear();
                    buf.resize(n, T::default());
                }
                return buf;
            }
        }
        vec![T::default(); n]
    }

    fn put(&self, buf: Vec<T>) {
        let p = Box::into_raw(Box::new(buf));
        for slot in &self.slots {
            if slot
                .compare_exchange(ptr::null_mut(), p, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
        // Pool full: release the buffer.
        // SAFETY: `p` was just created by `Box::into_raw` and no slot
        // accepted it, so this thread still owns it.
        drop(unsafe { Box::from_raw(p) });
    }

    fn pooled(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.load(Ordering::Acquire).is_null())
            .count()
    }
}

impl<T> Drop for ScratchPool<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: sole owner at drop time; pointer from Box::into_raw.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// The engine's queued-submission runtime: a lazily-started bounded MPMC
/// queue plus its drainer threads. Nothing is spawned until the first
/// queued job, so engines that only use the blocking `permute` path cost
/// no threads.
struct QueueRuntime<T> {
    /// The queue, once started. Starting it freezes `capacity`/`workers`.
    slot: OnceLock<Arc<Bounded<QueuedJob<T>>>>,
    /// Capacity the queue will be created with.
    capacity: AtomicUsize,
    /// Drainer-thread count the queue will be started with (0 = match
    /// the worker pool's thread count).
    workers: AtomicUsize,
    /// Monotonic job ids, in submission order.
    next_job_id: AtomicU64,
}

impl<T> QueueRuntime<T> {
    fn new() -> Self {
        QueueRuntime {
            slot: OnceLock::new(),
            capacity: AtomicUsize::new(DEFAULT_QUEUE_CAPACITY),
            workers: AtomicUsize::new(0),
            next_job_id: AtomicU64::new(0),
        }
    }
}

/// The concurrent plan service: a thread-safe [`Engine`] usable as `&self`
/// from any number of threads.
///
/// * **Sharded LRU** — entries are distributed over [`SharedEngine::shards`]
///   independent `RwLock`ed maps by fingerprint, so lookups from different
///   threads rarely touch the same lock, and a hit takes only a read lock.
/// * **Single-flight builds** — a miss publishes a `Building` slot before
///   constructing the plan outside all locks; concurrent requests for the
///   same permutation wait on that slot (counted in
///   [`EngineStats::builds_deduped`]) instead of duplicating the König
///   coloring, and requests for *other* permutations proceed unimpeded.
/// * **Verified hits** — every hit compares the cached plan's full
///   permutation image with the requested one; a fingerprint collision is
///   counted ([`EngineStats::collisions`]) and treated as a miss that
///   replaces the entry, so the output is always correct.
/// * **Lock-free scratch** — scheduled runs borrow scratch from a
///   fixed-slot [`AtomicPtr`] pool; scatter runs skip scratch entirely.
/// * **Atomic stats** — [`SharedEngine::stats`] snapshots counters without
///   locking anything.
///
/// ```
/// use hmm_native::SharedEngine;
/// use hmm_perm::families;
///
/// let engine: SharedEngine<u32> = SharedEngine::new(32);
/// let p = families::random(1 << 12, 1);
/// let src: Vec<u32> = (0..1u32 << 12).collect();
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             let mut dst = vec![0u32; 1 << 12];
///             engine.permute(&p, &src, &mut dst).unwrap();
///         });
///     }
/// });
/// let stats = engine.stats();
/// assert_eq!(stats.misses, 1, "single-flight: one build for four threads");
/// ```
pub struct SharedEngine<T> {
    core: Arc<EngineCore<T>>,
}

/// Cloning a [`SharedEngine`] clones a cheap handle to the same engine:
/// one cache, one scratch pool, one submission queue, one set of
/// counters. The engine itself shuts down (closing the queue and
/// resolving still-queued jobs with [`JobError::ShutDown`]) when the last
/// handle drops.
impl<T> Clone for SharedEngine<T> {
    fn clone(&self) -> Self {
        SharedEngine {
            core: Arc::clone(&self.core),
        }
    }
}

/// The engine state every [`SharedEngine`] handle (and every queue
/// drainer, via a `Weak`) shares. Dropping the last strong reference
/// closes the submission queue, which lets the drainer threads exit after
/// resolving whatever is still queued.
struct EngineCore<T> {
    width: usize,
    /// The execution backend every plan is prepared on. Swappable
    /// ([`SharedEngine::with_backend`]) but fixed per engine: cached
    /// executables belong to this backend.
    backend: Arc<dyn Backend<T>>,
    shards: Box<[Shard<T>]>,
    per_shard_capacity: usize,
    /// γ_w crossover, stored as `f64` bits so it is settable via `&self`.
    gamma_threshold: AtomicU64,
    /// True once the threshold came from a measurement rather than the
    /// static default.
    calibrated: AtomicBool,
    /// Kernel config scheduled plans are built with. A plain mutex — it
    /// is read once per plan *build*, never on the run path.
    kernel: Mutex<KernelConfig>,
    fingerprint_fn: fn(&Permutation) -> u64,
    /// Tier-2 cache: the on-disk plan store, when attached. Scheduled
    /// plans are loaded from (and saved to) it; the in-memory LRU stays
    /// tier 1.
    store: Option<PlanStore>,
    clock: AtomicU64,
    scratch: ScratchPool<T>,
    /// Shared with job handles and queue drainers, so completion and
    /// cancellation counting outlive the engine.
    stats: Arc<AtomicStats>,
    queue: QueueRuntime<T>,
}

impl<T> Drop for EngineCore<T> {
    fn drop(&mut self) {
        // Refuse new jobs and wake blocked pushers/poppers; the drainers
        // (holding only a `Weak` to this core) resolve remaining jobs
        // with `JobError::ShutDown` and exit.
        if let Some(q) = self.queue.slot.get() {
            q.close();
        }
    }
}

impl<T: Copy + Send + Sync + Default + 'static> SharedEngine<T> {
    /// Engine with the given schedule width and the default shard count
    /// and per-shard capacity.
    pub fn new(width: usize) -> Self {
        Self::with_shards(width, DEFAULT_SHARDS, DEFAULT_CAPACITY)
    }

    /// Engine on an explicit execution backend (see
    /// [`crate::backend::by_name`] for the registry) with the default
    /// shard count and per-shard capacity. Plans cached by this engine
    /// are prepared — and therefore executed — by `backend`.
    pub fn with_backend(width: usize, backend: Arc<dyn Backend<T>>) -> Self {
        Self::with_parts(width, DEFAULT_SHARDS, DEFAULT_CAPACITY, backend)
    }

    /// Engine with explicit sharding: `shards` independent LRU maps of
    /// `per_shard_capacity` plans each (both ≥ 1). One shard reproduces
    /// the single-threaded [`Engine`]'s global LRU exactly.
    pub fn with_shards(width: usize, shards: usize, per_shard_capacity: usize) -> Self {
        Self::with_parts(
            width,
            shards,
            per_shard_capacity,
            crate::backend::default_backend::<T>(),
        )
    }

    fn with_parts(
        width: usize,
        shards: usize,
        per_shard_capacity: usize,
        backend: Arc<dyn Backend<T>>,
    ) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(shards > 0, "shards must be positive");
        assert!(per_shard_capacity > 0, "capacity must be positive");
        let engine = SharedEngine {
            core: Arc::new(EngineCore {
                width,
                backend,
                shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
                per_shard_capacity,
                gamma_threshold: AtomicU64::new(DEFAULT_GAMMA_THRESHOLD.to_bits()),
                calibrated: AtomicBool::new(false),
                kernel: Mutex::new(KernelConfig::global()),
                fingerprint_fn: default_fingerprint,
                store: None,
                clock: AtomicU64::new(0),
                scratch: ScratchPool::new(),
                stats: Arc::new(AtomicStats::default()),
                queue: QueueRuntime::new(),
            }),
        };
        if std::env::var(CALIBRATE_ENV).as_deref() == Ok("1") {
            engine.calibrate_gamma_threshold();
        }
        engine
    }

    /// Exclusive access to the core, for the few `&mut self` setters.
    /// Valid only while this handle is the engine's sole owner — before
    /// any clone, and before the first queued submission starts the
    /// drainer threads (which hold weak references).
    fn core_mut(&mut self) -> &mut EngineCore<T> {
        Arc::get_mut(&mut self.core).expect(
            "engine mutation requires sole ownership: call before cloning \
             the engine or submitting queued jobs",
        )
    }

    /// Engine with an on-disk **tier-2 plan store** at `dir` (created if
    /// missing): scheduled plans built by any process land in the store,
    /// and a cold process finds them there instead of re-running the
    /// König coloring — with a warm store, [`EngineStats::builds`] stays
    /// 0 while outputs still verify, because every disk hit is checked
    /// against the requested permutation (corrupt or colliding files are
    /// counted in [`EngineStats::store_rejects`], deleted, and rebuilt —
    /// never trusted).
    pub fn with_store(width: usize, dir: impl Into<PathBuf>) -> Result<Self> {
        let mut engine = Self::with_shards(width, DEFAULT_SHARDS, DEFAULT_CAPACITY);
        engine.core_mut().store = Some(PlanStore::open(dir)?);
        Ok(engine)
    }

    /// Attach (or replace) the on-disk plan store after construction.
    /// Requires sole ownership (call before cloning the engine or
    /// submitting queued jobs).
    pub fn set_store(&mut self, store: PlanStore) {
        self.core_mut().store = Some(store);
    }

    /// The attached on-disk plan store, if any.
    pub fn store(&self) -> Option<&PlanStore> {
        self.core.store.as_ref()
    }

    /// Measure the scatter/scheduled crossover on *this* host and adopt
    /// it as the engine's γ_w threshold, replacing the static
    /// [`DEFAULT_GAMMA_THRESHOLD`]. The measurement times one fused
    /// three-sweep run (its cost is γ-independent) against scattered
    /// runs at a low-γ and a high-γ point, fits the affine scatter cost
    /// `a + b·γ`, and solves for the break-even γ, clamped to
    /// `[1, width]`. Falls back to the default when the measurement is
    /// degenerate (e.g. the width cannot be scheduled, or timer noise
    /// swamps the slope).
    ///
    /// The calibration also tunes the sweep kernels' staging-block size:
    /// it times the fused path over a small grid of `stage_bytes`
    /// candidates and adopts the fastest into this engine's
    /// [`KernelConfig`] (surfaced as [`EngineStats::kernel_stage_bytes`]),
    /// leaving every other kernel knob untouched.
    ///
    /// Off by default — construction runs it automatically only when the
    /// environment variable [`CALIBRATE_ENV`] (`HMM_NATIVE_CALIBRATE`)
    /// is set to `1`. Returns the threshold now in effect; the result is
    /// surfaced as [`EngineStats::gamma_threshold`] /
    /// [`EngineStats::calibrated`]. Affects plans built after the call.
    pub fn calibrate_gamma_threshold(&self) -> f64 {
        // Probes run over u32 payloads; re-resolve this engine's backend
        // (by registry name) at that element type so the measurement
        // times the implementation that will actually execute the plans.
        let probe = crate::backend::by_name::<u32>(self.core.backend.name())
            .unwrap_or_else(crate::backend::default_backend::<u32>);
        let t = measured_crossover(&*probe, self.core.width, self.kernel_config())
            .unwrap_or(DEFAULT_GAMMA_THRESHOLD);
        self.set_gamma_threshold(t);
        if let Some(stage_bytes) =
            measured_stage_bytes(&*probe, self.core.width, self.kernel_config())
        {
            let mut cfg = self.kernel_config();
            cfg.stage_bytes = stage_bytes;
            self.set_kernel_config(cfg);
        }
        self.core.calibrated.store(true, Ordering::Relaxed);
        t
    }

    /// Override the kernel config scheduled plans are built with (block
    /// size, staging depth, SIMD/prefetch). Affects plans built after the
    /// call; already-cached plans keep the config they were built with.
    pub fn set_kernel_config(&self, config: KernelConfig) {
        *self
            .core
            .kernel
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = config;
    }

    /// The kernel config scheduled plans are currently built with.
    pub fn kernel_config(&self) -> KernelConfig {
        *self
            .core
            .kernel
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Override the γ_w crossover below which scatter is chosen. Set to
    /// `0.0` to force the scheduled backend, `f64::INFINITY` to force
    /// scatter. Affects plans built after the call.
    pub fn set_gamma_threshold(&self, threshold: f64) {
        self.core
            .gamma_threshold
            .store(threshold.to_bits(), Ordering::Relaxed);
    }

    /// Test seam: replace the fingerprint function (e.g. with a constant
    /// to force collisions, or a panicking one to inject worker-side
    /// failures). Call before caching anything — existing entries were
    /// keyed with the previous function — and before cloning the engine
    /// or submitting queued jobs (requires sole ownership).
    pub fn set_fingerprint_fn(&mut self, f: fn(&Permutation) -> u64) {
        self.core_mut().fingerprint_fn = f;
    }

    /// The schedule width plans are built with.
    pub fn width(&self) -> usize {
        self.core.width
    }

    /// Number of cache shards.
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Registry name of the backend this engine prepares plans on.
    pub fn backend_name(&self) -> &'static str {
        self.core.backend.name()
    }

    /// Replace the execution backend. Requires sole ownership (call
    /// before cloning the engine, caching plans, or submitting queued
    /// jobs) — cached plans belong to the backend that prepared them, so
    /// swapping mid-flight would mix executables across backends.
    pub fn set_backend(&mut self, backend: Arc<dyn Backend<T>>) {
        self.core_mut().backend = backend;
    }

    /// Counters since construction — a lock-free snapshot.
    pub fn stats(&self) -> EngineStats {
        self.core.stats.snapshot(
            self.gamma_threshold(),
            self.core.calibrated.load(Ordering::Relaxed),
            self.queue_depth() as u64,
            self.kernel_config(),
            self.core.backend.name(),
        )
    }

    /// Number of plans currently cached (in-flight builds included).
    pub fn cached_plans(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Scratch buffers currently parked in the lock-free pool.
    pub fn pooled_scratch_buffers(&self) -> usize {
        self.core.scratch.pooled()
    }

    fn gamma_threshold(&self) -> f64 {
        f64::from_bits(self.core.gamma_threshold.load(Ordering::Relaxed))
    }

    fn tick(&self) -> u64 {
        self.core.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn shard_for(&self, fp: u64) -> &Shard<T> {
        // The low fingerprint bits feed the in-shard HashMap, so pick the
        // shard from a multiplicative mix of the high bits.
        let mixed = fp.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        &self.core.shards[(mixed % self.core.shards.len() as u64) as usize]
    }

    /// Fetch (or build and cache) the plan for `p`. Concurrent callers for
    /// the same uncached permutation trigger exactly one build.
    pub fn plan(&self, p: &Permutation) -> Result<Arc<PermutePlan<T>>> {
        let key = PlanKey {
            fingerprint: (self.core.fingerprint_fn)(p),
            len: p.len(),
            width: self.core.width,
        };
        let shard = self.shard_for(key.fingerprint);
        loop {
            // Fast path: a read lock, a touch, a slot clone.
            let existing = {
                let map = shard.read().unwrap_or_else(PoisonError::into_inner);
                map.get(&key).map(|e| {
                    e.last_used.store(self.tick(), Ordering::Relaxed);
                    Arc::clone(&e.slot)
                })
            };
            let slot = match existing {
                Some(slot) => slot,
                None => {
                    // Miss path: write lock, double-check (another thread
                    // may have inserted since the read), publish Building.
                    let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
                    match map.get(&key) {
                        Some(e) => {
                            e.last_used.store(self.tick(), Ordering::Relaxed);
                            Arc::clone(&e.slot)
                        }
                        None => {
                            self.evict_to_fit(&mut map);
                            let slot = Arc::new(BuildSlot::new());
                            map.insert(
                                key,
                                ShardEntry {
                                    slot: Arc::clone(&slot),
                                    last_used: AtomicU64::new(self.tick()),
                                },
                            );
                            drop(map);
                            self.core.stats.misses.fetch_add(1, Ordering::Relaxed);
                            return self.build_into(&slot, shard, key, p);
                        }
                    }
                }
            };
            let (outcome, waited) = slot.wait();
            match outcome {
                Ok(plan) => {
                    if plan.permutation.as_slice() == p.as_slice() {
                        let counter = if waited {
                            &self.core.stats.builds_deduped
                        } else {
                            &self.core.stats.hits
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        return Ok(plan);
                    }
                    // Fingerprint collision: the cached plan is for a
                    // *different* permutation with the same key. Count it,
                    // then treat it as a miss that replaces the entry.
                    self.core.stats.collisions.fetch_add(1, Ordering::Relaxed);
                    let replacement = {
                        let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
                        match map.get_mut(&key) {
                            // Replace only the slot we verified against; a
                            // concurrent replacement means the entry may
                            // now match `p` — retry the lookup instead.
                            Some(e) if Arc::ptr_eq(&e.slot, &slot) => {
                                let fresh = Arc::new(BuildSlot::new());
                                e.slot = Arc::clone(&fresh);
                                e.last_used.store(self.tick(), Ordering::Relaxed);
                                Some(fresh)
                            }
                            _ => None,
                        }
                    };
                    match replacement {
                        Some(fresh) => {
                            self.core.stats.misses.fetch_add(1, Ordering::Relaxed);
                            return self.build_into(&fresh, shard, key, p);
                        }
                        None => continue,
                    }
                }
                Err(e) => {
                    // The owning build failed; it already unpublished the
                    // entry, so waiters report the same error and later
                    // calls start a fresh build.
                    return Err(e);
                }
            }
        }
    }

    /// Construct the plan for a slot this thread owns, publish the result,
    /// and unpublish the map entry on failure so the error is not sticky.
    fn build_into(
        &self,
        slot: &Arc<BuildSlot<T>>,
        shard: &Shard<T>,
        key: PlanKey,
        p: &Permutation,
    ) -> Result<Arc<PermutePlan<T>>> {
        let mut guard = FillOnPanic {
            slot,
            n: p.len(),
            armed: true,
        };
        let built = self.construct_plan(p);
        guard.armed = false;
        match built {
            Ok(plan) => {
                let plan = Arc::new(plan);
                slot.fill(Ok(Arc::clone(&plan)));
                Ok(plan)
            }
            Err(e) => {
                {
                    let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
                    if let Some(entry) = map.get(&key) {
                        if Arc::ptr_eq(&entry.slot, slot) {
                            map.remove(&key);
                        }
                    }
                }
                slot.fill(Err(e.clone()));
                Err(e)
            }
        }
    }

    /// Produce the plan for `p` at this engine's width: the γ decision
    /// first (scatter plans are cheap and never touch the store), then
    /// the tier-2 store when attached, then the structured (BMMC) fast
    /// path — a closed-form plan counted in
    /// [`EngineStats::plans_structured`] — and only for genuinely
    /// unstructured permutations a fresh König build, counted in
    /// [`EngineStats::builds`]. Both kinds of built plan are saved back
    /// to the store. Every arm ends in a [`Backend::prepare`] on the
    /// engine's backend — the γ decision only picks the *route*, gated
    /// by what the backend can execute ([`Backend::capabilities`]).
    fn construct_plan(&self, p: &Permutation) -> Result<PermutePlan<T>> {
        let backend = &*self.core.backend;
        let caps = backend.capabilities();
        let gamma = distribution(p, self.core.width);
        if caps.scatter && (gamma <= self.gamma_threshold() || !caps.scheduled) {
            return PermutePlan::scatter_on(backend, p, gamma, self.kernel_config());
        }
        if let Some(store) = &self.core.store {
            let key = StoreKey {
                fingerprint: (self.core.fingerprint_fn)(p),
                n: p.len(),
                width: self.core.width,
            };
            match store.load(&key) {
                Ok(Some(ir)) if ir.matches(p) => {
                    self.core.stats.store_hits.fetch_add(1, Ordering::Relaxed);
                    self.note_affine(&ir);
                    return PermutePlan::from_ir_on(backend, &ir, self.kernel_config());
                }
                Ok(None) => {}
                // A decodable plan for a *different* permutation (a
                // fingerprint collision) or an unreadable/corrupt file:
                // count it, delete the file, fall through to a fresh
                // build. A store file is never trusted past verification.
                Ok(Some(_)) | Err(_) => {
                    self.core
                        .stats
                        .store_rejects
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = store.remove(&key);
                }
            }
        }
        // Structured fast path: affine/BMMC permutations (transpose,
        // bit-reversal, shuffle, hypercube, ...) get their pass
        // permutations emitted in closed form — milliseconds where the
        // coloring below takes seconds at 4M. Counted separately so the
        // `builds` seam keeps meaning "König colorings actually
        // performed".
        if let Some(built) =
            PlanIr::build_structured_par(p, self.core.width, crate::par::worker_threads())
        {
            let ir = built?;
            self.core
                .stats
                .plans_structured
                .fetch_add(1, Ordering::Relaxed);
            self.note_affine(&ir);
            if let Some(store) = &self.core.store {
                // Saved like any built plan, so cross-process cold starts
                // stay store-driven for every family.
                let _ = store.save(&ir);
            }
            return PermutePlan::from_ir_on(backend, &ir, self.kernel_config());
        }
        // Cold build: route through the parallel plan compiler on the
        // engine's thread budget. Output is byte-identical to the
        // sequential builder at any budget, so cached, stored, and
        // freshly-built plans can never disagree. (Detection above
        // already said no, so this is always a genuine coloring.)
        let ir = PlanIr::build_par(p, self.core.width, crate::par::worker_threads())?;
        self.core.stats.builds.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.core.store {
            // Best effort: a failed save must never fail the permute.
            let _ = store.save(&ir);
        }
        PermutePlan::from_ir_on(backend, &ir, self.kernel_config())
    }

    /// Count a prepared IR that carries affine descriptors
    /// ([`EngineStats::plans_affine`]).
    fn note_affine(&self, ir: &PlanIr) {
        if ir.affine().is_some() {
            self.core.stats.plans_affine.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evict least-recently-used resolved entries until an insert fits.
    /// In-flight builds are skipped (their builder and waiters hold the
    /// slot), so a shard can transiently exceed capacity while every
    /// resident plan is still being constructed.
    fn evict_to_fit(&self, map: &mut HashMap<PlanKey, ShardEntry<T>>) {
        while map.len() >= self.core.per_shard_capacity {
            let victim = map
                .iter()
                .filter(|(_, e)| !e.slot.is_building())
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.core.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Execute `dst[P[i]] = src[i]` through the cache: plan lookup (or
    /// single-flight build), pooled scratch, backend dispatch.
    ///
    /// # Panics
    /// Panics if `src.len() != dst.len()` or either differs from `p.len()`.
    pub fn permute(&self, p: &Permutation, src: &[T], dst: &mut [T]) -> Result<()> {
        let plan = self.plan(p)?;
        self.run_plan(&plan, src, dst);
        Ok(())
    }

    /// Fetch (or build and cache) one plan for the whole `chain` of
    /// permutations, given in **application order**: the plan realises
    /// `chain[k-1] ∘ … ∘ chain[0]`, i.e. applying it once equals
    /// applying `chain[0]` first and `chain[k-1]` last. The composite is
    /// keyed into the same fingerprint→plan cache as any other
    /// permutation, so repeated pipelines (a bitonic exchange stage, the
    /// six-step FFT's transpose∘bit-reversal) pay composition once and
    /// hit thereafter. When every link is affine the composite is too,
    /// and planning takes the structured fast path: one memory round
    /// trip per fused chain, three sweeps instead of `3·k`.
    ///
    /// Errors with [`PermError::LengthMismatch`] (via
    /// [`Permutation::compose_chain`]) on an empty chain or mismatched
    /// lengths.
    ///
    /// [`PermError::LengthMismatch`]: hmm_perm::PermError::LengthMismatch
    pub fn plan_fused(&self, chain: &[&Permutation]) -> Result<Arc<PermutePlan<T>>> {
        let composite = Permutation::compose_chain(chain).map_err(hmm_plan::PlanError::from)?;
        self.plan(&composite)
    }

    /// Execute an entire permutation `chain` (application order, see
    /// [`SharedEngine::plan_fused`]) in one pass: `dst` receives what
    /// applying every link in sequence would have produced, without the
    /// intermediate round trips.
    ///
    /// # Panics
    /// Panics if `src.len() != dst.len()` or either differs from the
    /// chain's length.
    pub fn permute_fused(&self, chain: &[&Permutation], src: &[T], dst: &mut [T]) -> Result<()> {
        let plan = self.plan_fused(chain)?;
        self.run_plan(&plan, src, dst);
        Ok(())
    }

    /// Execute an already-fetched plan with pooled scratch. Plans that
    /// need no scratch ([`PermutePlan::scratch_len`] of 0 — every
    /// scatter plan) never touch (or allocate) the pool; others borrow a
    /// buffer of exactly the executable's declared size, whatever
    /// backend prepared it.
    pub fn run_plan(&self, plan: &PermutePlan<T>, src: &[T], dst: &mut [T]) {
        let scratch_len = plan.scratch_len();
        if scratch_len == 0 {
            plan.run_with_scratch(src, dst, &mut []);
        } else {
            let mut scratch = self.core.scratch.take(scratch_len);
            plan.run_with_scratch(src, dst, &mut scratch);
            self.core.scratch.put(scratch);
        }
        let counter = match plan.route() {
            Route::Scatter => &self.core.stats.scatter_runs,
            Route::Scheduled => &self.core.stats.scheduled_runs,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply one permutation to many `(src, dst)` pairs.
    ///
    /// The members are routed through the **submission queue** (see
    /// [`SharedEngine::submit`]) and this call blocks until every one has
    /// resolved — so concurrent `permute_batch` calls and [`submit`]ters
    /// interleave their jobs across the same drainer threads instead of
    /// convoying behind one caller's batch. Plan resolution happens once
    /// under the single-flight machinery no matter how many members the
    /// batch has. Called from inside a worker-pool task, the jobs run
    /// inline instead (waiting on the queue there could deadlock the
    /// pool's dispatch lock).
    ///
    /// [`submit`]: SharedEngine::submit
    ///
    /// # Panics
    /// Panics if any job's `src.len()` or `dst.len()` differs from
    /// `p.len()`, or if a queued member's execution panics.
    pub fn permute_batch<'a, I>(&self, p: &Permutation, jobs: I) -> Result<()>
    where
        I: IntoIterator<Item = (&'a [T], &'a mut [T])>,
        T: 'a,
    {
        let jobs: Vec<(&'a [T], &'a mut [T])> = jobs.into_iter().collect();
        if jobs.is_empty() {
            return Ok(());
        }
        // Validate every member before any pointer is enqueued, so the
        // borrowed payloads below never outlive a panicking caller.
        for (src, dst) in &jobs {
            assert!(
                src.len() == p.len() && dst.len() == p.len(),
                "permute_batch: job buffers must match the permutation length"
            );
        }
        if crate::pool::in_pool_task() {
            // Blocking on queue drainers from inside a pool task would
            // deadlock the pool's run lock; run the members inline.
            let plan = self.plan(p)?;
            for (src, dst) in jobs {
                self.run_plan(&plan, src, dst);
            }
            return Ok(());
        }
        let p = Arc::new(p.clone());
        let handles: Vec<JobHandle<T>> = jobs
            .into_iter()
            .map(|(src, dst)| {
                self.submit_payload(
                    Arc::clone(&p),
                    Payload::Borrowed {
                        src: src.as_ptr(),
                        dst: dst.as_mut_ptr(),
                        len: src.len(),
                    },
                )
            })
            .collect();
        // Wait for EVERY member before returning — even after an error —
        // because the queue holds raw pointers into the caller's slices
        // until each job resolves.
        let mut first_err: Option<JobError> = None;
        for h in handles {
            if let Err(e) = h.wait() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(JobError::Plan(e)) => Err(e),
            Some(JobError::Panicked(msg)) => panic!("queued batch job panicked: {msg}"),
            // Cancelled/ShutDown/AlreadyRetrieved cannot reach these
            // private handles while `&self` keeps the engine alive.
            Some(other) => panic!("unexpected queued batch outcome: {other}"),
        }
    }

    /// The submission queue, started (with its drainer threads) on first
    /// use. The drainers hold a `Weak` to the engine core, so they never
    /// keep a dropped engine alive — they drain, resolve, and exit.
    fn queue(&self) -> &Arc<Bounded<QueuedJob<T>>> {
        self.core.queue.slot.get_or_init(|| {
            let cap = self.core.queue.capacity.load(Ordering::Relaxed);
            let queue = Arc::new(Bounded::new(cap));
            let drainers = match self.core.queue.workers.load(Ordering::Relaxed) {
                0 => crate::par::worker_threads(),
                w => w,
            };
            for i in 0..drainers {
                let q = Arc::clone(&queue);
                let weak = Arc::downgrade(&self.core);
                let stats = Arc::clone(&self.core.stats);
                std::thread::Builder::new()
                    .name(format!("hmm-native-queue-{i}"))
                    .spawn(move || queue_drainer_loop(&q, &weak, &stats))
                    .expect("failed to spawn queue drainer");
            }
            queue
        })
    }

    /// Configure the submission queue **before its first use**: `capacity`
    /// bounds how many jobs may wait (pushes beyond it block — that is the
    /// backpressure the stress suite leans on), and `drainers` sets the
    /// drainer-thread count (`0` = match the worker pool). Returns `false`
    /// (and changes nothing) once the queue has already started.
    pub fn set_queue_config(&self, capacity: usize, drainers: usize) -> bool {
        if self.core.queue.slot.get().is_some() {
            return false;
        }
        self.core
            .queue
            .capacity
            .store(capacity.max(1), Ordering::Relaxed);
        self.core.queue.workers.store(drainers, Ordering::Relaxed);
        self.core.queue.slot.get().is_none()
    }

    /// Jobs currently waiting in the submission queue (a gauge; 0 when
    /// the queue has never been used). Jobs a drainer has already claimed
    /// are not counted.
    pub fn queue_depth(&self) -> usize {
        self.core.queue.slot.get().map_or(0, |q| q.len())
    }

    /// The submission queue's bounded capacity (the configured value
    /// until the queue starts, the frozen one after).
    pub fn queue_capacity(&self) -> usize {
        self.core
            .queue
            .slot
            .get()
            .map(|q| q.capacity())
            .unwrap_or_else(|| self.core.queue.capacity.load(Ordering::Relaxed))
    }

    /// Record one admission-control rejection in this engine's stats
    /// ([`EngineStats::admission_rejects`]). The engine never rejects
    /// anything itself — this is the reporting seam for front doors that
    /// gate submissions with their own quotas (the `hmm-server`
    /// per-client plan and in-flight limits), so operators read one
    /// counter set for the whole service.
    pub fn note_admission_reject(&self) {
        self.core
            .stats
            .admission_rejects
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Block until every job ever submitted to this engine has resolved
    /// (`submitted == completed + cancelled`) — the flush half of a
    /// graceful shutdown: stop feeding the engine, `drain()`, then drop
    /// it. Returns immediately when the queue was never used. The
    /// balance is re-read until it holds on two consecutive sleeps, so a
    /// drainer mid-`finish` cannot satisfy the check transiently.
    ///
    /// `drain` only waits for jobs already counted in
    /// [`EngineStats::submitted`]; the caller owns the guarantee that no
    /// new `submit` races the drain (in `hmm-server`, the accept loop is
    /// closed and every connection refuses new work first).
    pub fn drain(&self) {
        let mut stable = 0u32;
        loop {
            let s = &self.core.stats;
            let submitted = s.submitted.load(Ordering::Relaxed);
            let resolved =
                s.completed.load(Ordering::Relaxed) + s.cancelled.load(Ordering::Relaxed);
            if submitted == resolved {
                stable += 1;
                if stable >= 2 {
                    return;
                }
            } else {
                stable = 0;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Enqueue one permutation job and return immediately with a
    /// [`JobHandle`]. The job's plan is resolved **on the drainer side**
    /// (cache → store → König build, under the engine's single-flight
    /// machinery), so a dispatcher can enqueue hundreds of heterogeneous
    /// permutations without ever blocking on a build. `submit` blocks
    /// only when the bounded queue is full (backpressure).
    ///
    /// The handle always resolves: success carries the permuted `dst`
    /// back in a [`JobReport`]; a failed build, a drainer panic, a
    /// cancellation, or an engine shutdown resolve it with the matching
    /// [`JobError`] instead of hanging the waiter. A size mismatch
    /// between `p`, `src`, and `dst` resolves the handle immediately
    /// with [`PlanError::SizeMismatch`] (the blocking [`permute`] panics
    /// instead).
    ///
    /// [`permute`]: SharedEngine::permute
    ///
    /// ```
    /// use hmm_native::SharedEngine;
    /// use hmm_perm::families;
    ///
    /// let engine: SharedEngine<u32> = SharedEngine::new(32);
    /// let p = families::random(1 << 10, 1);
    /// let src: Vec<u32> = (0..1u32 << 10).collect();
    /// let handle = engine.submit(&p, src.clone(), vec![0u32; 1 << 10]);
    /// let report = handle.wait().unwrap();
    /// let mut expect = vec![0u32; 1 << 10];
    /// p.permute(&src, &mut expect).unwrap();
    /// assert_eq!(report.dst, expect);
    /// ```
    pub fn submit(&self, p: &Permutation, src: impl Into<Arc<[T]>>, dst: Vec<T>) -> JobHandle<T> {
        self.submit_payload(
            Arc::new(p.clone()),
            Payload::Owned {
                src: src.into(),
                dst,
            },
        )
    }

    /// Enqueue one permutation applied to many `(src, dst)` pairs and
    /// return immediately with a [`BatchHandle`] (one [`JobHandle`] per
    /// member, in submission order). Unlike the blocking
    /// [`permute_batch`], the caller keeps running while the members
    /// execute — and members interleave with every other submitter's
    /// jobs on the same queue.
    ///
    /// [`permute_batch`]: SharedEngine::permute_batch
    pub fn submit_batch<I>(&self, p: &Permutation, jobs: I) -> BatchHandle<T>
    where
        I: IntoIterator<Item = (Arc<[T]>, Vec<T>)>,
    {
        let p = Arc::new(p.clone());
        BatchHandle::new(
            jobs.into_iter()
                .map(|(src, dst)| self.submit_payload(Arc::clone(&p), Payload::Owned { src, dst }))
                .collect(),
        )
    }

    /// Common submission path: count the job, validate sizes, enqueue.
    fn submit_payload(&self, p: Arc<Permutation>, payload: Payload<T>) -> JobHandle<T> {
        let stats = &self.core.stats;
        let id = self.core.queue.next_job_id.fetch_add(1, Ordering::Relaxed);
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        let state = JobState::new();
        let handle = JobHandle::new(Arc::clone(&state), Arc::clone(stats), id);
        let (src_len, dst_len) = (payload.src_len(), payload.dst_len());
        if src_len != p.len() || dst_len != p.len() {
            // Resolve without a queue round-trip; counters stay balanced
            // (`submitted == completed + cancelled`).
            let got = if src_len != p.len() { src_len } else { dst_len };
            stats.completed.fetch_add(1, Ordering::Relaxed);
            state.begin();
            state.finish(Err(JobError::Plan(PlanError::SizeMismatch {
                expected: p.len(),
                got,
            })));
            return handle;
        }
        let job = QueuedJob { p, payload, state };
        if let Err(job) = self.queue().push(job) {
            // Only reachable if the queue closed mid-push — a teardown
            // race; resolve the handle instead of losing the job.
            job.resolve_shutdown(stats);
        }
        handle
    }

    /// Drainer-side execution of one claimed job: resolve the plan, run
    /// it, and resolve the handle — with panics caught so a failed build
    /// (or an injected fingerprint panic) resolves waiters instead of
    /// stranding them, and the drainer thread keeps serving.
    fn execute_job(&self, job: QueuedJob<T>) {
        let QueuedJob { p, payload, state } = job;
        if !state.begin() {
            // Cancelled while queued; `cancel()` already counted it.
            return;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let plan = self.plan(&p)?;
            let route = plan.route();
            let dst = match payload {
                Payload::Owned { src, mut dst } => {
                    self.run_plan(&plan, &src, &mut dst);
                    dst
                }
                Payload::Borrowed { src, dst, len } => {
                    // SAFETY: the `permute_batch` caller that erased these
                    // borrows blocks until this job's state resolves, and
                    // each member's dst slice is exclusive to one job.
                    let src = unsafe { std::slice::from_raw_parts(src, len) };
                    let dst = unsafe { std::slice::from_raw_parts_mut(dst, len) };
                    self.run_plan(&plan, src, dst);
                    Vec::new()
                }
            };
            Ok(JobReport { dst, route })
        }));
        let result = match outcome {
            Ok(done) => done,
            Err(panic) => Err(JobError::Panicked(panic_message(panic.as_ref()))),
        };
        // Count before notifying, so a waiter that wakes immediately
        // already sees the job accounted for in the stats.
        self.core.stats.completed.fetch_add(1, Ordering::Relaxed);
        state.finish(result);
    }
}

/// Render a caught panic payload for [`JobError::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One queue drainer: claim jobs until the queue closes and drains. The
/// engine is reached through a `Weak` so drainers never keep a dropped
/// engine alive; once the last handle is gone, remaining jobs resolve
/// with [`JobError::ShutDown`].
fn queue_drainer_loop<T: Copy + Send + Sync + Default + 'static>(
    queue: &Bounded<QueuedJob<T>>,
    core: &Weak<EngineCore<T>>,
    stats: &Arc<AtomicStats>,
) {
    while let Some(job) = queue.pop() {
        match core.upgrade() {
            Some(core) => SharedEngine { core }.execute_job(job),
            None => job.resolve_shutdown(stats),
        }
    }
}

/// The single-threaded throughput front door: an LRU plan cache plus a
/// scratch-buffer pool. A thin wrapper over a one-shard [`SharedEngine`]
/// (same cache, same LRU order, same counters) kept so existing `&mut
/// self` call sites compile unchanged; new concurrent callers should use
/// [`SharedEngine`] directly.
///
/// ```
/// use hmm_native::Engine;
/// use hmm_perm::families;
///
/// let mut engine: Engine<u32> = Engine::new(32);
/// let p = families::random(1 << 12, 1);
/// let src: Vec<u32> = (0..1u32 << 12).collect();
/// let mut dst = vec![0u32; 1 << 12];
/// engine.permute(&p, &src, &mut dst).unwrap(); // builds + caches the plan
/// engine.permute(&p, &src, &mut dst).unwrap(); // cache hit, no allocation
/// assert_eq!(engine.stats().hits, 1);
/// ```
pub struct Engine<T> {
    inner: SharedEngine<T>,
}

impl<T: Copy + Send + Sync + Default + 'static> Engine<T> {
    /// Engine with the given schedule width and default capacity/threshold.
    pub fn new(width: usize) -> Self {
        Self::with_capacity(width, DEFAULT_CAPACITY)
    }

    /// Engine with an explicit LRU capacity (≥ 1).
    pub fn with_capacity(width: usize, capacity: usize) -> Self {
        Engine {
            inner: SharedEngine::with_shards(width, 1, capacity),
        }
    }

    /// Engine with an on-disk tier-2 plan store (see
    /// [`SharedEngine::with_store`]).
    pub fn with_store(width: usize, dir: impl Into<PathBuf>) -> Result<Self> {
        let mut inner = SharedEngine::with_shards(width, 1, DEFAULT_CAPACITY);
        inner.set_store(PlanStore::open(dir)?);
        Ok(Engine { inner })
    }

    /// Measure and adopt this host's γ_w crossover (see
    /// [`SharedEngine::calibrate_gamma_threshold`]).
    pub fn calibrate_gamma_threshold(&mut self) -> f64 {
        self.inner.calibrate_gamma_threshold()
    }

    /// The attached on-disk plan store, if any.
    pub fn store(&self) -> Option<&PlanStore> {
        self.inner.store()
    }

    /// Override the γ_w crossover below which scatter is chosen. Set to
    /// `0.0` to force the scheduled backend, `f64::INFINITY` to force
    /// scatter. Affects plans built after the call.
    pub fn set_gamma_threshold(&mut self, threshold: f64) {
        self.inner.set_gamma_threshold(threshold);
    }

    /// Override the kernel config scheduled plans are built with (see
    /// [`SharedEngine::set_kernel_config`]).
    pub fn set_kernel_config(&mut self, config: KernelConfig) {
        self.inner.set_kernel_config(config);
    }

    /// The kernel config scheduled plans are currently built with.
    pub fn kernel_config(&self) -> KernelConfig {
        self.inner.kernel_config()
    }

    /// Test seam: replace the fingerprint function (see
    /// [`SharedEngine::set_fingerprint_fn`]).
    pub fn set_fingerprint_fn(&mut self, f: fn(&Permutation) -> u64) {
        self.inner.set_fingerprint_fn(f);
    }

    /// The schedule width plans are built with.
    pub fn width(&self) -> usize {
        self.inner.width()
    }

    /// Counters since construction.
    pub fn stats(&self) -> EngineStats {
        self.inner.stats()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.inner.cached_plans()
    }

    /// Scratch buffers currently parked in the pool.
    pub fn pooled_scratch_buffers(&self) -> usize {
        self.inner.pooled_scratch_buffers()
    }

    /// The shared engine backing this wrapper, for callers migrating to
    /// the concurrent `&self` API.
    pub fn shared(&self) -> &SharedEngine<T> {
        &self.inner
    }

    /// Consume the wrapper, keeping the cache and counters.
    pub fn into_shared(self) -> SharedEngine<T> {
        self.inner
    }

    /// Fetch (or build and cache) the plan for `p`.
    pub fn plan(&mut self, p: &Permutation) -> Result<Arc<PermutePlan<T>>> {
        self.inner.plan(p)
    }

    /// Execute `dst[P[i]] = src[i]` through the cache: plan lookup (or
    /// build), pooled scratch, backend dispatch.
    ///
    /// # Panics
    /// Panics if `src.len() != dst.len()` or either differs from `p.len()`.
    pub fn permute(&mut self, p: &Permutation, src: &[T], dst: &mut [T]) -> Result<()> {
        self.inner.permute(p, src, dst)
    }

    /// Fetch (or build and cache) one plan for a whole permutation chain
    /// in application order (see [`SharedEngine::plan_fused`]).
    pub fn plan_fused(&mut self, chain: &[&Permutation]) -> Result<Arc<PermutePlan<T>>> {
        self.inner.plan_fused(chain)
    }

    /// Execute a permutation chain in one pass (see
    /// [`SharedEngine::permute_fused`]).
    pub fn permute_fused(
        &mut self,
        chain: &[&Permutation],
        src: &[T],
        dst: &mut [T],
    ) -> Result<()> {
        self.inner.permute_fused(chain, src, dst)
    }

    /// Apply one permutation to many `(src, dst)` pairs: one plan lookup,
    /// jobs dispatched across the worker pool (see
    /// [`SharedEngine::permute_batch`]).
    pub fn permute_batch<'a, I>(&mut self, p: &Permutation, jobs: I) -> Result<()>
    where
        I: IntoIterator<Item = (&'a [T], &'a mut [T])>,
        T: 'a,
    {
        self.inner.permute_batch(p, jobs)
    }

    /// Execute an already-fetched plan with pooled scratch.
    pub fn run_plan(&mut self, plan: &PermutePlan<T>, src: &[T], dst: &mut [T]) {
        self.inner.run_plan(plan, src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 32;

    fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn engines_are_send_and_sync() {
        fn assert_sync_send<X: Sync + Send>() {}
        assert_sync_send::<SharedEngine<u32>>();
        assert_sync_send::<Engine<u64>>();
    }

    #[test]
    fn engine_is_correct_for_all_families() {
        let n = 1 << 12;
        let src: Vec<u32> = (0..n as u32).map(|v| v ^ 0xdead_beef).collect();
        let mut engine: Engine<u32> = Engine::new(W);
        for fam in families::Family::ALL {
            let p = fam.build(n, 3).unwrap();
            let mut dst = vec![0u32; n];
            engine.permute(&p, &src, &mut dst).unwrap();
            assert_eq!(dst, reference(&p, &src), "{}", fam.name());
        }
    }

    #[test]
    fn repeat_calls_hit_the_cache() {
        let n = 1 << 12;
        let p = families::random(n, 11);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut engine: Engine<u32> = Engine::new(W);
        for _ in 0..5 {
            engine.permute(&p, &src, &mut dst).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.collisions, 0);
        assert_eq!(engine.cached_plans(), 1);
        assert_eq!(dst, reference(&p, &src));
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let n = 1 << 10;
        let mut engine: Engine<u32> = Engine::with_capacity(W, 2);
        let perms: Vec<Permutation> = (0..3).map(|s| families::random(n, 100 + s)).collect();
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        // Fill: p0, p1. Touch p0 so p1 becomes LRU. Insert p2 -> evict p1.
        engine.permute(&perms[0], &src, &mut dst).unwrap();
        engine.permute(&perms[1], &src, &mut dst).unwrap();
        engine.permute(&perms[0], &src, &mut dst).unwrap();
        engine.permute(&perms[2], &src, &mut dst).unwrap();
        assert_eq!(engine.stats().evictions, 1);
        assert_eq!(engine.cached_plans(), 2);
        // p0 survived (hit), p1 was evicted (miss again), totals check out.
        engine.permute(&perms[0], &src, &mut dst).unwrap();
        engine.permute(&perms[1], &src, &mut dst).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.misses, 4); // p0, p1, p2, p1-again
        assert_eq!(stats.hits, 2); // p0 twice
    }

    #[test]
    fn gamma_decision_picks_backends_like_table_ii() {
        let n = 1 << 12;
        let mut engine: Engine<u32> = Engine::new(W);
        let ident = engine.plan(&families::identical(n)).unwrap();
        assert_eq!(ident.route(), Route::Scatter);
        assert!(ident.gamma() <= 2.0);
        let rand = engine.plan(&families::random(n, 7)).unwrap();
        assert_eq!(rand.route(), Route::Scheduled);
        assert!(rand.gamma() > DEFAULT_GAMMA_THRESHOLD);
        let bitrev = engine.plan(&families::bit_reversal(n).unwrap()).unwrap();
        assert_eq!(bitrev.route(), Route::Scheduled);
    }

    #[test]
    fn threshold_overrides_force_a_backend() {
        let n = 1 << 10;
        let p = families::random(n, 9);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];

        let mut force_scatter: Engine<u32> = Engine::new(W);
        force_scatter.set_gamma_threshold(f64::INFINITY);
        force_scatter.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(force_scatter.stats().scatter_runs, 1);
        assert_eq!(dst, reference(&p, &src));

        let mut force_sched: Engine<u32> = Engine::new(W);
        force_sched.set_gamma_threshold(0.0);
        force_sched.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(force_sched.stats().scheduled_runs, 1);
        assert_eq!(dst, reference(&p, &src));
    }

    #[test]
    fn kernel_config_threads_through_plans() {
        let n = 1 << 10;
        let p = families::random(n, 44);
        let mut engine: Engine<u32> = Engine::new(W);
        engine.set_gamma_threshold(0.0); // force the scheduled backend
        let cfg = KernelConfig {
            stage_bytes: 8192,
            simd: false,
            ..KernelConfig::default()
        };
        engine.set_kernel_config(cfg);
        assert_eq!(engine.kernel_config(), cfg);
        let plan = engine.plan(&p).unwrap();
        assert_eq!(plan.executable().kernel_config(), cfg);
        let stats = engine.stats();
        assert_eq!(stats.kernel_stage_bytes, 8192);
        assert!(!stats.kernel_simd);
        // The snapshot names whatever backend the engine resolved
        // (HMM_BACKEND can redirect a whole test run).
        assert_eq!(stats.backend, plan.executable().backend_name());
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        engine.run_plan(&plan, &src, &mut dst);
        assert_eq!(dst, reference(&p, &src));
    }

    #[test]
    fn batch_reuses_one_plan_lookup() {
        let n = 1 << 11;
        let p = families::random(n, 21);
        let srcs: Vec<Vec<u32>> = (0..4)
            .map(|k| (0..n as u32).map(|v| v.wrapping_add(k)).collect())
            .collect();
        let mut dsts: Vec<Vec<u32>> = vec![vec![0u32; n]; 4];
        let mut engine: Engine<u32> = Engine::new(W);
        engine
            .permute_batch(
                &p,
                srcs.iter()
                    .map(|s| s.as_slice())
                    .zip(dsts.iter_mut().map(|d| d.as_mut_slice())),
            )
            .unwrap();
        let stats = engine.stats();
        // Queue-routed members each call plan(), but single-flight plus
        // the cache keep the build count at one.
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.scheduled_runs + stats.scatter_runs, 4);
        assert_eq!(stats.submitted, 4, "batch members route through the queue");
        assert_eq!(stats.completed, 4);
        for (src, dst) in srcs.iter().zip(&dsts) {
            assert_eq!(dst, &reference(&p, src));
        }
    }

    #[test]
    fn fingerprint_distinguishes_permutations() {
        // The engine keys by the shared `Permutation::fingerprint`; the
        // FNV-1a properties themselves are tested in hmm-perm.
        let n = 1 << 10;
        let a = default_fingerprint(&families::random(n, 1));
        let b = default_fingerprint(&families::random(n, 2));
        let ident = default_fingerprint(&Permutation::identity(n));
        assert_ne!(a, b);
        assert_ne!(a, ident);
        // Deterministic: same permutation, same fingerprint.
        assert_eq!(a, families::random(n, 1).fingerprint());
        // Length participates even when images prefix-match.
        assert_ne!(
            default_fingerprint(&Permutation::identity(64)),
            default_fingerprint(&Permutation::identity(128))
        );
    }

    #[test]
    fn collision_is_detected_counted_and_corrected() {
        // Force every permutation onto one PlanKey: the cache must notice
        // the full-image mismatch instead of running the wrong plan.
        let n = 1 << 10;
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut engine: Engine<u32> = Engine::new(W);
        engine.set_fingerprint_fn(|_| 0xdead_beef);
        let p1 = families::random(n, 1);
        let p2 = families::random(n, 2);

        engine.permute(&p1, &src, &mut dst).unwrap();
        assert_eq!(dst, reference(&p1, &src));
        // Same key, different permutation: collision, rebuilt, correct.
        engine.permute(&p2, &src, &mut dst).unwrap();
        assert_eq!(dst, reference(&p2, &src), "collision must not corrupt");
        let stats = engine.stats();
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
        // p2 now owns the key: a repeat is a verified hit.
        engine.permute(&p2, &src, &mut dst).unwrap();
        assert_eq!(engine.stats().hits, 1);
        assert_eq!(engine.cached_plans(), 1);
    }

    #[test]
    fn scratch_pool_is_bounded_and_reused() {
        let n = 1 << 10;
        let p = families::random(n, 33); // high γ -> scheduled -> scratch
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut engine: Engine<u32> = Engine::new(W);
        for _ in 0..10 {
            engine.permute(&p, &src, &mut dst).unwrap();
        }
        let pooled = engine.pooled_scratch_buffers();
        assert!(pooled >= 1, "scheduled runs must park scratch for reuse");
        assert!(pooled <= SCRATCH_POOL_CAP);
    }

    #[test]
    fn scatter_plans_never_touch_the_scratch_pool() {
        // A scatter-only engine must not allocate (or pool) n-element
        // scratch buffers the backend never reads.
        let n = 1 << 12;
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut engine: Engine<u32> = Engine::new(W);
        engine.set_gamma_threshold(f64::INFINITY); // force scatter
        for seed in 0..4 {
            let p = families::random(n, seed);
            engine.permute(&p, &src, &mut dst).unwrap();
            assert_eq!(dst, reference(&p, &src));
        }
        assert_eq!(engine.stats().scatter_runs, 4);
        assert_eq!(
            engine.pooled_scratch_buffers(),
            0,
            "scatter-only engines keep an empty scratch pool"
        );
    }

    #[test]
    fn shared_engine_basic_reuse_and_stats() {
        let n = 1 << 12;
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        let p = families::random(n, 5);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        for _ in 0..3 {
            engine.permute(&p, &src, &mut dst).unwrap();
        }
        assert_eq!(dst, reference(&p, &src));
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(engine.cached_plans(), 1);
        assert_eq!(engine.shards(), DEFAULT_SHARDS);
    }

    #[test]
    fn shared_engine_single_flight_dedupes_concurrent_builds() {
        let n = 1 << 12;
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        let p = families::random(n, 77);
        let src: Vec<u32> = (0..n as u32).collect();
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut dst = vec![0u32; n];
                    barrier.wait();
                    engine.permute(&p, &src, &mut dst).unwrap();
                    assert_eq!(dst, reference(&p, &src));
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.misses, 1, "exactly one build, no matter the race");
        assert_eq!(stats.hits + stats.builds_deduped, 3);
    }

    #[test]
    fn shared_engine_batch_runs_jobs_across_the_pool() {
        let n = 1 << 11;
        let p = families::random(n, 21);
        let srcs: Vec<Vec<u32>> = (0..6)
            .map(|k| (0..n as u32).map(|v| v.rotate_left(k)).collect())
            .collect();
        let mut dsts: Vec<Vec<u32>> = vec![vec![0u32; n]; 6];
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        engine
            .permute_batch(
                &p,
                srcs.iter()
                    .map(Vec::as_slice)
                    .zip(dsts.iter_mut().map(Vec::as_mut_slice)),
            )
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.scheduled_runs + stats.scatter_runs, 6);
        for (src, dst) in srcs.iter().zip(&dsts) {
            assert_eq!(dst, &reference(&p, src));
        }
    }

    #[test]
    fn shared_engine_per_shard_lru_evicts() {
        let n = 1 << 10;
        // One shard, capacity 2: global LRU semantics, concurrent API.
        let engine: SharedEngine<u32> = SharedEngine::with_shards(W, 1, 2);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        for s in 0..3 {
            engine
                .permute(&families::random(n, s), &src, &mut dst)
                .unwrap();
        }
        assert_eq!(engine.stats().evictions, 1);
        assert_eq!(engine.cached_plans(), 2);
    }

    /// Fresh, empty temp directory for one store test.
    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hmm-native-plan-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_store_skips_the_koenig_build() {
        let n = 1 << 12;
        let dir = temp_store_dir("warm");
        let p = families::random(n, 41); // high γ ⇒ scheduled ⇒ stored
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];

        let first: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
        first.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(dst, reference(&p, &src));
        let s = first.stats();
        assert_eq!(s.builds, 1, "cold store: the plan is built once");
        assert_eq!(s.store_hits, 0);

        // A second engine — standing in for a fresh process — must find
        // the plan on disk and never run the coloring.
        let second: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
        dst.fill(0);
        second.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(dst, reference(&p, &src));
        let s = second.stats();
        assert_eq!(s.builds, 0, "warm store: no König build");
        assert_eq!(s.store_hits, 1);
        assert_eq!(s.store_rejects, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scatter_plans_stay_out_of_the_store() {
        let n = 1 << 12;
        let dir = temp_store_dir("scatter");
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let engine: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
        engine
            .permute(&families::identical(n), &src, &mut dst)
            .unwrap();
        let s = engine.stats();
        assert_eq!(s.scatter_runs, 1);
        assert_eq!(s.builds, 0);
        assert!(engine.store().unwrap().entries().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_file_is_rejected_and_rebuilt() {
        let n = 1 << 12;
        let dir = temp_store_dir("corrupt");
        let p = families::random(n, 43);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];

        let first: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
        first.permute(&p, &src, &mut dst).unwrap();

        // Flip one byte in the middle of the stored plan.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|f| f.extension().is_some_and(|x| x == "hmmplan"))
            .expect("the scheduled plan must be on disk");
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&file, bytes).unwrap();

        let second: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
        dst.fill(0);
        second.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(
            dst,
            reference(&p, &src),
            "corruption must not corrupt output"
        );
        let s = second.stats();
        assert_eq!(s.store_rejects, 1, "the damaged file is counted");
        assert_eq!(s.builds, 1, "and the plan rebuilt from scratch");

        // The rebuild re-saved a good file: a third engine hits it.
        let third: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
        dst.fill(0);
        third.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(dst, reference(&p, &src));
        assert_eq!(third.stats().store_hits, 1);
        assert_eq!(third.stats().builds, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn calibration_sets_threshold_and_flag() {
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        // A fresh engine is uncalibrated — unless the suite itself runs
        // under HMM_NATIVE_CALIBRATE=1, which auto-calibrates at creation.
        let env_calibrated = std::env::var(CALIBRATE_ENV).as_deref() == Ok("1");
        let before = engine.stats();
        assert_eq!(before.calibrated, env_calibrated);
        if !env_calibrated {
            assert_eq!(before.gamma_threshold, DEFAULT_GAMMA_THRESHOLD);
        }
        let t = engine.calibrate_gamma_threshold();
        assert!((1.0..=W as f64).contains(&t) || t == DEFAULT_GAMMA_THRESHOLD);
        let after = engine.stats();
        assert!(after.calibrated);
        assert_eq!(after.gamma_threshold, t);
    }

    #[test]
    fn failed_builds_are_not_sticky() {
        // Length 0 is rejected by the permutation layer before any build;
        // use a permutation the backend cannot schedule? All families
        // build, so exercise the error path via a poisoned gamma choice:
        // scheduled backend on a non-factorable size.
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap(); // n = 3
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        engine.set_gamma_threshold(0.0); // force scheduled backend
        let err = engine.plan(&p);
        if err.is_err() {
            // The failure must not wedge the key: a scatter retry works.
            engine.set_gamma_threshold(f64::INFINITY);
            let plan = engine.plan(&p).unwrap();
            assert_eq!(plan.route(), Route::Scatter);
        }
    }
}
