//! Plan cache and throughput engine for repeated permutations.
//!
//! Building a scheduled plan is expensive — a König edge-coloring of the
//! r×c transfer matrix plus three gather-map materialisations — while
//! *executing* one is three memory sweeps. Offline permutation workloads
//! (FFT reorderings, matrix layouts, routing tables) apply the same few
//! permutations over and over, so the [`Engine`] front door caches built
//! plans in an LRU keyed by a 64-bit fingerprint of the permutation, and
//! keeps a small pool of scratch buffers so steady-state calls allocate
//! nothing.
//!
//! The engine also chooses the backend per plan: the paper's Table II shows
//! the conventional (scatter) kernel beating the scheduled one when the
//! distribution `γ_w(P)` is small — few distinct destination groups per
//! warp means the single scattered pass is nearly coalesced, and no
//! three-sweep rewrite can beat one sweep. The same crossover exists on the
//! CPU with cache lines in place of address groups, so plans are built with
//! a measured-γ decision: `γ_w(P) ≤ threshold` → scatter, else scheduled.

use crate::scheduled::NativeScheduled;
use hmm_offperm::Result;
use hmm_perm::distribution::distribution;
use hmm_perm::Permutation;
use std::collections::HashMap;
use std::sync::Arc;

/// Default LRU capacity (plans held at once).
pub const DEFAULT_CAPACITY: usize = 8;

/// Default γ_w crossover: at or below this measured distribution the
/// scatter kernel wins. One scattered sweep costs about `γ/w` cache lines
/// per element versus the fused path's three sequential sweeps, so the
/// break-even sits in the low single digits; 4 matches the paper's
/// Table II shape (scatter wins for identical/rotation/shuffle classes,
/// scheduled for random/bit-reversal/transpose).
pub const DEFAULT_GAMMA_THRESHOLD: f64 = 4.0;

/// Scratch buffers retained for reuse.
const SCRATCH_POOL_CAP: usize = 4;

/// FNV-1a over the permutation image, mixed with the length. Two distinct
/// permutations colliding on both fingerprint *and* length is a ~2⁻⁶⁴
/// event; the cache treats the pair as identity, trading that risk for
/// O(n) keying without storing the full image per entry.
fn fingerprint(p: &Permutation) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &d in p.as_slice() {
        let mut v = d as u64;
        for _ in 0..8 {
            h ^= v & 0xff;
            h = h.wrapping_mul(PRIME);
            v >>= 8;
        }
    }
    h ^ (p.len() as u64).wrapping_mul(PRIME)
}

/// Cache key: permutation fingerprint + length + schedule width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    fingerprint: u64,
    len: usize,
    width: usize,
}

/// How a cached plan executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single scattered pass (`scatter_permute`) — wins at low γ_w.
    Scatter,
    /// Fused three-sweep scheduled permutation.
    Scheduled,
}

/// A built, cached execution plan for one permutation.
#[derive(Debug)]
pub struct PermutePlan {
    backend: Backend,
    gamma: f64,
    /// Present iff `backend == Scheduled`.
    scheduled: Option<NativeScheduled>,
    /// Kept for the scatter path (and for callers that want it back).
    permutation: Permutation,
}

impl PermutePlan {
    /// Build a plan, measuring γ_w(P) to pick the backend.
    pub fn build(p: &Permutation, width: usize, gamma_threshold: f64) -> Result<Self> {
        let gamma = distribution(p, width);
        let backend = if gamma <= gamma_threshold {
            Backend::Scatter
        } else {
            Backend::Scheduled
        };
        let scheduled = match backend {
            Backend::Scatter => None,
            Backend::Scheduled => Some(NativeScheduled::build(p, width)?),
        };
        Ok(PermutePlan {
            backend,
            gamma,
            scheduled,
            permutation: p.clone(),
        })
    }

    /// The backend this plan executes with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The measured distribution γ_w(P) the decision was based on.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of elements the plan permutes.
    pub fn len(&self) -> usize {
        self.permutation.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scheduled executable, when the scheduled backend was chosen.
    pub fn scheduled(&self) -> Option<&NativeScheduled> {
        self.scheduled.as_ref()
    }

    /// Execute `dst[P[i]] = src[i]` with caller-provided scratch (length
    /// `n`; untouched on the scatter path).
    pub fn run_with_scratch<T: Copy + Send + Sync>(
        &self,
        src: &[T],
        dst: &mut [T],
        scratch: &mut [T],
    ) {
        match &self.scheduled {
            Some(sched) => sched.run_with_scratch(src, dst, scratch),
            None => crate::scatter::scatter_permute(src, &self.permutation, dst),
        }
    }
}

/// Cache/engine counters, for tests and bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Cache hits (plan reused).
    pub hits: u64,
    /// Cache misses (plan built).
    pub misses: u64,
    /// Plans evicted to respect capacity.
    pub evictions: u64,
    /// Executions that took the scatter backend.
    pub scatter_runs: u64,
    /// Executions that took the scheduled backend.
    pub scheduled_runs: u64,
}

struct Entry {
    plan: Arc<PermutePlan>,
    last_used: u64,
}

/// The throughput front door: an LRU plan cache plus a scratch-buffer pool.
///
/// ```
/// use hmm_native::Engine;
/// use hmm_perm::families;
///
/// let mut engine: Engine<u32> = Engine::new(32);
/// let p = families::random(1 << 12, 1);
/// let src: Vec<u32> = (0..1u32 << 12).collect();
/// let mut dst = vec![0u32; 1 << 12];
/// engine.permute(&p, &src, &mut dst).unwrap(); // builds + caches the plan
/// engine.permute(&p, &src, &mut dst).unwrap(); // cache hit, no allocation
/// assert_eq!(engine.stats().hits, 1);
/// ```
pub struct Engine<T> {
    width: usize,
    capacity: usize,
    gamma_threshold: f64,
    entries: HashMap<PlanKey, Entry>,
    clock: u64,
    scratch_pool: Vec<Vec<T>>,
    stats: EngineStats,
}

impl<T: Copy + Send + Sync + Default> Engine<T> {
    /// Engine with the given schedule width and default capacity/threshold.
    pub fn new(width: usize) -> Self {
        Self::with_capacity(width, DEFAULT_CAPACITY)
    }

    /// Engine with an explicit LRU capacity (≥ 1).
    pub fn with_capacity(width: usize, capacity: usize) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(capacity > 0, "capacity must be positive");
        Engine {
            width,
            capacity,
            gamma_threshold: DEFAULT_GAMMA_THRESHOLD,
            entries: HashMap::new(),
            clock: 0,
            scratch_pool: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Override the γ_w crossover below which scatter is chosen. Set to
    /// `0.0` to force the scheduled backend, `f64::INFINITY` to force
    /// scatter. Affects plans built after the call.
    pub fn set_gamma_threshold(&mut self, threshold: f64) {
        self.gamma_threshold = threshold;
    }

    /// The schedule width plans are built with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Counters since construction.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.entries.len()
    }

    /// Fetch (or build and cache) the plan for `p`.
    pub fn plan(&mut self, p: &Permutation) -> Result<Arc<PermutePlan>> {
        let key = PlanKey {
            fingerprint: fingerprint(p),
            len: p.len(),
            width: self.width,
        };
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.stats.hits += 1;
            return Ok(Arc::clone(&entry.plan));
        }
        let plan = Arc::new(PermutePlan::build(p, self.width, self.gamma_threshold)?);
        self.stats.misses += 1;
        if self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                last_used: self.clock,
            },
        );
        Ok(plan)
    }

    /// Execute `dst[P[i]] = src[i]` through the cache: plan lookup (or
    /// build), pooled scratch, backend dispatch.
    ///
    /// # Panics
    /// Panics if `src.len() != dst.len()` or either differs from `p.len()`.
    pub fn permute(&mut self, p: &Permutation, src: &[T], dst: &mut [T]) -> Result<()> {
        let plan = self.plan(p)?;
        self.run_plan(&plan, src, dst);
        Ok(())
    }

    /// Apply one permutation to many `(src, dst)` pairs: one plan lookup,
    /// one scratch buffer, `jobs.len()` executions.
    pub fn permute_batch<'a, I>(&mut self, p: &Permutation, jobs: I) -> Result<()>
    where
        I: IntoIterator<Item = (&'a [T], &'a mut [T])>,
        T: 'a,
    {
        let plan = self.plan(p)?;
        let mut scratch = self.take_scratch(plan.len());
        for (src, dst) in jobs {
            plan.run_with_scratch(src, dst, &mut scratch);
            self.count_run(&plan);
        }
        self.put_scratch(scratch);
        Ok(())
    }

    /// Execute an already-fetched plan with pooled scratch.
    pub fn run_plan(&mut self, plan: &PermutePlan, src: &[T], dst: &mut [T]) {
        let mut scratch = self.take_scratch(plan.len());
        plan.run_with_scratch(src, dst, &mut scratch);
        self.count_run(plan);
        self.put_scratch(scratch);
    }

    fn count_run(&mut self, plan: &PermutePlan) {
        match plan.backend() {
            Backend::Scatter => self.stats.scatter_runs += 1,
            Backend::Scheduled => self.stats.scheduled_runs += 1,
        }
    }

    fn take_scratch(&mut self, n: usize) -> Vec<T> {
        if let Some(pos) = self.scratch_pool.iter().position(|b| b.len() == n) {
            self.scratch_pool.swap_remove(pos)
        } else {
            vec![T::default(); n]
        }
    }

    fn put_scratch(&mut self, buf: Vec<T>) {
        if self.scratch_pool.len() < SCRATCH_POOL_CAP {
            self.scratch_pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 32;

    fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn engine_is_correct_for_all_families() {
        let n = 1 << 12;
        let src: Vec<u32> = (0..n as u32).map(|v| v ^ 0xdead_beef).collect();
        let mut engine: Engine<u32> = Engine::new(W);
        for fam in families::Family::ALL {
            let p = fam.build(n, 3).unwrap();
            let mut dst = vec![0u32; n];
            engine.permute(&p, &src, &mut dst).unwrap();
            assert_eq!(dst, reference(&p, &src), "{}", fam.name());
        }
    }

    #[test]
    fn repeat_calls_hit_the_cache() {
        let n = 1 << 12;
        let p = families::random(n, 11);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut engine: Engine<u32> = Engine::new(W);
        for _ in 0..5 {
            engine.permute(&p, &src, &mut dst).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(engine.cached_plans(), 1);
        assert_eq!(dst, reference(&p, &src));
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let n = 1 << 10;
        let mut engine: Engine<u32> = Engine::with_capacity(W, 2);
        let perms: Vec<Permutation> = (0..3).map(|s| families::random(n, 100 + s)).collect();
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        // Fill: p0, p1. Touch p0 so p1 becomes LRU. Insert p2 -> evict p1.
        engine.permute(&perms[0], &src, &mut dst).unwrap();
        engine.permute(&perms[1], &src, &mut dst).unwrap();
        engine.permute(&perms[0], &src, &mut dst).unwrap();
        engine.permute(&perms[2], &src, &mut dst).unwrap();
        assert_eq!(engine.stats().evictions, 1);
        assert_eq!(engine.cached_plans(), 2);
        // p0 survived (hit), p1 was evicted (miss again), totals check out.
        engine.permute(&perms[0], &src, &mut dst).unwrap();
        engine.permute(&perms[1], &src, &mut dst).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.misses, 4); // p0, p1, p2, p1-again
        assert_eq!(stats.hits, 2); // p0 twice
    }

    #[test]
    fn gamma_decision_picks_backends_like_table_ii() {
        let n = 1 << 12;
        let mut engine: Engine<u32> = Engine::new(W);
        let ident = engine.plan(&families::identical(n)).unwrap();
        assert_eq!(ident.backend(), Backend::Scatter);
        assert!(ident.gamma() <= 2.0);
        let rand = engine.plan(&families::random(n, 7)).unwrap();
        assert_eq!(rand.backend(), Backend::Scheduled);
        assert!(rand.gamma() > DEFAULT_GAMMA_THRESHOLD);
        let bitrev = engine.plan(&families::bit_reversal(n).unwrap()).unwrap();
        assert_eq!(bitrev.backend(), Backend::Scheduled);
    }

    #[test]
    fn threshold_overrides_force_a_backend() {
        let n = 1 << 10;
        let p = families::random(n, 9);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];

        let mut force_scatter: Engine<u32> = Engine::new(W);
        force_scatter.set_gamma_threshold(f64::INFINITY);
        force_scatter.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(force_scatter.stats().scatter_runs, 1);
        assert_eq!(dst, reference(&p, &src));

        let mut force_sched: Engine<u32> = Engine::new(W);
        force_sched.set_gamma_threshold(0.0);
        force_sched.permute(&p, &src, &mut dst).unwrap();
        assert_eq!(force_sched.stats().scheduled_runs, 1);
        assert_eq!(dst, reference(&p, &src));
    }

    #[test]
    fn batch_reuses_one_plan_lookup() {
        let n = 1 << 11;
        let p = families::random(n, 21);
        let srcs: Vec<Vec<u32>> = (0..4)
            .map(|k| (0..n as u32).map(|v| v.wrapping_add(k)).collect())
            .collect();
        let mut dsts: Vec<Vec<u32>> = vec![vec![0u32; n]; 4];
        let mut engine: Engine<u32> = Engine::new(W);
        engine
            .permute_batch(
                &p,
                srcs.iter()
                    .map(|s| s.as_slice())
                    .zip(dsts.iter_mut().map(|d| d.as_mut_slice())),
            )
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.misses + stats.hits, 1);
        assert_eq!(stats.scheduled_runs + stats.scatter_runs, 4);
        for (src, dst) in srcs.iter().zip(&dsts) {
            assert_eq!(dst, &reference(&p, src));
        }
    }

    #[test]
    fn fingerprint_distinguishes_permutations() {
        let n = 1 << 10;
        let a = fingerprint(&families::random(n, 1));
        let b = fingerprint(&families::random(n, 2));
        let ident = fingerprint(&Permutation::identity(n));
        assert_ne!(a, b);
        assert_ne!(a, ident);
        // Deterministic: same permutation, same fingerprint.
        assert_eq!(a, fingerprint(&families::random(n, 1)));
        // Length participates even when images prefix-match.
        assert_ne!(
            fingerprint(&Permutation::identity(64)),
            fingerprint(&Permutation::identity(128))
        );
    }

    #[test]
    fn scratch_pool_is_bounded_and_reused() {
        let n = 1 << 10;
        let p = families::random(n, 33);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut engine: Engine<u32> = Engine::new(W);
        for _ in 0..10 {
            engine.permute(&p, &src, &mut dst).unwrap();
        }
        assert!(engine.scratch_pool.len() <= SCRATCH_POOL_CAP);
        assert!(!engine.scratch_pool.is_empty());
        assert_eq!(engine.scratch_pool[0].len(), n);
    }
}
