//! # hmm-native — wall-clock CPU backend for offline permutation
//!
//! The paper's evaluation runs on a GTX-680; this crate is the substitution
//! for machines without one (see DESIGN.md §2): the same three algorithms
//! executed with real parallelism on the host CPU, where cache lines and
//! TLB entries play the role the paper's address groups play on the GPU.
//!
//! * [`scatter::scatter_permute`] / [`scatter::gather_permute`] — the
//!   conventional D-/S-designated kernels (one scattered pass);
//! * [`scheduled::NativeScheduled`] — the scheduled permutation executed
//!   as three fused memory sweeps (gather-transpose, gather-transpose,
//!   row gather), built from the backend-neutral [`hmm_plan::PlanIr`]
//!   shared with the simulator and the on-disk plan store;
//! * [`plan::SharedEngine`] — the concurrent front door: a thread-safe
//!   plan service (`&self` from any number of threads) with a sharded LRU
//!   cache, single-flight plan construction, verified (collision-proof)
//!   hits, a lock-free scratch pool, a distribution-based scatter
//!   fallback (optionally calibrated per host, `HMM_NATIVE_CALIBRATE=1`),
//!   and an optional tier-2 on-disk plan store
//!   ([`plan::SharedEngine::with_store`]) so a cold process skips the
//!   König coloring — [`plan::Engine`] keeps the original single-threaded
//!   API as a thin wrapper over one shard;
//! * [`queue`] — asynchronous queued submission on top of the engine:
//!   [`plan::SharedEngine::submit`] / [`plan::SharedEngine::submit_batch`]
//!   enqueue jobs on a bounded MPMC queue and return [`queue::JobHandle`]s
//!   (`wait` / `try_wait` / `cancel`); plan resolution happens on the
//!   drainer side, and build failures or panics resolve handles with a
//!   [`queue::JobError`] instead of hanging waiters;
//! * [`backend`] — the process backend registry over `hmm-backend`'s
//!   [`Backend`] trait: [`backend::NativeBackend`] (this crate's kernels)
//!   and the `hmm-backend` sweep-IR interpreter are both registered, the
//!   engines dispatch every execution through the trait, and
//!   `HMM_BACKEND=interp` redirects a whole process without a recompile;
//! * [`config::KernelConfig`] — the sweep-kernel tuning seam (staging
//!   block size, double-buffer depth, SIMD and prefetch switches,
//!   `HMM_NATIVE_SIMD=0` to force the scalar reference; re-exported from
//!   `hmm-backend`, where the strict warn-once env parsing lives) threaded
//!   through every front door: blocking calls, the shared engine, and the
//!   queue drainers;
//! * [`pool`] / [`par`] — a persistent worker pool (created once per
//!   process) and the chunked parallel-for primitives built on it
//!   (`rayon` is not on this reproduction's offline dependency list).
//!
//! `unsafe` is confined to five audited sites: the scatter kernel's
//! disjointness argument (`scatter::ScatterTarget`), the pool's
//! type-erased task pointer (`pool::RawTask`), the chunk splitter
//! (`par::SliceParts`), the seed-initialized per-thread staging arena
//! (`stage`), and the clamped-index vector kernels (`simd` — the one
//! module allowed to touch `core::arch`).
//!
//! The criterion benches in `hmm-bench` compare the approaches across the
//! paper's permutation families and sizes.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod config;
pub mod par;
pub mod plan;
pub mod pool;
pub mod queue;
pub mod scatter;
pub mod scheduled;
mod simd;
mod stage;

pub use backend::{
    as_native_scheduled, backend_names, by_name, default_backend, forced_engine, forced_engine_on,
    NativeBackend, BACKEND_ENV, NATIVE_BACKEND_NAME,
};
pub use config::{KernelConfig, COMPUTED_INDEX_ENV, SIMD_ENV};
pub use hmm_backend::{Backend, Capabilities, ExecPlan, Executable, InterpBackend, Route};
pub use hmm_plan::{PlanIr, PlanStore, StoreKey};
pub use par::THREADS_ENV;
pub use plan::{Engine, EngineStats, PermutePlan, SharedEngine, CALIBRATE_ENV};
pub use queue::{BatchHandle, JobError, JobHandle, JobReport, DEFAULT_QUEUE_CAPACITY};
pub use scatter::{copy_baseline, gather_permute, scatter_permute};
pub use scheduled::NativeScheduled;
