//! # hmm-native — wall-clock CPU backend for offline permutation
//!
//! The paper's evaluation runs on a GTX-680; this crate is the substitution
//! for machines without one (see DESIGN.md §2): the same three algorithms
//! executed with real parallelism on the host CPU, where cache lines and
//! TLB entries play the role the paper's address groups play on the GPU.
//!
//! * [`scatter::scatter_permute`] / [`scatter::gather_permute`] — the
//!   conventional D-/S-designated kernels (one scattered pass);
//! * [`scheduled::NativeScheduled`] — the five-pass scheduled permutation
//!   (row gather, blocked transpose, row gather, blocked transpose, row
//!   gather), sharing its decomposition with the simulator build;
//! * [`par`] — a minimal chunked parallel-for on crossbeam scoped threads
//!   (`rayon` is not on this reproduction's offline dependency list).
//!
//! The criterion benches in `hmm-bench` compare the two approaches across
//! the paper's permutation families and sizes.

#![warn(missing_docs)]
// `unsafe` appears exactly once, in the scatter kernel, with a documented
// bijection-disjointness argument (see `scatter::ScatterTarget`).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod par;
pub mod scatter;
pub mod scheduled;

pub use scatter::{copy_baseline, gather_permute, scatter_permute};
pub use scheduled::NativeScheduled;
