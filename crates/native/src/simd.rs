//! Vector micro-kernels for the sweep pipelines — the **only** module in
//! the crate that touches `core::arch`.
//!
//! Three tiers, selected once per sweep by [`select`]:
//!
//! * [`Tier::Scalar`] — plain bounds-checked loops, the always-available
//!   fallback and the correctness oracle the differential suite compares
//!   everything else against;
//! * [`Tier::Unrolled`] — width-agnostic chunked gathers with the bounds
//!   check replaced by a branch-free clamp (a `cmov`, not a branch), so
//!   LLVM unrolls the load/store chain. Works on every architecture;
//! * [`Tier::Avx2`] — `core::arch` x86-64 paths behind **runtime**
//!   feature detection: hardware gathers (`vpgatherdd`/`vpgatherdq`) for
//!   4-/8-byte elements and 8×8 / 4×4 in-register tile transposes.
//!
//! # Safety
//!
//! Every public-to-the-crate entry point here is a *safe* function:
//!
//! * gather indices are clamped into range before any unchecked access,
//!   so a contract violation (an index ≥ the row length — impossible for
//!   the validated plan rows the callers pass) yields a wrong element,
//!   never an out-of-bounds access. Debug builds still assert the
//!   contract;
//! * the AVX2 tier is only reachable through [`Tier::Avx2`], whose sole
//!   constructor is gated on `is_x86_feature_detected!("avx2")`;
//! * strided-transpose windows are bounds-asserted up front, and tile
//!   offsets stay inside the asserted window by construction.
//!
//! Non-x86-64 builds compile none of the `core::arch` code: the `Avx2`
//! tier variant still exists but is never constructed, and the remaining
//! `unsafe` is the architecture-independent clamped-gather tier.

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64 as arch;

use core::mem::size_of;

/// Proof that the running CPU supports AVX2: the only constructor is
/// [`avx2_token`], which consults runtime feature detection. Carrying the
/// token (inside [`Tier::Avx2`]) is what makes calling the
/// `#[target_feature(enable = "avx2")]` kernels sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Avx2Token(());

/// `Some` iff the running CPU supports AVX2 (cached by `std`'s detection
/// machinery; on non-x86-64 targets, always `None`).
pub(crate) fn avx2_token() -> Option<Avx2Token> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(Avx2Token(()));
        }
    }
    None
}

/// The kernel tier a sweep runs at (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    /// Bounds-checked scalar loops — the reference.
    Scalar,
    /// Clamped, unrolled chunked loops — any width, any architecture.
    Unrolled,
    /// Hardware gather + register transposes for 4-/8-byte elements.
    Avx2(Avx2Token),
}

/// Pick the tier for element type `T` under the `simd` toggle: scalar
/// when SIMD is off, the AVX2 tier for 4-/8-byte elements when the CPU
/// has it, the clamped unrolled tier otherwise.
pub(crate) fn select<T>(simd: bool) -> Tier {
    if !simd {
        return Tier::Scalar;
    }
    if size_of::<T>() == 4 || size_of::<T>() == 8 {
        if let Some(token) = avx2_token() {
            return Tier::Avx2(token);
        }
    }
    Tier::Unrolled
}

/// Hint the cache to pull every line of `data` toward L1. Used to stream
/// the next block's slice of the gather map in while the current block
/// is being processed; a no-op off x86-64.
pub(crate) fn prefetch_lines<T>(data: &[T]) {
    #[cfg(target_arch = "x86_64")]
    {
        const LINE: usize = 64;
        let bytes = core::mem::size_of_val(data);
        let base = data.as_ptr() as *const i8;
        let mut off = 0;
        while off < bytes {
            // SAFETY: `base + off` stays inside `data` (off < bytes);
            // prefetch is a hint and never faults regardless.
            #[allow(unsafe_code)]
            unsafe {
                arch::_mm_prefetch::<{ arch::_MM_HINT_T0 }>(base.add(off))
            };
            off += LINE;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = data;
    }
}

/// Per-pass state for computed-index gathers: the plan descriptor's
/// in-row masks plus the inclusive XOR-prefix table that drives the
/// sequential walk. Incrementing the in-row position `j → j+1` flips
/// bits `0..=tz(j+1)`, whose masks fold to `prefix[tz(j+1)]` — so the
/// walk costs one `trailing_zeros`, one table load, and one XOR per
/// element instead of a map load.
pub(crate) struct AffineRow<'a> {
    /// Masks of the in-row coordinate bits (`AffineStep::lo_masks`).
    lo: &'a [u32],
    /// `prefix[t] = lo[0] ^ … ^ lo[t]`.
    prefix: [u32; 32],
}

impl<'a> AffineRow<'a> {
    /// Build the walk state from a descriptor's in-row masks.
    pub(crate) fn new(lo: &'a [u32]) -> Self {
        assert!(lo.len() <= 32, "in-row masks exceed u32 index space");
        let mut prefix = [0u32; 32];
        let mut acc = 0u32;
        for (t, &m) in lo.iter().enumerate() {
            acc ^= m;
            prefix[t] = acc;
        }
        AffineRow { lo, prefix }
    }

    /// Fold of the in-row masks at position `j` (`j < 2^lo.len()`).
    #[inline]
    fn fold(&self, mut bits: usize) -> u32 {
        let mut v = 0u32;
        while bits != 0 {
            v ^= self.lo[bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
        v
    }

    /// XOR-delta advancing the walk onto position `next` (= old `j + 1`).
    /// `next == 2^lo.len()` (one past the row) folds to 0 so the final
    /// step of a full row is harmless.
    #[inline]
    fn step(&self, next: usize) -> u32 {
        let tz = next.trailing_zeros() as usize;
        if tz < self.lo.len() {
            self.prefix[tz]
        } else {
            0
        }
    }
}

/// Computed-index row-local gather: `out[j] = in_row[e(j0 + j)]` where
/// `e` is the affine fold `row_base ⊕ fold(lo, ·)` — the map-free
/// counterpart of [`gather_row`] for plans that carry verified
/// descriptors. `row_base` is `AffineStep::row_base(row)` for the row
/// `in_row` spans and `j0` the first in-row position of this segment
/// (workers gather column segments of a row, so `j0` is rarely 0 and
/// need not be aligned to anything).
///
/// Contract (debug-asserted): `j0 + out.len() <= 2^lo.len() ==
/// in_row.len()`. A verified descriptor can't produce an out-of-range
/// index; release builds of the vector tiers clamp anyway, exactly like
/// the map tiers, so a violated contract mis-gathers but stays in
/// bounds.
pub(crate) fn gather_row_affine<T: Copy>(
    tier: Tier,
    in_row: &[T],
    aff: &AffineRow<'_>,
    row_base: u32,
    j0: usize,
    out: &mut [T],
) {
    assert!(!in_row.is_empty(), "gather from an empty row");
    debug_assert!(j0 + out.len() <= 1usize << aff.lo.len().min(usize::BITS as usize - 1));
    match tier {
        Tier::Scalar => {
            let mut idx = row_base ^ aff.fold(j0);
            for (j, slot) in out.iter_mut().enumerate() {
                *slot = in_row[idx as usize];
                idx ^= aff.step(j0 + j + 1);
            }
        }
        Tier::Unrolled => gather_row_affine_clamped(in_row, aff, row_base, j0, out),
        Tier::Avx2(token) => gather_row_affine_avx2(token, in_row, aff, row_base, j0, out),
    }
}

/// The clamped walk tier: four chained index computations per iteration
/// (the XOR chain is latency-bound at ~2 cycles per element, still far
/// ahead of a dependent map load), loads/stores unchecked with clamped
/// indices.
fn gather_row_affine_clamped<T: Copy>(
    in_row: &[T],
    aff: &AffineRow<'_>,
    row_base: u32,
    j0: usize,
    out: &mut [T],
) {
    let limit = (in_row.len() - 1) as u32;
    let base = in_row.as_ptr();
    let n = out.len();
    let o = out.as_mut_ptr();
    let mut idx = row_base ^ aff.fold(j0);
    let mut j = 0;
    // SAFETY (both loops): indices are clamped to `limit < in_row.len()`
    // before the read; `j + k < n == out.len()` bounds the writes.
    #[allow(unsafe_code)]
    unsafe {
        while j + 4 <= n {
            let i0 = idx;
            let i1 = i0 ^ aff.step(j0 + j + 1);
            let i2 = i1 ^ aff.step(j0 + j + 2);
            let i3 = i2 ^ aff.step(j0 + j + 3);
            idx = i3 ^ aff.step(j0 + j + 4);
            *o.add(j) = *base.add(i0.min(limit) as usize);
            *o.add(j + 1) = *base.add(i1.min(limit) as usize);
            *o.add(j + 2) = *base.add(i2.min(limit) as usize);
            *o.add(j + 3) = *base.add(i3.min(limit) as usize);
            j += 4;
        }
        while j < n {
            *o.add(j) = *base.add(idx.min(limit) as usize);
            idx ^= aff.step(j0 + j + 1);
            j += 1;
        }
    }
}

/// AVX2 computed-index dispatch: 8-lane u32 / 4-lane u64 kernels that
/// form each index vector as `splat(group base) ⊕ LUT` — the LUT holds
/// the folds of the low lane bits, valid whenever the group's absolute
/// position is lane-aligned. Falls back to the clamped walk for other
/// widths or rows too short to have the lane bits.
fn gather_row_affine_avx2<T: Copy>(
    token: Avx2Token,
    in_row: &[T],
    aff: &AffineRow<'_>,
    row_base: u32,
    j0: usize,
    out: &mut [T],
) {
    #[cfg(target_arch = "x86_64")]
    {
        match size_of::<T>() {
            // SAFETY: the token proves AVX2; width 4/8 makes the pointer
            // reinterpretations plain bit copies (unaligned intrinsics
            // only); indices are clamped inside.
            #[allow(unsafe_code)]
            4 if aff.lo.len() >= 3 => unsafe {
                gather_row_affine_u32(
                    in_row.as_ptr() as *const u32,
                    in_row.len(),
                    aff,
                    row_base,
                    j0,
                    out.as_mut_ptr() as *mut u32,
                    out.len(),
                );
                return;
            },
            #[allow(unsafe_code)]
            8 if aff.lo.len() >= 2 => unsafe {
                gather_row_affine_u64(
                    in_row.as_ptr() as *const u64,
                    in_row.len(),
                    aff,
                    row_base,
                    j0,
                    out.as_mut_ptr() as *mut u64,
                    out.len(),
                );
                return;
            },
            _ => {}
        }
    }
    let _ = token;
    gather_row_affine_clamped(in_row, aff, row_base, j0, out);
}

/// `vpgatherdd` with computed indices: the index vector for an 8-aligned
/// group at position `p` is `splat(e(p)) ⊕ LUT` where `LUT[l] =
/// fold(lo, l)` (the low three bits of `p + l` are exactly `l`).
/// Stepping the group base `p → p+8` flips bits `3..=tz(p+8)`, folding
/// to `prefix[tz(p+8)] ⊕ prefix[2]`.
///
/// # Safety
/// Caller proves AVX2 and that `base[0..n_in]` and `out[0..n_out]` are
/// valid with `n_in > 0` and `aff.lo.len() >= 3`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_row_affine_u32(
    base: *const u32,
    n_in: usize,
    aff: &AffineRow<'_>,
    row_base: u32,
    j0: usize,
    out: *mut u32,
    n_out: usize,
) {
    let lim = (n_in - 1) as u32;
    let limit_v = arch::_mm256_set1_epi32(lim as i32);
    let f = |l: usize| aff.fold(l) as i32;
    let lut = arch::_mm256_setr_epi32(f(0), f(1), f(2), f(3), f(4), f(5), f(6), f(7));
    let mut j = 0usize;
    let mut idx = row_base ^ aff.fold(j0);
    // SAFETY (all three loops): `j` stays `< n_out`, bounding every
    // store; scalar reads clamp to `lim` and the vector clamp bounds
    // every gathered address within `base[0..n_in]`.
    unsafe {
        // Scalar head until the absolute position is 8-aligned.
        while j < n_out && !(j0 + j).is_multiple_of(8) {
            *out.add(j) = *base.add(idx.min(lim) as usize);
            idx ^= aff.step(j0 + j + 1);
            j += 1;
        }
        // Vector body: `idx` is the fold at the group's position.
        while j + 8 <= n_out {
            let iv = arch::_mm256_xor_si256(arch::_mm256_set1_epi32(idx as i32), lut);
            let iv = arch::_mm256_min_epu32(iv, limit_v);
            let v = arch::_mm256_i32gather_epi32::<4>(base as *const i32, iv);
            arch::_mm256_storeu_si256(out.add(j) as *mut arch::__m256i, v);
            let tz = (j0 + j + 8).trailing_zeros() as usize;
            if tz < aff.lo.len() {
                idx ^= aff.prefix[tz] ^ aff.prefix[2];
            }
            j += 8;
        }
        // Scalar tail.
        while j < n_out {
            *out.add(j) = *base.add(idx.min(lim) as usize);
            idx ^= aff.step(j0 + j + 1);
            j += 1;
        }
    }
}

/// `vpgatherdq` with computed indices: four 64-bit elements per step,
/// `LUT[l] = fold(lo, l)` over the low two lane bits, group delta
/// `prefix[tz(p+4)] ⊕ prefix[1]`.
///
/// # Safety
/// As [`gather_row_affine_u32`], with 8-byte elements and
/// `aff.lo.len() >= 2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_row_affine_u64(
    base: *const u64,
    n_in: usize,
    aff: &AffineRow<'_>,
    row_base: u32,
    j0: usize,
    out: *mut u64,
    n_out: usize,
) {
    let lim = (n_in - 1) as u32;
    let limit_v = arch::_mm_set1_epi32(lim as i32);
    let f = |l: usize| aff.fold(l) as i32;
    let lut = arch::_mm_setr_epi32(f(0), f(1), f(2), f(3));
    let mut j = 0usize;
    let mut idx = row_base ^ aff.fold(j0);
    // SAFETY: as in `gather_row_affine_u32`, with 4-lane groups.
    unsafe {
        while j < n_out && !(j0 + j).is_multiple_of(4) {
            *out.add(j) = *base.add(idx.min(lim) as usize);
            idx ^= aff.step(j0 + j + 1);
            j += 1;
        }
        while j + 4 <= n_out {
            let iv = arch::_mm_xor_si128(arch::_mm_set1_epi32(idx as i32), lut);
            let iv = arch::_mm_min_epu32(iv, limit_v);
            let v = arch::_mm256_i32gather_epi64::<8>(base as *const i64, iv);
            arch::_mm256_storeu_si256(out.add(j) as *mut arch::__m256i, v);
            let tz = (j0 + j + 4).trailing_zeros() as usize;
            if tz < aff.lo.len() {
                idx ^= aff.prefix[tz] ^ aff.prefix[1];
            }
            j += 4;
        }
        while j < n_out {
            *out.add(j) = *base.add(idx.min(lim) as usize);
            idx ^= aff.step(j0 + j + 1);
            j += 1;
        }
    }
}

/// Row-local gather: `out[j] = in_row[g_row[j]]`.
///
/// Contract (debug-asserted; the callers' maps are rows of a validated
/// permutation plan, so it holds by construction): `g_row.len() ==
/// out.len()`, `in_row` non-empty, and every index `< in_row.len()`.
/// Release builds clamp indices instead of checking them, so a violated
/// contract mis-gathers but stays in bounds.
pub(crate) fn gather_row<T: Copy>(tier: Tier, in_row: &[T], g_row: &[u32], out: &mut [T]) {
    assert_eq!(g_row.len(), out.len(), "gather map / output length");
    assert!(!in_row.is_empty(), "gather from an empty row");
    debug_assert!(g_row.iter().all(|&gi| (gi as usize) < in_row.len()));
    match tier {
        Tier::Scalar => {
            for (slot, &gi) in out.iter_mut().zip(g_row) {
                *slot = in_row[gi as usize];
            }
        }
        Tier::Unrolled => gather_row_clamped(in_row, g_row, out),
        Tier::Avx2(token) => gather_row_avx2(token, in_row, g_row, out),
    }
}

/// Full-slice gather with a `usize` map: `out[j] = src[map[j]]` — the
/// γ_w scatter-fallback's hot loop. Same clamping contract as
/// [`gather_row`]. Deliberately *not* software-prefetched: the map is
/// read sequentially and the hardware stride prefetcher covers it, while
/// per-element hints on the scattered targets measured as a 1.4–5× loss
/// on cache-resident families and no win on miss-heavy ones (the
/// out-of-order window already saturates the available memory-level
/// parallelism on this loop shape).
pub(crate) fn gather_map_usize<T: Copy>(tier: Tier, src: &[T], map: &[usize], out: &mut [T]) {
    assert_eq!(map.len(), out.len(), "gather map / output length");
    assert!(!src.is_empty(), "gather from an empty slice");
    debug_assert!(map.iter().all(|&m| m < src.len()));
    if matches!(tier, Tier::Scalar) {
        for (slot, &m) in out.iter_mut().zip(map) {
            *slot = src[m];
        }
        return;
    }
    let limit = src.len() - 1;
    let base = src.as_ptr();
    for (slot, &m) in out.iter_mut().zip(map) {
        // SAFETY: `m.min(limit) <= limit < src.len()`.
        #[allow(unsafe_code)]
        unsafe {
            *slot = *base.add(m.min(limit));
        }
    }
}

/// The clamped, unrolled gather tier: four independent load/store chains
/// per iteration, no bounds-check branches in the loop body.
fn gather_row_clamped<T: Copy>(in_row: &[T], g_row: &[u32], out: &mut [T]) {
    let limit = (in_row.len() - 1) as u32;
    let base = in_row.as_ptr();
    let n = out.len();
    let o = out.as_mut_ptr();
    let g = g_row.as_ptr();
    let mut j = 0;
    // SAFETY (both loops): indices are clamped to `limit < in_row.len()`
    // before the read; `j + k < n == out.len() == g_row.len()` bounds
    // the map reads and output writes.
    #[allow(unsafe_code)]
    unsafe {
        while j + 4 <= n {
            let i0 = (*g.add(j)).min(limit) as usize;
            let i1 = (*g.add(j + 1)).min(limit) as usize;
            let i2 = (*g.add(j + 2)).min(limit) as usize;
            let i3 = (*g.add(j + 3)).min(limit) as usize;
            *o.add(j) = *base.add(i0);
            *o.add(j + 1) = *base.add(i1);
            *o.add(j + 2) = *base.add(i2);
            *o.add(j + 3) = *base.add(i3);
            j += 4;
        }
        while j < n {
            *o.add(j) = *base.add((*g.add(j)).min(limit) as usize);
            j += 1;
        }
    }
}

/// AVX2 gather dispatch on the element width. Widths other than 4/8
/// can't reach here ([`select`] routes them to [`Tier::Unrolled`]), but
/// fall back to the clamped tier defensively.
fn gather_row_avx2<T: Copy>(token: Avx2Token, in_row: &[T], g_row: &[u32], out: &mut [T]) {
    #[cfg(target_arch = "x86_64")]
    {
        match size_of::<T>() {
            // SAFETY: the token proves AVX2; width 4/8 makes the
            // pointer reinterpretations plain bit copies (all accesses
            // use unaligned intrinsics); indices are clamped inside.
            #[allow(unsafe_code)]
            4 => unsafe {
                gather_row_u32(
                    in_row.as_ptr() as *const u32,
                    in_row.len(),
                    g_row,
                    out.as_mut_ptr() as *mut u32,
                    out.len(),
                );
                return;
            },
            #[allow(unsafe_code)]
            8 => unsafe {
                gather_row_u64(
                    in_row.as_ptr() as *const u64,
                    in_row.len(),
                    g_row,
                    out.as_mut_ptr() as *mut u64,
                    out.len(),
                );
                return;
            },
            _ => {}
        }
    }
    let _ = token;
    gather_row_clamped(in_row, g_row, out);
}

/// `vpgatherdd`: eight 32-bit elements per step, indices clamped in the
/// vector domain so the hardware gather never leaves `base[0..n_in]`.
///
/// # Safety
/// Caller proves AVX2 (token upstream) and that `base[0..n_in]` and
/// `out[0..n_out]` are valid, with `g_row.len() == n_out` and
/// `n_in > 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_row_u32(
    base: *const u32,
    n_in: usize,
    g_row: &[u32],
    out: *mut u32,
    n_out: usize,
) {
    let limit = arch::_mm256_set1_epi32((n_in - 1) as i32);
    let g = g_row.as_ptr();
    let mut j = 0;
    while j + 8 <= n_out {
        // SAFETY: `j + 8 <= n_out == g_row.len()` bounds the index load
        // and the store; `min_epu32` against `n_in - 1` bounds every
        // gathered address within `base[0..n_in]`.
        unsafe {
            let idx = arch::_mm256_loadu_si256(g.add(j) as *const arch::__m256i);
            let idx = arch::_mm256_min_epu32(idx, limit);
            let v = arch::_mm256_i32gather_epi32::<4>(base as *const i32, idx);
            arch::_mm256_storeu_si256(out.add(j) as *mut arch::__m256i, v);
        }
        j += 8;
    }
    let lim = (n_in - 1) as u32;
    while j < n_out {
        // SAFETY: clamped index, `j < n_out`.
        unsafe {
            *out.add(j) = *base.add((*g.add(j)).min(lim) as usize);
        }
        j += 1;
    }
}

/// `vpgatherdq`: four 64-bit elements per step (32-bit indices), same
/// clamping contract as [`gather_row_u32`].
///
/// # Safety
/// As [`gather_row_u32`], with 8-byte elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_row_u64(
    base: *const u64,
    n_in: usize,
    g_row: &[u32],
    out: *mut u64,
    n_out: usize,
) {
    let limit = arch::_mm_set1_epi32((n_in - 1) as i32);
    let g = g_row.as_ptr();
    let mut j = 0;
    while j + 4 <= n_out {
        // SAFETY: `j + 4 <= n_out` bounds the index load and the store;
        // the epu32 clamp bounds every gathered address.
        unsafe {
            let idx = arch::_mm_loadu_si128(g.add(j) as *const arch::__m128i);
            let idx = arch::_mm_min_epu32(idx, limit);
            let v = arch::_mm256_i32gather_epi64::<8>(base as *const i64, idx);
            arch::_mm256_storeu_si256(out.add(j) as *mut arch::__m256i, v);
        }
        j += 4;
    }
    let lim = (n_in - 1) as u32;
    while j < n_out {
        // SAFETY: clamped index, `j < n_out`.
        unsafe {
            *out.add(j) = *base.add((*g.add(j)).min(lim) as usize);
        }
        j += 1;
    }
}

/// Strided 2-D transpose, vector tier:
/// `dst[dst_off + c·dst_stride + r] = src[src_off + r·src_stride + c]`
/// for `r in 0..nr`, `c in 0..nc`, using 8×8 (4-byte) or 4×4 (8-byte)
/// in-register tiles with scalar edges. Returns `false` without touching
/// `dst` when the tier has no vector transpose (scalar/unrolled tiers,
/// or an element width without one) — the caller then runs its own
/// scalar tile loop.
///
/// # Panics
/// Panics if the strided windows don't fit their slices or a stride is
/// smaller than its row length.
// The nine parameters are two symmetric (slice, offset, stride) windows
// plus the tier and extent — a params struct would just rename the same
// tuple without making call sites harder to transpose-proof, unlike the
// heterogeneous `GatherArgs` bundle in `scheduled`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transpose_strided<T: Copy>(
    tier: Tier,
    src: &[T],
    src_off: usize,
    src_stride: usize,
    dst: &mut [T],
    dst_off: usize,
    dst_stride: usize,
    nr: usize,
    nc: usize,
) -> bool {
    let token = match tier {
        Tier::Avx2(token) if size_of::<T>() == 4 || size_of::<T>() == 8 => token,
        _ => return false,
    };
    if nr == 0 || nc == 0 {
        return true;
    }
    assert!(src_stride >= nc && dst_stride >= nr, "stride < row length");
    assert!(
        src_off + (nr - 1) * src_stride + nc <= src.len(),
        "src window out of bounds"
    );
    assert!(
        dst_off + (nc - 1) * dst_stride + nr <= dst.len(),
        "dst window out of bounds"
    );
    #[cfg(target_arch = "x86_64")]
    {
        let side = if size_of::<T>() == 4 { 8 } else { 4 };
        let r_full = nr - nr % side;
        let c_full = nc - nc % side;
        for c0 in (0..c_full).step_by(side) {
            for r0 in (0..r_full).step_by(side) {
                let s = src_off + r0 * src_stride + c0;
                let d = dst_off + c0 * dst_stride + r0;
                // SAFETY: the window asserts above bound the whole
                // region; this tile's farthest element, row `side-1`,
                // column `side-1` from (r0, c0), stays inside it. The
                // token proves AVX2, and width 4/8 makes the pointer
                // casts bit-level reinterpretations read/written only
                // via unaligned intrinsics.
                #[allow(unsafe_code)]
                unsafe {
                    if size_of::<T>() == 4 {
                        transpose_tile_8x8_u32(
                            src.as_ptr().add(s) as *const u32,
                            src_stride,
                            dst.as_mut_ptr().add(d) as *mut u32,
                            dst_stride,
                        );
                    } else {
                        transpose_tile_4x4_u64(
                            src.as_ptr().add(s) as *const u64,
                            src_stride,
                            dst.as_mut_ptr().add(d) as *mut u64,
                            dst_stride,
                        );
                    }
                }
            }
            // r tail for these `side` destination rows.
            for c in c0..c0 + side {
                for r in r_full..nr {
                    dst[dst_off + c * dst_stride + r] = src[src_off + r * src_stride + c];
                }
            }
        }
        // c tail across every row.
        for c in c_full..nc {
            for r in 0..nr {
                dst[dst_off + c * dst_stride + r] = src[src_off + r * src_stride + c];
            }
        }
        let _ = token;
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // `Avx2` is unconstructible off x86-64 (no token constructor),
        // so this arm is unreachable; keep the fallback honest anyway.
        let _ = token;
        false
    }
}

/// 8×8 u32 tile transpose through ymm registers: unpack 32-bit pairs,
/// unpack 64-bit pairs, then recombine 128-bit halves.
///
/// # Safety
/// Caller proves AVX2 and that rows `src + k·src_stride` (8 elements
/// each) and `dst + k·dst_stride` for `k in 0..8` are all in bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose_tile_8x8_u32(
    src: *const u32,
    src_stride: usize,
    dst: *mut u32,
    dst_stride: usize,
) {
    // SAFETY: row pointers in bounds per the function contract; loads
    // and stores are unaligned intrinsics.
    unsafe {
        let ld =
            |k: usize| arch::_mm256_loadu_si256(src.add(k * src_stride) as *const arch::__m256i);
        let (r0, r1, r2, r3) = (ld(0), ld(1), ld(2), ld(3));
        let (r4, r5, r6, r7) = (ld(4), ld(5), ld(6), ld(7));
        let t0 = arch::_mm256_unpacklo_epi32(r0, r1);
        let t1 = arch::_mm256_unpackhi_epi32(r0, r1);
        let t2 = arch::_mm256_unpacklo_epi32(r2, r3);
        let t3 = arch::_mm256_unpackhi_epi32(r2, r3);
        let t4 = arch::_mm256_unpacklo_epi32(r4, r5);
        let t5 = arch::_mm256_unpackhi_epi32(r4, r5);
        let t6 = arch::_mm256_unpacklo_epi32(r6, r7);
        let t7 = arch::_mm256_unpackhi_epi32(r6, r7);
        let u0 = arch::_mm256_unpacklo_epi64(t0, t2);
        let u1 = arch::_mm256_unpackhi_epi64(t0, t2);
        let u2 = arch::_mm256_unpacklo_epi64(t1, t3);
        let u3 = arch::_mm256_unpackhi_epi64(t1, t3);
        let u4 = arch::_mm256_unpacklo_epi64(t4, t6);
        let u5 = arch::_mm256_unpackhi_epi64(t4, t6);
        let u6 = arch::_mm256_unpacklo_epi64(t5, t7);
        let u7 = arch::_mm256_unpackhi_epi64(t5, t7);
        let st = |k: usize, v: arch::__m256i| {
            arch::_mm256_storeu_si256(dst.add(k * dst_stride) as *mut arch::__m256i, v)
        };
        st(0, arch::_mm256_permute2x128_si256::<0x20>(u0, u4));
        st(1, arch::_mm256_permute2x128_si256::<0x20>(u1, u5));
        st(2, arch::_mm256_permute2x128_si256::<0x20>(u2, u6));
        st(3, arch::_mm256_permute2x128_si256::<0x20>(u3, u7));
        st(4, arch::_mm256_permute2x128_si256::<0x31>(u0, u4));
        st(5, arch::_mm256_permute2x128_si256::<0x31>(u1, u5));
        st(6, arch::_mm256_permute2x128_si256::<0x31>(u2, u6));
        st(7, arch::_mm256_permute2x128_si256::<0x31>(u3, u7));
    }
}

/// 4×4 u64 tile transpose through ymm registers.
///
/// # Safety
/// As [`transpose_tile_8x8_u32`], with 4-element rows of u64.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose_tile_4x4_u64(
    src: *const u64,
    src_stride: usize,
    dst: *mut u64,
    dst_stride: usize,
) {
    // SAFETY: row pointers in bounds per the function contract.
    unsafe {
        let ld =
            |k: usize| arch::_mm256_loadu_si256(src.add(k * src_stride) as *const arch::__m256i);
        let (r0, r1, r2, r3) = (ld(0), ld(1), ld(2), ld(3));
        let t0 = arch::_mm256_unpacklo_epi64(r0, r1);
        let t1 = arch::_mm256_unpackhi_epi64(r0, r1);
        let t2 = arch::_mm256_unpacklo_epi64(r2, r3);
        let t3 = arch::_mm256_unpackhi_epi64(r2, r3);
        let st = |k: usize, v: arch::__m256i| {
            arch::_mm256_storeu_si256(dst.add(k * dst_stride) as *mut arch::__m256i, v)
        };
        st(0, arch::_mm256_permute2x128_si256::<0x20>(t0, t2));
        st(1, arch::_mm256_permute2x128_si256::<0x20>(t1, t3));
        st(2, arch::_mm256_permute2x128_si256::<0x31>(t0, t2));
        st(3, arch::_mm256_permute2x128_si256::<0x31>(t1, t3));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiers() -> Vec<Tier> {
        let mut tiers = vec![Tier::Scalar, Tier::Unrolled];
        if let Some(token) = avx2_token() {
            tiers.push(Tier::Avx2(token));
        }
        tiers
    }

    #[test]
    fn gather_row_matches_scalar_on_every_tier() {
        let in_row: Vec<u32> = (0..301u32).map(|v| v.wrapping_mul(2654435761)).collect();
        let g_row: Vec<u32> = (0..301u32).map(|j| (j * 7 + 3) % 301).collect();
        let mut want = vec![0u32; 301];
        gather_row(Tier::Scalar, &in_row, &g_row, &mut want);
        for tier in tiers() {
            let mut got = vec![0u32; 301];
            gather_row(tier, &in_row, &g_row, &mut got);
            assert_eq!(got, want, "{tier:?}");
        }
    }

    #[test]
    fn gather_row_u64_and_u128_match_scalar() {
        let row64: Vec<u64> = (0..77u64).map(|v| v << 32 | v).collect();
        let row128: Vec<u128> = (0..77u128).map(|v| v << 64 | v).collect();
        let g_row: Vec<u32> = (0..77u32).map(|j| 76 - j).collect();
        for tier in tiers() {
            let mut got64 = vec![0u64; 77];
            gather_row(tier, &row64, &g_row, &mut got64);
            assert!(got64.iter().enumerate().all(|(j, &v)| v == row64[76 - j]));
            let mut got128 = vec![0u128; 77];
            gather_row(tier, &row128, &g_row, &mut got128);
            assert!(got128.iter().enumerate().all(|(j, &v)| v == row128[76 - j]));
        }
    }

    #[test]
    fn gather_map_usize_matches_scalar() {
        let src: Vec<u64> = (0..1000u64).map(|v| v * 3).collect();
        let map: Vec<usize> = (0..1000).map(|j| (j * 31 + 17) % 1000).collect();
        let mut want = vec![0u64; 1000];
        gather_map_usize(Tier::Scalar, &src, &map, &mut want);
        for tier in tiers() {
            let mut got = vec![0u64; 1000];
            gather_map_usize(tier, &src, &map, &mut got);
            assert_eq!(got, want, "{tier:?}");
        }
    }

    #[test]
    fn transpose_strided_matches_scalar_when_it_applies() {
        // Deliberately ragged: 19×13 window inside larger strides.
        let (nr, nc, ss, ds) = (19usize, 13usize, 23usize, 29usize);
        let src: Vec<u32> = (0..(nr * ss) as u32).collect();
        for tier in tiers() {
            let mut dst = vec![u32::MAX; nc * ds + nr];
            if !transpose_strided(tier, &src, 0, ss, &mut dst, 0, ds, nr, nc) {
                continue;
            }
            for r in 0..nr {
                for c in 0..nc {
                    assert_eq!(dst[c * ds + r], src[r * ss + c], "({r},{c}) {tier:?}");
                }
            }
        }
    }

    #[test]
    fn transpose_strided_u64_tiles() {
        let (nr, nc) = (12usize, 20usize);
        let src: Vec<u64> = (0..(nr * nc) as u64).collect();
        for tier in tiers() {
            let mut dst = vec![0u64; nr * nc];
            if !transpose_strided(tier, &src, 0, nc, &mut dst, 0, nr, nr, nc) {
                continue;
            }
            for r in 0..nr {
                for c in 0..nc {
                    assert_eq!(dst[c * nr + r], src[r * nc + c], "({r},{c}) {tier:?}");
                }
            }
        }
    }

    #[test]
    fn scalar_tier_never_claims_the_transpose() {
        let src = [1u32, 2, 3, 4];
        let mut dst = [0u32; 4];
        assert!(!transpose_strided(
            Tier::Scalar,
            &src,
            0,
            2,
            &mut dst,
            0,
            2,
            2,
            2
        ));
        assert_eq!(dst, [0; 4], "declined tier must not touch dst");
    }

    /// Materialize `e(j) = row_base ^ fold(lo, j)` for `j` in
    /// `j0..j0+len` — the map the computed walk must reproduce.
    fn affine_map(lo: &[u32], row_base: u32, j0: usize, len: usize) -> Vec<u32> {
        (j0..j0 + len)
            .map(|j| {
                let mut v = row_base;
                let mut bits = j;
                while bits != 0 {
                    v ^= lo[bits.trailing_zeros() as usize];
                    bits &= bits - 1;
                }
                v
            })
            .collect()
    }

    #[test]
    fn gather_row_affine_matches_the_materialized_gather_on_every_tier() {
        // Bit-reversal-of-6-bits masks: a genuinely non-identity fold.
        let lo: Vec<u32> = (0..6).map(|b| 1u32 << (5 - b)).collect();
        let aff = AffineRow::new(&lo);
        let cols = 1usize << lo.len();
        let in_row: Vec<u32> = (0..cols as u32)
            .map(|v| v.wrapping_mul(2654435761))
            .collect();
        let row_base = 0b100101u32;
        // Segments with unaligned starts, short lengths, and the full row.
        for (j0, len) in [(0, cols), (1, 17), (3, 8), (5, 59), (7, 1), (62, 2), (0, 7)] {
            let g = affine_map(&lo, row_base, j0, len);
            let mut want = vec![0u32; len];
            gather_row(Tier::Scalar, &in_row, &g, &mut want);
            for tier in tiers() {
                let mut got = vec![0u32; len];
                gather_row_affine(tier, &in_row, &aff, row_base, j0, &mut got);
                assert_eq!(got, want, "{tier:?} j0={j0} len={len}");
            }
        }
    }

    #[test]
    fn gather_row_affine_u64_and_u128_match() {
        let lo = [2u32, 1, 8, 4]; // swap bit pairs
        let aff = AffineRow::new(&lo);
        let cols = 1usize << lo.len();
        let row64: Vec<u64> = (0..cols as u64).map(|v| v << 32 | v).collect();
        let row128: Vec<u128> = (0..cols as u128).map(|v| v << 64 | v).collect();
        for (j0, len) in [(0, cols), (1, 6), (2, 13), (9, 7)] {
            let g = affine_map(&lo, 0, j0, len);
            for tier in tiers() {
                let mut got64 = vec![0u64; len];
                gather_row_affine(tier, &row64, &aff, 0, j0, &mut got64);
                assert!(
                    got64
                        .iter()
                        .zip(&g)
                        .all(|(&v, &gi)| v == row64[gi as usize]),
                    "{tier:?} j0={j0} len={len}"
                );
                let mut got128 = vec![0u128; len];
                gather_row_affine(tier, &row128, &aff, 0, j0, &mut got128);
                assert!(
                    got128
                        .iter()
                        .zip(&g)
                        .all(|(&v, &gi)| v == row128[gi as usize]),
                    "{tier:?} j0={j0} len={len}"
                );
            }
        }
    }

    #[test]
    fn gather_row_affine_short_rows_fall_back_cleanly() {
        // 2 in-row bits: below the AVX2 lane minimum for u32, so every
        // tier must take a working path.
        let lo = [1u32, 2];
        let aff = AffineRow::new(&lo);
        let in_row = [10u32, 11, 12, 13];
        for tier in tiers() {
            let mut out = vec![0u32; 4];
            gather_row_affine(tier, &in_row, &aff, 0, 0, &mut out);
            assert_eq!(out, &in_row[..], "{tier:?}");
        }
    }

    #[test]
    fn prefetch_is_a_safe_no_op_semantically() {
        let data: Vec<u32> = (0..4096).collect();
        prefetch_lines(&data);
        prefetch_lines(&data[..1]);
        prefetch_lines::<u32>(&[]);
    }
}
