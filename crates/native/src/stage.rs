//! Per-thread staging buffers for the double-buffered sweep pipeline.
//!
//! The seed allocated (and, worse, *copied into*) a fresh `Vec` per band
//! per sweep: `input[..block * out_rows].to_vec()` cloned data the gather
//! stage immediately overwrote. This module replaces that with one
//! thread-local arena per worker, resized high-water-mark style and
//! reused across every band, sweep, and engine call — the worker pool's
//! threads live for the process (`pool::WorkerPool`), so after warm-up
//! the pipeline allocates nothing.
//!
//! The arena is stored as `Vec<u128>` (16-byte aligned, every byte
//! initialized) and viewed as `&mut [T]` per call. Because a previous
//! call may have left bytes from a *different* element type behind, the
//! view is seed-filled with a caller-supplied valid `T` before it is
//! formed — that keeps the view sound for any `Copy` type (no
//! uninitialized or invalid bit patterns ever become a `T`), and costs
//! one write of a cache-resident buffer per band, which the saved
//! per-band allocation + copy more than pays back.

use std::cell::RefCell;

thread_local! {
    /// One arena per thread, grown to the largest staging request seen.
    static ARENA: RefCell<Vec<u128>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` over this thread's staging arena viewed as `len` elements of
/// `T`, each initialized to `seed`.
///
/// # Panics
/// Panics if `T` needs more than 16-byte alignment, or if called
/// re-entrantly from inside `f` (the kernels never nest stages).
pub(crate) fn with_stage<T: Copy, R>(len: usize, seed: T, f: impl FnOnce(&mut [T]) -> R) -> R {
    assert!(
        core::mem::align_of::<T>() <= core::mem::align_of::<u128>(),
        "staging arena supports alignment up to 16 bytes"
    );
    let words = (len * core::mem::size_of::<T>()).div_ceil(core::mem::size_of::<u128>());
    ARENA.with(|cell| {
        let mut arena = cell.borrow_mut();
        if arena.len() < words {
            arena.resize(words, 0);
        }
        let ptr = arena.as_mut_ptr() as *mut T;
        // SAFETY: the arena owns `words * 16 >= len * size_of::<T>()`
        // bytes, `ptr` is 16-byte aligned (≥ align_of::<T>, asserted),
        // and the seed writes below make every element a valid `T`
        // before the slice exists. The RefCell guard gives `f` exclusive
        // access for the view's whole lifetime.
        #[allow(unsafe_code)]
        unsafe {
            for k in 0..len {
                ptr.add(k).write(seed);
            }
            f(core::slice::from_raw_parts_mut(ptr, len))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_is_seeded_and_writable() {
        with_stage(100, 7u32, |buf| {
            assert_eq!(buf.len(), 100);
            assert!(buf.iter().all(|&v| v == 7));
            buf.iter_mut().for_each(|v| *v = 9);
        });
        // A second call re-seeds over the previous contents.
        with_stage(100, 3u64, |buf| {
            assert!(buf.iter().all(|&v| v == 3));
        });
    }

    #[test]
    fn arena_grows_and_is_reused() {
        with_stage(8, 0u8, |buf| buf.fill(0xab));
        with_stage(1 << 16, 1u32, |buf| {
            assert_eq!(buf.len(), 1 << 16);
            assert!(buf.iter().all(|&v| v == 1));
        });
        with_stage(0, 0u128, |buf| assert!(buf.is_empty()));
    }

    #[test]
    fn wide_elements_fit() {
        with_stage(33, [0xffu8; 16], |buf| {
            assert!(buf.iter().all(|&v| v == [0xff; 16]));
        });
    }
}
