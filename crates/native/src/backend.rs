//! The native backend and the process backend registry.
//!
//! [`NativeBackend`] wraps this crate's two executors — the fused
//! three-sweep [`NativeScheduled`] and the parallel scatter kernel — as
//! one registered [`Backend`], so the engines in [`crate::plan`] dispatch
//! every execution through `hmm_backend`'s traits and never name a
//! concrete executor. The registry ([`by_name`], [`backend_names`]) also
//! carries [`InterpBackend`], the deterministic sweep-IR interpreter from
//! `hmm-backend`, which the conformance suite pins byte-identical against
//! this backend.
//!
//! [`default_backend`] honours the `HMM_BACKEND` environment variable
//! (strict, warn-once via [`hmm_backend::env::parse_env`]) so a whole
//! process — tests, benches, the CLI — can be pointed at a different
//! backend without a recompile; unset or invalid selects `"native"`.

use crate::scheduled::NativeScheduled;
use hmm_backend::env::parse_env;
use hmm_backend::{
    Backend, Capabilities, ExecPlan, Executable, InterpBackend, KernelConfig, Route,
};
use hmm_perm::Permutation;
use hmm_plan::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable selecting the process-default backend by registry
/// name (`native`, `interp`). Invalid names warn once and keep the
/// default, matching `HMM_NATIVE_SIMD`/`HMM_NATIVE_THREADS` strictness.
pub const BACKEND_ENV: &str = "HMM_BACKEND";

/// Registry name of [`NativeBackend`].
pub const NATIVE_BACKEND_NAME: &str = "native";

/// The CPU-parallel backend: scheduled plans execute as
/// [`NativeScheduled`]'s three fused sweeps, scatter plans as the
/// parallel scatter kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeBackend;

impl<T: Copy + Send + Sync + Default + 'static> Backend<T> for NativeBackend {
    fn name(&self) -> &'static str {
        NATIVE_BACKEND_NAME
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::all()
    }

    fn prepare(&self, plan: ExecPlan<'_>, config: KernelConfig) -> Result<Box<dyn Executable<T>>> {
        match plan {
            ExecPlan::Scatter(p) => Ok(Box::new(NativeScatterExec {
                perm: p.clone(),
                config,
                runs: AtomicU64::new(0),
            })),
            // `from_plan_with` validates the IR; a corrupt plan is a
            // typed error here, never a mis-gather at run time.
            ExecPlan::Scheduled(ir) => Ok(Box::new(NativeExec {
                sched: NativeScheduled::from_plan_with(ir, config)?,
                runs: AtomicU64::new(0),
            })),
        }
    }
}

/// A prepared scheduled plan on the native backend. Non-generic (the
/// sweeps are generic per call), so [`as_native_scheduled`] can downcast
/// to it for any element type.
pub struct NativeExec {
    sched: NativeScheduled,
    runs: AtomicU64,
}

impl NativeExec {
    /// The underlying fused executor — the seam backend-specific tooling
    /// (the bench's per-sweep timer) reaches through [`as_native_scheduled`].
    pub fn scheduled(&self) -> &NativeScheduled {
        &self.sched
    }
}

impl<T: Copy + Send + Sync + Default + 'static> Executable<T> for NativeExec {
    fn run(&self, src: &[T], dst: &mut [T], scratch: &mut [T]) {
        self.sched.run_with_scratch(src, dst, scratch);
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    fn scratch_len(&self) -> usize {
        self.sched.scratch_len()
    }

    fn len(&self) -> usize {
        self.sched.len()
    }

    fn route(&self) -> Route {
        Route::Scheduled
    }

    fn backend_name(&self) -> &'static str {
        NATIVE_BACKEND_NAME
    }

    fn kernel_config(&self) -> KernelConfig {
        self.sched.kernel_config()
    }

    fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A prepared scatter plan on the native backend: the parallel
/// single-pass scatter kernel, no scratch.
pub struct NativeScatterExec {
    perm: Permutation,
    config: KernelConfig,
    runs: AtomicU64,
}

impl<T: Copy + Send + Sync + Default + 'static> Executable<T> for NativeScatterExec {
    fn run(&self, src: &[T], dst: &mut [T], _scratch: &mut [T]) {
        crate::scatter::scatter_permute(src, &self.perm, dst);
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    fn scratch_len(&self) -> usize {
        0
    }

    fn len(&self) -> usize {
        self.perm.len()
    }

    fn route(&self) -> Route {
        Route::Scatter
    }

    fn backend_name(&self) -> &'static str {
        NATIVE_BACKEND_NAME
    }

    fn kernel_config(&self) -> KernelConfig {
        self.config
    }

    fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Every registered backend name, in preference order.
pub fn backend_names() -> [&'static str; 2] {
    [
        NATIVE_BACKEND_NAME,
        hmm_backend::interp::INTERP_BACKEND_NAME,
    ]
}

/// Resolve a registry name to a backend handle. `None` for unknown names.
pub fn by_name<T: Copy + Send + Sync + Default + 'static>(
    name: &str,
) -> Option<Arc<dyn Backend<T>>> {
    match name {
        NATIVE_BACKEND_NAME => Some(Arc::new(NativeBackend)),
        hmm_backend::interp::INTERP_BACKEND_NAME => Some(Arc::new(InterpBackend)),
        _ => None,
    }
}

/// The process-default backend: `HMM_BACKEND` when set to a registered
/// name (an unknown name warns once and is ignored), else native.
pub fn default_backend<T: Copy + Send + Sync + Default + 'static>() -> Arc<dyn Backend<T>> {
    parse_env(BACKEND_ENV, "one of: native, interp", |v| {
        by_name::<T>(v.trim())
    })
    .unwrap_or_else(|| Arc::new(NativeBackend))
}

/// Engine on the default backend with the γ threshold pinned so every
/// plan takes `route` — the forcing seam the conformance, structured,
/// and differential suites previously each hand-rolled.
pub fn forced_engine<T: Copy + Send + Sync + Default + 'static>(
    width: usize,
    route: Route,
) -> crate::plan::SharedEngine<T> {
    forced_engine_on(NATIVE_BACKEND_NAME, width, route)
        .expect("the native backend is always registered")
}

/// [`forced_engine`] on a named registry backend; `None` for unknown
/// names.
pub fn forced_engine_on<T: Copy + Send + Sync + Default + 'static>(
    name: &str,
    width: usize,
    route: Route,
) -> Option<crate::plan::SharedEngine<T>> {
    let engine = crate::plan::SharedEngine::with_backend(width, by_name::<T>(name)?);
    engine.set_gamma_threshold(match route {
        Route::Scheduled => 0.0,
        Route::Scatter => f64::INFINITY,
    });
    Some(engine)
}

/// Downcast a plan's executable to the native fused executor, when the
/// plan is a scheduled plan prepared by [`NativeBackend`]. `None` for
/// scatter plans and for other backends' executables.
pub fn as_native_scheduled<T>(plan: &crate::plan::PermutePlan<T>) -> Option<&NativeScheduled> {
    plan.executable()
        .as_any()
        .downcast_ref::<NativeExec>()
        .map(NativeExec::scheduled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;
    use hmm_plan::PlanIr;

    #[test]
    fn registry_resolves_every_listed_name() {
        for name in backend_names() {
            let b = by_name::<u32>(name).unwrap_or_else(|| panic!("{name} not resolvable"));
            assert_eq!(b.name(), name);
            assert!(b.capabilities().scatter && b.capabilities().scheduled);
        }
        assert!(by_name::<u32>("no-such-backend").is_none());
    }

    #[test]
    fn native_executables_match_the_reference_on_both_routes() {
        let n = 1 << 12;
        let p = families::random(n, 5);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut want = vec![0u32; n];
        p.permute(&src, &mut want).unwrap();

        let backend = NativeBackend;
        let scatter: Box<dyn Executable<u32>> = backend
            .prepare(ExecPlan::Scatter(&p), KernelConfig::default())
            .unwrap();
        let mut dst = vec![0u32; n];
        scatter.run(&src, &mut dst, &mut []);
        assert_eq!(dst, want);
        assert_eq!(scatter.scratch_len(), 0);
        assert_eq!(scatter.runs(), 1);

        let ir = PlanIr::build(&p, 32).unwrap();
        let sched: Box<dyn Executable<u32>> = backend
            .prepare(ExecPlan::Scheduled(&ir), KernelConfig::default())
            .unwrap();
        let mut scratch = vec![0u32; sched.scratch_len()];
        dst.fill(0);
        sched.run(&src, &mut dst, &mut scratch);
        assert_eq!(dst, want);
        assert_eq!(sched.backend_name(), "native");
        assert_eq!(sched.route(), Route::Scheduled);
    }

    #[test]
    fn forced_engines_pin_the_route_per_backend() {
        let n = 1 << 10;
        let p = families::random(n, 3);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut want = vec![0u32; n];
        p.permute(&src, &mut want).unwrap();
        for name in backend_names() {
            for route in [Route::Scatter, Route::Scheduled] {
                let engine = forced_engine_on::<u32>(name, 32, route).unwrap();
                let plan = engine.plan(&p).unwrap();
                assert_eq!(plan.route(), route, "{name}");
                let mut dst = vec![0u32; n];
                engine.run_plan(&plan, &src, &mut dst);
                assert_eq!(dst, want, "{name} {route:?}");
            }
        }
        assert!(forced_engine_on::<u32>("bogus", 32, Route::Scatter).is_none());
    }

    #[test]
    fn native_scheduled_plans_downcast_and_interp_plans_do_not() {
        let n = 1 << 10;
        let p = families::random(n, 8);
        let native = forced_engine::<u32>(32, Route::Scheduled);
        assert!(as_native_scheduled(&native.plan(&p).unwrap()).is_some());
        let scatter = forced_engine::<u32>(32, Route::Scatter);
        assert!(as_native_scheduled(&scatter.plan(&p).unwrap()).is_none());
        let interp = forced_engine_on::<u32>("interp", 32, Route::Scheduled).unwrap();
        assert!(as_native_scheduled(&interp.plan(&p).unwrap()).is_none());
    }
}
