//! Bounded MPMC job queue and completion handles for the engine's
//! queued-submission API.
//!
//! The paper's scheduled algorithm wins by keeping every round of memory
//! access busy; the host-side analogue is keeping the worker pool
//! saturated. The blocking [`SharedEngine::permute`] front door cannot do
//! that on its own — one slow submitter (or one caller stuck inside a
//! König build) idles the pool. This module supplies the decoupling
//! layer: [`SharedEngine::submit`] enqueues a job on a **bounded MPMC
//! queue** and returns a [`JobHandle`] immediately; dedicated queue
//! workers drain the queue, resolve the plan (cache → store → build,
//! under the engine's single-flight machinery), execute across the
//! persistent worker pool, and resolve the handle. Waiters never hang: a
//! build error, a worker panic, or an engine shutdown all resolve the
//! handle with a [`JobError`].
//!
//! Lifecycle of one job (see DESIGN.md §3 for the full diagram):
//!
//! ```text
//! submit ──▶ Queued ──▶ Running ──▶ Done(Ok | Err) ──▶ Taken
//!               │                        ▲
//!               └── cancel() ─▶ Cancelled│  (wait / try_wait)
//! ```
//!
//! `Queued → Cancelled` is the only transition a caller can force;
//! everything after `Running` is owned by the executing worker. The
//! bounded queue gives natural backpressure: `submit` blocks while the
//! queue is at capacity, and unblocks as workers drain it — so a burst of
//! submitters cannot exhaust memory, and the stress suite proves the
//! full/empty condvar handoff never deadlocks.
//!
//! [`SharedEngine::permute`]: crate::plan::SharedEngine::permute
//! [`SharedEngine::submit`]: crate::plan::SharedEngine::submit

use crate::plan::AtomicStats;
use hmm_backend::Route;
use hmm_perm::Permutation;
use hmm_plan::PlanError;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Default capacity of the bounded submission queue (jobs waiting to be
/// claimed; in-flight jobs do not count). Small enough that a runaway
/// submitter feels backpressure, large enough that a dispatcher can stay
/// ahead of the workers.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Why a queued job did not produce a [`JobReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Plan resolution failed on the worker side (build error, store
    /// error, unsupported size). The same error the blocking
    /// [`permute`](crate::plan::SharedEngine::permute) would have
    /// returned — surfaced through the handle instead of hanging it.
    Plan(PlanError),
    /// The job was cancelled (via [`JobHandle::cancel`] or
    /// [`BatchHandle::cancel`]) before a worker began executing it.
    Cancelled,
    /// The worker panicked while resolving or running the job; the
    /// payload's message is preserved. The handle resolves instead of
    /// stranding its waiter, and the queue workers keep serving.
    Panicked(String),
    /// The engine shut down (every handle to it was dropped) before the
    /// job was executed.
    ShutDown,
    /// The result was already taken by an earlier `wait`/`try_wait` on
    /// this handle.
    AlreadyRetrieved,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Plan(e) => write!(f, "plan resolution failed: {e}"),
            JobError::Cancelled => write!(f, "job cancelled before it started"),
            JobError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            JobError::ShutDown => write!(f, "engine shut down before the job ran"),
            JobError::AlreadyRetrieved => write!(f, "job result already retrieved"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for JobError {
    fn from(e: PlanError) -> Self {
        JobError::Plan(e)
    }
}

/// What a completed job hands back through [`JobHandle::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport<T> {
    /// The permuted output buffer (`dst[P[i]] = src[i]`), returned to the
    /// submitter. Empty for internal borrowed-slice jobs
    /// (`permute_batch` members), whose output landed in the caller's
    /// slice directly.
    pub dst: Vec<T>,
    /// The route (scatter or scheduled) the plan executed with.
    pub route: Route,
}

/// Job payload: the buffers a queue worker reads and writes.
///
/// `Owned` is the public [`submit`](crate::plan::SharedEngine::submit)
/// path. `Borrowed` carries lifetime-erased slices for the blocking
/// `permute_batch`, which routes its members through the queue so they
/// interleave with other submitters' jobs.
///
/// # Safety contract (`Borrowed`)
/// The pointers must stay valid until the job's state resolves
/// (`Done`/`Cancelled`/shutdown). `permute_batch` guarantees this by
/// blocking until **every** member handle resolves before its borrows
/// end, and workers never touch the pointers after `finish`.
pub(crate) enum Payload<T> {
    /// Caller-owned buffers; `dst` is returned through the report.
    Owned {
        /// Input, shared so many jobs can read one source cheaply.
        src: Arc<[T]>,
        /// Output buffer, moved back out on completion.
        dst: Vec<T>,
    },
    /// Lifetime-erased slices borrowed from a blocked `permute_batch`.
    Borrowed {
        /// Input slice base pointer.
        src: *const T,
        /// Output slice base pointer (exclusive to this job).
        dst: *mut T,
        /// Length of both slices.
        len: usize,
    },
}

// SAFETY: `Owned` buffers are plainly sendable; `Borrowed` pointers come
// from a `permute_batch` caller that stays blocked (keeping the referents
// alive and unaliased) until the job resolves, so moving the pointers to
// a worker thread is safe whenever `T` itself is `Send`.
unsafe impl<T: Send> Send for Payload<T> {}

impl<T> Payload<T> {
    /// Length of the job's source buffer.
    pub(crate) fn src_len(&self) -> usize {
        match self {
            Payload::Owned { src, .. } => src.len(),
            Payload::Borrowed { len, .. } => *len,
        }
    }

    /// Length of the job's destination buffer.
    pub(crate) fn dst_len(&self) -> usize {
        match self {
            Payload::Owned { dst, .. } => dst.len(),
            Payload::Borrowed { len, .. } => *len,
        }
    }
}

/// Where a job is in its life. See the module docs for the transitions.
enum Phase<T> {
    /// In the queue; cancellable.
    Queued,
    /// Claimed by a worker; no longer cancellable.
    Running,
    /// Resolved; the outcome waits for `wait`/`try_wait`.
    Done(Result<JobReport<T>, JobError>),
    /// Outcome handed to a waiter.
    Taken,
    /// Cancelled while still queued; the worker that pops it skips it.
    Cancelled,
}

/// Shared completion state between a [`JobHandle`] and the worker that
/// executes the job.
pub(crate) struct JobState<T> {
    phase: Mutex<Phase<T>>,
    cv: Condvar,
}

impl<T> JobState<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(JobState {
            phase: Mutex::new(Phase::Queued),
            cv: Condvar::new(),
        })
    }

    /// Worker-side claim: `Queued → Running`. Returns `false` when the
    /// job was cancelled first (the worker must skip it).
    pub(crate) fn begin(&self) -> bool {
        let mut ph = self.phase.lock().unwrap_or_else(PoisonError::into_inner);
        match *ph {
            Phase::Queued => {
                *ph = Phase::Running;
                true
            }
            Phase::Cancelled => false,
            // Queued/Cancelled are the only phases a popped job can be in.
            _ => unreachable!("job claimed twice"),
        }
    }

    /// Worker-side resolution: publish the outcome and wake every waiter.
    /// The caller must bump the engine's `completed` counter **before**
    /// calling this, so a waiter that wakes immediately already sees the
    /// job accounted for.
    pub(crate) fn finish(&self, outcome: Result<JobReport<T>, JobError>) {
        let mut ph = self.phase.lock().unwrap_or_else(PoisonError::into_inner);
        *ph = Phase::Done(outcome);
        self.cv.notify_all();
    }

    /// Caller-side cancellation: `Queued → Cancelled`. Returns whether
    /// this call won (the job had not started).
    ///
    /// The `cancelled` counter is bumped **under the phase lock, before
    /// the notify** — mirroring the count-before-`finish` rule on the
    /// completion path — so any waiter that wakes on the `Cancelled`
    /// phase (and any drainer whose `begin` loses to this cancel)
    /// already sees the job accounted for in the stats. Counting after
    /// the lock dropped (the previous layout) left a window where a
    /// woken waiter could observe `submitted > completed + cancelled`.
    fn cancel(&self, stats: &AtomicStats) -> bool {
        let mut ph = self.phase.lock().unwrap_or_else(PoisonError::into_inner);
        match *ph {
            Phase::Queued => {
                *ph = Phase::Cancelled;
                stats.cancelled.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }
}

/// One enqueued job: the permutation, the buffers, and the shared state
/// its handle waits on.
pub(crate) struct QueuedJob<T> {
    /// The permutation to apply; shared so batches clone it once.
    pub(crate) p: Arc<Permutation>,
    /// The buffers.
    pub(crate) payload: Payload<T>,
    /// Completion state shared with the handle.
    pub(crate) state: Arc<JobState<T>>,
}

impl<T> QueuedJob<T> {
    /// Resolve the job without executing it — used when the engine is
    /// gone before the job ran. Cancelled jobs stay cancelled (and were
    /// already counted by `cancel()`); everything else counts as
    /// completed *before* waiters are notified, keeping the
    /// `submitted == completed + cancelled` invariant observable from
    /// any resolved handle.
    pub(crate) fn resolve_shutdown(self, stats: &AtomicStats) {
        if self.state.begin() {
            stats.completed.fetch_add(1, Ordering::Relaxed);
            self.state.finish(Err(JobError::ShutDown));
        }
    }
}

/// Completion handle for one queued job, returned by
/// [`SharedEngine::submit`](crate::plan::SharedEngine::submit).
///
/// The handle is independent of the engine: it stays valid (and `wait`
/// stays guaranteed to return) even if every engine handle is dropped —
/// pending jobs then resolve with [`JobError::ShutDown`].
pub struct JobHandle<T> {
    state: Arc<JobState<T>>,
    stats: Arc<AtomicStats>,
    id: u64,
}

impl<T> JobHandle<T> {
    pub(crate) fn new(state: Arc<JobState<T>>, stats: Arc<AtomicStats>, id: u64) -> Self {
        JobHandle { state, stats, id }
    }

    /// Engine-unique id of this job, in submission order.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Request cancellation. Succeeds (returns `true`) only while the job
    /// is still queued; a job a worker has begun runs to completion.
    /// On success the handle resolves immediately with
    /// [`JobError::Cancelled`] and the engine counts it in
    /// [`EngineStats::cancelled`](crate::plan::EngineStats::cancelled).
    pub fn cancel(&self) -> bool {
        self.state.cancel(&self.stats)
    }

    /// True once the job has resolved (completed, failed, or cancelled) —
    /// a `wait` would return without blocking.
    pub fn is_finished(&self) -> bool {
        let ph = self
            .state
            .phase
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        !matches!(*ph, Phase::Queued | Phase::Running)
    }

    /// Block until the job resolves and take its outcome. Never hangs: a
    /// worker-side build error resolves the handle with
    /// [`JobError::Plan`], a worker panic with [`JobError::Panicked`],
    /// cancellation with [`JobError::Cancelled`], and an engine dropped
    /// with the job still queued with [`JobError::ShutDown`].
    pub fn wait(self) -> Result<JobReport<T>, JobError> {
        let mut ph = self
            .state
            .phase
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*ph {
                Phase::Queued | Phase::Running => {
                    ph = self
                        .state
                        .cv
                        .wait(ph)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Phase::Cancelled => return Err(JobError::Cancelled),
                Phase::Taken => return Err(JobError::AlreadyRetrieved),
                Phase::Done(_) => {
                    let done = std::mem::replace(&mut *ph, Phase::Taken);
                    match done {
                        Phase::Done(outcome) => return outcome,
                        _ => unreachable!(),
                    }
                }
            }
        }
    }

    /// Non-blocking poll: `None` while the job is queued or running; the
    /// outcome once it resolves. The first successful poll takes the
    /// report; later polls return [`JobError::AlreadyRetrieved`].
    pub fn try_wait(&self) -> Option<Result<JobReport<T>, JobError>> {
        let mut ph = self
            .state
            .phase
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match &*ph {
            Phase::Queued | Phase::Running => None,
            Phase::Cancelled => Some(Err(JobError::Cancelled)),
            Phase::Taken => Some(Err(JobError::AlreadyRetrieved)),
            Phase::Done(_) => {
                let done = std::mem::replace(&mut *ph, Phase::Taken);
                match done {
                    Phase::Done(outcome) => Some(outcome),
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Completion handle for a whole
/// [`submit_batch`](crate::plan::SharedEngine::submit_batch): one
/// [`JobHandle`] per member, in submission order.
pub struct BatchHandle<T> {
    handles: Vec<JobHandle<T>>,
}

impl<T> BatchHandle<T> {
    pub(crate) fn new(handles: Vec<JobHandle<T>>) -> Self {
        BatchHandle { handles }
    }

    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Cancel every not-yet-started member; returns how many were
    /// cancelled (members already running finish normally).
    pub fn cancel(&self) -> usize {
        self.handles.iter().filter(|h| h.cancel()).count()
    }

    /// Block until every member resolves; outcomes in submission order.
    pub fn wait(self) -> Vec<Result<JobReport<T>, JobError>> {
        self.handles.into_iter().map(JobHandle::wait).collect()
    }

    /// Split into the individual member handles.
    pub fn into_handles(self) -> Vec<JobHandle<T>> {
        self.handles
    }
}

/// Bounded MPMC queue: blocking `push` (backpressure) and blocking `pop`,
/// with a `close` that drains cleanly — after close, pushes are refused
/// but already-queued jobs are still popped, and `pop` returns `None`
/// only once the queue is both closed and empty.
pub(crate) struct Bounded<J> {
    state: Mutex<BoundedState<J>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

struct BoundedState<J> {
    items: VecDeque<J>,
    closed: bool,
}

impl<J> Bounded<J> {
    pub(crate) fn new(cap: usize) -> Self {
        Bounded {
            state: Mutex::new(BoundedState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue, blocking while the queue is at capacity. Returns the job
    /// back on a closed queue so the caller can resolve its handle.
    pub(crate) fn push(&self, job: J) -> Result<(), J> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.closed {
                return Err(job);
            }
            if st.items.len() < self.cap {
                st.items.push_back(job);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeue, blocking while the queue is empty. `None` means the queue
    /// is closed **and** drained — the worker should exit.
    pub(crate) fn pop(&self) -> Option<J> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Refuse new pushes and wake every blocked pusher and popper.
    /// Already-queued jobs remain poppable.
    pub(crate) fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Jobs currently waiting (not counting in-flight ones).
    pub(crate) fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// The queue's fixed capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn bounded_fifo_push_pop() {
        let q: Bounded<u32> = Bounded::new(4);
        assert_eq!(q.capacity(), 4);
        for v in 0..4 {
            q.push(v).unwrap();
        }
        assert_eq!(q.len(), 4);
        for v in 0..4 {
            assert_eq!(q.pop(), Some(v));
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn bounded_backpressure_blocks_then_unblocks() {
        let q: Bounded<u32> = Bounded::new(2);
        q.push(0).unwrap();
        q.push(1).unwrap();
        let progressed = AtomicUsize::new(0);
        let gate = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                gate.wait();
                q.push(2).unwrap(); // blocks until the main thread pops
                progressed.store(1, Ordering::SeqCst);
            });
            gate.wait();
            // The pusher is (very likely) parked on not_full now; give it
            // a moment, then prove a pop releases it.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(progressed.load(Ordering::SeqCst), 0, "cap must hold");
            assert_eq!(q.pop(), Some(0));
        });
        assert_eq!(progressed.load(Ordering::SeqCst), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn bounded_close_drains_then_ends() {
        let q: Bounded<u32> = Bounded::new(8);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8), "closed queue refuses new jobs");
        assert_eq!(q.pop(), Some(7), "queued jobs still drain after close");
        assert_eq!(q.pop(), None, "closed + empty ends the worker loop");
    }

    #[test]
    fn bounded_close_wakes_blocked_poppers() {
        let q: std::sync::Arc<Bounded<u32>> = std::sync::Arc::new(Bounded::new(2));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn mpmc_every_item_delivered_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 200;
        let q: Bounded<usize> = Bounded::new(4); // small: force backpressure
        let seen: Vec<AtomicUsize> = (0..PRODUCERS * PER_PRODUCER)
            .map(|_| AtomicUsize::new(0))
            .collect();
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i).unwrap();
                    }
                });
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let q = &q;
                    let seen = &seen;
                    s.spawn(move || {
                        while let Some(v) = q.pop() {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            // Producers are scoped: wait for them by closing after their
            // pushes land. Closing requires all pushes done, so spawn a
            // closer that joins via a second scope-free mechanism: just
            // count deliveries instead.
            loop {
                let delivered: usize = seen.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                if delivered == PRODUCERS * PER_PRODUCER {
                    break;
                }
                std::thread::yield_now();
            }
            q.close();
            for c in consumers {
                c.join().unwrap();
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn job_state_cancel_beats_begin_and_loses_after() {
        let stats = AtomicStats::default();
        let st: Arc<JobState<u32>> = JobState::new();
        assert!(st.cancel(&stats), "queued job is cancellable");
        assert!(!st.begin(), "worker must skip a cancelled job");
        assert!(!st.cancel(&stats), "second cancel loses");
        assert_eq!(stats.cancelled.load(Ordering::Relaxed), 1);

        let st: Arc<JobState<u32>> = JobState::new();
        assert!(st.begin(), "queued job is claimable");
        assert!(!st.cancel(&stats), "running job is not cancellable");
        assert_eq!(stats.cancelled.load(Ordering::Relaxed), 1);
        st.finish(Ok(JobReport {
            dst: vec![1, 2, 3],
            route: Route::Scatter,
        }));
    }

    /// The cancel-vs-drainer race, pinned deterministically at the seam:
    /// the drainer has already *dequeued* the job (it is out of the
    /// `Bounded` queue, so queue-level bookkeeping can no longer see it)
    /// but has not yet claimed it with `begin` when the cancel lands.
    /// The cancel must win, the drainer must skip the carcass, and —
    /// the window this test pins — a waiter that wakes on the
    /// `Cancelled` phase must already observe the `cancelled` counter,
    /// so `submitted == completed + cancelled` holds at every moment a
    /// resolved handle is observable.
    #[test]
    fn cancel_racing_a_drainer_that_already_dequeued_stays_balanced() {
        use hmm_perm::Permutation;

        let stats = Arc::new(AtomicStats::default());
        let q: Bounded<QueuedJob<u32>> = Bounded::new(4);
        let state: Arc<JobState<u32>> = JobState::new();
        let src: Arc<[u32]> = vec![0u32; 4].into();
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        let pushed = q.push(QueuedJob {
            p: Arc::new(Permutation::identity(4)),
            payload: Payload::Owned {
                src,
                dst: vec![0u32; 4],
            },
            state: Arc::clone(&state),
        });
        assert!(pushed.is_ok());

        // Drainer side, step 1: the job leaves the queue…
        let job = q.pop().expect("the queued job");
        assert_eq!(q.len(), 0, "job is out of the queue, not yet claimed");

        // …and before the drainer claims it, a waiter parks on the
        // handle and the caller cancels. The waiter asserts the counter
        // the *instant* `wait` resolves — pre-fix, the count landed
        // after the notify and this assert was a race.
        let handle = JobHandle::new(Arc::clone(&state), Arc::clone(&stats), 0);
        let waiter = std::thread::spawn({
            let stats = Arc::clone(&stats);
            move || {
                let outcome = handle.wait();
                assert!(matches!(outcome, Err(JobError::Cancelled)));
                let (submitted, completed, cancelled) = (
                    stats.submitted.load(Ordering::Relaxed),
                    stats.completed.load(Ordering::Relaxed),
                    stats.cancelled.load(Ordering::Relaxed),
                );
                assert_eq!(
                    submitted,
                    completed + cancelled,
                    "woken waiter observed an unbalanced ledger"
                );
            }
        });
        assert!(
            state.cancel(&stats),
            "cancel must win against a dequeued-but-unclaimed job"
        );
        waiter.join().unwrap();

        // Drainer side, step 2: the claim loses and the job is skipped —
        // exactly once, with no second count from the skip.
        assert!(!job.state.begin(), "drainer must skip the cancelled job");
        drop(job);
        assert_eq!(stats.cancelled.load(Ordering::Relaxed), 1);
        assert_eq!(stats.completed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn job_error_display_and_source() {
        let e = JobError::Panicked("boom".into());
        assert!(e.to_string().contains("boom"));
        let p = JobError::Plan(PlanError::UnsupportedSize {
            n: 96,
            reason: "not schedulable",
        });
        assert!(std::error::Error::source(&p).is_some());
        assert!(std::error::Error::source(&JobError::Cancelled).is_none());
        assert_ne!(JobError::Cancelled, JobError::ShutDown);
    }
}

/// Property tests: arbitrary interleavings of submit / cancel / try_wait
/// / wait across random permutations must (a) keep the counter invariant
/// `submitted == completed + cancelled` once every handle has resolved,
/// and (b) make every *completed* job's output identical to the blocking
/// sync path's result for the same permutation.
#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::plan::SharedEngine;
    use hmm_perm::families;
    use proptest::prelude::*;

    /// Width 8 keeps every power-of-two n ≥ 64 schedulable, so the
    /// scheduled backend is reachable whenever γ says so.
    const W: usize = 8;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn interleaved_submissions_balance_and_match_sync(
            seed in any::<u64>(),
            n_exp in 6usize..=10,
            jobs in 1usize..=12,
            cancel_mask in any::<u64>(),
            poll_mask in any::<u64>(),
            cap in 1usize..=8,
        ) {
            let n = 1usize << n_exp;
            let engine: SharedEngine<u32> = SharedEngine::new(W);
            engine.set_queue_config(cap, 2);
            let perms: Vec<_> = (0..4)
                .map(|k| families::random(n, seed.wrapping_add(k)))
                .collect();
            let src: Arc<[u32]> = (0..n as u32).collect::<Vec<_>>().into();

            // Submit (optionally racing a cancel right behind each
            // submission — against a tiny queue many of them win, against
            // fast drainers many lose; both schedules must balance).
            let mut handles = Vec::with_capacity(jobs);
            for j in 0..jobs {
                let h = engine.submit(&perms[j % perms.len()], Arc::clone(&src), vec![0u32; n]);
                if cancel_mask >> j & 1 == 1 {
                    h.cancel();
                }
                handles.push((j, h));
            }

            for (j, h) in handles {
                // Some handles are polled first; a poll that lands after
                // resolution TAKES the outcome, so honour whichever path
                // produced it.
                let polled = if poll_mask >> j & 1 == 1 {
                    h.try_wait()
                } else {
                    None
                };
                let outcome = match polled {
                    Some(done) => done,
                    None => h.wait(),
                };
                match outcome {
                    Ok(report) => {
                        let mut expect = vec![0u32; n];
                        perms[j % perms.len()].permute(&src, &mut expect).unwrap();
                        prop_assert_eq!(report.dst, expect, "job {} diverged from sync", j);
                    }
                    Err(JobError::Cancelled) => {}
                    Err(e) => panic!("job {j} resolved with an unexpected error: {e}"),
                }
            }

            let stats = engine.stats();
            prop_assert_eq!(stats.submitted, jobs as u64);
            prop_assert_eq!(
                stats.submitted,
                stats.completed + stats.cancelled,
                "every submitted job must resolve exactly once"
            );
            // Cancelled carcasses may still sit in the queue (drainers
            // skip them on pop), so depth is bounded by — not zero after —
            // the cancellations.
            prop_assert!(stats.queue_depth <= stats.cancelled);
        }
    }
}
