//! Re-export shim: the kernel-config seam moved to
//! [`hmm_backend::config`] so every backend — this crate's fused CPU
//! executor, the sweep-IR interpreter, the WGSL codegen — reads the same
//! tuning knobs. Kept as a module so `crate::config::KernelConfig` paths
//! (and the `hmm_native::config` public path) compile unchanged.

pub use hmm_backend::config::*;
