//! Tuning knobs for the sweep kernels — the `KernelConfig` seam.
//!
//! The seed hard-coded the staging-buffer budget (256 KB) and the
//! transpose tile side (64) for one cache size, and its inner loops were
//! scalar. This module centralises those constants, adds the
//! double-buffering depth and the SIMD/prefetch toggles, and gives every
//! front door ([`crate::scheduled::NativeScheduled`], the engines in
//! [`crate::plan`], and the queue drainers) one place to read them from:
//!
//! * [`KernelConfig::default`] — the seed's values, SIMD on;
//! * [`KernelConfig::from_env`] — the default with [`SIMD_ENV`]
//!   (`HMM_NATIVE_SIMD`) applied, so a deployment can force the scalar
//!   reference path without recompiling;
//! * [`KernelConfig::global`] — the process-wide snapshot engines use
//!   unless a caller threads an explicit config through
//!   (`NativeScheduled::from_plan_with`,
//!   `SharedEngine::set_kernel_config`);
//! * [`KernelConfig::scalar`] — the always-available scalar reference:
//!   no SIMD, no prefetch, single staging buffer. The differential suite
//!   uses it as the correctness oracle for every other config point.

use std::sync::OnceLock;

/// Environment variable: set to `0` to disable the SIMD kernel tiers
/// process-wide (any other value, or unset, leaves them on; the
/// `core::arch` tier additionally requires runtime CPU support).
pub const SIMD_ENV: &str = "HMM_NATIVE_SIMD";

/// Default per-worker staging-buffer budget in bytes (the seed's
/// `262_144`): one gathered input block must fit in the last-level
/// private cache alongside the output tile being written.
pub const DEFAULT_STAGE_BYTES: usize = 262_144;

/// Default blocked-transpose tile side in elements (the seed's `64`):
/// 64×64 u32 tiles are 16 KB, comfortably L1/L2-resident.
pub const DEFAULT_TILE: usize = 64;

/// Default staging-buffer count per worker: two, so block *k+1* streams
/// into one buffer while block *k* transposes out of the other.
pub const DEFAULT_STAGING_DEPTH: usize = 2;

/// Tuning parameters for the three fused sweep kernels.
///
/// All fields are plain data; a config is cheap to copy and carries no
/// invariants beyond "non-zero where zero makes no sense" — the kernels
/// clamp degenerate values (`tile` to ≥ 8, `depth` to 1..=2,
/// `stage_bytes` to at least one input row) instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Per-worker staging-buffer budget in bytes. Bounds how many input
    /// rows one gather block stages before transposing out;
    /// `HMM_NATIVE_CALIBRATE=1` replaces the default with a measured
    /// value (see `SharedEngine::calibrate_gamma_threshold`).
    pub stage_bytes: usize,
    /// Blocked-transpose tile side in elements.
    pub tile: usize,
    /// Staging buffers per worker: `2` double-buffers the gather and
    /// transpose stages, `1` degenerates to the strict
    /// gather-then-transpose alternation (a config point the
    /// differential suite exercises). Values outside `1..=2` are
    /// clamped.
    pub depth: usize,
    /// Enable the vectorized kernel tiers: the width-specialized
    /// no-bounds-check chunked paths everywhere, plus the `core::arch`
    /// AVX2 paths on x86-64 hosts that support them (runtime-detected).
    /// `false` selects the scalar reference kernels.
    pub simd: bool,
    /// Software-prefetch the gather map one block ahead while the
    /// current block is being gathered.
    pub prefetch: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            stage_bytes: DEFAULT_STAGE_BYTES,
            tile: DEFAULT_TILE,
            depth: DEFAULT_STAGING_DEPTH,
            simd: true,
            prefetch: true,
        }
    }
}

impl KernelConfig {
    /// The default config with [`SIMD_ENV`] applied: `HMM_NATIVE_SIMD=0`
    /// turns both the SIMD tiers and the prefetch hints off (the full
    /// scalar reference pipeline), anything else leaves the default.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if std::env::var(SIMD_ENV).as_deref() == Ok("0") {
            cfg.simd = false;
            cfg.prefetch = false;
        }
        cfg
    }

    /// The process-wide config: [`KernelConfig::from_env`] evaluated
    /// once, at first use. Callers that need a different config per
    /// plan thread one through explicitly instead.
    pub fn global() -> Self {
        static GLOBAL: OnceLock<KernelConfig> = OnceLock::new();
        *GLOBAL.get_or_init(Self::from_env)
    }

    /// The scalar reference configuration: no SIMD, no prefetch, one
    /// staging buffer. This is the correctness oracle every vectorized
    /// config point is differentially tested against, and the "before"
    /// side of the bench's `engine_simd_off` rows.
    pub fn scalar() -> Self {
        KernelConfig {
            simd: false,
            prefetch: false,
            depth: 1,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_seed_constants() {
        let cfg = KernelConfig::default();
        assert_eq!(cfg.stage_bytes, 262_144);
        assert_eq!(cfg.tile, 64);
        assert_eq!(cfg.depth, 2);
        assert!(cfg.simd);
        assert!(cfg.prefetch);
    }

    #[test]
    fn scalar_is_the_reference_point() {
        let cfg = KernelConfig::scalar();
        assert!(!cfg.simd);
        assert!(!cfg.prefetch);
        assert_eq!(cfg.depth, 1);
        assert_eq!(cfg.stage_bytes, DEFAULT_STAGE_BYTES);
    }
}
