//! A persistent worker pool with parked workers and barrier-style task
//! dispatch.
//!
//! The seed backend spawned (and joined) a fresh set of scoped OS threads
//! for **every pass of every run** — five spawn/join cycles per scheduled
//! permutation. This module replaces that with one set of long-lived
//! workers per process: dispatching a parallel job is a mutex lock, a
//! condvar broadcast, and an atomic task counter, with no thread creation
//! on the hot path.
//!
//! Dispatch model: a job is a closure `f(task_index)` plus a task count.
//! Workers (and the calling thread, which participates) claim task indices
//! from a shared atomic cursor until exhausted, so at most
//! [`WorkerPool::threads`] tasks run concurrently no matter how many tasks
//! a job has — a caller can submit thousands of small tasks without
//! thousands of threads existing (the seed's `par_chunks_mut_exact`
//! spawned one thread per chunk).
//!
//! Worker panics are caught, the first payload is kept, and the panic
//! resumes on the **calling** thread once the job drains; the workers
//! themselves survive and keep serving later jobs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Type-erased pointer to the job closure. The pool guarantees the
/// pointee outlives every dereference: [`WorkerPool::run`] does not return
/// until all claimed tasks have finished executing, and no worker
/// dereferences the pointer after the job's `completed` count reaches
/// `num_tasks`.
#[derive(Clone, Copy)]
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the pool's
// completion barrier bounds its lifetime as documented on `RawTask`.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One dispatched job: the closure, its task range, and completion state.
struct Job {
    task: RawTask,
    num_tasks: usize,
    /// Next unclaimed task index.
    cursor: AtomicUsize,
    /// Tasks that have finished executing (panicked ones included).
    completed: AtomicUsize,
    /// Set when any task panicked.
    panicked: AtomicBool,
    /// First panic payload, resumed on the calling thread.
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct State {
    /// Bumped per dispatched job so workers can tell "new job" from
    /// "the job I already drained".
    epoch: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The dispatching thread parks here until the job drains.
    done_cv: Condvar,
}

/// A persistent pool of `threads - 1` parked workers; the dispatching
/// thread is the final participant. See the module docs for the dispatch
/// protocol. Most code wants [`WorkerPool::global`]; tests build private
/// pools with [`WorkerPool::new`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    /// Serializes dispatches: one job owns the workers at a time.
    run_lock: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

thread_local! {
    /// True while this thread is executing pool tasks (worker threads for
    /// their lifetime, the caller during a dispatch). A dispatch from such
    /// a thread would deadlock on `run_lock`, so nested `run` calls
    /// execute inline instead.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True while the current thread is executing pool tasks — a worker for
/// its whole lifetime, or a dispatching thread during its own `run`.
/// Callers that would otherwise block on *other* threads' pool dispatches
/// (e.g. the plan engine waiting on queue drainers) use this to fall back
/// to an inline path instead of deadlocking on `run_lock`.
pub(crate) fn in_pool_task() -> bool {
    IN_POOL.with(|c| c.get())
}

impl WorkerPool {
    /// Build a pool with `threads` total participants (`threads - 1`
    /// workers are spawned; the dispatching thread is the last one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hmm-native-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            run_lock: Mutex::new(()),
            handles,
        }
    }

    /// The process-wide pool, created on first use with
    /// [`crate::par::worker_threads`] participants (the machine's
    /// available parallelism, or `HMM_NATIVE_THREADS`).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(crate::par::configured_threads()))
    }

    /// Total participants (workers + the dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0..num_tasks)` across the pool, returning when every task
    /// has finished. Tasks are claimed dynamically, so at most
    /// [`WorkerPool::threads`] run concurrently. Reentrant calls (from
    /// inside a task) and single-task jobs execute inline on the calling
    /// thread.
    ///
    /// # Panics
    /// If any task panics, the first payload is re-raised here after the
    /// job drains; the pool remains usable.
    pub fn run<F>(&self, num_tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if num_tasks == 0 {
            return;
        }
        if num_tasks == 1 || self.threads == 1 || IN_POOL.with(|c| c.get()) {
            for i in 0..num_tasks {
                f(i);
            }
            return;
        }
        let _guard = self.run_lock.lock().unwrap_or_else(PoisonError::into_inner);
        // SAFETY (lifetime erasure): `job.task` points at `f`, which lives
        // until this function returns; the completion barrier below blocks
        // until every claimed task has finished, and tasks are the only
        // dereference sites.
        let erased: RawTask = unsafe {
            RawTask(std::mem::transmute::<
                &(dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(&f))
        };
        let job = Arc::new(Job {
            task: erased,
            num_tasks,
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        });
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.epoch += 1;
            st.job = Some(Arc::clone(&job));
            self.shared.work_cv.notify_all();
        }
        // The caller is a participant too.
        IN_POOL.with(|c| c.set(true));
        drain(&job);
        IN_POOL.with(|c| c.set(false));
        // Completion barrier.
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            while job.completed.load(Ordering::Acquire) < num_tasks {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // Drop the job so borrowed captures cannot outlive this call.
            st.job = None;
        }
        if job.panicked.load(Ordering::Acquire) {
            let payload = job
                .payload
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            match payload {
                Some(p) => std::panic::resume_unwind(p),
                None => panic!("worker thread panicked"),
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim and execute tasks from `job` until the cursor runs out.
fn drain(job: &Job) {
    loop {
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.num_tasks {
            return;
        }
        // SAFETY: see `RawTask` — the pointee is alive until the job's
        // completion barrier releases, which cannot happen before this
        // task's `completed` increment below.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.task.0)(i) }));
        if let Err(p) = result {
            job.panicked.store(true, Ordering::Release);
            let mut slot = job.payload.lock().unwrap_or_else(PoisonError::into_inner);
            slot.get_or_insert(p);
        }
        job.completed.fetch_add(1, Ordering::Release);
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|c| c.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job.clone() {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        drain(&job);
        // Wake the dispatcher if this worker finished the last task. The
        // lock round-trip makes the wakeup race-free against the
        // dispatcher's wait loop.
        if job.completed.load(Ordering::Acquire) >= job.num_tasks {
            let _st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reused_across_many_dispatches_without_spawning() {
        let pool = WorkerPool::new(3);
        let spawned_before = pool.handles.len();
        let total = AtomicUsize::new(0);
        for round in 1..=50usize {
            pool.run(round, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), (1..=50).sum::<usize>());
        assert_eq!(pool.handles.len(), spawned_before, "no new threads");
    }

    #[test]
    fn concurrency_never_exceeds_pool_threads() {
        let pool = WorkerPool::new(4);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(256, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(50));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 4,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn panic_propagates_with_payload_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 17 exploded");
        // The pool still works afterwards.
        let count = AtomicUsize::new(0);
        pool.run(32, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        pool.run(8, |_| {
            // A task dispatching again must not deadlock on run_lock.
            WorkerPool::global().run(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn zero_tasks_is_a_noop_and_single_thread_pools_work() {
        let pool = WorkerPool::new(1);
        pool.run(0, |_| panic!("must not run"));
        let count = AtomicUsize::new(0);
        pool.run(10, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn concurrent_dispatch_from_many_external_threads() {
        // Several non-pool threads hammer one pool with dispatches at
        // once: run_lock must serialize jobs without losing or double-
        // running tasks, and every dispatcher must see its own job drain.
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        const DISPATCHERS: usize = 6;
        const ROUNDS: usize = 25;
        const TASKS: usize = 64;
        std::thread::scope(|s| {
            for _ in 0..DISPATCHERS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        let before = total.load(Ordering::SeqCst);
                        pool.run(TASKS, |_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                        // This dispatcher's job fully drained before run
                        // returned (other dispatchers may add more).
                        assert!(total.load(Ordering::SeqCst) >= before + TASKS);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), DISPATCHERS * ROUNDS * TASKS);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
        assert!(WorkerPool::global().threads() >= 1);
    }
}
