//! Parallel scatter/gather permutation on the CPU — the wall-clock
//! equivalents of the paper's D-designated and S-designated kernels.
//!
//! On a CPU the role of coalescing is played by cache lines and TLB
//! entries: the gather/scatter side with random indices misses on nearly
//! every access once the array outgrows the last-level cache, exactly like
//! the casual round of the conventional GPU algorithm.
//!
//! Both kernels are allocation-free (they never stage through a temporary
//! buffer — audited for this PR's staging cleanup). The gather side runs
//! the clamped tiers from `crate::simd` under the process-wide
//! [`KernelConfig`]: `HMM_NATIVE_SIMD=0` restores the seed's plain
//! bounds-checked loops, which the tests pin against the default path.
//! Neither kernel software-prefetches: an A/B on these loops showed
//! per-element target hints *lose* 1.4–5× on cache-resident families and
//! win nothing on miss-heavy ones — the out-of-order window already
//! extracts the available memory-level parallelism from the simple loop,
//! and the hint's address computation is pure overhead on top. (The
//! sweep kernels in `scheduled` prefetch their *sequential* gather-map
//! rows one block ahead, which is a different access pattern and does
//! pay.)

use crate::config::KernelConfig;
use crate::par::{par_chunks_mut, par_ranges};
use crate::simd;
use hmm_perm::Permutation;

/// Minimum elements per worker chunk; below this, threading overhead
/// dominates.
const MIN_CHUNK: usize = 1 << 14;

/// A shared mutable pointer for the scatter kernel.
///
/// # Safety contract
/// Writers must target pairwise-distinct indices. The only constructor is
/// private to this module and the only user is [`scatter_permute`], whose
/// indices are the images of a validated bijection restricted to disjoint
/// input chunks — every destination is written exactly once.
struct ScatterTarget<T>(*mut T);

unsafe impl<T: Send> Sync for ScatterTarget<T> {}

/// Destination-designated permutation, parallel over the *source*:
/// `dst[p[i]] = src[i]`.
///
/// # Panics
/// Panics if the lengths of `src`, `dst`, and `p` differ.
pub fn scatter_permute<T: Copy + Send + Sync>(src: &[T], p: &Permutation, dst: &mut [T]) {
    assert_eq!(src.len(), p.len(), "src length != permutation length");
    assert_eq!(dst.len(), p.len(), "dst length != permutation length");
    if src.is_empty() {
        return;
    }
    let target = ScatterTarget(dst.as_mut_ptr());
    let map = p.as_slice();
    par_ranges(src.len(), MIN_CHUNK, |start, end| {
        let target = &target;
        for i in start..end {
            // SAFETY: `p` is a bijection on 0..n (validated at
            // construction), so `map[i]` is in bounds and visited for
            // exactly one `i` across all chunks: no two threads write the
            // same slot, and no write races a read (src and dst are
            // distinct slices by &/&mut exclusivity).
            #[allow(unsafe_code)]
            unsafe {
                *target.0.add(map[i]) = src[i];
            }
        }
    });
}

/// Source-designated permutation, parallel over the *destination*:
/// `dst[i] = src[q[i]]` where `q` must be the inverse of the permutation
/// being applied (`q = p.inverse()`): fully safe, each worker owns a
/// disjoint `dst` chunk.
pub fn gather_permute<T: Copy + Send + Sync>(src: &[T], q: &Permutation, dst: &mut [T]) {
    assert_eq!(src.len(), q.len(), "src length != permutation length");
    assert_eq!(dst.len(), q.len(), "dst length != permutation length");
    if dst.is_empty() {
        return;
    }
    let map = q.as_slice();
    let tier = simd::select::<T>(KernelConfig::global().simd);
    par_chunks_mut(dst, MIN_CHUNK, |start, chunk| {
        simd::gather_map_usize(tier, src, &map[start..start + chunk.len()], chunk);
    });
}

/// Plain parallel copy — the bandwidth ceiling against which both kernels
/// are measured (the paper's "identical" row).
pub fn copy_baseline<T: Copy + Send + Sync>(src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), dst.len());
    par_chunks_mut(dst, MIN_CHUNK, |start, chunk| {
        chunk.copy_from_slice(&src[start..start + chunk.len()]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    fn reference(p: &Permutation, src: &[u32]) -> Vec<u32> {
        let mut out = vec![0; src.len()];
        p.permute(src, &mut out).unwrap();
        out
    }

    #[test]
    fn scatter_matches_reference_for_all_families() {
        let n = 1 << 16; // above MIN_CHUNK: exercises real parallelism
        let src: Vec<u32> = (0..n as u32).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 61).unwrap();
            let mut dst = vec![0u32; n];
            scatter_permute(&src, &p, &mut dst);
            assert_eq!(dst, reference(&p, &src), "{}", fam.name());
        }
    }

    #[test]
    fn gather_matches_reference_for_all_families() {
        let n = 1 << 16;
        let src: Vec<u32> = (0..n as u32).map(|v| v ^ 0xabcd).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 62).unwrap();
            let q = p.inverse();
            let mut dst = vec![0u32; n];
            gather_permute(&src, &q, &mut dst);
            assert_eq!(dst, reference(&p, &src), "{}", fam.name());
        }
    }

    #[test]
    fn scatter_and_gather_agree() {
        let n = 50_000; // odd size, partial chunks
        let p = families::random(n, 63);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        scatter_permute(&src, &p, &mut a);
        gather_permute(&src, &p.inverse(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn copy_baseline_copies() {
        let src: Vec<u64> = (0..100_000).collect();
        let mut dst = vec![0u64; src.len()];
        copy_baseline(&src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn works_with_doubles() {
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let src: Vec<f64> = (0..n).map(|v| v as f64 * 0.5).collect();
        let mut dst = vec![0.0f64; n];
        scatter_permute(&src, &p, &mut dst);
        for i in 0..n {
            assert_eq!(dst[p.apply(i)], src[i]);
        }
    }

    #[test]
    #[should_panic(expected = "length")]
    fn scatter_length_mismatch_panics() {
        let p = families::random(16, 1);
        let src = vec![0u32; 16];
        let mut dst = vec![0u32; 8];
        scatter_permute(&src, &p, &mut dst);
    }

    #[test]
    fn tiny_inputs_run_inline() {
        let p = families::random(4, 2);
        let src = vec![1u32, 2, 3, 4];
        let mut dst = vec![0u32; 4];
        scatter_permute(&src, &p, &mut dst);
        assert_eq!(dst, reference(&p, &src));
    }
}
