//! A/B timing harness for the raw scatter/gather kernels under the
//! process-global [`hmm_native::KernelConfig`]. Run twice —
//! `HMM_NATIVE_SIMD=1` (default tiers + prefetch) and `HMM_NATIVE_SIMD=0`
//! (seed scalar loops) — and compare; `repro native` medians fold host
//! noise across minutes, this isolates the kernels in seconds.

use hmm_native::{gather_permute, scatter_permute};
use hmm_perm::families;
use std::time::{Duration, Instant};

fn median(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut t: Vec<Duration> = (0..reps)
        .map(|_| {
            let s = Instant::now();
            f();
            s.elapsed()
        })
        .collect();
    t.sort();
    t[t.len() / 2]
}

fn main() {
    let simd = std::env::var("HMM_NATIVE_SIMD").unwrap_or_else(|_| "1".into());
    println!("HMM_NATIVE_SIMD={simd}");
    for n in [1usize << 20, 1 << 22] {
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        for fam in families::Family::ALL {
            let p = fam.build(n, 7).unwrap();
            let q = p.inverse();
            let s = median(9, || scatter_permute(&src, &p, &mut dst));
            let g = median(9, || gather_permute(&src, &q, &mut dst));
            println!(
                "n=2^{} {:<14} scatter {:>10.3?}  gather {:>10.3?}",
                n.trailing_zeros(),
                fam.name(),
                s,
                g
            );
        }
    }
}
