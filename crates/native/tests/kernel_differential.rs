//! Kernel differential suite: the double-buffered, vectorized sweep
//! pipeline against the retained scalar reference, across every config
//! point the seams expose.
//!
//! The contract under test is the one DESIGN.md's determinism argument
//! makes: for a fixed plan, **every** kernel config — SIMD on or off,
//! staging depth 1 or 2, any block size or tile — produces output
//! byte-identical to the `Permutation::permute` oracle, over all five
//! paper families × element widths {u32, u64, [u8; 16]} × ragged shapes
//! (non-multiple bands, block tails, n smaller than one block). Every
//! (config, plan) cell runs on **every registered backend** through the
//! `hmm_backend::Backend` registry — the same seam the conformance suite
//! forces routes through — so the native fused pipeline and the sweep-IR
//! interpreter are pinned to the oracle at once.
//!
//! CI runs this suite under `HMM_NATIVE_SIMD={0,1}` ×
//! `HMM_NATIVE_THREADS={1,4}`, so the process-global config path and the
//! band-parallel splits get the same coverage as the explicit
//! per-config `Backend::prepare` seam exercised here.

use hmm_native::{backend_names, by_name, ExecPlan, KernelConfig, PlanIr};
use hmm_perm::{families, Permutation};
use proptest::prelude::*;

const W: usize = 32;

/// The config points under test. `scalar` is the oracle-equivalent
/// reference; the rest turn the pipeline's knobs one at a time plus the
/// kitchen-sink default.
fn config_points() -> Vec<(&'static str, KernelConfig)> {
    vec![
        ("scalar", KernelConfig::scalar()),
        ("default", KernelConfig::default()),
        (
            "simd-depth1",
            KernelConfig {
                depth: 1,
                ..KernelConfig::default()
            },
        ),
        (
            // Tiny staging budget: every band runs many blocks with a
            // ragged tail; tile 8 forces non-multiple tile edges too.
            "simd-tiny-blocks",
            KernelConfig {
                stage_bytes: 4096,
                tile: 8,
                ..KernelConfig::default()
            },
        ),
        (
            // Odd tile: bands are padded to a non-power-of-two multiple.
            "simd-tile48",
            KernelConfig {
                tile: 48,
                ..KernelConfig::default()
            },
        ),
        (
            // Double-buffered but scalar inner loops (prefetch still on):
            // isolates the pipeline restructure from the vector paths.
            "scalar-depth2",
            KernelConfig {
                simd: false,
                depth: 2,
                prefetch: true,
                ..KernelConfig::default()
            },
        ),
    ]
}

/// Prepare a scheduled plan on a named registry backend at config `cfg`
/// and run it once — the shared per-config seam (no test names a
/// concrete executor type).
fn exec_scheduled<T>(backend: &str, ir: &PlanIr, cfg: KernelConfig, src: &[T]) -> Vec<T>
where
    T: Copy + Send + Sync + Default + 'static,
{
    let b = by_name::<T>(backend).expect("registered backend");
    let exec = b.prepare(ExecPlan::Scheduled(ir), cfg).unwrap();
    let mut dst = vec![T::default(); src.len()];
    let mut scratch = vec![T::default(); exec.scratch_len()];
    exec.run(src, &mut dst, &mut scratch);
    dst
}

/// Run one permutation through every (backend, config) point at element
/// type `T` and demand byte-identical agreement with the safe oracle.
fn check_all_configs<T>(p: &Permutation, label: &str, make: impl Fn(usize) -> T)
where
    T: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static,
{
    let n = p.len();
    let src: Vec<T> = (0..n).map(make).collect();
    let mut want = vec![T::default(); n];
    p.permute(&src, &mut want).unwrap();
    let ir = PlanIr::build(p, W).unwrap();
    for backend in backend_names() {
        for (name, cfg) in config_points() {
            let dst = exec_scheduled(backend, &ir, cfg, &src);
            assert!(
                dst == want,
                "{backend}/{name} diverged from the oracle: {label}, n = {n}"
            );
        }
    }
}

#[test]
fn all_families_u32() {
    for n in [1 << 10, 1 << 11, 1 << 13] {
        for fam in families::Family::ALL {
            let p = fam.build(n, 0xd1ff).unwrap();
            check_all_configs(&p, fam.name(), |i| (i as u32).wrapping_mul(2654435761));
        }
    }
}

#[test]
fn all_families_u64() {
    for n in [1 << 10, 1 << 11, 1 << 13] {
        for fam in families::Family::ALL {
            let p = fam.build(n, 0xd1ff).unwrap();
            check_all_configs(&p, fam.name(), |i| {
                (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            });
        }
    }
}

#[test]
fn all_families_16_byte_elements() {
    // 16-byte elements have no AVX2 gather/transpose — they exercise the
    // unrolled clamped tier and the widest staging-arena stride.
    for n in [1 << 10, 1 << 11] {
        for fam in families::Family::ALL {
            let p = fam.build(n, 0xd1ff).unwrap();
            check_all_configs(&p, fam.name(), |i| {
                ((i as u128).wrapping_mul(0x0123_4567_89ab_cdef)).to_le_bytes()
            });
        }
    }
}

#[test]
fn n_smaller_than_one_block() {
    // With the default 256 KB budget a whole 2^10-element matrix fits in
    // one staging block: depth collapses to 1 regardless of the config.
    let n = 1 << 10;
    let p = families::random(n, 99);
    check_all_configs(&p, "random-small", |i| i as u32);
}

#[test]
fn tiny_matrices_every_width() {
    // 2^6..2^9: rows smaller than a tile, bands smaller than a block —
    // the all-edges regime. Width 8 keeps these schedulable.
    for exp in 6..=9 {
        let n = 1usize << exp;
        let p = families::random(n, exp as u64);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut want = vec![0u32; n];
        p.permute(&src, &mut want).unwrap();
        let ir = PlanIr::build(&p, 8).unwrap();
        for backend in backend_names() {
            for (name, cfg) in config_points() {
                let dst = exec_scheduled(backend, &ir, cfg, &src);
                assert_eq!(dst, want, "{backend}/{name}, n = {n}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random family × random size × random payload: every config point
    /// agrees with the oracle.
    #[test]
    fn random_shapes_agree_everywhere(
        n_exp in 10u32..=13,
        fam_idx in 0usize..families::Family::ALL.len(),
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let fam = families::Family::ALL[fam_idx];
        let p = fam.build(n, seed).unwrap();
        let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(seed as u32 | 1)).collect();
        let mut want = vec![0u32; n];
        p.permute(&src, &mut want).unwrap();
        let ir = PlanIr::build(&p, W).unwrap();
        for backend in backend_names() {
            for (name, cfg) in config_points() {
                let dst = exec_scheduled(backend, &ir, cfg, &src);
                prop_assert_eq!(&dst, &want, "{}/{}, {}, n = {}", backend, name, fam.name(), n);
            }
        }
    }

    /// Config points also agree pairwise on u64 payloads (not just with
    /// the oracle): pins byte-identity of the *outputs*, the property the
    /// determinism argument claims.
    #[test]
    fn configs_agree_pairwise_u64(
        n_exp in 10u32..=12,
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let p = families::random(n, seed);
        let src: Vec<u64> = (0..n as u64).map(|v| v.rotate_left((seed % 63) as u32)).collect();
        let ir = PlanIr::build(&p, W).unwrap();
        let outs: Vec<Vec<u64>> = backend_names()
            .into_iter()
            .flat_map(|backend| {
                config_points()
                    .into_iter()
                    .map(move |(_, cfg)| (backend, cfg))
            })
            .map(|(backend, cfg)| exec_scheduled(backend, &ir, cfg, &src))
            .collect();
        for pair in outs.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }
}
