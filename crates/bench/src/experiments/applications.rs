//! The application verdict table: for each permutation an application from
//! the paper's Section I actually generates, which algorithm should move
//! it? (Backed by `hmm-apps::onhmm`.)

use crate::tables::TextTable;
use hmm_apps::application_permutations;
use hmm_machine::MachineConfig;
use hmm_offperm::Result;

/// Evaluate and render the verdicts at size `n` on configuration `cfg`.
pub fn render(n: usize, cfg: &MachineConfig) -> Result<String> {
    let verdicts = application_permutations(n, cfg)?;
    let mut t = TextTable::new(vec![
        "permutation",
        "gamma_w",
        "conventional",
        "scheduled",
        "use",
    ]);
    for v in &verdicts {
        t.row(vec![
            v.name.clone(),
            format!("{:.1}", v.gamma),
            v.conventional.to_string(),
            v.scheduled.to_string(),
            if v.scheduled_wins() {
                "scheduled".to_string()
            } else {
                "conventional".to_string()
            },
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_application_rows() {
        let s = render(1 << 12, &MachineConfig::pure(32, 16)).unwrap();
        for needle in [
            "butterfly",
            "FFT bit-reversal",
            "matrix transpose",
            "bit-complement",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
