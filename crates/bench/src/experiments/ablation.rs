//! Ablations beyond the paper's tables (DESIGN.md §8): which modelling
//! ingredients drive each observed effect.

use crate::tables::{size_label, TextTable};
use hmm_graph::Strategy;
use hmm_machine::{ElemWidth, Hmm, MachineConfig, Word};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_offperm::scheduled::ScheduledPermutation;
use hmm_offperm::Result;
use hmm_perm::families;
use std::time::Instant;

/// Ablation 1 — the L2 cache model is what lets the conventional algorithm
/// win at small `n` (the paper's Section VIII explanation). For each size,
/// report D-designated vs scheduled time with the cache model on and off.
pub fn cache_ablation(sizes: &[usize]) -> Result<String> {
    let mut t = TextTable::new(vec![
        "n",
        "conv (cache)",
        "sched (cache)",
        "conv (no cache)",
        "sched (no cache)",
    ]);
    for &n in sizes {
        let p = families::bit_reversal(n)?;
        let input: Vec<Word> = (0..n as Word).collect();
        let mut cells = Vec::new();
        for cached in [true, false] {
            let mut cfg = MachineConfig::gtx680(ElemWidth::F32);
            if !cached {
                cfg.cache = None;
            }
            for alg in [Algorithm::DDesignated, Algorithm::Scheduled] {
                let mut hmm = Hmm::new(cfg.clone())?;
                let (report, _) = run_on(&mut hmm, alg, &p, &input)?;
                cells.push(report.time.to_string());
            }
        }
        let mut row = vec![size_label(n)];
        row.extend(cells);
        t.row(row);
    }
    Ok(t.render())
}

/// Ablation 5 — cache write policy: with a write-around L2 (write misses
/// do not allocate), the conventional algorithm's scattered writes get no
/// reuse, so its small-`n` advantage over the scheduled algorithm should
/// shrink on high-distribution permutations.
pub fn write_policy_ablation(sizes: &[usize]) -> Result<String> {
    let mut t = TextTable::new(vec![
        "n",
        "conv (write-allocate)",
        "conv (write-around)",
        "sched (write-allocate)",
        "sched (write-around)",
    ]);
    for &n in sizes {
        let p = families::bit_reversal(n)?;
        let input: Vec<Word> = (0..n as Word).collect();
        let mut by_alg: Vec<Vec<String>> = vec![Vec::new(); 2];
        for (ai, alg) in [Algorithm::DDesignated, Algorithm::Scheduled]
            .into_iter()
            .enumerate()
        {
            for write_allocate in [true, false] {
                let cfg = MachineConfig {
                    write_allocate,
                    ..MachineConfig::gtx680(ElemWidth::F32)
                };
                let mut hmm = Hmm::new(cfg)?;
                let (report, _) = run_on(&mut hmm, alg, &p, &input)?;
                by_alg[ai].push(report.time.to_string());
            }
        }
        let mut row = vec![size_label(n)];
        row.push(by_alg[0][0].clone());
        row.push(by_alg[0][1].clone());
        row.push(by_alg[1][0].clone());
        row.push(by_alg[1][1].clone());
        t.row(row);
    }
    Ok(t.render())
}

/// Ablation 2 — the paper's shared-dispatch quirk: Table I charges shared
/// rounds `p/w` rather than `p/(d·w)` (DESIGN.md §5). Report scheduled
/// time under both rules.
pub fn shared_dispatch_ablation(n: usize) -> Result<String> {
    let p = families::bit_reversal(n)?;
    let input: Vec<Word> = (0..n as Word).collect();
    let mut t = TextTable::new(vec!["shared dispatch", "scheduled time"]);
    for parallel in [false, true] {
        let cfg = MachineConfig {
            parallel_shared_dispatch: parallel,
            ..MachineConfig::pure(32, 512)
        };
        let mut hmm = Hmm::new(cfg)?;
        let (report, _) = run_on(&mut hmm, Algorithm::Scheduled, &p, &input)?;
        t.row(vec![
            if parallel {
                "parallel over DMMs (p/(d*w))".to_string()
            } else {
                "paper model (p/w)".to_string()
            },
            report.time.to_string(),
        ]);
    }
    Ok(t.render())
}

/// Ablation 3 — schedule-construction cost: the Euler-partition hybrid vs
/// the matching-only König colorer (host wall-clock, not model time).
pub fn coloring_ablation(n: usize, width: usize) -> Result<String> {
    let p = families::random(n, 77);
    let mut t = TextTable::new(vec!["strategy", "build time"]);
    for (name, strategy) in [
        ("Euler hybrid", Strategy::Hybrid),
        ("matching only", Strategy::MatchingOnly),
    ] {
        let start = Instant::now();
        let sched = ScheduledPermutation::build_with(&p, width, strategy)?;
        let elapsed = start.elapsed();
        assert_eq!(sched.len(), n);
        t.row(vec![name.to_string(), format!("{elapsed:.2?}")]);
    }
    Ok(t.render())
}

/// Ablation 4 — per-pass cost breakdown of the five scheduled kernels
/// (rowwise, transpose, rowwise, transpose, rowwise) from one run's
/// launch boundaries.
pub fn pass_breakdown(n: usize) -> Result<String> {
    let p = families::bit_reversal(n)?;
    let input: Vec<Word> = (0..n as Word).collect();
    let cfg = MachineConfig::pure(32, 512);
    let mut hmm = Hmm::new(cfg)?;
    let sched = ScheduledPermutation::build(&p, 32)?;
    let staged = sched.stage(&mut hmm)?;
    let a = hmm.alloc_global(n);
    let b = hmm.alloc_global(n);
    let t1 = hmm.alloc_global(n);
    let t2 = hmm.alloc_global(n);
    hmm.host_write(a, &input)?;
    staged.run(&mut hmm, a, b, t1, t2)?;
    // 32 rounds in launch order: 8 (rowwise) + 4 (transpose) + 8 (rowwise)
    // + 4 (transpose) + 8 (rowwise).
    let records = hmm.ledger().records();
    let bounds = [0usize, 8, 12, 20, 24, 32];
    let names = [
        "step 1: row-wise",
        "step 2a: transpose",
        "step 2b: row-wise",
        "step 2c: transpose",
        "step 3: row-wise",
    ];
    let mut t = TextTable::new(vec!["kernel", "rounds", "time units"]);
    for (k, name) in names.iter().enumerate() {
        let slice = &records[bounds[k]..bounds[k + 1]];
        let time: u64 = slice.iter().map(|r| r.time).sum();
        t.row(vec![
            name.to_string(),
            slice.len().to_string(),
            time.to_string(),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ablation_renders() {
        let s = cache_ablation(&[1 << 12, 1 << 14]).unwrap();
        assert!(s.contains("4K"));
        assert!(s.contains("16K"));
    }

    #[test]
    fn shared_dispatch_parallel_is_faster() {
        let s = shared_dispatch_ablation(1 << 12).unwrap();
        assert!(s.contains("paper model"));
        // Extract the two numbers and compare.
        let nums: Vec<u64> = s
            .split_whitespace()
            .filter_map(|tok| tok.parse().ok())
            .collect();
        let (paper, parallel) = (nums[nums.len() - 2], nums[nums.len() - 1]);
        assert!(parallel < paper, "{parallel} !< {paper}");
    }

    #[test]
    fn write_around_hurts_conventional_small_n() {
        let s = write_policy_ablation(&[1 << 14]).unwrap();
        let nums: Vec<u64> = s
            .split_whitespace()
            .filter_map(|tok| tok.parse().ok())
            .collect();
        let (conv_wa, conv_around) = (nums[nums.len() - 4], nums[nums.len() - 3]);
        assert!(
            conv_around > conv_wa,
            "write-around should slow the conventional writes: {conv_around} !> {conv_wa}"
        );
    }

    #[test]
    fn coloring_ablation_runs() {
        let s = coloring_ablation(1 << 10, 8).unwrap();
        assert!(s.contains("Euler hybrid"));
    }

    #[test]
    fn pass_breakdown_sums_to_32_rounds() {
        let s = pass_breakdown(1 << 12).unwrap();
        assert!(s.contains("step 1: row-wise"));
        assert!(s.contains("step 2c: transpose"));
    }
}
