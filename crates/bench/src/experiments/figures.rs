//! Reproductions of the paper's figures as text renderings plus the data
//! behind them (asserted in `tests/figures.rs`).

use hmm_graph::{edge_color, verify_coloring, RegularBipartite};
use hmm_machine::pipeline::{dmm_stage_layout, round_time, umm_stage_layout};
use hmm_offperm::schedule::Decomposition;
use hmm_offperm::transpose::diagonal_index;
use hmm_offperm::Result;
use hmm_perm::Permutation;
use std::fmt::Write as _;

/// The Figure 3 example: two warps of width 4 accessing
/// `⟨7, 5, 15, 0⟩` and `⟨10, 11, 12, 13⟩`.
pub const FIG3_WIDTH: usize = 4;
/// Warp `W0`'s addresses.
pub const FIG3_W0: [usize; 4] = [7, 5, 15, 0];
/// Warp `W1`'s addresses.
pub const FIG3_W1: [usize; 4] = [10, 11, 12, 13];

/// Stage layouts and total times of the Figure 3 example on the DMM and
/// the UMM, for latency `l`.
pub struct Fig3Data {
    /// Per-warp DMM stage layouts.
    pub dmm_stages: [Vec<Vec<usize>>; 2],
    /// Per-warp UMM stage layouts.
    pub umm_stages: [Vec<Vec<usize>>; 2],
    /// DMM round time with the given latency.
    pub dmm_time: u64,
    /// UMM round time with the given latency.
    pub umm_time: u64,
}

/// Compute the Figure 3 data for latency `l`.
pub fn fig3(l: usize) -> Fig3Data {
    let w = FIG3_WIDTH;
    let dmm = [dmm_stage_layout(&FIG3_W0, w), dmm_stage_layout(&FIG3_W1, w)];
    let umm = [umm_stage_layout(&FIG3_W0, w), umm_stage_layout(&FIG3_W1, w)];
    let dmm_counts: Vec<usize> = dmm.iter().map(|s| s.len()).collect();
    let umm_counts: Vec<usize> = umm.iter().map(|s| s.len()).collect();
    Fig3Data {
        dmm_time: round_time(&dmm_counts, l),
        umm_time: round_time(&umm_counts, l),
        dmm_stages: dmm,
        umm_stages: umm,
    }
}

/// Render Figure 3 as text.
pub fn render_fig3(l: usize) -> String {
    let data = fig3(l);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: memory access by warps W0={FIG3_W0:?} and W1={FIG3_W1:?}, w={FIG3_WIDTH}, l={l}"
    );
    for (name, stages, time) in [
        ("DMM (banks)", &data.dmm_stages, data.dmm_time),
        ("UMM (address groups)", &data.umm_stages, data.umm_time),
    ] {
        let _ = writeln!(out, "\n{name}:");
        for (wi, warp) in stages.iter().enumerate() {
            for (si, stage) in warp.iter().enumerate() {
                let _ = writeln!(out, "  W{wi} stage {si}: {stage:?}");
            }
        }
        let total: usize = stages.iter().map(|s| s.len()).sum();
        let _ = writeln!(
            out,
            "  total stages = {total}, time = {time} (= l + {})",
            time as i64 - l as i64
        );
    }
    out
}

/// The Figure 4 diagonal arrangement of a `w × w` matrix: cell `(i, j)` of
/// the grid shows which matrix element is stored there.
pub fn fig4_grid(w: usize) -> Vec<Vec<(usize, usize)>> {
    let mut grid = vec![vec![(0, 0); w]; w];
    for i in 0..w {
        for j in 0..w {
            let idx = diagonal_index(i, j, w);
            grid[idx / w][idx % w] = (i, j);
        }
    }
    grid
}

/// Render Figure 4 for width `w`.
pub fn render_fig4(w: usize) -> String {
    let grid = fig4_grid(w);
    let mut out = format!("Figure 4: diagonal arrangement of a {w}x{w} matrix\n");
    let _ = writeln!(
        out,
        "(cell shows [row,col] of the stored element; banks are columns)"
    );
    for row in &grid {
        for &(i, j) in row {
            let _ = write!(out, " [{i},{j}]");
        }
        out.push('\n');
    }
    out
}

/// A Figure 5-style regular bipartite graph of degree 4 on 6+6 nodes,
/// with its coloring. Returns `(graph, colors)`.
pub fn fig5() -> (RegularBipartite, Vec<usize>) {
    // A fixed 4-regular bipartite multigraph (degree 4, 6 nodes per side).
    let mut edges = Vec::new();
    for shift in 0..4usize {
        for u in 0..6usize {
            edges.push((u, (u + shift) % 6));
        }
    }
    let g = RegularBipartite::new(6, edges).expect("regular by construction");
    let coloring = edge_color(&g).expect("Koenig coloring");
    assert!(verify_coloring(&g, &coloring));
    (g, coloring.colors)
}

/// Render Figure 5.
pub fn render_fig5() -> String {
    let (g, colors) = fig5();
    let mut out =
        String::from("Figure 5: a regular bipartite graph with degree 4 painted by 4 colors\n");
    for color in 0..g.degree() {
        let class: Vec<(usize, usize)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(e, _)| colors[*e] == color)
            .map(|(_, &uv)| uv)
            .collect();
        let _ = writeln!(out, "  color {color}: {class:?}  (a perfect matching)");
    }
    out
}

/// The Figure 6 walkthrough: a permutation on a small matrix, with the
/// matrix contents after each of the three steps. Each cell is labelled by
/// the source element's `(row, col)` as in the paper.
pub fn fig6(p: &Permutation, width: usize) -> Result<(Decomposition, [Vec<usize>; 4])> {
    let d = Decomposition::build(p, width)?;
    let snaps = d.snapshots();
    Ok((d, snaps))
}

/// Render Figure 6 for the given permutation (16 elements viewed 4×4 with
/// width 4 reproduces the paper's scale).
pub fn render_fig6(p: &Permutation, width: usize) -> Result<String> {
    let (d, snaps) = fig6(p, width)?;
    let (r, c) = (d.shape.rows, d.shape.cols);
    let titles = ["Input", "After Step 1", "After Step 2", "After Step 3"];
    let mut out = format!(
        "Figure 6: routing a permutation of {} elements on a {r}x{c} matrix\n",
        p.len()
    );
    for (snap, title) in snaps.iter().zip(titles) {
        let _ = writeln!(out, "\n{title}:");
        for i in 0..r {
            out.push(' ');
            for j in 0..c {
                let src = snap[i * c + j];
                let _ = write!(out, " ({},{})", src / c, src % c);
            }
            out.push('\n');
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    #[test]
    fn fig3_matches_paper_times() {
        // Paper: DMM takes l+2, UMM takes l+4 for this example.
        let l = 10;
        let d = fig3(l);
        assert_eq!(d.dmm_time, (l + 2) as u64);
        assert_eq!(d.umm_time, (l + 4) as u64);
        assert_eq!(d.dmm_stages[0].len(), 2);
        assert_eq!(d.dmm_stages[1].len(), 1);
        assert_eq!(d.umm_stages[0].len(), 3);
        assert_eq!(d.umm_stages[1].len(), 2);
    }

    #[test]
    fn fig4_grid_is_the_paper_grid() {
        // Figure 4 row 1: [1,3] [1,0] [1,1] [1,2].
        let grid = fig4_grid(4);
        assert_eq!(grid[1], vec![(1, 3), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(grid[0], vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        assert_eq!(grid[3], vec![(3, 1), (3, 2), (3, 3), (3, 0)]);
    }

    #[test]
    fn fig5_coloring_is_proper() {
        let (g, colors) = fig5();
        assert_eq!(g.degree(), 4);
        assert_eq!(colors.iter().copied().max().unwrap(), 3);
    }

    #[test]
    fn fig6_final_snapshot_realizes_permutation() {
        let p = families::random(16, 6);
        let (_, snaps) = fig6(&p, 4).unwrap();
        for (pos, &src) in snaps[3].iter().enumerate() {
            assert_eq!(p.apply(src), pos);
        }
    }

    #[test]
    fn renders_do_not_panic() {
        assert!(render_fig3(10).contains("DMM"));
        assert!(render_fig4(4).contains("[1,3]"));
        assert!(render_fig5().contains("color 3"));
        let p = families::random(16, 1);
        assert!(render_fig6(&p, 4).unwrap().contains("After Step 3"));
    }
}
