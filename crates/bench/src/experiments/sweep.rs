//! Model-parameter sweeps — extension experiments the theory invites: how
//! the conventional-vs-scheduled contest moves with the machine's latency
//! `l` and width `w` (the paper fixes both; its formulas predict the
//! trends these sweeps confirm).

use crate::tables::TextTable;
use hmm_machine::{Hmm, MachineConfig, Word};
use hmm_offperm::analysis;
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_offperm::Result;
use hmm_perm::families;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub param: usize,
    /// Conventional (D-designated, bit-reversal) time.
    pub conventional: u64,
    /// Scheduled time.
    pub scheduled: u64,
    /// The closed-form predictions (conventional with `γ_w = w`).
    pub predicted: (u64, u64),
}

fn measure(n: usize, cfg: &MachineConfig, param: usize) -> Result<SweepPoint> {
    let p = families::bit_reversal(n)?;
    let input: Vec<Word> = (0..n as Word).collect();
    let time = |alg: Algorithm| -> Result<u64> {
        let mut hmm = Hmm::new(cfg.clone())?;
        Ok(run_on(&mut hmm, alg, &p, &input)?.0.time)
    };
    Ok(SweepPoint {
        param,
        conventional: time(Algorithm::DDesignated)?,
        scheduled: time(Algorithm::Scheduled)?,
        predicted: (
            analysis::conventional_time(n, cfg.width, cfg.latency, cfg.width as f64),
            analysis::scheduled_time(n, cfg.width, cfg.latency),
        ),
    })
}

/// Sweep the global-memory latency on the pure model at fixed `n`, `w=32`.
///
/// Theory: conventional grows as `3(l−1)`, scheduled as `16(l−1)` — with
/// enough latency the 3-round algorithm must win even at `γ_w = w`.
pub fn latency_sweep(n: usize, latencies: &[usize]) -> Result<Vec<SweepPoint>> {
    latencies
        .iter()
        .map(|&l| measure(n, &MachineConfig::pure(32, l), l))
        .collect()
}

/// Sweep the width on the pure model at fixed `n`, `l`.
///
/// Theory: conventional's casual round costs `γ_w·n/w = n` independent of
/// `w` (for `γ_w = w`), while every coalesced/conflict-free round shrinks
/// as `n/w` — wider machines favour the scheduled algorithm.
pub fn width_sweep(n: usize, latency: usize, widths: &[usize]) -> Result<Vec<SweepPoint>> {
    widths
        .iter()
        .map(|&w| measure(n, &MachineConfig::pure(w, latency), w))
        .collect()
}

/// Render a sweep.
pub fn render(param_name: &str, points: &[SweepPoint]) -> String {
    let mut t = TextTable::new(vec![
        param_name,
        "conventional",
        "scheduled",
        "winner",
        "predicted conv",
        "predicted sched",
    ]);
    for p in points {
        t.row(vec![
            p.param.to_string(),
            p.conventional.to_string(),
            p.scheduled.to_string(),
            if p.scheduled < p.conventional {
                "scheduled".to_string()
            } else {
                "conventional".to_string()
            },
            p.predicted.0.to_string(),
            p.predicted.1.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matches_closed_forms() {
        for pt in latency_sweep(1 << 12, &[1, 64, 1024]).unwrap() {
            assert_eq!(pt.conventional, pt.predicted.0, "l = {}", pt.param);
            assert_eq!(pt.scheduled, pt.predicted.1, "l = {}", pt.param);
        }
    }

    #[test]
    fn latency_flips_the_winner() {
        // At tiny latency the scheduled algorithm wins; at huge latency the
        // 3-round conventional algorithm must win (13(l−1) extra pipeline
        // fills are unaffordable).
        let n = 1 << 14;
        let pts = latency_sweep(n, &[1, 1 << 16]).unwrap();
        assert!(pts[0].scheduled < pts[0].conventional, "l = 1");
        assert!(pts[1].scheduled > pts[1].conventional, "l = 64K");
    }

    #[test]
    fn width_helps_the_scheduled_algorithm() {
        // The scheduled/conventional time ratio must fall as w grows.
        let n = 1 << 14;
        let pts = width_sweep(n, 8, &[8, 16, 32, 64]).unwrap();
        let ratios: Vec<f64> = pts
            .iter()
            .map(|p| p.scheduled as f64 / p.conventional as f64)
            .collect();
        for pair in ratios.windows(2) {
            assert!(pair[1] < pair[0], "ratios not decreasing: {ratios:?}");
        }
    }

    #[test]
    fn render_mentions_winner() {
        let pts = latency_sweep(1 << 12, &[2]).unwrap();
        let s = render("l", &pts);
        assert!(s.contains("conventional") || s.contains("scheduled"));
    }
}
