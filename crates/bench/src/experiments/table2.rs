//! Table II reproduction: simulated running time of the D-designated,
//! S-designated, and scheduled algorithms for the five permutation families
//! across array sizes, for 32-bit and 64-bit elements.
//!
//! The paper reports GPU milliseconds; we report HMM time units on the
//! empirical (GTX-680-flavoured) configuration — L2 cache model on,
//! 128-byte segments — so the *shape* (who wins where, the crossover size,
//! the permutation-independence of the scheduled algorithm) is comparable.
//! EXPERIMENTS.md records the side-by-side.

use crate::tables::{size_label, TextTable};
use hmm_machine::{ElemWidth, Hmm, MachineConfig, Word};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_offperm::{OffpermError, Result};
use hmm_perm::{families::Family, Permutation};

/// Parameters of one Table II run.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Array sizes (powers of two; the paper uses 256K..4M).
    pub sizes: Vec<usize>,
    /// Element width (Table II(a): f32, Table II(b): f64).
    pub elem: ElemWidth,
    /// Use the empirical cached configuration (`true`, the GPU-like
    /// setting) or the pure theoretical HMM (`false`, for the ablation).
    pub cached: bool,
    /// Seed for the random family.
    pub seed: u64,
}

impl Table2Config {
    /// The paper's full-size configuration (256K..4M) — minutes of
    /// simulation.
    pub fn paper(elem: ElemWidth) -> Self {
        Table2Config {
            sizes: vec![1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22],
            elem,
            cached: true,
            seed: 2013,
        }
    }

    /// A scaled-down configuration that preserves the crossover shape and
    /// finishes in seconds.
    pub fn quick(elem: ElemWidth) -> Self {
        Table2Config {
            sizes: vec![1 << 14, 1 << 16, 1 << 18],
            elem,
            cached: true,
            seed: 2013,
        }
    }
}

/// One measured cell: simulated time, or `None` when the algorithm is
/// infeasible at this size (shared-memory capacity).
pub type Cell = Option<u64>;

/// All measurements of one Table II run.
#[derive(Debug, Clone)]
pub struct Table2Data {
    /// The configuration measured.
    pub config: Table2Config,
    /// `cells[alg][family][size_index]`.
    pub cells: Vec<Vec<Vec<Cell>>>,
}

/// Measure every cell. Each cell runs on a fresh machine (cold cache), and
/// every output is verified against the host reference.
pub fn run(config: &Table2Config) -> Result<Table2Data> {
    let mut cells =
        vec![vec![vec![None; config.sizes.len()]; Family::ALL.len()]; Algorithm::ALL.len()];
    for (si, &n) in config.sizes.iter().enumerate() {
        let input: Vec<Word> = (0..n as Word).collect();
        for (fi, fam) in Family::ALL.iter().enumerate() {
            let p = fam.build(n, config.seed)?;
            for (ai, alg) in Algorithm::ALL.iter().enumerate() {
                cells[ai][fi][si] = run_cell(config, *alg, &p, &input)?;
            }
        }
    }
    Ok(Table2Data {
        config: config.clone(),
        cells,
    })
}

/// Run one cell; `Ok(None)` means "infeasible" (the paper's missing
/// scheduled/4M-double cell), any other error propagates.
pub fn run_cell(
    config: &Table2Config,
    alg: Algorithm,
    p: &Permutation,
    input: &[Word],
) -> Result<Cell> {
    let mcfg = machine_config(config);
    let mut hmm = Hmm::new(mcfg)?;
    match run_on(&mut hmm, alg, p, input) {
        Ok((report, output)) => {
            let mut want = vec![0; input.len()];
            p.permute(input, &mut want)?;
            assert_eq!(output, want, "{} produced a wrong permutation", alg.name());
            Ok(Some(report.time))
        }
        Err(OffpermError::Machine(hmm_machine::MachineError::SharedCapacityExceeded {
            ..
        })) => Ok(None),
        Err(e) => Err(e),
    }
}

fn machine_config(config: &Table2Config) -> MachineConfig {
    if config.cached {
        MachineConfig::gtx680(config.elem)
    } else {
        MachineConfig {
            elem: config.elem,
            ..MachineConfig::pure(32, 512)
        }
    }
}

/// Render in the paper's layout: one block per algorithm, families as
/// rows, sizes as columns.
pub fn render(data: &Table2Data) -> String {
    let mut out = String::new();
    for (name, t) in tables(data) {
        out.push_str(&format!("[{name}]\n"));
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// One [`TextTable`] per algorithm, named like the paper's blocks (for CSV
/// export).
pub fn tables(data: &Table2Data) -> Vec<(String, TextTable)> {
    let mut out = Vec::new();
    for (ai, alg) in Algorithm::ALL.iter().enumerate() {
        let mut header = vec!["permutation".to_string()];
        header.extend(data.config.sizes.iter().map(|&n| size_label(n)));
        let mut t = TextTable::new(header);
        for (fi, fam) in Family::ALL.iter().enumerate() {
            let mut row = vec![fam.name().to_string()];
            for cell in &data.cells[ai][fi] {
                row.push(match cell {
                    Some(time) => time.to_string(),
                    None => "n/a".to_string(),
                });
            }
            t.row(row);
        }
        out.push((alg.name().to_string(), t));
    }
    out
}

/// Shape assertions the paper's Table II implies; returns a list of
/// violated claims (empty = reproduction matches).
pub fn check_shape(data: &Table2Data) -> Vec<String> {
    let mut violations = Vec::new();
    let sizes = &data.config.sizes;
    let idx = |alg: Algorithm| Algorithm::ALL.iter().position(|a| *a == alg).unwrap();
    let fidx = |fam: Family| Family::ALL.iter().position(|f| *f == fam).unwrap();
    let sched = idx(Algorithm::Scheduled);
    let dd = idx(Algorithm::DDesignated);

    // 1. Scheduled time is permutation-independent at every size.
    for (si, &n) in sizes.iter().enumerate() {
        let times: Vec<Cell> = Family::ALL
            .iter()
            .map(|f| data.cells[sched][fidx(*f)][si])
            .collect();
        let known: Vec<u64> = times.iter().flatten().copied().collect();
        if !known.is_empty() && known.iter().any(|&t| t != known[0]) {
            violations.push(format!(
                "scheduled time varies across permutations at n={}: {known:?}",
                size_label(n)
            ));
        }
    }
    // 2. Conventional beats scheduled on identical/shuffle at every size.
    for fam in [Family::Identical, Family::Shuffle] {
        for (si, &n) in sizes.iter().enumerate() {
            if let (Some(c), Some(s)) = (
                data.cells[dd][fidx(fam)][si],
                data.cells[sched][fidx(fam)][si],
            ) {
                if c >= s {
                    violations.push(format!(
                        "D-designated should win on {} at n={} ({c} vs {s})",
                        fam.name(),
                        size_label(n)
                    ));
                }
            }
        }
    }
    // 3. Scheduled beats conventional on high-distribution permutations at
    //    the largest size.
    let last = sizes.len() - 1;
    for fam in [Family::Random, Family::BitReversal, Family::Transpose] {
        if let (Some(c), Some(s)) = (
            data.cells[dd][fidx(fam)][last],
            data.cells[sched][fidx(fam)][last],
        ) {
            if s >= c {
                violations.push(format!(
                    "scheduled should win on {} at n={} ({s} vs {c})",
                    fam.name(),
                    size_label(sizes[last])
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table2_reproduces_paper_shape() {
        let data = run(&Table2Config::quick(ElemWidth::F32)).unwrap();
        let violations = check_shape(&data);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn render_has_all_blocks() {
        let cfg = Table2Config {
            sizes: vec![1 << 12],
            elem: ElemWidth::F32,
            cached: true,
            seed: 1,
        };
        let data = run(&cfg).unwrap();
        let s = render(&data);
        for alg in Algorithm::ALL {
            assert!(s.contains(alg.name()));
        }
        for fam in Family::ALL {
            assert!(s.contains(fam.name()));
        }
    }
}
