//! The Section I motivation experiment: conventional vs conflict-free
//! permutation of a small array inside one DMM (the authors' \[8\]/\[9\]:
//! 246 ns vs 165 ns for 1024 random floats on one SM).

use crate::tables::TextTable;
use hmm_machine::Word;
use hmm_offperm::smallperm::{dmm_conflict_free, dmm_conventional};
use hmm_offperm::Result;
use hmm_perm::families::{self, Family};

/// One measured row.
#[derive(Debug, Clone)]
pub struct SmallPermRow {
    /// Permutation family.
    pub family: &'static str,
    /// Conventional kernel DMM time units.
    pub conventional: u64,
    /// Conflict-free kernel DMM time units.
    pub conflict_free: u64,
}

/// Measure both kernels for all five families at size `n` (a multiple of
/// `width`).
pub fn run(n: usize, width: usize) -> Result<Vec<SmallPermRow>> {
    let input: Vec<Word> = (0..n as Word).collect();
    let mut rows = Vec::new();
    for fam in Family::ALL {
        let p = fam.build(n, 9)?;
        let conv = dmm_conventional(width, 1, &p, &input)?;
        let cf = dmm_conflict_free(width, 1, &p, &input)?;
        assert_eq!(conv.output, cf.output, "{}", fam.name());
        rows.push(SmallPermRow {
            family: fam.name(),
            conventional: conv.time,
            conflict_free: cf.time,
        });
    }
    Ok(rows)
}

/// Render the comparison table.
pub fn render(rows: &[SmallPermRow]) -> String {
    let mut t = TextTable::new(vec![
        "permutation",
        "conventional",
        "conflict-free",
        "speedup",
    ]);
    for r in rows {
        t.row(vec![
            r.family.to_string(),
            r.conventional.to_string(),
            r.conflict_free.to_string(),
            crate::tables::ratio(r.conventional, r.conflict_free),
        ]);
    }
    t.render()
}

/// The paper's qualitative claim: the conflict-free kernel wins for random
/// permutations. Returns the measured speedup.
pub fn random_speedup(n: usize, width: usize, samples: usize) -> Result<f64> {
    let input: Vec<Word> = (0..n as Word).collect();
    let mut conv_total = 0u64;
    let mut cf_total = 0u64;
    for seed in 0..samples as u64 {
        let p = families::random(n, 100 + seed);
        conv_total += dmm_conventional(width, 1, &p, &input)?.time;
        cf_total += dmm_conflict_free(width, 1, &p, &input)?.time;
    }
    Ok(conv_total as f64 / cf_total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_wins_in_paper_band() {
        // Paper: 1.5x for 1024 floats. The model's ratio depends on the
        // expected maximum bank load; accept anything clearly above 1.
        let speedup = random_speedup(1024, 32, 10).unwrap();
        assert!(speedup > 1.1, "speedup {speedup}");
        assert!(speedup < 3.0, "speedup {speedup}");
    }

    #[test]
    fn table_has_five_rows_and_renders() {
        let rows = run(1024, 32).unwrap();
        assert_eq!(rows.len(), 5);
        let s = render(&rows);
        assert!(s.contains("bit-reversal"));
        // Identity is faster conventionally (3 rounds vs 4).
        let ident = &rows[0];
        assert!(ident.conventional < ident.conflict_free);
        // Bit-reversal conflicts make the conventional kernel slower.
        let bitrev = rows.iter().find(|r| r.family == "bit-reversal").unwrap();
        assert!(bitrev.conventional > bitrev.conflict_free);
    }
}
