//! Table III reproduction: many random permutations — min/average/max
//! running time of the three algorithms plus the normalized distribution
//! `ρ_w(P)`.
//!
//! The paper samples 1000 random permutations of 4M doubles; that is hours
//! of simulation, so the harness scales the sample (`count`) and size (`n`)
//! while keeping the claims checkable: `ρ_w ≈ 1`, near-zero variance for
//! every algorithm, and a scheduled-vs-conventional speedup in the paper's
//! 2–2.5× band at full size.

use crate::tables::TextTable;
use hmm_machine::{ElemWidth, Word};
use hmm_offperm::driver::Algorithm;
use hmm_offperm::Result;
use hmm_perm::{families, normalized_distribution};

/// Parameters of a Table III run.
#[derive(Debug, Clone)]
pub struct Table3Config {
    /// Number of random permutations to sample (paper: 1000).
    pub count: usize,
    /// Permutation size (paper: 4M).
    pub n: usize,
    /// Element width (paper: f64).
    pub elem: ElemWidth,
    /// Base seed; permutation `i` uses `seed + i`.
    pub seed: u64,
}

impl Table3Config {
    /// A configuration that finishes in seconds.
    pub fn quick() -> Self {
        Table3Config {
            count: 20,
            n: 1 << 14,
            elem: ElemWidth::F64,
            seed: 42,
        }
    }
}

/// Min/average/max of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Smallest observation.
    pub min: f64,
    /// Mean observation.
    pub avg: f64,
    /// Largest observation.
    pub max: f64,
}

impl Stats {
    /// Compute over a non-empty sample.
    pub fn of(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty());
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        Stats {
            min,
            avg: sum / samples.len() as f64,
            max,
        }
    }

    /// Spread relative to the mean: `(max - min) / avg`.
    pub fn relative_spread(&self) -> f64 {
        if self.avg == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.avg
        }
    }
}

/// Results of a Table III run.
#[derive(Debug, Clone)]
pub struct Table3Data {
    /// The configuration measured.
    pub config: Table3Config,
    /// Per-algorithm time statistics (ordered as [`Algorithm::ALL`]).
    pub times: Vec<Stats>,
    /// Statistics of the normalized distribution `ρ_w`.
    pub rho: Stats,
}

/// Sample `config.count` random permutations and measure everything.
pub fn run(config: &Table3Config) -> Result<Table3Data> {
    let table2 = super::table2::Table2Config {
        sizes: vec![config.n],
        elem: config.elem,
        cached: true,
        seed: 0,
    };
    let input: Vec<Word> = (0..config.n as Word).collect();
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(config.count); Algorithm::ALL.len()];
    let mut rhos = Vec::with_capacity(config.count);
    for i in 0..config.count {
        let p = families::random(config.n, config.seed + i as u64);
        rhos.push(normalized_distribution(&p, 32));
        for (ai, alg) in Algorithm::ALL.iter().enumerate() {
            let cell = super::table2::run_cell(&table2, *alg, &p, &input)?;
            times[ai].push(cell.expect("random permutation should be feasible") as f64);
        }
    }
    Ok(Table3Data {
        config: config.clone(),
        times: times.iter().map(|t| Stats::of(t)).collect(),
        rho: Stats::of(&rhos),
    })
}

/// Render in the paper's Table III layout.
pub fn render(data: &Table3Data) -> String {
    table(data).render()
}

/// The statistics as a [`TextTable`] (for CSV export).
pub fn table(data: &Table3Data) -> TextTable {
    let mut t = TextTable::new(vec![
        "statistic",
        "D-designated",
        "S-designated",
        "scheduled",
        "rho_w(P)",
    ]);
    let row = |name: &str, pick: fn(&Stats) -> f64| {
        let mut cells = vec![name.to_string()];
        cells.extend((0..Algorithm::ALL.len()).map(|ai| format!("{:.0}", pick(&data.times[ai]))));
        cells.push(format!("{:.5}", pick(&data.rho)));
        cells
    };
    t.row(row("minimum", |s| s.min));
    t.row(row("average", |s| s.avg));
    t.row(row("maximum", |s| s.max));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let s = Stats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.avg, 2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.relative_spread(), 1.0);
        assert_eq!(Stats::of(&[0.0]).relative_spread(), 0.0);
    }

    #[test]
    fn quick_table3_matches_paper_claims() {
        let data = run(&Table3Config::quick()).unwrap();
        // ρ_w close to 1 (paper: 0.99987-0.99990 at 4M; lower at small n
        // but still > 0.9 for n = 16K).
        assert!(data.rho.avg > 0.9, "rho avg = {}", data.rho.avg);
        // Scheduled variance is zero: permutation-independent.
        let sched = &data.times[2];
        assert_eq!(sched.min, sched.max, "scheduled time must be constant");
        // Conventional variance is small (paper: ~0.3% at 4M).
        for conv in &data.times[..2] {
            assert!(conv.relative_spread() < 0.05, "{conv:?}");
        }
    }

    #[test]
    fn render_mentions_stats() {
        let data = run(&Table3Config {
            count: 3,
            n: 1 << 12,
            elem: ElemWidth::F32,
            seed: 7,
        })
        .unwrap();
        let s = render(&data);
        for needle in ["minimum", "average", "maximum", "scheduled"] {
            assert!(s.contains(needle));
        }
    }
}
