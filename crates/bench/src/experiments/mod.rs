//! Experiment runners: one module per table/figure of the paper, plus the
//! ablations. Each exposes a `run`/`measure` function returning structured
//! data (asserted by the integration tests) and a `render` function used
//! by the `repro` binary.

pub mod ablation;
pub mod applications;
pub mod figures;
pub mod generations;
pub mod smallperm;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
