//! Table I reproduction: memory-access rounds and running time of every
//! algorithm, measured on the simulator and checked against the paper's
//! closed forms.

use crate::tables::TextTable;
use hmm_machine::{Hmm, MachineConfig, RoundSummary, Word};
use hmm_offperm::colwise::{column_wise_permute, ColSchedule};
use hmm_offperm::conventional::{
    d_designated, s_designated, stage_destination_map, stage_source_map,
};
use hmm_offperm::rowwise::{row_wise_permute, RowSchedule};
use hmm_offperm::scheduled::ScheduledPermutation;
use hmm_offperm::transpose::transpose;
use hmm_offperm::{analysis, Result};
use hmm_perm::{families, scheduled_shape, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Algorithm name as in the paper.
    pub name: &'static str,
    /// Measured round summary.
    pub summary: RoundSummary,
    /// Measured total time units.
    pub measured_time: u64,
    /// The paper's closed-form prediction.
    pub predicted_time: u64,
}

/// Run all six Table I algorithms at size `n` on the pure HMM
/// `(width, latency)` and collect measured vs predicted costs.
///
/// The conventional rows use the bit-reversal permutation (distribution
/// exactly `w`), matching the upper end of Lemma 4's range.
pub fn measure(n: usize, width: usize, latency: usize) -> Result<Vec<Table1Row>> {
    let mut rows = Vec::new();
    let cfg = MachineConfig::pure(width, latency);
    let input: Vec<Word> = (0..n as Word).collect();
    let p = families::bit_reversal(n)?;
    let shape = scheduled_shape(n, width)?;
    let w = width as f64;

    // D-designated.
    {
        let mut hmm = Hmm::new(cfg.clone())?;
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        hmm.host_write(a, &input)?;
        let pb = stage_destination_map(&mut hmm, &p)?;
        let r = d_designated(&mut hmm, a, b, pb)?;
        rows.push(Table1Row {
            name: "D-designated permutation",
            summary: r.summary,
            measured_time: r.time,
            predicted_time: analysis::conventional_time(n, width, latency, w),
        });
    }
    // S-designated.
    {
        let mut hmm = Hmm::new(cfg.clone())?;
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        hmm.host_write(a, &input)?;
        let qb = stage_source_map(&mut hmm, &p)?;
        let r = s_designated(&mut hmm, a, b, qb)?;
        rows.push(Table1Row {
            name: "S-designated permutation",
            summary: r.summary,
            measured_time: r.time,
            predicted_time: analysis::conventional_time(n, width, latency, w),
        });
    }
    // Transpose.
    {
        let mut hmm = Hmm::new(cfg.clone())?;
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        hmm.host_write(a, &input)?;
        let r = transpose(&mut hmm, shape, a, b)?;
        rows.push(Table1Row {
            name: "Transpose",
            summary: r.summary,
            measured_time: r.time,
            predicted_time: analysis::transpose_time(n, width, latency),
        });
    }
    // Row-wise permutation (random per-row permutations).
    let mut rng = StdRng::seed_from_u64(1);
    {
        let mut hmm = Hmm::new(cfg.clone())?;
        let perms: Vec<Permutation> = (0..shape.rows)
            .map(|_| Permutation::random(shape.cols, &mut rng))
            .collect();
        let sched = RowSchedule::build(shape, &perms, width)?;
        let staged = sched.stage(&mut hmm)?;
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        hmm.host_write(a, &input)?;
        let r = row_wise_permute(&mut hmm, &staged, a, b)?;
        rows.push(Table1Row {
            name: "Row-wise permutation",
            summary: r.summary,
            measured_time: r.time,
            predicted_time: analysis::row_wise_time(n, width, latency),
        });
    }
    // Column-wise permutation (random per-column permutations).
    {
        let mut hmm = Hmm::new(cfg.clone())?;
        let perms: Vec<Permutation> = (0..shape.cols)
            .map(|_| Permutation::random(shape.rows, &mut rng))
            .collect();
        let sched = ColSchedule::build(shape, &perms, width)?;
        let staged = sched.stage(&mut hmm)?;
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let t1 = hmm.alloc_global(n);
        let t2 = hmm.alloc_global(n);
        hmm.host_write(a, &input)?;
        let r = column_wise_permute(&mut hmm, &staged, a, b, t1, t2)?;
        rows.push(Table1Row {
            name: "Column-wise permutation",
            summary: r.summary,
            measured_time: r.time,
            predicted_time: analysis::column_wise_time(n, width, latency),
        });
    }
    // Scheduled permutation.
    {
        let mut hmm = Hmm::new(cfg)?;
        let sched = ScheduledPermutation::build(&p, width)?;
        let staged = sched.stage(&mut hmm)?;
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let t1 = hmm.alloc_global(n);
        let t2 = hmm.alloc_global(n);
        hmm.host_write(a, &input)?;
        let r = staged.run(&mut hmm, a, b, t1, t2)?;
        rows.push(Table1Row {
            name: "Our scheduled permutation",
            summary: r.summary,
            measured_time: r.time,
            predicted_time: analysis::scheduled_time(n, width, latency),
        });
    }
    Ok(rows)
}

/// Render the measured rows in the layout of the paper's Table I.
pub fn render(rows: &[Table1Row]) -> String {
    table(rows).render()
}

/// The measured rows as a [`TextTable`] (for CSV export).
pub fn table(rows: &[Table1Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "algorithm",
        "casual rd",
        "casual wr",
        "coalesced rd",
        "coalesced wr",
        "cf rd",
        "cf wr",
        "measured time",
        "predicted time",
    ]);
    for r in rows {
        let s = &r.summary;
        t.row(vec![
            r.name.to_string(),
            s.casual_read.rounds.to_string(),
            s.casual_write.rounds.to_string(),
            s.coalesced_read.rounds.to_string(),
            s.coalesced_write.rounds.to_string(),
            s.conflict_free_read.rounds.to_string(),
            s.conflict_free_write.rounds.to_string(),
            r.measured_time.to_string(),
            r.predicted_time.to_string(),
        ]);
    }
    t
}

/// The paper's Table I round counts, for assertions:
/// `(casual_rd, casual_wr, coalesced_rd, coalesced_wr, cf_rd, cf_wr)`.
pub fn paper_round_counts(name: &str) -> Option<(u64, u64, u64, u64, u64, u64)> {
    match name {
        "D-designated permutation" => Some((0, 1, 2, 0, 0, 0)),
        "S-designated permutation" => Some((1, 0, 1, 1, 0, 0)),
        "Transpose" => Some((0, 0, 1, 1, 1, 1)),
        "Row-wise permutation" => Some((0, 0, 3, 1, 2, 2)),
        "Column-wise permutation" => Some((0, 0, 5, 3, 4, 4)),
        "Our scheduled permutation" => Some((0, 0, 11, 5, 8, 8)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matches_paper_and_formulas() {
        let rows = measure(1 << 10, 8, 16).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            let (crd, cwr, cord, cowr, cfrd, cfwr) = paper_round_counts(r.name).unwrap();
            let s = &r.summary;
            assert_eq!(s.casual_read.rounds, crd, "{} casual rd", r.name);
            assert_eq!(s.casual_write.rounds, cwr, "{} casual wr", r.name);
            assert_eq!(s.coalesced_read.rounds, cord, "{} coalesced rd", r.name);
            assert_eq!(s.coalesced_write.rounds, cowr, "{} coalesced wr", r.name);
            assert_eq!(s.conflict_free_read.rounds, cfrd, "{} cf rd", r.name);
            assert_eq!(s.conflict_free_write.rounds, cfwr, "{} cf wr", r.name);
            assert_eq!(s.shared_casual.rounds, 0, "{} bank conflicts", r.name);
            assert_eq!(
                r.measured_time, r.predicted_time,
                "{} measured vs closed form",
                r.name
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = measure(1 << 10, 8, 16).unwrap();
        let s = render(&rows);
        for r in &rows {
            assert!(s.contains(r.name));
        }
    }
}
