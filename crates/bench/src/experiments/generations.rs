//! How the paper's crossover ages across GPU generations — an extension
//! experiment predicted by the model: the conventional algorithm's
//! small-`n` refuge is the L2 cache, so bigger caches push the
//! scheduled-permutation break-even to larger arrays.

use crate::tables::{size_label, TextTable};
use hmm_machine::{presets, ElemWidth, Hmm, MachineConfig, Word};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_offperm::Result;
use hmm_perm::families;

/// The smallest power-of-two `n` in `sizes` at which the scheduled
/// algorithm beats the conventional one for bit-reversal, or `None` if it
/// never does in the range.
pub fn crossover_size(cfg: &MachineConfig, sizes: &[usize]) -> Result<Option<usize>> {
    for &n in sizes {
        let p = families::bit_reversal(n)?;
        let input: Vec<Word> = (0..n as Word).collect();
        let time = |alg: Algorithm| -> Result<u64> {
            let mut hmm = Hmm::new(cfg.clone())?;
            Ok(run_on(&mut hmm, alg, &p, &input)?.0.time)
        };
        if time(Algorithm::Scheduled)? < time(Algorithm::DDesignated)? {
            return Ok(Some(n));
        }
    }
    Ok(None)
}

/// Measure and render the per-generation crossover table.
pub fn render(sizes: &[usize]) -> Result<String> {
    let mut t = TextTable::new(vec!["generation", "L2", "crossover n", "working set"]);
    for generation in presets::all(ElemWidth::F32) {
        let l2 = generation
            .config
            .cache
            .expect("preset has L2")
            .capacity_bytes;
        let cross = crossover_size(&generation.config, sizes)?;
        t.row(vec![
            generation.name.to_string(),
            format!("{} KB", l2 / 1024),
            cross.map(size_label).unwrap_or_else(|| "> range".into()),
            cross
                .map(|n| format!("{} KB", n * 4 / 1024))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::{CacheConfig, SegmentRule};

    /// Synthetic mini-generations: identical machines except L2 size.
    fn mini(l2_bytes: usize) -> MachineConfig {
        MachineConfig {
            width: 32,
            latency: 64,
            segment_rule: SegmentRule::ByteSegment { line_bytes: 128 },
            cache: Some(CacheConfig {
                capacity_bytes: l2_bytes,
                line_bytes: 128,
                ways: 4,
            }),
            ..Default::default()
        }
    }

    #[test]
    fn bigger_cache_pushes_crossover_out() {
        let sizes: Vec<usize> = (10..=18).map(|k| 1usize << k).collect();
        let small = crossover_size(&mini(16 * 1024), &sizes).unwrap();
        let large = crossover_size(&mini(256 * 1024), &sizes).unwrap();
        let (small, large) = (small.expect("in range"), large.expect("in range"));
        assert!(
            large > small,
            "crossover should grow with L2: {small} !< {large}"
        );
    }

    #[test]
    fn crossover_none_when_out_of_range() {
        // With a huge cache and only tiny sizes, the conventional
        // algorithm wins everywhere.
        let sizes = [1usize << 10, 1 << 11];
        let cfg = mini(4 * 1024 * 1024);
        assert_eq!(crossover_size(&cfg, &sizes).unwrap(), None);
    }
}
