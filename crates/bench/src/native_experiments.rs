//! Wall-clock experiments on the CPU backend: the Table II comparison with
//! real time instead of model time (see DESIGN.md §2 — this is the
//! substitution for the paper's GPU measurements).

use crate::tables::{size_label, TextTable};
use hmm_native::{copy_baseline, gather_permute, scatter_permute, NativeScheduled};
use hmm_offperm::Result;
use hmm_perm::families::Family;
use std::time::{Duration, Instant};

/// Median wall-clock of `reps` runs of `f`.
fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// One row of the native comparison.
#[derive(Debug, Clone)]
pub struct NativeRow {
    /// Permutation family.
    pub family: &'static str,
    /// Array size.
    pub n: usize,
    /// Parallel scatter (`dst[p[i]] = src[i]`).
    pub scatter: Duration,
    /// Parallel gather (`dst[i] = src[q[i]]`).
    pub gather: Duration,
    /// Five-pass scheduled permutation.
    pub scheduled: Duration,
    /// Plain parallel copy (bandwidth ceiling).
    pub copy: Duration,
}

/// Measure all four kernels for every family at the given sizes.
pub fn run(sizes: &[usize], reps: usize) -> Result<Vec<NativeRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut t1 = vec![0u32; n];
        let mut t2 = vec![0u32; n];
        for fam in Family::ALL {
            let p = fam.build(n, 5)?;
            let q = p.inverse();
            let sched = NativeScheduled::build(&p, 32)?;
            let scatter = median_time(reps, || scatter_permute(&src, &p, &mut dst));
            let gather = median_time(reps, || gather_permute(&src, &q, &mut dst));
            let scheduled = median_time(reps, || {
                sched.run_with_scratch(&src, &mut dst, &mut t1, &mut t2)
            });
            let copy = median_time(reps, || copy_baseline(&src, &mut dst));
            rows.push(NativeRow {
                family: fam.name(),
                n,
                scatter,
                gather,
                scheduled,
                copy,
            });
        }
    }
    Ok(rows)
}

/// Render the native comparison table.
pub fn render(rows: &[NativeRow]) -> String {
    let mut t = TextTable::new(vec![
        "n",
        "permutation",
        "scatter",
        "gather",
        "scheduled",
        "copy",
    ]);
    for r in rows {
        t.row(vec![
            size_label(r.n),
            r.family.to_string(),
            format!("{:.2?}", r.scatter),
            format!("{:.2?}", r.gather),
            format!("{:.2?}", r.scheduled),
            format!("{:.2?}", r.copy),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_renders_small() {
        let rows = run(&[1 << 12], 1).unwrap();
        assert_eq!(rows.len(), 5);
        let s = render(&rows);
        assert!(s.contains("scatter"));
        assert!(s.contains("4K"));
    }
}
