//! Wall-clock experiments on the CPU backend: the Table II comparison with
//! real time instead of model time (see DESIGN.md §2 — this is the
//! substitution for the paper's GPU measurements).
//!
//! Four experiment groups:
//! * **kernels** — scatter / gather / fused 3-sweep scheduled / unfused
//!   5-pass scheduled / copy, per family and size;
//! * **plan cache** — steady-state `Engine::permute` (plan cached, pooled
//!   scratch) versus rebuilding the plan on every call;
//! * **plan store** — cold König build-and-save versus a cold engine
//!   loading the same plan from a warm on-disk store (the cross-process
//!   path: decode + verify instead of coloring);
//! * **contended** — one `SharedEngine` hammered by T threads over a mix
//!   of permutation families (the concurrent plan-service workload:
//!   warm cache, per-thread outputs, aggregate throughput);
//! * **queued** — T submitters pushing the same job mix through the
//!   bounded submission queue (one `submit_batch` per submitter, every
//!   job in flight at once, handles waited at the end) against the
//!   blocking `permute_batch` convoy (sequential chunks, the submitter
//!   parked until each chunk fully lands).
//!
//! [`to_json`] serialises a full report as `BENCH_native.json` (flat rows
//! of `{family, n, backend, seconds, elements_per_sec}` — the format
//! documented in EXPERIMENTS.md), written by `repro native --json`.

use crate::tables::{size_label, TextTable};
use hmm_native::par::worker_threads;
use hmm_native::{
    copy_baseline, gather_permute, scatter_permute, Engine, ExecPlan, KernelConfig,
    NativeScheduled, SharedEngine,
};
use hmm_offperm::Result;
use hmm_perm::families::{self, Family};
use hmm_perm::Permutation;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schedule width used throughout (matches the GPU warp).
const W: usize = 32;

/// Median wall-clock of `reps` runs of `f`.
fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// One row of the native kernel comparison.
#[derive(Debug, Clone)]
pub struct NativeRow {
    /// Permutation family.
    pub family: &'static str,
    /// Array size.
    pub n: usize,
    /// Parallel scatter (`dst[p[i]] = src[i]`).
    pub scatter: Duration,
    /// Parallel gather (`dst[i] = src[q[i]]`).
    pub gather: Duration,
    /// Fused three-sweep scheduled permutation (scratch reused).
    pub scheduled: Duration,
    /// Unfused five-pass scheduled permutation (the seed execution).
    pub unfused: Duration,
    /// Plain parallel copy (bandwidth ceiling).
    pub copy: Duration,
}

/// One row of the per-sweep kernel comparison: the three fused sweeps of
/// the scheduled path timed individually (`NativeScheduled::
/// run_sweeps_timed`), once with the vectorized double-buffered pipeline
/// and once with the scalar reference config, over the same plan.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Array size (family: random — the scheduled backend's workload).
    pub n: usize,
    /// `[gather-transpose 1, gather-transpose 2, row pass]` with the
    /// default (SIMD, double-buffered, prefetching) config.
    pub simd_on: [Duration; 3],
    /// The same sweeps with `KernelConfig::scalar()`.
    pub simd_off: [Duration; 3],
}

impl SweepRow {
    /// Total fused-path time with the vectorized pipeline.
    pub fn total_on(&self) -> Duration {
        self.simd_on.iter().sum()
    }

    /// Total fused-path time with the scalar reference config.
    pub fn total_off(&self) -> Duration {
        self.simd_off.iter().sum()
    }
}

/// Elementwise median of repeated `[Duration; 3]` sweep measurements.
fn median_sweeps(reps: usize, mut f: impl FnMut() -> [Duration; 3]) -> [Duration; 3] {
    let samples: Vec<[Duration; 3]> = (0..reps.max(1)).map(|_| f()).collect();
    std::array::from_fn(|k| {
        let mut col: Vec<Duration> = samples.iter().map(|s| s[k]).collect();
        col.sort();
        col[col.len() / 2]
    })
}

/// Time each of the three sweeps with the SIMD pipeline on and off, per
/// size, over one shared plan (random family) — the before/after data
/// behind EXPERIMENTS.md's per-sweep table.
pub fn sweeps(sizes: &[usize], reps: usize) -> Result<Vec<SweepRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let p = hmm_perm::families::random(n, 5);
        let ir = hmm_plan::PlanIr::build_par(&p, W, worker_threads())?;
        let on = NativeScheduled::from_plan_with(&ir, KernelConfig::default())?;
        let off = NativeScheduled::from_plan_with(&ir, KernelConfig::scalar())?;
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut scratch = vec![0u32; n];
        let simd_on = median_sweeps(reps, || on.run_sweeps_timed(&src, &mut dst, &mut scratch));
        let simd_off = median_sweeps(reps, || off.run_sweeps_timed(&src, &mut dst, &mut scratch));
        rows.push(SweepRow {
            n,
            simd_on,
            simd_off,
        });
    }
    Ok(rows)
}

/// One row of the plan-cache comparison.
#[derive(Debug, Clone)]
pub struct PlanCacheRow {
    /// Array size (family: random, the cache's target workload).
    pub n: usize,
    /// One plan build (König coloring + gather maps).
    pub build: Duration,
    /// Steady-state `Engine::permute` (cache hit, pooled scratch).
    pub cached: Duration,
    /// Rebuild-per-call: plan build + one run, no cache.
    pub rebuild: Duration,
}

/// One row of the plan-compiler scaling measurement: the sequential König
/// build against the parallel compiler at a fixed thread budget, over the
/// same random permutation.
#[derive(Debug, Clone)]
pub struct PlanBuildRow {
    /// Array size (family: random).
    pub n: usize,
    /// Thread budget of the parallel build.
    pub threads: usize,
    /// Sequential `PlanIr::build`.
    pub seq: Duration,
    /// Parallel `PlanIr::build_par` at `threads`.
    pub par: Duration,
}

/// Measure the plan compiler: sequential build against the parallel
/// builder at `threads`, per size. Before timing, the two builds are
/// checked **byte-identical through the codec** at every size — the
/// determinism contract the plan cache and store rely on — so a scaling
/// number can never be quoted for a compiler that diverged.
pub fn plan_build_scaling(
    sizes: &[usize],
    reps: usize,
    threads: usize,
) -> Result<Vec<PlanBuildRow>> {
    use hmm_plan::PlanIr;
    let threads = threads.max(1);
    let mut rows = Vec::new();
    for &n in sizes {
        let p = hmm_perm::families::random(n, 5);
        let seq_ir = PlanIr::build(&p, W)?;
        let par_ir = PlanIr::build_par(&p, W, threads)?;
        assert_eq!(
            hmm_plan::encode(&par_ir),
            hmm_plan::encode(&seq_ir),
            "parallel plan diverged from sequential at n={n}, {threads} threads"
        );
        drop((seq_ir, par_ir));
        let seq = median_time(reps.min(3), || {
            let ir = PlanIr::build(&p, W).unwrap();
            std::hint::black_box(&ir);
        });
        let par = median_time(reps.min(3), || {
            let ir = PlanIr::build_par(&p, W, threads).unwrap();
            std::hint::black_box(&ir);
        });
        rows.push(PlanBuildRow {
            n,
            threads,
            seq,
            par,
        });
    }
    Ok(rows)
}

/// One row of the structured-planner comparison: the closed-form BMMC
/// emitter against the general König coloring, over the same affine
/// permutation.
#[derive(Debug, Clone)]
pub struct StructuredRow {
    /// Permutation family (affine: the recognizer must catch it).
    pub family: &'static str,
    /// Array size.
    pub n: usize,
    /// `PlanIr::build` — detection plus the closed-form emitter.
    pub structured: Duration,
    /// `PlanIr::build_for_shape` with the Hybrid strategy — the general
    /// multigraph coloring, forced.
    pub koenig: Duration,
}

/// Measure the structured fast path: closed-form plan emission against
/// the forced König coloring, per affine family and size. Both plans are
/// checked to realise the same permutation before any time is reported.
pub fn structured_plan_build(sizes: &[usize], reps: usize) -> Result<Vec<StructuredRow>> {
    use hmm_plan::PlanIr;
    let mut rows = Vec::new();
    for &n in sizes {
        let cases: [(&'static str, Permutation); 3] = [
            ("shuffle", families::shuffle(n)?),
            ("transpose", families::transpose_square(n)?),
            ("bit-reversal", families::bit_reversal(n)?),
        ];
        for (family, p) in cases {
            let shape = hmm_perm::scheduled_shape(n, W)?;
            let fast = PlanIr::build(&p, W)?;
            let slow = PlanIr::build_for_shape(&p, shape, W, hmm_graph::Strategy::Hybrid)?;
            assert!(fast.matches(&p) && slow.matches(&p), "{family} n={n}");
            drop((fast, slow));
            let structured = median_time(reps.min(3), || {
                let ir = PlanIr::build(&p, W).unwrap();
                std::hint::black_box(&ir);
            });
            let koenig = median_time(reps.min(3), || {
                let ir =
                    PlanIr::build_for_shape(&p, shape, W, hmm_graph::Strategy::Hybrid).unwrap();
                std::hint::black_box(&ir);
            });
            rows.push(StructuredRow {
                family,
                n,
                structured,
                koenig,
            });
        }
    }
    Ok(rows)
}

/// One row of the fusion comparison: a bit-reversal → transpose pipeline
/// executed as one fused plan (three sweeps, one memory round trip)
/// versus the unfused two-plan chain (six sweeps, an intermediate
/// buffer).
#[derive(Debug, Clone)]
pub struct FusedRow {
    /// Array size.
    pub n: usize,
    /// Scheduled sweeps the fused plan executes (always 3).
    pub fused_sweeps: usize,
    /// Scheduled sweeps the unfused chain executes (3 per link).
    pub chained_sweeps: usize,
    /// One `permute_fused` of the 2-chain, plan warm.
    pub fused: Duration,
    /// The two `permute` calls plus the intermediate buffer, plans warm.
    pub chained: Duration,
}

/// Measure plan fusion on the bit-reversal → transpose 2-chain (the
/// six-step FFT's reorder). Sweep counts are taken from the engine's
/// `scheduled_runs` counter — 1 plan × 3 sweeps fused vs 2 × 3 chained —
/// and outputs are checked equal before any time is reported.
pub fn fused_chain(sizes: &[usize], reps: usize) -> Result<Vec<FusedRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let p1 = families::bit_reversal(n)?;
        let p2 = families::transpose_square(n)?;
        let chain = [&p1, &p2];
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        engine.set_gamma_threshold(0.0); // force the scheduled backend
        let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
        let mut fused_out = vec![0u32; n];
        let mut mid = vec![0u32; n];
        let mut chained_out = vec![0u32; n];
        // Warm both plans and verify the fusion before timing.
        let runs0 = engine.stats().scheduled_runs;
        engine.permute_fused(&chain, &src, &mut fused_out)?;
        let fused_runs = engine.stats().scheduled_runs - runs0;
        engine.permute(&p1, &src, &mut mid)?;
        engine.permute(&p2, &mid, &mut chained_out)?;
        let chained_runs = engine.stats().scheduled_runs - runs0 - fused_runs;
        assert_eq!(fused_out, chained_out, "fusion diverged at n={n}");
        let fused = median_time(reps.min(5), || {
            engine.permute_fused(&chain, &src, &mut fused_out).unwrap();
        });
        let chained = median_time(reps.min(5), || {
            engine.permute(&p1, &src, &mut mid).unwrap();
            engine.permute(&p2, &mid, &mut chained_out).unwrap();
        });
        rows.push(FusedRow {
            n,
            fused_sweeps: fused_runs as usize * 3,
            chained_sweeps: chained_runs as usize * 3,
            fused,
            chained,
        });
    }
    Ok(rows)
}

/// One row of the computed-index kernel comparison: the same structured
/// plan executed with the affine fold evaluated in registers (map-free
/// gathers) against the materialized gather-map loads, over the fused
/// three-sweep pipeline.
#[derive(Debug, Clone)]
pub struct ComputedRow {
    /// Permutation family (affine — only structured plans carry the
    /// descriptors the computed kernels need).
    pub family: &'static str,
    /// Array size.
    pub n: usize,
    /// Fused three-sweep run with computed-index kernels (the default).
    pub computed: Duration,
    /// The same plan with `computed_index` off: gather indices loaded
    /// from the materialized maps.
    pub map_load: Duration,
}

impl ComputedRow {
    /// Map-load time over computed time (> 1 means computed wins).
    pub fn speedup(&self) -> f64 {
        self.map_load.as_secs_f64() / self.computed.as_secs_f64().max(1e-12)
    }
}

/// Measure the computed-index kernels against the map-load kernels over
/// the same structured plans: per affine family and size, one
/// `NativeScheduled` prepared with the default config (descriptors
/// carried, fold in registers, maps never read) and one with
/// `computed_index` off. Outputs are asserted byte-identical to the
/// `Permutation::permute` reference — and to each other — before any
/// time is reported, and both executions are checked to actually take
/// the kernel form their row claims.
pub fn computed_index(sizes: &[usize], reps: usize) -> Result<Vec<ComputedRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let cases: [(&'static str, Permutation); 3] = [
            ("shuffle", families::shuffle(n)?),
            ("transpose", families::transpose_square(n)?),
            ("bit-reversal", families::bit_reversal(n)?),
        ];
        for (family, p) in cases {
            let ir = hmm_plan::PlanIr::build(&p, W)?;
            assert!(
                ir.affine().is_some(),
                "{family} n={n}: structured plan must carry affine descriptors"
            );
            let on = NativeScheduled::from_plan_with(&ir, KernelConfig::default())?;
            let off = NativeScheduled::from_plan_with(
                &ir,
                KernelConfig {
                    computed_index: false,
                    ..KernelConfig::default()
                },
            )?;
            assert!(on.computed_index() && !off.computed_index());
            let src: Vec<u32> = (0..n as u32).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
            let mut want = vec![0u32; n];
            p.permute(&src, &mut want).expect("reference permute");
            let mut dst = vec![0u32; n];
            let mut scratch = vec![0u32; n];
            on.run_with_scratch(&src, &mut dst, &mut scratch);
            assert_eq!(dst, want, "{family} n={n}: computed diverged");
            off.run_with_scratch(&src, &mut dst, &mut scratch);
            assert_eq!(dst, want, "{family} n={n}: map-load diverged");
            let computed = median_time(reps, || on.run_with_scratch(&src, &mut dst, &mut scratch));
            let map_load = median_time(reps, || off.run_with_scratch(&src, &mut dst, &mut scratch));
            rows.push(ComputedRow {
                family,
                n,
                computed,
                map_load,
            });
        }
    }
    Ok(rows)
}

/// One row of the plan-store comparison: the same scheduled plan produced
/// by a cold König build (and persisted) versus materialised by a *cold
/// engine* from a warm on-disk store — the cross-process reuse the store
/// exists for.
#[derive(Debug, Clone)]
pub struct PlanStoreRow {
    /// Array size (family: random).
    pub n: usize,
    /// Cold store: König coloring + gather maps + encode + atomic write.
    pub build_and_save: Duration,
    /// Warm store, fresh engine: read + checksum + decode + full-image
    /// verification + gather-map derivation. No coloring.
    pub cold_load: Duration,
}

/// Measure the plan store: build-and-save against a cold-engine load at
/// each size. Every load is asserted to be a verified store hit (zero
/// König builds) before its time is reported.
pub fn plan_store(sizes: &[usize], reps: usize) -> Result<Vec<PlanStoreRow>> {
    let dir = std::env::temp_dir().join(format!("hmm-bench-plan-store-{}", std::process::id()));
    let mut rows = Vec::new();
    for &n in sizes {
        let p = hmm_perm::families::random(n, 5);
        let build_and_save = median_time(reps.min(3), || {
            let _ = std::fs::remove_dir_all(&dir);
            let engine: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
            let plan = engine.plan(&p).unwrap();
            std::hint::black_box(&plan);
            assert_eq!(engine.stats().builds, 1, "cold store must build");
        });
        let cold_load = median_time(reps.min(3), || {
            let engine: SharedEngine<u32> = SharedEngine::with_store(W, &dir).unwrap();
            let plan = engine.plan(&p).unwrap();
            std::hint::black_box(&plan);
            let stats = engine.stats();
            assert_eq!(stats.builds, 0, "warm store must not re-color");
            assert_eq!(stats.store_hits, 1, "warm store must hit");
        });
        rows.push(PlanStoreRow {
            n,
            build_and_save,
            cold_load,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(rows)
}

/// One row of the contended `SharedEngine` throughput measurement.
#[derive(Debug, Clone)]
pub struct ContendedRow {
    /// Concurrent caller threads sharing the engine.
    pub threads: usize,
    /// Array size.
    pub n: usize,
    /// Total permutes completed across all threads.
    pub total_runs: usize,
    /// Wall-clock for the whole contended phase (cache pre-warmed).
    pub seconds: Duration,
}

impl ContendedRow {
    /// Aggregate elements permuted per second across all threads.
    pub fn elements_per_sec(&self) -> f64 {
        let secs = self.seconds.as_secs_f64();
        if secs > 0.0 {
            (self.total_runs * self.n) as f64 / secs
        } else {
            0.0
        }
    }
}

/// One row of the queued-vs-blocking submission comparison: the same
/// `threads × jobs` workload pushed through `SharedEngine::submit_batch`
/// (every job in flight at once, waited via the returned handles) and
/// through blocking `SharedEngine::permute_batch` calls (sequential
/// convoys per submitter thread).
#[derive(Debug, Clone)]
pub struct QueuedRow {
    /// Concurrent submitter threads sharing the engine.
    pub threads: usize,
    /// Array size per job.
    pub n: usize,
    /// Total jobs across all submitters.
    pub total_jobs: usize,
    /// Wall-clock with queued submission (`submit` + wait-all).
    pub queued: Duration,
    /// Wall-clock with blocking `permute_batch` per submitter.
    pub blocking: Duration,
}

impl QueuedRow {
    /// Aggregate elements permuted per second for one mode's wall-clock.
    fn eps(&self, d: Duration) -> f64 {
        let secs = d.as_secs_f64();
        if secs > 0.0 {
            (self.total_jobs * self.n) as f64 / secs
        } else {
            0.0
        }
    }

    /// Aggregate throughput of the queued-submission mode.
    pub fn queued_elements_per_sec(&self) -> f64 {
        self.eps(self.queued)
    }

    /// Aggregate throughput of the blocking-batch mode.
    pub fn blocking_elements_per_sec(&self) -> f64 {
        self.eps(self.blocking)
    }
}

/// Jobs per chunk in the queued-vs-blocking measurement: each submitter
/// thread issues its jobs as a sequence of chunks this big, the shape
/// under which the two modes genuinely differ (see [`queued`]): every
/// chunk boundary is a full convoy drain for the blocking mode and a
/// seamless hand-off for the queued mode.
const QUEUED_CHUNK: usize = 2;

/// Measure queued submission against the blocking batch convoy: one
/// engine, plans pre-warmed, `threads` submitters each pushing
/// `jobs_per_thread` jobs of a mixed-family working set. The blocking
/// mode is restricted by its API to sequential convoys: one
/// `permute_batch` of [`QUEUED_CHUNK`] jobs at a time, the submitter
/// parked until the whole chunk lands before it may issue the next, a
/// fresh permutation hand-off per call. The queued mode exploits the
/// asynchronous API: each submitter fires its entire workload in a
/// single `submit_batch` (one permutation hand-off, every job in
/// flight at once, interleaving with all other submitters on the
/// shared queue) and waits the handles at the end.
pub fn queued(
    sizes: &[usize],
    threads: usize,
    jobs_per_thread: usize,
    reps: usize,
) -> Result<Vec<QueuedRow>> {
    let threads = threads.max(1);
    let chunks = jobs_per_thread.div_ceil(QUEUED_CHUNK).max(1);
    let chunk = jobs_per_thread.clamp(1, QUEUED_CHUNK);
    let mut rows = Vec::new();
    for &n in sizes {
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        let perms = contended_mix(n)?;
        for p in &perms {
            engine.plan(p)?; // warm: measure serving, not building
        }
        let src: Vec<u32> = (0..n as u32).collect();
        let shared: Arc<[u32]> = src.clone().into();
        let run_blocking = || {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let engine = &engine;
                    let p = &perms[t % perms.len()];
                    let src = &src;
                    s.spawn(move || {
                        for _ in 0..chunks {
                            let mut dsts: Vec<Vec<u32>> = vec![vec![0u32; n]; chunk];
                            engine
                                .permute_batch(
                                    p,
                                    std::iter::repeat_n(src.as_slice(), chunk)
                                        .zip(dsts.iter_mut().map(Vec::as_mut_slice)),
                                )
                                .expect("blocking batch");
                        }
                    });
                }
            });
        };
        let run_queued = || {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let engine = &engine;
                    let p = &perms[t % perms.len()];
                    let shared = &shared;
                    s.spawn(move || {
                        let b = engine.submit_batch(
                            p,
                            (0..chunks * chunk).map(|_| (Arc::clone(shared), vec![0u32; n])),
                        );
                        for outcome in b.wait() {
                            outcome.expect("queued job");
                        }
                    });
                }
            });
        };
        // Interleave the reps with alternating order so slow clock drift
        // (thermal or hypervisor throttling over a long repro run) cannot
        // systematically punish whichever mode is measured second.
        let time_once = |f: &dyn Fn()| {
            let t = Instant::now();
            f();
            t.elapsed()
        };
        let r = reps.clamp(1, 3);
        let mut bt = Vec::with_capacity(r);
        let mut qt = Vec::with_capacity(r);
        for i in 0..r {
            if i % 2 == 0 {
                bt.push(time_once(&run_blocking));
                qt.push(time_once(&run_queued));
            } else {
                qt.push(time_once(&run_queued));
                bt.push(time_once(&run_blocking));
            }
        }
        bt.sort();
        qt.sort();
        rows.push(QueuedRow {
            threads,
            n,
            total_jobs: threads * chunks * chunk,
            queued: qt[r / 2],
            blocking: bt[r / 2],
        });
    }
    Ok(rows)
}

/// Everything `repro native` measures, plus the environment it ran in.
#[derive(Debug, Clone)]
pub struct NativeReport {
    /// Worker-pool size the measurements used.
    pub threads: usize,
    /// Repetitions behind each median.
    pub reps: usize,
    /// Kernel comparison rows.
    pub rows: Vec<NativeRow>,
    /// Per-sweep SIMD on/off rows.
    pub sweep_rows: Vec<SweepRow>,
    /// Plan-cache comparison rows.
    pub plan_rows: Vec<PlanCacheRow>,
    /// Plan-store comparison rows (cold build+save vs cold-engine load).
    pub store_rows: Vec<PlanStoreRow>,
    /// Plan-compiler scaling rows (sequential vs `plan_threads`).
    pub plan_build_rows: Vec<PlanBuildRow>,
    /// Contended `SharedEngine` rows (1 thread and T threads, for the
    /// scaling comparison).
    pub contended_rows: Vec<ContendedRow>,
    /// Queued-vs-blocking submission rows.
    pub queued_rows: Vec<QueuedRow>,
}

/// Measure all kernels for every family at the given sizes.
pub fn run(sizes: &[usize], reps: usize) -> Result<Vec<NativeRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut scratch = vec![0u32; n];
        for fam in Family::ALL {
            let p = fam.build(n, 5)?;
            let q = p.inverse();
            let sched = NativeScheduled::build(&p, W)?;
            let scatter = median_time(reps, || scatter_permute(&src, &p, &mut dst));
            let gather = median_time(reps, || gather_permute(&src, &q, &mut dst));
            let scheduled = median_time(reps, || {
                sched.run_with_scratch(&src, &mut dst, &mut scratch)
            });
            let unfused = median_time(reps, || sched.run_unfused(&src, &mut dst));
            let copy = median_time(reps, || copy_baseline(&src, &mut dst));
            rows.push(NativeRow {
                family: fam.name(),
                n,
                scatter,
                gather,
                scheduled,
                unfused,
                copy,
            });
        }
    }
    Ok(rows)
}

/// Measure the plan cache at the given sizes (random permutations — the
/// high-γ workload the scheduled backend exists for).
pub fn plan_cache(sizes: &[usize], reps: usize) -> Result<Vec<PlanCacheRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let p = hmm_perm::families::random(n, 5);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let build = median_time(reps.min(3), || {
            let plan = NativeScheduled::build(&p, W).unwrap();
            std::hint::black_box(&plan);
        });
        let mut engine: Engine<u32> = Engine::new(W);
        engine.permute(&p, &src, &mut dst)?; // warm the cache
        let cached = median_time(reps, || engine.permute(&p, &src, &mut dst).unwrap());
        let rebuild = median_time(reps.min(3), || {
            let plan = NativeScheduled::build(&p, W).unwrap();
            plan.run(&src, &mut dst);
        });
        rows.push(PlanCacheRow {
            n,
            build,
            cached,
            rebuild,
        });
    }
    Ok(rows)
}

/// The permutation mix the contended benchmark cycles through: two
/// low-γ (scatter-backed) and two high-γ (scheduled-backed) families,
/// so the measurement exercises both backends and several cache keys.
fn contended_mix(n: usize) -> Result<Vec<Permutation>> {
    Ok(vec![
        families::identical(n),
        families::shuffle(n)?,
        families::random(n, 5),
        families::bit_reversal(n)?,
    ])
}

/// Hammer one [`SharedEngine`] from `threads` concurrent callers over a
/// mixed-family working set: plans are pre-warmed (steady-state cache),
/// then every thread runs `runs_per_thread` permutes, cycling through the
/// mix from a per-thread offset. Returns one row per size.
pub fn contended(
    sizes: &[usize],
    threads: usize,
    runs_per_thread: usize,
) -> Result<Vec<ContendedRow>> {
    let threads = threads.max(1);
    let mut rows = Vec::new();
    for &n in sizes {
        let engine: SharedEngine<u32> = SharedEngine::new(W);
        let perms = contended_mix(n)?;
        for p in &perms {
            engine.plan(p)?; // warm: measure serving, not building
        }
        let src: Vec<u32> = (0..n as u32).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let engine = &engine;
                let perms = &perms;
                let src = &src;
                s.spawn(move || {
                    let mut dst = vec![0u32; n];
                    for r in 0..runs_per_thread {
                        let p = &perms[(t + r) % perms.len()];
                        engine.permute(p, src, &mut dst).expect("contended permute");
                    }
                });
            }
        });
        rows.push(ContendedRow {
            threads,
            n,
            total_runs: threads * runs_per_thread,
            seconds: start.elapsed(),
        });
    }
    Ok(rows)
}

/// Largest size the contended phase runs at — the working set is capped so
/// the contended rows stay cheap next to the kernel sweeps.
const CONTENDED_MAX_N: usize = 1 << 20;

/// Run all experiment groups and package them with the environment.
/// Contended rows are measured at 1 thread and at `contended_threads`
/// (sizes capped at 1M elements), so the JSON records a scaling pair.
/// Queued rows are measured at `queued_threads` submitters over the same
/// capped sizes (`0` skips the queued group). Plan-compiler rows pair the
/// sequential builder with `plan_threads` threads at every size (`0`
/// skips the group).
pub fn report(
    sizes: &[usize],
    reps: usize,
    contended_threads: usize,
    queued_threads: usize,
    plan_threads: usize,
) -> Result<NativeReport> {
    let csizes: Vec<usize> = {
        let kept: Vec<usize> = sizes
            .iter()
            .copied()
            .filter(|&n| n <= CONTENDED_MAX_N)
            .collect();
        if kept.is_empty() {
            sizes.iter().copied().min().into_iter().collect()
        } else {
            kept
        }
    };
    let runs_per_thread = 16;
    let mut contended_rows = contended(&csizes, 1, runs_per_thread)?;
    if contended_threads > 1 {
        contended_rows.extend(contended(&csizes, contended_threads, runs_per_thread)?);
    }
    let queued_rows = if queued_threads > 0 {
        queued(&csizes, queued_threads, runs_per_thread, reps)?
    } else {
        Vec::new()
    };
    let plan_build_rows = if plan_threads > 0 {
        plan_build_scaling(sizes, reps, plan_threads)?
    } else {
        Vec::new()
    };
    Ok(NativeReport {
        threads: worker_threads(),
        reps,
        rows: run(sizes, reps)?,
        sweep_rows: sweeps(sizes, reps)?,
        plan_rows: plan_cache(sizes, reps)?,
        store_rows: plan_store(sizes, reps)?,
        plan_build_rows,
        contended_rows,
        queued_rows,
    })
}

/// Render the native kernel comparison table.
pub fn render(rows: &[NativeRow]) -> String {
    let mut t = TextTable::new(vec![
        "n",
        "permutation",
        "scatter",
        "gather",
        "sched(fused)",
        "sched(5-pass)",
        "copy",
    ]);
    for r in rows {
        t.row(vec![
            size_label(r.n),
            r.family.to_string(),
            format!("{:.2?}", r.scatter),
            format!("{:.2?}", r.gather),
            format!("{:.2?}", r.scheduled),
            format!("{:.2?}", r.unfused),
            format!("{:.2?}", r.copy),
        ]);
    }
    t.render()
}

/// Render the per-sweep SIMD on/off comparison table.
pub fn render_sweeps(rows: &[SweepRow]) -> String {
    let mut t = TextTable::new(vec!["n", "sweep", "simd+pipeline", "scalar", "speedup"]);
    for r in rows {
        for (k, sweep) in ["gather-transpose-1", "gather-transpose-2", "row-pass"]
            .iter()
            .enumerate()
        {
            let speedup = r.simd_off[k].as_secs_f64() / r.simd_on[k].as_secs_f64().max(1e-12);
            t.row(vec![
                size_label(r.n),
                sweep.to_string(),
                format!("{:.2?}", r.simd_on[k]),
                format!("{:.2?}", r.simd_off[k]),
                format!("{speedup:.2}x"),
            ]);
        }
        let speedup = r.total_off().as_secs_f64() / r.total_on().as_secs_f64().max(1e-12);
        t.row(vec![
            size_label(r.n),
            "total".to_string(),
            format!("{:.2?}", r.total_on()),
            format!("{:.2?}", r.total_off()),
            format!("{speedup:.2}x"),
        ]);
    }
    t.render()
}

/// One row of the backend comparison: one registered backend executing
/// the same scheduled plan (random family) at one size.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Registry name of the backend (`native`, `interp`).
    pub name: &'static str,
    /// Array size.
    pub n: usize,
    /// Median wall-clock of one prepared-plan execution.
    pub seconds: Duration,
}

impl BackendRow {
    /// The `backend` label the JSON rows use (`backend_native`,
    /// `backend_interp`) — prefixed so the backend comparison is
    /// filterable among the kernel rows of `BENCH_native.json`.
    pub fn label(&self) -> String {
        format!("backend_{}", self.name)
    }

    /// Elements moved per second.
    pub fn elements_per_sec(&self) -> f64 {
        self.n as f64 / self.seconds.as_secs_f64().max(1e-12)
    }
}

/// Execute one scheduled plan on **every registered backend** through the
/// `Backend` registry and time each prepared executable. Each backend's
/// output is asserted byte-identical to the `Permutation::permute`
/// reference before timing, so a row can never report the speed of a
/// wrong answer. The interpreter is a serial correctness oracle, not a
/// contender — EXPERIMENTS.md documents the expected slowdown.
pub fn backends(sizes: &[usize], reps: usize) -> Result<Vec<BackendRow>> {
    let mut rows = Vec::new();
    for &n in sizes {
        let p = families::random(n, 5);
        let ir = hmm_plan::PlanIr::build_par(&p, W, worker_threads())?;
        let src: Vec<u32> = (0..n as u32).collect();
        let mut want = vec![0u32; n];
        p.permute(&src, &mut want).expect("reference permute");
        for name in hmm_native::backend_names() {
            let backend = hmm_native::by_name::<u32>(name).expect("registered backend");
            let exec = backend.prepare(ExecPlan::Scheduled(&ir), KernelConfig::default())?;
            let mut dst = vec![0u32; n];
            let mut scratch = vec![0u32; exec.scratch_len()];
            exec.run(&src, &mut dst, &mut scratch);
            assert_eq!(dst, want, "{name}: backend diverged from the reference");
            let seconds = median_time(reps, || exec.run(&src, &mut dst, &mut scratch));
            rows.push(BackendRow { name, n, seconds });
        }
    }
    Ok(rows)
}

/// Render the backend comparison table (slowdown is relative to the
/// native backend at the same size).
pub fn render_backends(rows: &[BackendRow]) -> String {
    let mut t = TextTable::new(vec!["n", "backend", "time", "Melem/s", "vs native"]);
    for r in rows {
        let native = rows
            .iter()
            .find(|o| o.n == r.n && o.name == "native")
            .map(|o| o.seconds.as_secs_f64())
            .unwrap_or(0.0);
        let rel = r.seconds.as_secs_f64() / native.max(1e-12);
        t.row(vec![
            size_label(r.n),
            r.name.to_string(),
            format!("{:.2?}", r.seconds),
            format!("{:.1}", r.elements_per_sec() / 1e6),
            format!("{rel:.2}x"),
        ]);
    }
    t.render()
}

/// Render the plan-cache comparison table.
pub fn render_plan(rows: &[PlanCacheRow]) -> String {
    let mut t = TextTable::new(vec![
        "n",
        "plan build",
        "cached run",
        "rebuild+run",
        "speedup",
    ]);
    for r in rows {
        let speedup = r.rebuild.as_secs_f64() / r.cached.as_secs_f64().max(1e-12);
        t.row(vec![
            size_label(r.n),
            format!("{:.2?}", r.build),
            format!("{:.2?}", r.cached),
            format!("{:.2?}", r.rebuild),
            format!("{speedup:.1}x"),
        ]);
    }
    t.render()
}

/// Render the plan-store comparison table.
pub fn render_store(rows: &[PlanStoreRow]) -> String {
    let mut t = TextTable::new(vec!["n", "build+save", "cold load", "speedup"]);
    for r in rows {
        let speedup = r.build_and_save.as_secs_f64() / r.cold_load.as_secs_f64().max(1e-12);
        t.row(vec![
            size_label(r.n),
            format!("{:.2?}", r.build_and_save),
            format!("{:.2?}", r.cold_load),
            format!("{speedup:.1}x"),
        ]);
    }
    t.render()
}

/// Render the plan-compiler scaling table.
pub fn render_plan_build(rows: &[PlanBuildRow]) -> String {
    let mut t = TextTable::new(vec!["n", "threads", "seq build", "par build", "speedup"]);
    for r in rows {
        let speedup = r.seq.as_secs_f64() / r.par.as_secs_f64().max(1e-12);
        t.row(vec![
            size_label(r.n),
            r.threads.to_string(),
            format!("{:.2?}", r.seq),
            format!("{:.2?}", r.par),
            format!("{speedup:.2}x"),
        ]);
    }
    t.render()
}

/// Render the computed-vs-map-load kernel table.
pub fn render_computed(rows: &[ComputedRow]) -> String {
    let mut t = TextTable::new(vec!["family", "n", "computed", "map-load", "speedup"]);
    for r in rows {
        t.row(vec![
            r.family.to_string(),
            size_label(r.n),
            format!("{:.2?}", r.computed),
            format!("{:.2?}", r.map_load),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.render()
}

/// Render the structured-vs-König plan-build table.
pub fn render_structured(rows: &[StructuredRow]) -> String {
    let mut t = TextTable::new(vec!["family", "n", "structured", "König", "speedup"]);
    for r in rows {
        let speedup = r.koenig.as_secs_f64() / r.structured.as_secs_f64().max(1e-12);
        t.row(vec![
            r.family.to_string(),
            size_label(r.n),
            format!("{:.2?}", r.structured),
            format!("{:.2?}", r.koenig),
            format!("{speedup:.0}x"),
        ]);
    }
    t.render()
}

/// Render the fused-vs-chained pipeline table.
pub fn render_fused(rows: &[FusedRow]) -> String {
    let mut t = TextTable::new(vec![
        "n",
        "fused sweeps",
        "chained sweeps",
        "fused wall",
        "chained wall",
        "speedup",
    ]);
    for r in rows {
        let speedup = r.chained.as_secs_f64() / r.fused.as_secs_f64().max(1e-12);
        t.row(vec![
            size_label(r.n),
            r.fused_sweeps.to_string(),
            r.chained_sweeps.to_string(),
            format!("{:.2?}", r.fused),
            format!("{:.2?}", r.chained),
            format!("{speedup:.2}x"),
        ]);
    }
    t.render()
}

/// Render the contended `SharedEngine` throughput table.
pub fn render_contended(rows: &[ContendedRow]) -> String {
    let mut t = TextTable::new(vec![
        "n",
        "threads",
        "permutes",
        "wall",
        "aggregate Melem/s",
    ]);
    for r in rows {
        t.row(vec![
            size_label(r.n),
            r.threads.to_string(),
            r.total_runs.to_string(),
            format!("{:.2?}", r.seconds),
            format!("{:.1}", r.elements_per_sec() / 1e6),
        ]);
    }
    t.render()
}

/// Render the queued-vs-blocking submission table.
pub fn render_queued(rows: &[QueuedRow]) -> String {
    let mut t = TextTable::new(vec![
        "n",
        "submitters",
        "jobs",
        "queued wall",
        "batch wall",
        "queued Melem/s",
        "batch Melem/s",
    ]);
    for r in rows {
        t.row(vec![
            size_label(r.n),
            r.threads.to_string(),
            r.total_jobs.to_string(),
            format!("{:.2?}", r.queued),
            format!("{:.2?}", r.blocking),
            format!("{:.1}", r.queued_elements_per_sec() / 1e6),
            format!("{:.1}", r.blocking_elements_per_sec() / 1e6),
        ]);
    }
    t.render()
}

fn json_row_raw(out: &mut String, family: &str, n: usize, backend: &str, secs: f64, eps: f64) {
    out.push_str(&format!(
        "    {{\"family\": \"{family}\", \"n\": {n}, \"backend\": \"{backend}\", \
         \"seconds\": {secs:.9}, \"elements_per_sec\": {eps:.1}}}"
    ));
}

fn json_row(out: &mut String, family: &str, n: usize, backend: &str, d: Duration) {
    let secs = d.as_secs_f64();
    let eps = if secs > 0.0 { n as f64 / secs } else { 0.0 };
    json_row_raw(out, family, n, backend, secs, eps);
}

/// Serialise a report as the `BENCH_native.json` document (hand-rolled —
/// serde is not on the offline dependency list).
pub fn to_json(report: &NativeReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"native\",\n");
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    out.push_str(&format!("  \"reps\": {},\n", report.reps));
    out.push_str("  \"rows\": [\n");
    let mut first = true;
    for r in &report.rows {
        for (backend, d) in [
            ("scatter", r.scatter),
            ("gather", r.gather),
            ("scheduled", r.scheduled),
            ("scheduled_unfused", r.unfused),
            ("copy", r.copy),
        ] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            json_row(&mut out, r.family, r.n, backend, d);
        }
    }
    for r in &report.sweep_rows {
        for (backend, d) in [
            ("sweep_gather", r.simd_on[0]),
            ("sweep_transpose", r.simd_on[1]),
            ("sweep_row", r.simd_on[2]),
            ("sweep_gather_scalar", r.simd_off[0]),
            ("sweep_transpose_scalar", r.simd_off[1]),
            ("sweep_row_scalar", r.simd_off[2]),
            ("engine_simd_on", r.total_on()),
            ("engine_simd_off", r.total_off()),
        ] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            json_row(&mut out, "random", r.n, backend, d);
        }
    }
    for r in &report.plan_rows {
        for (backend, d) in [
            ("plan_build", r.build),
            ("engine_cached", r.cached),
            ("rebuild_per_call", r.rebuild),
        ] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            json_row(&mut out, "random", r.n, backend, d);
        }
    }
    for r in &report.store_rows {
        for (backend, d) in [
            ("plan_store_build", r.build_and_save),
            ("plan_store_cold", r.cold_load),
        ] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            json_row(&mut out, "random", r.n, backend, d);
        }
    }
    for r in &report.plan_build_rows {
        // Thread count in the backend name, like the contended rows; the
        // sequential arm is always reported as `plan_build_1t` so a pair
        // exists even when `threads` == 1 collapses them.
        let mut arms = vec![("plan_build_1t".to_string(), r.seq)];
        if r.threads > 1 {
            arms.push((format!("plan_build_{}t", r.threads), r.par));
        }
        for (backend, d) in arms {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            json_row(&mut out, "random", r.n, &backend, d);
        }
    }
    for r in &report.contended_rows {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        // Aggregate throughput across all contending threads; the thread
        // count is encoded in the backend name (schema stays flat).
        json_row_raw(
            &mut out,
            "mixed",
            r.n,
            &format!("engine_contended_{}t", r.threads),
            r.seconds.as_secs_f64(),
            r.elements_per_sec(),
        );
    }
    for r in &report.queued_rows {
        for (backend, d, eps) in [
            (
                format!("engine_queued_{}t", r.threads),
                r.queued,
                r.queued_elements_per_sec(),
            ),
            (
                format!("engine_batch_blocking_{}t", r.threads),
                r.blocking,
                r.blocking_elements_per_sec(),
            ),
        ] {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            json_row_raw(&mut out, "mixed", r.n, &backend, d.as_secs_f64(), eps);
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Merge backend-comparison rows into an existing `BENCH_native.json`
/// document (or start a fresh one when `existing` is `None`): previous
/// `backend_*` rows are dropped, every other row is kept verbatim, and
/// the new rows are appended. The parse is the line discipline [`to_json`]
/// emits — one row object per line under `"rows": [` — so a full
/// `repro native --json` run and a quick `repro backends --json` run can
/// update the same file in either order without clobbering each other.
pub fn merge_backends_json(existing: Option<&str>, rows: &[BackendRow]) -> String {
    let new_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut s = String::new();
            json_row(&mut s, "random", r.n, &r.label(), r.seconds);
            s
        })
        .collect();
    merge_rows_json(existing, "\"backend\": \"backend_", new_rows)
}

/// Merge computed-index rows (`computed_on` / `computed_off` per affine
/// family and size) into an existing `BENCH_native.json`, replacing any
/// stale `computed_*` rows — the same line discipline as
/// [`merge_backends_json`], written by `repro computed --json`.
pub fn merge_computed_json(existing: Option<&str>, rows: &[ComputedRow]) -> String {
    let mut new_rows = Vec::new();
    for r in rows {
        for (backend, d) in [("computed_on", r.computed), ("computed_off", r.map_load)] {
            let mut s = String::new();
            json_row(&mut s, r.family, r.n, backend, d);
            new_rows.push(s);
        }
    }
    merge_rows_json(existing, "\"backend\": \"computed_", new_rows)
}

/// Shared row-merge discipline: keep every row of `existing` whose line
/// does not contain `drop_marker`, then append `new_rows`. Starts a
/// fresh document when `existing` is `None` or not in [`to_json`]'s
/// shape.
fn merge_rows_json(existing: Option<&str>, drop_marker: &str, new_rows: Vec<String>) -> String {
    let rebuild = |head: &str, kept: Vec<String>| {
        let mut out = String::from(head);
        out.push('\n');
        let all: Vec<String> = kept.into_iter().chain(new_rows.iter().cloned()).collect();
        out.push_str(&all.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    };
    match existing.and_then(|doc| doc.find("\"rows\": [").map(|at| (doc, at))) {
        Some((doc, at)) => {
            let start = at + "\"rows\": [".len();
            let kept: Vec<String> = doc[start..]
                .lines()
                .filter(|l| l.trim_start().starts_with('{'))
                .filter(|l| !l.contains(drop_marker))
                .map(|l| l.trim_end().trim_end_matches(',').to_string())
                .collect();
            rebuild(&doc[..start], kept)
        }
        None => rebuild(
            &format!(
                "{{\n  \"bench\": \"native\",\n  \"threads\": {},\n  \"reps\": 0,\n  \"rows\": [",
                worker_threads()
            ),
            Vec::new(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_renders_small() {
        let rows = run(&[1 << 12], 1).unwrap();
        assert_eq!(rows.len(), 5);
        let s = render(&rows);
        assert!(s.contains("scatter"));
        assert!(s.contains("fused"));
        assert!(s.contains("4K"));
    }

    #[test]
    fn plan_cache_rows_and_json_shape() {
        let report = report(&[1 << 12], 1, 2, 2, 2).unwrap();
        assert_eq!(report.plan_rows.len(), 1);
        // Plan-compiler pair: sequential + 2-thread arms at the single size.
        assert_eq!(report.plan_build_rows.len(), 1);
        assert_eq!(report.plan_build_rows[0].threads, 2);
        let build_table = render_plan_build(&report.plan_build_rows);
        assert!(build_table.contains("par build"));
        let plan_table = render_plan(&report.plan_rows);
        assert!(plan_table.contains("rebuild"));
        // Contended pair: 1 thread and 2 threads at the single size.
        assert_eq!(report.contended_rows.len(), 2);
        assert_eq!(report.contended_rows[0].threads, 1);
        assert_eq!(report.contended_rows[1].threads, 2);
        let contended_table = render_contended(&report.contended_rows);
        assert!(contended_table.contains("threads"));
        // Queued pair at the single size: queued + blocking modes.
        assert_eq!(report.queued_rows.len(), 1);
        assert_eq!(report.queued_rows[0].threads, 2);
        let queued_table = render_queued(&report.queued_rows);
        assert!(queued_table.contains("submitters"));
        // Per-sweep rows: one SweepRow at the single size.
        assert_eq!(report.sweep_rows.len(), 1);
        let sweep_table = render_sweeps(&report.sweep_rows);
        assert!(sweep_table.contains("row-pass"));
        assert!(sweep_table.contains("total"));
        let json = to_json(&report);
        // 5 families x 5 backends + 8 sweep rows + 3 plan-cache rows
        // + 2 plan-store rows + 2 plan-build rows + 2 contended rows
        // + 2 queued rows.
        assert_eq!(json.matches("\"backend\"").count(), 44);
        for key in [
            "\"bench\": \"native\"",
            "\"threads\"",
            "\"elements_per_sec\"",
            "\"scheduled_unfused\"",
            "\"sweep_gather\"",
            "\"sweep_transpose_scalar\"",
            "\"sweep_row\"",
            "\"engine_simd_on\"",
            "\"engine_simd_off\"",
            "\"engine_cached\"",
            "\"rebuild_per_call\"",
            "\"plan_store_build\"",
            "\"plan_store_cold\"",
            "\"plan_build_1t\"",
            "\"plan_build_2t\"",
            "\"engine_contended_1t\"",
            "\"engine_contended_2t\"",
            "\"engine_queued_2t\"",
            "\"engine_batch_blocking_2t\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // Must be parseable by eye and by simple tooling: balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn queued_rows_complete_and_report_throughput() {
        let rows = queued(&[1 << 12], 2, 4, 1).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].threads, 2);
        assert_eq!(rows[0].total_jobs, 8);
        assert!(rows[0].queued_elements_per_sec() > 0.0);
        assert!(rows[0].blocking_elements_per_sec() > 0.0);
    }

    #[test]
    fn contended_runs_complete_and_report_throughput() {
        let rows = contended(&[1 << 12], 3, 4).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].threads, 3);
        assert_eq!(rows[0].total_runs, 12);
        assert!(rows[0].elements_per_sec() > 0.0);
    }

    #[test]
    fn backends_measures_every_registered_backend() {
        let rows = backends(&[1 << 12], 1).unwrap();
        assert_eq!(rows.len(), hmm_native::backend_names().len());
        for r in &rows {
            assert!(r.elements_per_sec() > 0.0, "{}", r.name);
        }
        let table = render_backends(&rows);
        assert!(table.contains("native"));
        assert!(table.contains("interp"));
        assert!(table.contains("vs native"));
    }

    #[test]
    fn computed_rows_verify_and_merge_without_clobbering() {
        let rows = computed_index(&[1 << 12], 1).unwrap();
        assert_eq!(rows.len(), 3, "three affine families per size");
        for r in &rows {
            assert!(r.computed > Duration::ZERO && r.map_load > Duration::ZERO);
        }
        let table = render_computed(&rows);
        assert!(table.contains("bit-reversal"));
        assert!(table.contains("map-load"));

        let report = report(&[1 << 12], 1, 0, 0, 0).unwrap();
        let base = to_json(&report);
        let once = merge_computed_json(Some(&base), &rows);
        let twice = merge_computed_json(Some(&once), &rows);
        assert_eq!(
            once.matches("\"backend\": \"computed_").count(),
            rows.len() * 2,
            "one computed_on + one computed_off row per (family, size)"
        );
        assert_eq!(
            once.matches("\"backend\": \"computed_").count(),
            twice.matches("\"backend\": \"computed_").count(),
            "re-merging must not duplicate computed rows"
        );
        assert!(once.contains("\"scheduled_unfused\""));
        assert_eq!(twice.matches('{').count(), twice.matches('}').count());

        // A fresh document (no prior native run) is still well formed.
        let fresh = merge_computed_json(None, &rows);
        assert!(fresh.contains("\"backend\": \"computed_on\""));
        assert_eq!(fresh.matches('{').count(), fresh.matches('}').count());
    }

    #[test]
    fn merge_backends_json_replaces_only_backend_rows() {
        let rows = backends(&[1 << 12], 1).unwrap();
        // Fresh document: standalone but the same shape as to_json's.
        let fresh = merge_backends_json(None, &rows);
        assert!(fresh.contains("\"backend\": \"backend_native\""));
        assert!(fresh.contains("\"backend\": \"backend_interp\""));
        assert_eq!(fresh.matches('{').count(), fresh.matches('}').count());

        // Merging into a full report keeps every non-backend row and
        // replaces stale backend rows instead of duplicating them.
        let report = report(&[1 << 12], 1, 0, 0, 0).unwrap();
        let base = to_json(&report);
        let once = merge_backends_json(Some(&base), &rows);
        let twice = merge_backends_json(Some(&once), &rows);
        assert_eq!(
            once.matches("\"backend\": \"backend_").count(),
            twice.matches("\"backend\": \"backend_").count(),
            "re-merging must not duplicate backend rows"
        );
        assert_eq!(
            base.matches("\"backend\"").count() + rows.len(),
            once.matches("\"backend\"").count(),
            "non-backend rows must survive the merge"
        );
        assert!(once.contains("\"scheduled_unfused\""));
        assert_eq!(twice.matches('{').count(), twice.matches('}').count());
    }
}
