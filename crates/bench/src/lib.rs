//! # hmm-bench — reproduction harness for the ICPP 2013 evaluation
//!
//! Regenerates every table and figure of *Kasagi, Nakano, Ito: "An Optimal
//! Offline Permutation Algorithm on the Hierarchical Memory Machine"*:
//!
//! * [`experiments::table1`] — round counts + closed-form times (Table I);
//! * [`experiments::table2`] — the three algorithms across the five
//!   permutation families and sizes, f32/f64 (Table II);
//! * [`experiments::table3`] — 1000-random-permutation statistics
//!   (Table III);
//! * [`experiments::figures`] — Figures 3–6 as text and data;
//! * [`experiments::smallperm`] — the single-DMM motivation experiment;
//! * [`experiments::ablation`] — cache / dispatch / coloring ablations;
//! * [`native_experiments`] — wall-clock CPU-backend comparison.
//!
//! Run `cargo run --release -p hmm-bench --bin repro -- all` for the full
//! text report, or see the criterion benches under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod native_experiments;
pub mod serve_experiments;
pub mod tables;
