//! Plain-text table rendering for the reproduction harness.

use std::fmt::Write as _;

/// A simple aligned text table: first column left-aligned, the rest
/// right-aligned — the layout of the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", cell, w = width[0]);
                } else {
                    let _ = write!(out, "  {:>w$}", cell, w = width[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl TextTable {
    /// Render as RFC-4180-ish CSV (quoting cells containing commas or
    /// quotes) for downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a size in the paper's convention: `256K`, `1M`, ...
pub fn size_label(n: usize) -> String {
    if n >= (1 << 20) && n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n >= (1 << 10) && n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

/// Format a ratio to two decimals, e.g. for speedup columns.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "inf".to_string()
    } else {
        format!("{:.2}", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["perm", "time"]);
        t.row(vec!["identical", "3"]);
        t.row(vec!["bit-reversal", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("perm"));
        assert!(lines[3].contains("123456"));
        // All rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        TextTable::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn csv_escapes_and_includes_header() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["plain", "1"]);
        t.row(vec!["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"with\"\"quote\"");
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(256 * 1024), "256K");
        assert_eq!(size_label(4 * 1024 * 1024), "4M");
        assert_eq!(size_label(1000), "1000");
        assert_eq!(size_label(1 << 10), "1K");
    }

    #[test]
    fn ratios() {
        assert_eq!(ratio(300, 100), "3.00");
        assert_eq!(ratio(1, 0), "inf");
    }
}
