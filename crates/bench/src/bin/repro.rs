//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # everything, scaled-down defaults
//! repro table1              # Table I   (rounds + closed forms)
//! repro table2 [--full] [--f64] [--no-cache]
//! repro table3 [--count K] [--n SIZE]
//! repro fig3 | fig4 | fig5 | fig6
//! repro smallperm           # the single-DMM [9] experiment
//! repro ablation            # cache / write-policy / dispatch / coloring ablations
//! repro sweep [--n N]       # latency and width sweeps vs the closed forms
//! repro apps [--n N]        # which application permutations need scheduling
//! repro generations         # crossover size across GPU-generation presets
//! repro heatmap [--n N]     # access-pattern heatmaps (trace support)
//! repro native [--full] [--json] [--contended T] [--queued T] [--plan-threads T]
//!                           # wall-clock CPU backend comparison
//! repro backends [--full] [--json]
//!                           # backend registry: native vs sweep-IR interpreter
//! repro computed [--full] [--json]
//!                           # computed-index kernels vs gather-map loads
//! repro serve [--clients N] [--full] [--json]
//!                           # TCP front door: N real client processes vs one server
//! repro plan build [--n N] [--family F] [--seed S] [--width W]
//! repro plan save  --dir DIR [--n N] [--family F] [--seed S] [--width W]
//! repro plan load  --dir DIR [--n N] [--family F] [--seed S] [--width W] [--assert-cold]
//! repro plan stats --dir DIR
//! ```
//!
//! `--full` uses the paper's sizes (256K–4M); expect minutes of simulation.
//! `--csv DIR` additionally writes each table as `DIR/<table>.csv`.
//! `--json` (native only) writes `results/BENCH_native.json` with
//! elements/sec per backend, per size, per family — including the
//! contended `SharedEngine` rows. `--contended T` (native only) sets the
//! thread count of the contended measurement (default 4; oversubscribing
//! a small machine is fine and still exercises the claiming logic).
//! `--queued T` (native only) sets the submitter count of the queued-vs-
//! blocking submission measurement (default 4; `0` skips it).
//! `--plan-threads T` (native only) sets the thread budget of the parallel
//! plan-compiler measurement, emitting `plan_build_1t` / `plan_build_{T}t`
//! rows (default 4; `0` skips it). The two builds are asserted
//! byte-identical through the codec before any time is reported.
//! `--json` (backends) merges `backend_native` / `backend_interp` rows
//! into `results/BENCH_native.json`, replacing any stale backend rows and
//! leaving every other row untouched.

use hmm_bench::experiments::{
    ablation, applications, figures, generations, smallperm, sweep, table1, table2, table3,
};
use hmm_bench::native_experiments;
use hmm_machine::ElemWidth;
use hmm_perm::families;
use std::process::ExitCode;

struct Args {
    full: bool,
    f64_elems: bool,
    no_cache: bool,
    json: bool,
    contended: Option<usize>,
    queued: Option<usize>,
    plan_threads: Option<usize>,
    count: Option<usize>,
    clients: Option<usize>,
    n: Option<usize>,
    csv_dir: Option<std::path::PathBuf>,
    dir: Option<std::path::PathBuf>,
    family: Option<String>,
    seed: Option<u64>,
    width: Option<usize>,
    assert_cold: bool,
}

/// Write a CSV file into the `--csv` directory, if one was given.
fn maybe_csv(args: &Args, name: &str, table: &hmm_bench::tables::TextTable) {
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, table.to_csv()) {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        full: false,
        f64_elems: false,
        no_cache: false,
        json: false,
        contended: None,
        queued: None,
        plan_threads: None,
        count: None,
        clients: None,
        n: None,
        csv_dir: None,
        dir: None,
        family: None,
        seed: None,
        width: None,
        assert_cold: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => out.full = true,
            "--f64" => out.f64_elems = true,
            "--no-cache" => out.no_cache = true,
            "--json" => out.json = true,
            "--contended" => {
                out.contended = Some(
                    it.next()
                        .ok_or("--contended needs a thread count")?
                        .parse()
                        .map_err(|e| format!("--contended: {e}"))?,
                )
            }
            "--queued" => {
                out.queued = Some(
                    it.next()
                        .ok_or("--queued needs a submitter count")?
                        .parse()
                        .map_err(|e| format!("--queued: {e}"))?,
                )
            }
            "--plan-threads" => {
                out.plan_threads = Some(
                    it.next()
                        .ok_or("--plan-threads needs a thread count")?
                        .parse()
                        .map_err(|e| format!("--plan-threads: {e}"))?,
                )
            }
            "--count" => {
                out.count = Some(
                    it.next()
                        .ok_or("--count needs a value")?
                        .parse()
                        .map_err(|e| format!("--count: {e}"))?,
                )
            }
            "--clients" => {
                out.clients = Some(
                    it.next()
                        .ok_or("--clients needs a process count")?
                        .parse()
                        .map_err(|e| format!("--clients: {e}"))?,
                )
            }
            "--n" => {
                out.n = Some(
                    it.next()
                        .ok_or("--n needs a value")?
                        .parse()
                        .map_err(|e| format!("--n: {e}"))?,
                )
            }
            "--csv" => {
                out.csv_dir = Some(std::path::PathBuf::from(
                    it.next().ok_or("--csv needs a directory")?,
                ))
            }
            "--dir" => {
                out.dir = Some(std::path::PathBuf::from(
                    it.next().ok_or("--dir needs a directory")?,
                ))
            }
            "--family" => out.family = Some(it.next().ok_or("--family needs a name")?.clone()),
            "--seed" => {
                out.seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--width" => {
                out.width = Some(
                    it.next()
                        .ok_or("--width needs a value")?
                        .parse()
                        .map_err(|e| format!("--width: {e}"))?,
                )
            }
            "--assert-cold" => out.assert_cold = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match argv.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => {
            eprintln!(
                "usage: repro <all|table1|table2|table3|fig3|fig4|fig5|fig6|smallperm|ablation|\
                 sweep|apps|heatmap|native|backends|computed|serve|structured|plan> [--full] [--f64] [--no-cache] [--json] \
                 [--count K] [--n N] [--csv DIR] [--contended T] [--queued T] \
                 [--plan-threads T]\n       \
                 repro plan <build|save|load|stats> [--dir DIR] [--n N] [--family F] \
                 [--seed S] [--width W] [--assert-cold]"
            );
            return ExitCode::FAILURE;
        }
    };
    // `plan` takes an action word before its flags: fold it into the
    // command so `run` dispatches on `plan-build` etc.
    let (cmd, rest) = if cmd == "plan" {
        match rest.split_first() {
            Some((a, r)) => (format!("plan-{a}"), r.to_vec()),
            None => {
                eprintln!("usage: repro plan <build|save|load|stats> [flags]");
                return ExitCode::FAILURE;
            }
        }
    } else {
        (cmd, rest)
    };
    let args = match parse_args(&rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&cmd, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        "all" => {
            for c in [
                "table1",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "smallperm",
                "table2",
                "table3",
                "ablation",
                "sweep",
                "apps",
                "generations",
                "heatmap",
                "native",
            ] {
                run(c, args)?;
                println!();
            }
        }
        "table1" => {
            println!("=== Table I: rounds and running time (n = 64K, w = 32, l = 512) ===\n");
            let rows = table1::measure(1 << 16, 32, 512)?;
            print!("{}", table1::render(&rows));
            maybe_csv(args, "table1", &table1::table(&rows));
            println!("\n(All measured counts/time match the paper's Table I and closed forms;");
            println!(" conventional rows use bit-reversal, i.e. distribution γ_w = w.)");
        }
        "table2" => {
            let elem = if args.f64_elems {
                ElemWidth::F64
            } else {
                ElemWidth::F32
            };
            let mut cfg = if args.full {
                table2::Table2Config::paper(elem)
            } else {
                table2::Table2Config::quick(elem)
            };
            cfg.cached = !args.no_cache;
            println!(
                "=== Table II ({}): simulated time units, {} ===\n",
                if args.f64_elems {
                    "b: 64-bit"
                } else {
                    "a: 32-bit"
                },
                if cfg.cached {
                    "GTX-680-like config (L2 model on)"
                } else {
                    "pure HMM (no cache)"
                }
            );
            let data = table2::run(&cfg)?;
            print!("{}", table2::render(&data));
            let suffix = if args.f64_elems { "f64" } else { "f32" };
            for (name, t) in table2::tables(&data) {
                maybe_csv(
                    args,
                    &format!("table2_{suffix}_{}", name.replace('-', "_")),
                    &t,
                );
            }
            let violations = table2::check_shape(&data);
            if violations.is_empty() {
                println!("shape check: PASS (scheduled constant per size; conventional wins on");
                println!(
                    "identical/shuffle; scheduled wins on random/bit-reversal/transpose at the"
                );
                println!("largest size)");
            } else {
                println!("shape check: FAIL");
                for v in violations {
                    println!("  - {v}");
                }
            }
        }
        "table3" => {
            let mut cfg = table3::Table3Config::quick();
            if args.full {
                cfg.count = 1000;
                cfg.n = 1 << 22;
            }
            if let Some(c) = args.count {
                cfg.count = c;
            }
            if let Some(n) = args.n {
                cfg.n = n;
            }
            println!(
                "=== Table III: {} random permutations of n = {} (f64) ===\n",
                cfg.count, cfg.n
            );
            let data = table3::run(&cfg)?;
            print!("{}", table3::render(&data));
            maybe_csv(args, "table3", &table3::table(&data));
        }
        "fig3" => print!("{}", figures::render_fig3(5)),
        "fig4" => print!("{}", figures::render_fig4(4)),
        "fig5" => print!("{}", figures::render_fig5()),
        "fig6" => {
            let p = families::random(16, 2013);
            print!("{}", figures::render_fig6(&p, 4)?);
        }
        "smallperm" => {
            println!("=== Single-DMM permutation of 1024 elements (w = 32), cf. [9] ===\n");
            let rows = smallperm::run(1024, 32)?;
            print!("{}", smallperm::render(&rows));
            let speedup = smallperm::random_speedup(1024, 32, 20)?;
            println!("\nrandom-permutation speedup (20 samples): {speedup:.2}x (paper: 1.5x)");
        }
        "ablation" => {
            println!("=== Ablation 1: L2 cache model on/off (bit-reversal) ===\n");
            let sizes: Vec<usize> = if args.full {
                vec![1 << 16, 1 << 18, 1 << 20, 1 << 22]
            } else {
                vec![1 << 12, 1 << 14, 1 << 16, 1 << 18]
            };
            print!("{}", ablation::cache_ablation(&sizes)?);
            println!("\n=== Ablation 5: cache write policy (bit-reversal) ===\n");
            print!("{}", ablation::write_policy_ablation(&sizes)?);
            println!("\n=== Ablation 2: shared dispatch rule (n = 64K) ===\n");
            print!("{}", ablation::shared_dispatch_ablation(1 << 16)?);
            println!("\n=== Ablation 3: coloring strategy build time (n = 64K, w = 32) ===\n");
            print!("{}", ablation::coloring_ablation(1 << 16, 32)?);
            println!(
                "\n=== Ablation 4: per-kernel cost of the scheduled permutation (n = 64K) ===\n"
            );
            print!("{}", ablation::pass_breakdown(1 << 16)?);
        }
        "sweep" => {
            let n = args.n.unwrap_or(1 << 16);
            println!("=== Latency sweep (pure HMM, w = 32, n = {n}, bit-reversal) ===\n");
            let lats = [1usize, 16, 128, 512, 4096, 1 << 15, 1 << 18];
            print!(
                "{}",
                sweep::render("latency", &sweep::latency_sweep(n, &lats)?)
            );
            println!("\n=== Width sweep (pure HMM, l = 512, n = {n}, bit-reversal) ===\n");
            // w = 128 would need a 64 KB transpose tile (> 48 KB shared).
            let widths = [4usize, 8, 16, 32, 64];
            print!(
                "{}",
                sweep::render("width", &sweep::width_sweep(n, 512, &widths)?)
            );
        }
        "apps" => {
            let n = args.n.unwrap_or(1 << 18);
            println!("=== Application permutations on the GTX-680-like HMM (n = {n}) ===\n");
            print!(
                "{}",
                applications::render(
                    n,
                    &hmm_machine::MachineConfig::gtx680(hmm_machine::ElemWidth::F32)
                )?
            );
            println!(
                "\n(Sorting-network butterfly exchanges are already coalesced — γ_w = 1 —\n\
                 so the 3-round conventional kernel is the right tool for them; the FFT's\n\
                 bit-reversal and the matrix transpose are the γ_w = w workloads the\n\
                 scheduled algorithm exists for.)"
            );
        }
        "heatmap" => {
            use hmm_machine::{Hmm, MachineConfig};
            use hmm_offperm::driver::{run_on, Algorithm};
            let n = args.n.unwrap_or(1 << 14);
            let p = hmm_perm::families::bit_reversal(n)?;
            let input: Vec<u64> = (0..n as u64).collect();
            for alg in [Algorithm::DDesignated, Algorithm::Scheduled] {
                let mut hmm = Hmm::new(MachineConfig::pure(32, 512))?;
                hmm.start_trace();
                run_on(&mut hmm, alg, &p, &input)?;
                let trace = hmm.take_trace().expect("tracing enabled");
                println!(
                    "=== {} (bit-reversal, n = {n}): global access heatmap ===",
                    alg.name()
                );
                print!("{}", trace.render_global(16, 40));
                println!(
                    "shared accesses: {}, bank imbalance: {:.2} (1.0 = conflict-free)\n",
                    trace.shared_total(),
                    trace.bank_imbalance()
                );
            }
            println!(
                "(The conventional kernel touches only a/p/b; the scheduled kernel's\n\
                 extra buckets are its temporaries and 16-bit schedule arrays — more\n\
                 traffic, but every access streams.)"
            );
        }
        "generations" => {
            let sizes: Vec<usize> = (12..=21).map(|k| 1usize << k).collect();
            println!("=== Crossover size per GPU generation (bit-reversal, f32) ===\n");
            print!("{}", generations::render(&sizes)?);
            println!(
                "\n(The model's prediction: the conventional algorithm's refuge is the L2,\n\
                 so each generation's bigger cache pushes the scheduled algorithm's\n\
                 break-even to larger arrays.)"
            );
        }
        "native" => {
            // --json defaults to the acceptance sizes 256K / 1M / 4M.
            let sizes: Vec<usize> = if args.full {
                vec![1 << 18, 1 << 20, 1 << 22, 1 << 24]
            } else if args.json {
                vec![1 << 18, 1 << 20, 1 << 22]
            } else {
                vec![1 << 16, 1 << 20]
            };
            println!("=== Native CPU backend: wall-clock (median of 5) ===\n");
            let contended_threads = args.contended.unwrap_or(4);
            let queued_threads = args.queued.unwrap_or(4);
            let plan_threads = args.plan_threads.unwrap_or(4);
            let report = native_experiments::report(
                &sizes,
                5,
                contended_threads,
                queued_threads,
                plan_threads,
            )?;
            print!("{}", native_experiments::render(&report.rows));
            println!("\n=== Per-sweep: SIMD double-buffered pipeline vs scalar (random) ===\n");
            print!("{}", native_experiments::render_sweeps(&report.sweep_rows));
            println!("\n=== Plan cache: cached Engine::permute vs rebuild-per-call ===\n");
            print!("{}", native_experiments::render_plan(&report.plan_rows));
            println!("\n=== Plan store: cold build+save vs cold-engine load ===\n");
            print!("{}", native_experiments::render_store(&report.store_rows));
            if !report.plan_build_rows.is_empty() {
                println!("\n=== Plan compiler: sequential vs parallel König build ===\n");
                print!(
                    "{}",
                    native_experiments::render_plan_build(&report.plan_build_rows)
                );
            }
            println!("\n=== Contended SharedEngine: mixed families, warm cache ===\n");
            print!(
                "{}",
                native_experiments::render_contended(&report.contended_rows)
            );
            if !report.queued_rows.is_empty() {
                println!("\n=== Queued submission vs blocking batch convoy ===\n");
                print!("{}", native_experiments::render_queued(&report.queued_rows));
            }
            if args.json {
                let dir = std::path::Path::new("results");
                std::fs::create_dir_all(dir)?;
                let path = dir.join("BENCH_native.json");
                std::fs::write(&path, native_experiments::to_json(&report))?;
                println!("\n(wrote {})", path.display());
            }
        }
        "backends" => {
            // Acceptance sizes 256K–4M; quick mode stops at 1M because
            // the interpreter is serial by design.
            let sizes: Vec<usize> = if args.full {
                vec![1 << 18, 1 << 20, 1 << 22]
            } else {
                vec![1 << 18, 1 << 20]
            };
            let reps = if args.full { 5 } else { 3 };
            println!("=== Backend registry: one scheduled plan on every backend ===\n");
            let rows = native_experiments::backends(&sizes, reps)?;
            print!("{}", native_experiments::render_backends(&rows));
            println!(
                "\n(Both backends are pinned byte-identical to the reference before\n\
                 timing. `interp` executes the five-step sweep IR literally and\n\
                 serially — it is the correctness oracle behind the WGSL codegen,\n\
                 not a throughput contender; see EXPERIMENTS.md.)"
            );
            if args.json {
                let dir = std::path::Path::new("results");
                std::fs::create_dir_all(dir)?;
                let path = dir.join("BENCH_native.json");
                let existing = std::fs::read_to_string(&path).ok();
                std::fs::write(
                    &path,
                    native_experiments::merge_backends_json(existing.as_deref(), &rows),
                )?;
                println!("\n(merged backend rows into {})", path.display());
            }
        }
        "computed" => {
            // Acceptance sizes 256K–4M; quick mode stays cache-friendly so
            // the register-fold win is visible without a long run.
            let sizes: Vec<usize> = if args.full || args.json {
                vec![1 << 18, 1 << 20, 1 << 22]
            } else {
                vec![1 << 16, 1 << 18]
            };
            let reps = if args.full { 7 } else { 5 };
            println!("=== Computed-index kernels vs gather-map loads (structured plans) ===\n");
            let rows = native_experiments::computed_index(&sizes, reps)?;
            print!("{}", native_experiments::render_computed(&rows));
            println!(
                "\n(Both arms run the identical fused three-sweep plan; the computed arm\n\
                 evaluates the affine GF(2) fold in registers and never reads the 4n-byte\n\
                 gather maps, the map-load arm streams them. Outputs are asserted\n\
                 byte-identical to the reference before timing.)"
            );
            if args.json {
                let dir = std::path::Path::new("results");
                std::fs::create_dir_all(dir)?;
                let path = dir.join("BENCH_native.json");
                let existing = std::fs::read_to_string(&path).ok();
                std::fs::write(
                    &path,
                    native_experiments::merge_computed_json(existing.as_deref(), &rows),
                )?;
                println!("\n(merged computed_* rows into {})", path.display());
            }
        }
        "serve" => {
            // N real client processes against one server: the network
            // front door measured end to end (protocol, sockets, queue).
            let clients = args.clients.unwrap_or(4);
            let sizes: Vec<usize> = if args.full {
                vec![1 << 16, 1 << 18, 1 << 20]
            } else {
                vec![1 << 14, 1 << 16]
            };
            let reps = if args.full { 16 } else { 8 };
            println!("=== Permutation-as-a-service: {clients} client processes, one server ===\n");
            let rows = hmm_bench::serve_experiments::serve(clients, &sizes, reps)?;
            print!("{}", hmm_bench::serve_experiments::render_serve(&rows));
            println!(
                "\n(Each client is a spawned `hmm-server bench-client` process; its first\n\
                 response is verified against the naive reference before any timing.\n\
                 On a 1-core container the clients timeshare one CPU, so these rows\n\
                 measure protocol + queue overhead, not parallel speedup.)"
            );
            if args.json {
                let dir = std::path::Path::new("results");
                std::fs::create_dir_all(dir)?;
                let path = dir.join("BENCH_native.json");
                let existing = std::fs::read_to_string(&path).ok();
                std::fs::write(
                    &path,
                    hmm_bench::serve_experiments::merge_serve_json(existing.as_deref(), &rows),
                )?;
                println!("\n(merged server_{clients}c rows into {})", path.display());
            }
        }
        "structured" => {
            let sizes: Vec<usize> = if args.full {
                vec![1 << 16, 1 << 20, 1 << 22]
            } else {
                vec![1 << 14, 1 << 18]
            };
            println!("=== Structured planner: closed-form BMMC emission vs König coloring ===\n");
            let rows = native_experiments::structured_plan_build(&sizes, 3)?;
            print!("{}", native_experiments::render_structured(&rows));
            println!("\n=== Plan fusion: bit-reversal → transpose 2-chain, plans warm ===\n");
            let fused = native_experiments::fused_chain(&sizes, 5)?;
            print!("{}", native_experiments::render_fused(&fused));
            println!(
                "\n(Structured families skip the multigraph entirely — the same three-pass\n\
                 contract, emitted by index arithmetic. Fusion composes the chain's bit\n\
                 matrices and plans the composite once: one memory round trip, 3 sweeps\n\
                 instead of 6.)"
            );
        }
        "plan-build" | "plan-save" | "plan-load" | "plan-stats" => plan_cmd(cmd, args)?,
        other => return Err(format!("unknown subcommand {other}").into()),
    }
    Ok(())
}

/// Build the permutation the `plan` subcommands operate on.
fn plan_permutation(
    args: &Args,
) -> Result<(hmm_perm::Permutation, &'static str, usize), Box<dyn std::error::Error>> {
    let n = args.n.unwrap_or(1 << 16);
    let seed = args.seed.unwrap_or(5);
    let name = args.family.as_deref().unwrap_or("random");
    let fam = families::Family::ALL
        .iter()
        .find(|f| f.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = families::Family::ALL.iter().map(|f| f.name()).collect();
            format!("unknown family '{name}' (known: {})", known.join(", "))
        })?;
    Ok((fam.build(n, seed)?, fam.name(), n))
}

/// `repro plan <build|save|load|stats>` — inspect, persist, and reload
/// backend-neutral plans through the on-disk store, exercising the same
/// `SharedEngine::with_store` path a production process would use.
fn plan_cmd(cmd: &str, args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use hmm_native::SharedEngine;
    use hmm_plan::{encode, PlanIr, PlanStore};
    use std::time::Instant;

    let width = args.width.unwrap_or(32);
    let need_dir = || {
        args.dir
            .clone()
            .ok_or_else(|| format!("{cmd} needs --dir DIR"))
    };
    match cmd {
        "plan-build" => {
            let (p, fam, n) = plan_permutation(args)?;
            let t0 = Instant::now();
            let ir = PlanIr::build(&p, width)?;
            let dt = t0.elapsed();
            println!("plan: family={fam} n={n} width={width}");
            println!("  shape        : {}x{}", ir.shape().rows, ir.shape().cols);
            println!("  gamma_w      : {:.3}", ir.gamma());
            println!("  fingerprint  : {:016x}", ir.fingerprint());
            println!("  encoded bytes: {}", encode(&ir).len());
            println!("  build time   : {dt:.2?}");
        }
        "plan-save" | "plan-load" => {
            let dir = need_dir()?;
            let (p, fam, n) = plan_permutation(args)?;
            let engine: SharedEngine<u32> = SharedEngine::with_store(width, &dir)?;
            let src: Vec<u32> = (0..n as u32).collect();
            let mut dst = vec![0u32; n];
            let t0 = Instant::now();
            engine.permute(&p, &src, &mut dst)?;
            let dt = t0.elapsed();
            let mut want = vec![0u32; n];
            p.permute(&src, &mut want)?;
            let verified = dst == want;
            let s = engine.stats();
            println!(
                "{}: family={fam} n={n} width={width} dir={} ({dt:.2?})",
                if cmd == "plan-save" {
                    "saved"
                } else {
                    "loaded"
                },
                dir.display()
            );
            println!(
                "  builds={} structured={} store_hits={} store_rejects={} \
                 runs(scatter/scheduled)={}/{}",
                s.builds,
                s.plans_structured,
                s.store_hits,
                s.store_rejects,
                s.scatter_runs,
                s.scheduled_runs
            );
            println!("  verified={verified}");
            if !verified {
                return Err("output verification failed".into());
            }
            if cmd == "plan-save" && s.scatter_runs > 0 {
                println!("  note: γ_w under the threshold — scatter backend, nothing stored");
            }
            if args.assert_cold {
                if s.builds != 0 {
                    return Err(format!(
                        "--assert-cold: expected 0 König builds from the warm store, got {}",
                        s.builds
                    )
                    .into());
                }
                if s.store_hits == 0 {
                    return Err("--assert-cold: expected at least one store hit".into());
                }
                println!(
                    "  cold-start assertion: PASS (0 builds, {} store hit(s))",
                    s.store_hits
                );
            }
        }
        "plan-stats" => {
            let dir = need_dir()?;
            let store = PlanStore::open(&dir)?;
            let entries = store.entries()?;
            println!("plan store at {}: {} plan(s)", dir.display(), entries.len());
            let mut total = 0u64;
            for e in &entries {
                println!(
                    "  {:016x}  n={:<10} w={:<4} {} bytes",
                    e.key.fingerprint, e.key.n, e.key.width, e.bytes
                );
                total += e.bytes;
            }
            println!("  total bytes: {total}");
        }
        other => return Err(format!("unknown plan action {other}").into()),
    }
    Ok(())
}
