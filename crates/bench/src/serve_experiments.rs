//! The `repro serve` experiment: throughput of the TCP front door with
//! N *real client processes* hammering one in-process server.
//!
//! This is deliberately not a loopback micro-benchmark inside one
//! process: each client is a spawned `hmm-server bench-client` binary
//! with its own address space, connecting over real sockets, so the
//! measurement includes serialization, kernel round trips, and the
//! per-connection handler threads contending for the shared engine
//! queue — the "millions of users" story at laptop scale.
//!
//! Caveat for this container: with one core, N clients and the server's
//! drainer threads all timeshare a single CPU, so `server_{N}c` rows
//! measure protocol + queue overhead, not parallel speedup (see
//! EXPERIMENTS.md).

use std::process::{Command, Stdio};

use hmm_server::{Server, ServerConfig};

use crate::tables::{size_label, TextTable};

/// One aggregated measurement: N clients × one family × one size.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Family name (`random`, `bit-reversal`, …).
    pub family: &'static str,
    /// Elements per payload.
    pub n: usize,
    /// Client processes.
    pub clients: usize,
    /// Timed permutes per client.
    pub reps: usize,
    /// Wall-clock of the slowest client (the makespan).
    pub seconds: f64,
    /// Aggregate elements/sec: `clients × reps × n / seconds`.
    pub eps: f64,
}

/// The families the serve bench drives: one build-heavy, one
/// structured — the two registration regimes.
const FAMILIES: [&str; 2] = ["random", "bit-reversal"];

/// Locate the `hmm-server` binary next to the running `repro` binary
/// (both live in the same cargo target directory).
fn server_binary() -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    let me = std::env::current_exe()?;
    let dir = me.parent().ok_or("repro binary has no parent dir")?;
    let candidate = dir.join("hmm-server");
    if candidate.exists() {
        return Ok(candidate);
    }
    Err(format!(
        "hmm-server binary not found at {} — build it first: cargo build --release -p hmm-server",
        candidate.display()
    )
    .into())
}

/// Run the serve experiment: one server, `clients` spawned
/// `bench-client` processes per (family, size) cell.
pub fn serve(
    clients: usize,
    sizes: &[usize],
    reps: usize,
) -> Result<Vec<ServeRow>, Box<dyn std::error::Error>> {
    let bin = server_binary()?;
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
    let addr = server.local_addr().to_string();

    let mut rows = Vec::new();
    for &n in sizes {
        for family in FAMILIES {
            let mut children = Vec::with_capacity(clients);
            for _ in 0..clients {
                children.push(
                    Command::new(&bin)
                        .args([
                            "bench-client",
                            "--addr",
                            &addr,
                            "--n",
                            &n.to_string(),
                            "--family",
                            family,
                            "--seed",
                            // Same seed for every client: they share one
                            // cached plan, which is the service model
                            // (the cache is the asset). The seed still
                            // varies per size for coverage.
                            &(0xc0ffee ^ n as u64).to_string(),
                            "--reps",
                            &reps.to_string(),
                        ])
                        .stdout(Stdio::piped())
                        .stderr(Stdio::inherit())
                        .spawn()?,
                );
            }
            let mut makespan = 0.0f64;
            let mut total_reps = 0usize;
            for child in children {
                let out = child.wait_with_output()?;
                if !out.status.success() {
                    return Err(format!(
                        "bench-client exited with {} for family={family} n={n}",
                        out.status
                    )
                    .into());
                }
                let line = String::from_utf8_lossy(&out.stdout);
                let (secs, client_reps) = parse_client_line(&line)
                    .ok_or_else(|| format!("unparseable bench-client output: {line:?}"))?;
                makespan = makespan.max(secs);
                total_reps += client_reps;
            }
            let eps = (total_reps * n) as f64 / makespan.max(1e-12);
            rows.push(ServeRow {
                family,
                n,
                clients,
                reps,
                seconds: makespan,
                eps,
            });
        }
    }
    server.drain();
    Ok(rows)
}

/// Parse `CLIENT <family> <n> <reps> <seconds> <eps>`.
fn parse_client_line(line: &str) -> Option<(f64, usize)> {
    let mut fields = line.split_whitespace();
    if fields.next()? != "CLIENT" {
        return None;
    }
    let _family = fields.next()?;
    let _n = fields.next()?;
    let reps: usize = fields.next()?.parse().ok()?;
    let seconds: f64 = fields.next()?.parse().ok()?;
    Some((seconds, reps))
}

/// Render the serve rows as a text table.
pub fn render_serve(rows: &[ServeRow]) -> String {
    let mut t = TextTable::new(vec!["family", "n", "clients", "makespan", "Melem/s"]);
    for r in rows {
        t.row(vec![
            r.family.to_string(),
            size_label(r.n),
            r.clients.to_string(),
            format!("{:.3}s", r.seconds),
            format!("{:.1}", r.eps / 1e6),
        ]);
    }
    t.render()
}

/// Merge `server_{N}c` rows into an existing `BENCH_native.json`
/// document, replacing stale `server_*` rows and leaving every other
/// row untouched (same contract as
/// [`merge_backends_json`](crate::native_experiments::merge_backends_json)).
pub fn merge_serve_json(existing: Option<&str>, rows: &[ServeRow]) -> String {
    let new_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"family\": \"{}\", \"n\": {}, \"backend\": \"server_{}c\", \
                 \"seconds\": {:.9}, \"elements_per_sec\": {:.1}}}",
                r.family, r.n, r.clients, r.seconds, r.eps
            )
        })
        .collect();
    let rebuild = |head: &str, kept: Vec<String>| {
        let mut out = String::from(head);
        out.push('\n');
        let all: Vec<String> = kept.into_iter().chain(new_rows.iter().cloned()).collect();
        out.push_str(&all.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    };
    match existing.and_then(|doc| doc.find("\"rows\": [").map(|at| (doc, at))) {
        Some((doc, at)) => {
            let start = at + "\"rows\": [".len();
            let kept: Vec<String> = doc[start..]
                .lines()
                .filter(|l| l.trim_start().starts_with('{'))
                .filter(|l| !l.contains("\"backend\": \"server_"))
                .map(|l| l.trim_end().trim_end_matches(',').to_string())
                .collect();
            rebuild(&doc[..start], kept)
        }
        None => rebuild(
            "{\n  \"bench\": \"native\",\n  \"threads\": 1,\n  \"reps\": 0,\n  \"rows\": [",
            Vec::new(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_line_parses() {
        assert_eq!(
            parse_client_line("CLIENT random 65536 8 0.123456 4244897.1\n"),
            Some((0.123456, 8))
        );
        assert_eq!(parse_client_line("LISTENING 127.0.0.1:1"), None);
    }

    #[test]
    fn merge_replaces_only_server_rows() {
        let existing = "{\n  \"bench\": \"native\",\n  \"threads\": 2,\n  \"reps\": 5,\n  \"rows\": [\n    {\"family\": \"random\", \"n\": 1024, \"backend\": \"scatter\", \"seconds\": 0.1, \"elements_per_sec\": 10240.0},\n    {\"family\": \"random\", \"n\": 1024, \"backend\": \"server_2c\", \"seconds\": 0.5, \"elements_per_sec\": 2048.0}\n  ]\n}\n";
        let rows = vec![ServeRow {
            family: "random",
            n: 2048,
            clients: 4,
            reps: 8,
            seconds: 0.25,
            eps: 8192.0,
        }];
        let merged = merge_serve_json(Some(existing), &rows);
        assert!(merged.contains("\"backend\": \"scatter\""), "{merged}");
        assert!(merged.contains("\"backend\": \"server_4c\""), "{merged}");
        assert!(!merged.contains("server_2c"), "{merged}");
        assert!(merged.contains("\"threads\": 2"), "{merged}");
    }
}
