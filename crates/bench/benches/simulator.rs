//! Simulator throughput: host seconds per simulated element for each
//! algorithm — the practical cost of reproducing Table II, and a
//! regression guard for the machine's hot accounting loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmm_machine::{ElemWidth, Hmm, MachineConfig, Word};
use hmm_offperm::driver::{run_on, Algorithm};
use hmm_perm::families;

fn bench_simulator(c: &mut Criterion) {
    let n = 1 << 14;
    let p = families::bit_reversal(n).unwrap();
    let input: Vec<Word> = (0..n as Word).collect();
    for (cfg_name, cfg) in [
        ("pure", MachineConfig::pure(32, 512)),
        ("gtx680", MachineConfig::gtx680(ElemWidth::F32)),
    ] {
        let mut group = c.benchmark_group(format!("simulator/{cfg_name}"));
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &alg, |b, &alg| {
                b.iter(|| {
                    let mut hmm = Hmm::new(cfg.clone()).unwrap();
                    run_on(&mut hmm, alg, &p, &input).unwrap().0.time
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
