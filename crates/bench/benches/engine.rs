//! Throughput-engine benchmarks: what the plan cache and the fused sweeps
//! buy on the steady-state path.
//!
//! Four measurements per size (random permutations — the high-γ workload):
//! * `cached`          — `Engine::permute` with a warm cache (the product path);
//! * `rebuild`         — plan built from scratch on every call (no cache);
//! * `fused_run`       — one fused 3-sweep execution, plan + scratch prebuilt;
//! * `unfused_run`     — the 5-pass reference execution.
//!
//! Plus `plan_build` (the König coloring + gather-map cost the cache
//! amortises) and one `scatter` row as the crossover baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmm_native::{scatter_permute, Engine, NativeScheduled};
use hmm_perm::families;

const W: usize = 32;

fn sizes() -> Vec<usize> {
    if std::env::var("HMM_BENCH_FULL").is_ok() {
        vec![1 << 18, 1 << 20, 1 << 22]
    } else {
        vec![1 << 14, 1 << 16]
    }
}

fn bench_engine(c: &mut Criterion) {
    for n in sizes() {
        let p = families::random(n, 7);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];

        let mut group = c.benchmark_group(format!("engine/{}", n));
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);

        let mut engine: Engine<u32> = Engine::new(W);
        engine.permute(&p, &src, &mut dst).unwrap(); // warm the cache
        group.bench_with_input(BenchmarkId::new("cached", n), &p, |b, p| {
            b.iter(|| engine.permute(p, &src, &mut dst).unwrap())
        });

        group.bench_with_input(BenchmarkId::new("rebuild", n), &p, |b, p| {
            b.iter(|| {
                let sched = NativeScheduled::build(p, W).unwrap();
                sched.run(&src, &mut dst);
            })
        });

        let sched = NativeScheduled::build(&p, W).unwrap();
        let mut scratch = vec![0u32; sched.scratch_len()];
        group.bench_function(BenchmarkId::new("fused_run", n), |b| {
            b.iter(|| sched.run_with_scratch(&src, &mut dst, &mut scratch))
        });
        group.bench_function(BenchmarkId::new("unfused_run", n), |b| {
            b.iter(|| sched.run_unfused(&src, &mut dst))
        });

        group.bench_with_input(BenchmarkId::new("plan_build", n), &p, |b, p| {
            b.iter(|| NativeScheduled::build(p, W).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scatter", n), &p, |b, p| {
            b.iter(|| scatter_permute(&src, p, &mut dst))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
