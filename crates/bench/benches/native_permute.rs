//! Wall-clock Table II analog on the CPU backend: direct scatter/gather vs
//! the fused three-sweep scheduled permutation (plus the unfused five-pass
//! reference), per permutation family and size.
//!
//! Sizes default to 64K–4M; set `HMM_BENCH_FULL=1` for 16M (the working
//! set where the scheduled passes' cache behaviour matters most).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmm_native::{copy_baseline, gather_permute, scatter_permute, NativeScheduled};
use hmm_perm::families::Family;

fn sizes() -> Vec<usize> {
    if std::env::var("HMM_BENCH_FULL").is_ok() {
        vec![1 << 20, 1 << 22, 1 << 24]
    } else {
        vec![1 << 16, 1 << 20, 1 << 22]
    }
}

fn bench_native(c: &mut Criterion) {
    for n in sizes() {
        let src: Vec<u32> = (0..n as u32).collect();
        let mut dst = vec![0u32; n];
        let mut scratch = vec![0u32; n];

        let mut group = c.benchmark_group(format!("native/{}", n));
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);

        group.bench_function("copy", |b| b.iter(|| copy_baseline(&src, &mut dst)));
        for fam in [Family::Identical, Family::Random, Family::BitReversal] {
            let p = fam.build(n, 7).unwrap();
            let q = p.inverse();
            let sched = NativeScheduled::build(&p, 32).unwrap();
            group.bench_with_input(BenchmarkId::new("scatter", fam.name()), &p, |b, p| {
                b.iter(|| scatter_permute(&src, p, &mut dst))
            });
            group.bench_with_input(BenchmarkId::new("gather", fam.name()), &q, |b, q| {
                b.iter(|| gather_permute(&src, q, &mut dst))
            });
            group.bench_with_input(
                BenchmarkId::new("scheduled", fam.name()),
                &sched,
                |b, sched| b.iter(|| sched.run_with_scratch(&src, &mut dst, &mut scratch)),
            );
            group.bench_with_input(
                BenchmarkId::new("scheduled_unfused", fam.name()),
                &sched,
                |b, sched| b.iter(|| sched.run_unfused(&src, &mut dst)),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_native);
criterion_main!(benches);
