//! Schedule-construction ablation: Euler-partition hybrid vs matching-only
//! König edge coloring across degrees (DESIGN.md §8.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmm_graph::{edge_color_par, edge_color_with, Parallelism, RegularBipartite, Strategy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn random_regular(nodes: usize, deg: usize, seed: u64) -> RegularBipartite {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(nodes * deg);
    for _ in 0..deg {
        let mut rights: Vec<usize> = (0..nodes).collect();
        rights.shuffle(&mut rng);
        for (u, &v) in rights.iter().enumerate() {
            edges.push((u, v));
        }
    }
    RegularBipartite::new(nodes, edges).unwrap()
}

fn bench_coloring(c: &mut Criterion) {
    // The shapes the scheduled permutation produces: w-node graphs of
    // degree c/w (row-wise) and r-node graphs of degree c (global step).
    for (nodes, deg) in [(32usize, 32usize), (32, 128), (256, 256), (1024, 64)] {
        let g = random_regular(nodes, deg, 42);
        let mut group = c.benchmark_group(format!("coloring/{nodes}x{deg}"));
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("euler-hybrid", deg), &g, |b, g| {
            b.iter(|| edge_color_with(g, Strategy::Hybrid).unwrap())
        });
        // The parallel compiler's coloring at a 4-thread budget; output is
        // identical to euler-hybrid, so any delta is pure orchestration.
        group.bench_with_input(BenchmarkId::new("euler-hybrid-par4", deg), &g, |b, g| {
            b.iter(|| edge_color_par(g, Strategy::Hybrid, Parallelism::threads(4)).unwrap())
        });
        // Matching-only is O(deg) matchings; skip the biggest shape to keep
        // the suite fast.
        if nodes * deg <= 32 * 1024 {
            group.bench_with_input(BenchmarkId::new("matching-only", deg), &g, |b, g| {
                b.iter(|| edge_color_with(g, Strategy::MatchingOnly).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
