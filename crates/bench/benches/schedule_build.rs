//! Offline schedule-construction cost: how long does it take to turn a
//! permutation into the three-pass scheduled form? (The paper treats this
//! as free — "given in advance" — so it must be cheap enough to amortize.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmm_native::NativeScheduled;
use hmm_offperm::ScheduledPermutation;
use hmm_perm::families;

fn bench_schedule_build(c: &mut Criterion) {
    for n in [1usize << 14, 1 << 16, 1 << 18] {
        let p = families::random(n, 11);
        let mut group = c.benchmark_group("schedule_build");
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("simulator-form", n), &p, |b, p| {
            b.iter(|| ScheduledPermutation::build(p, 32).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("native-form", n), &p, |b, p| {
            b.iter(|| NativeScheduled::build(p, 32).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_schedule_build);
criterion_main!(benches);
