//! Application-level benchmarks: the cost of the permutation step inside
//! real workloads (FFT reordering share, sorting-network stages), plus the
//! schedule-vs-direct comparison for the FFT's bit-reversal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmm_apps::{bitonic, Complex, FftPlan};
use hmm_native::{scatter_permute, NativeScheduled};

fn bench_fft(c: &mut Criterion) {
    for n in [1usize << 12, 1 << 16] {
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n)
            .map(|t| Complex::new((t as f64 * 0.01).sin(), 0.0))
            .collect();
        let mut group = c.benchmark_group("fft");
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(20);
        group.bench_with_input(BenchmarkId::new("full-transform", n), &plan, |b, plan| {
            let mut data = input.clone();
            b.iter(|| {
                data.copy_from_slice(&input);
                plan.forward(&mut data);
            })
        });
        // The reordering step alone, both ways.
        let p = plan.reorder_permutation().clone();
        let sched = NativeScheduled::build(&p, 32).unwrap();
        let mut dst = vec![Complex::default(); n];
        group.bench_with_input(BenchmarkId::new("reorder-scatter", n), &p, |b, p| {
            b.iter(|| scatter_permute(&input, p, &mut dst))
        });
        group.bench_with_input(
            BenchmarkId::new("reorder-scheduled", n),
            &sched,
            |b, sched| b.iter(|| sched.run(&input, &mut dst)),
        );
        group.finish();
    }
}

fn bench_sortnet(c: &mut Criterion) {
    for n in [1usize << 10, 1 << 14] {
        let net = bitonic(n).unwrap();
        let input: Vec<u32> = (0..n as u32).rev().collect();
        let mut group = c.benchmark_group("sortnet");
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(20);
        group.bench_with_input(BenchmarkId::new("bitonic-network", n), &net, |b, net| {
            let mut data = input.clone();
            b.iter(|| {
                data.copy_from_slice(&input);
                net.apply(&mut data);
            })
        });
        group.bench_function(BenchmarkId::new("std-sort-baseline", n), |b| {
            let mut data = input.clone();
            b.iter(|| {
                data.copy_from_slice(&input);
                data.sort_unstable();
            })
        });
        group.finish();
    }
}

fn bench_schedule_vs_distribution(c: &mut Criterion) {
    // How much does schedule construction cost depend on the permutation?
    let n = 1usize << 14;
    let mut group = c.benchmark_group("schedule_by_family");
    group.sample_size(10);
    for fam in hmm_perm::Family::ALL {
        let p = fam.build(n, 3).unwrap();
        group.bench_with_input(BenchmarkId::new(fam.name(), n), &p, |b, p| {
            b.iter(|| hmm_offperm::ScheduledPermutation::build(p, 32).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_sortnet,
    bench_schedule_vs_distribution
);
criterion_main!(benches);
