//! Per-client admission control, layered *above* the queue's
//! backpressure.
//!
//! The bounded MPMC queue already protects the server as a whole: when
//! it fills, submitters block. What it cannot do is stop one greedy
//! session from monopolizing that shared capacity — so each connection
//! gets two quotas checked before anything touches the engine:
//!
//! * **registered plans** — caps session cache footprint (every handle
//!   pins an `Arc<Permutation>` and a cached plan slot);
//! * **in-flight jobs** — caps how much of the shared queue one request
//!   may claim at once (a `PERMUTE_BATCH` of `k` payloads counts `k`).
//!
//! Rejections are typed ([`Frame::Err`](crate::proto::Frame::Err) with
//! [`ErrCode::AdmissionPlans`](crate::proto::ErrCode::AdmissionPlans) /
//! [`ErrCode::AdmissionInFlight`](crate::proto::ErrCode::AdmissionInFlight))
//! and counted in
//! [`EngineStats::admission_rejects`](hmm_native::EngineStats::admission_rejects),
//! so an operator can see quota pressure in the same snapshot as queue
//! pressure.

use std::fmt;

use crate::proto::ErrCode;

/// Per-session quotas. A connection is one session; disconnecting
/// releases everything it registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum plans one session may hold registered at once.
    pub max_plans: usize,
    /// Maximum queue jobs one request may put in flight at once.
    pub max_inflight: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_plans: 64,
            max_inflight: 256,
        }
    }
}

/// A typed admission refusal, convertible to a wire error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The session is at its registered-plan quota.
    Plans {
        /// Plans currently registered by the session.
        registered: usize,
        /// The quota.
        max: usize,
    },
    /// The request would exceed the in-flight job quota.
    InFlight {
        /// Jobs the request asked to enqueue.
        requested: usize,
        /// The quota.
        max: usize,
    },
}

impl AdmissionError {
    /// The wire error code this refusal maps to.
    pub fn code(&self) -> ErrCode {
        match self {
            AdmissionError::Plans { .. } => ErrCode::AdmissionPlans,
            AdmissionError::InFlight { .. } => ErrCode::AdmissionInFlight,
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Plans { registered, max } => write!(
                f,
                "plan quota exhausted: {registered} registered, max {max}"
            ),
            AdmissionError::InFlight { requested, max } => write!(
                f,
                "in-flight quota exceeded: requested {requested} jobs, max {max}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl AdmissionConfig {
    /// Check a `REGISTER` against the plan quota.
    pub fn admit_plan(&self, registered: usize) -> Result<(), AdmissionError> {
        if registered >= self.max_plans {
            return Err(AdmissionError::Plans {
                registered,
                max: self.max_plans,
            });
        }
        Ok(())
    }

    /// Check a `PERMUTE`/`PERMUTE_BATCH` of `requested` payloads against
    /// the in-flight quota.
    pub fn admit_jobs(&self, requested: usize) -> Result<(), AdmissionError> {
        if requested > self.max_inflight {
            return Err(AdmissionError::InFlight {
                requested,
                max: self.max_inflight,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_refuse_at_the_boundary() {
        let cfg = AdmissionConfig {
            max_plans: 2,
            max_inflight: 4,
        };
        assert!(cfg.admit_plan(0).is_ok());
        assert!(cfg.admit_plan(1).is_ok());
        let err = cfg.admit_plan(2).unwrap_err();
        assert_eq!(err.code(), ErrCode::AdmissionPlans);

        assert!(cfg.admit_jobs(4).is_ok());
        let err = cfg.admit_jobs(5).unwrap_err();
        assert_eq!(err.code(), ErrCode::AdmissionInFlight);
    }

    #[test]
    fn defaults_are_nonzero() {
        let cfg = AdmissionConfig::default();
        assert!(cfg.max_plans > 0 && cfg.max_inflight > 0);
    }
}
