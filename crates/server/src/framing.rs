//! Streaming frame I/O over any `Read`/`Write` pair.
//!
//! The reader validates the header — magic, version, and the
//! [`MAX_BODY`] cap — *before* allocating or reading a single body
//! byte, so a hostile peer claiming a 4 GiB body costs one typed error,
//! not an allocation. The checksum is verified over exactly the bytes
//! received, catching both corruption and desynchronization.

use std::io::{self, Read, Write};

use crate::proto::{
    Frame, ProtoError, CHECKSUM_LEN, HEADER_LEN, MAGIC, MAX_BODY, PROTOCOL_VERSION,
};
use hmm_plan::{fnv1a_update, FNV_OFFSET};

fn io_err(context: &'static str) -> impl FnOnce(io::Error) -> ProtoError {
    move |e| ProtoError::Io {
        kind: e.kind(),
        context,
    }
}

/// Write one complete frame and flush.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtoError> {
    w.write_all(&frame.encode())
        .map_err(io_err("write frame"))?;
    w.flush().map_err(io_err("flush frame"))
}

/// Read one complete frame.
///
/// A clean close (EOF before the first header byte) returns
/// [`ProtoError::Closed`]; EOF anywhere inside a frame is an
/// [`ProtoError::Io`] with `UnexpectedEof` — the distinction lets a
/// server tell "client finished" from "client died mid-payload".
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: 0 bytes here is a clean between-frames close.
    let got = r.read(&mut header[..1]).map_err(io_err("read header"))?;
    if got == 0 {
        return Err(ProtoError::Closed);
    }
    r.read_exact(&mut header[1..])
        .map_err(io_err("read header"))?;

    if header[..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(ProtoError::BadVersion { got: header[4] });
    }
    let kind = header[5];
    let body_len = u32::from_le_bytes(header[6..10].try_into().unwrap()) as usize;
    if body_len > MAX_BODY {
        // Refused before any body allocation or read.
        return Err(ProtoError::Oversized {
            len: body_len as u64,
            max: MAX_BODY as u64,
        });
    }

    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body).map_err(io_err("read body"))?;
    let mut sum = [0u8; CHECKSUM_LEN];
    r.read_exact(&mut sum).map_err(io_err("read checksum"))?;

    let stored = u64::from_le_bytes(sum);
    let computed = fnv1a_update(fnv1a_update(FNV_OFFSET, &header), &body);
    if stored != computed {
        return Err(ProtoError::ChecksumMismatch { stored, computed });
    }
    Frame::decode_body(kind, &body)
}
