//! Protocol v1: frame grammar, typed errors, and the std-only codec.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +--------+---------+------+--------------+--------+------------+
//! | magic  | version | kind | body_len u32 | body   | fnv1a u64  |
//! | "HMMS" |   u8    |  u8  |  (LE)        | bytes  | (LE)       |
//! +--------+---------+------+--------------+--------+------------+
//! |<----------- checksummed region ----------->|
//! ```
//!
//! The checksum is FNV-1a over everything before it (header + body),
//! reusing the exact hash the `hmm-plan` codec uses for plan files, so
//! one corruption model covers both the disk tier and the wire tier.
//!
//! Hostile-input posture, mirroring the plan codec:
//!
//! * `body_len` is validated against [`MAX_BODY`] *before* any body
//!   allocation — a length-prefix of 4 GiB costs the attacker a typed
//!   [`ProtoError::Oversized`], not an OOM.
//! * Every structural violation decodes to a distinct [`ProtoError`]
//!   variant; nothing in this module panics on arbitrary bytes.
//! * Collection counts inside bodies ([`MAX_BATCH`], [`MAX_ERR_MSG`],
//!   [`MAX_BMMC_BITS`]) are capped independently of `body_len`, so a
//!   valid-length frame cannot smuggle an absurd element count.

use std::fmt;

use hmm_plan::fnv1a;

/// Leading magic of every frame.
pub const MAGIC: [u8; 4] = *b"HMMS";

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header length: magic + version + kind + body length.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 4;

/// Trailing checksum length.
pub const CHECKSUM_LEN: usize = 8;

/// Hard cap on a frame body (64 MiB). Bounds every allocation the
/// decoder can be driven to; a `PERMUTE` of 2^24 u32 elements fits.
pub const MAX_BODY: usize = 1 << 26;

/// Hard cap on payload count in one `PERMUTE_BATCH`.
pub const MAX_BATCH: usize = 4096;

/// Hard cap on an `ERR` frame's message length in bytes.
pub const MAX_ERR_MSG: usize = 4096;

/// Largest BMMC matrix accepted over the wire (n = 2^26 elements).
pub const MAX_BMMC_BITS: u8 = 26;

/// Frame kind bytes (the `kind` header field).
pub mod kind {
    /// `REGISTER` request.
    pub const REGISTER: u8 = 1;
    /// `REGISTERED` response.
    pub const REGISTERED: u8 = 2;
    /// `PERMUTE` request.
    pub const PERMUTE: u8 = 3;
    /// `PERMUTED` response.
    pub const PERMUTED: u8 = 4;
    /// `PERMUTE_BATCH` request.
    pub const PERMUTE_BATCH: u8 = 5;
    /// `PERMUTED_BATCH` response.
    pub const PERMUTED_BATCH: u8 = 6;
    /// `STATS` request.
    pub const STATS: u8 = 7;
    /// `STATS_REPORT` response.
    pub const STATS_REPORT: u8 = 8;
    /// `DRAIN` request.
    pub const DRAIN: u8 = 9;
    /// `DRAIN_OK` response.
    pub const DRAIN_OK: u8 = 10;
    /// `ERR` response.
    pub const ERR: u8 = 15;
}

/// Typed error codes carried by [`Frame::Err`]. The server never answers
/// a malformed or refused request with a silent disconnect — it answers
/// with one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrCode {
    /// Request body decoded but violated protocol semantics.
    Malformed = 1,
    /// `PERMUTE`/`PERMUTE_BATCH` named a handle this session never
    /// registered (or already saw rejected).
    UnknownHandle = 2,
    /// Admission control: the session is at its registered-plan quota.
    AdmissionPlans = 3,
    /// Admission control: the request would exceed the session's
    /// in-flight job quota.
    AdmissionInFlight = 4,
    /// The fingerprint the client claimed does not match the permutation
    /// it sent — the payload was corrupted or mis-built client-side.
    FingerprintMismatch = 5,
    /// Plan construction failed server-side (`PlanError`).
    Plan = 6,
    /// The server is draining: no new registrations or jobs.
    Draining = 7,
    /// A payload's byte length does not match `n × width` for the handle.
    SizeMismatch = 8,
    /// Valid frame, unsupported content (element width, BMMC size…).
    Unsupported = 9,
    /// A frame-level decode failure (bad magic/version/checksum/length):
    /// the byte stream can no longer be trusted, so the server sends
    /// this and closes.
    BadFrame = 10,
    /// The connection sat idle past the server's read timeout; the
    /// server sends this and closes.
    IdleTimeout = 11,
    /// The server is at its global connection cap; sent immediately
    /// after accept, then the connection closes.
    Busy = 12,
}

impl ErrCode {
    /// Decode a wire code; unknown codes collapse to [`ErrCode::Malformed`]
    /// rather than failing the whole frame (forward compatibility).
    pub fn from_u16(v: u16) -> ErrCode {
        match v {
            1 => ErrCode::Malformed,
            2 => ErrCode::UnknownHandle,
            3 => ErrCode::AdmissionPlans,
            4 => ErrCode::AdmissionInFlight,
            5 => ErrCode::FingerprintMismatch,
            6 => ErrCode::Plan,
            7 => ErrCode::Draining,
            8 => ErrCode::SizeMismatch,
            9 => ErrCode::Unsupported,
            10 => ErrCode::BadFrame,
            11 => ErrCode::IdleTimeout,
            12 => ErrCode::Busy,
            _ => ErrCode::Malformed,
        }
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrCode::Malformed => "malformed",
            ErrCode::UnknownHandle => "unknown-handle",
            ErrCode::AdmissionPlans => "admission-plans",
            ErrCode::AdmissionInFlight => "admission-in-flight",
            ErrCode::FingerprintMismatch => "fingerprint-mismatch",
            ErrCode::Plan => "plan",
            ErrCode::Draining => "draining",
            ErrCode::SizeMismatch => "size-mismatch",
            ErrCode::Unsupported => "unsupported",
            ErrCode::BadFrame => "bad-frame",
            ErrCode::IdleTimeout => "idle-timeout",
            ErrCode::Busy => "busy",
        };
        f.write_str(name)
    }
}

/// Everything that can go wrong turning bytes into a [`Frame`] (or
/// moving them over a socket). Mirrors the plan codec's posture: typed,
/// never a panic, never an unbounded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// Input ended inside the named section.
    Truncated {
        /// Which part of the frame the input ran out in.
        what: &'static str,
    },
    /// The first four bytes were not `HMMS`.
    BadMagic,
    /// Unsupported protocol version byte.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// Unknown frame kind byte.
    BadKind {
        /// The kind byte received.
        got: u8,
    },
    /// `body_len` (or an inner count) exceeded its cap; rejected before
    /// any allocation of that size.
    Oversized {
        /// The declared length/count.
        len: u64,
        /// The cap it violated.
        max: u64,
    },
    /// Stored checksum did not match the recomputed one.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// Structurally valid frame whose body violated the grammar.
    Malformed {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Bytes left over after a complete buffer decode.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
    /// Socket-level I/O failure (mid-frame EOF included).
    Io {
        /// The `std::io::ErrorKind` of the failure.
        kind: std::io::ErrorKind,
        /// Which frame section was being transferred.
        context: &'static str,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Truncated { what } => write!(f, "truncated frame: ran out in {what}"),
            ProtoError::BadMagic => write!(f, "bad magic (expected HMMS)"),
            ProtoError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (speak {PROTOCOL_VERSION})"
                )
            }
            ProtoError::BadKind { got } => write!(f, "unknown frame kind {got}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "declared length {len} exceeds cap {max}")
            }
            ProtoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ProtoError::Malformed { reason } => write!(f, "malformed body: {reason}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
            ProtoError::Io { kind, context } => write!(f, "i/o error ({kind:?}) during {context}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Element type streamable through the protocol: fixed wire width,
/// little-endian. Implemented for `u32` and `u64` — the two widths the
/// engines serve.
pub trait Elem: Copy + Send + Sync + Default + PartialEq + fmt::Debug + 'static {
    /// Wire width in bytes.
    const WIDTH: usize;
    /// Append this element's little-endian bytes.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read one element from exactly `WIDTH` bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

impl Elem for u32 {
    const WIDTH: usize = 4;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        u32::from_le_bytes(bytes[..4].try_into().unwrap())
    }
}

impl Elem for u64 {
    const WIDTH: usize = 8;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes[..8].try_into().unwrap())
    }
}

/// Serialize a typed payload to its wire bytes (little-endian).
pub fn elems_to_bytes<T: Elem>(src: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() * T::WIDTH);
    for &v in src {
        v.write_le(&mut out);
    }
    out
}

/// Deserialize wire bytes into a typed payload; `None` if the byte
/// length is not a multiple of the element width.
pub fn bytes_to_elems<T: Elem>(bytes: &[u8]) -> Option<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return None;
    }
    Some(bytes.chunks_exact(T::WIDTH).map(T::read_le).collect())
}

/// How a `REGISTER` frame carries its permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermRepr {
    /// The explicit map: `n` destination indices, each a `u32`.
    Index(Vec<u32>),
    /// An affine GF(2) bit-matrix (BMMC): `bits` column masks plus an
    /// offset mask, expanded server-side. O(log² n) on the wire instead
    /// of O(n) — the cheap path for structured tenants.
    Bmmc {
        /// log2 of the permutation length.
        bits: u8,
        /// XOR offset mask (affine part).
        offset: u64,
        /// Column masks of the GF(2) matrix, length `bits`.
        cols: Vec<u64>,
    },
}

/// Server-wide counters reported by `STATS_REPORT`: both engines'
/// [`EngineStats`](hmm_native::EngineStats) summed, plus the front
/// door's own gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Plan-cache hits (both element widths).
    pub hits: u64,
    /// Plan-cache misses.
    pub misses: u64,
    /// König colorings actually performed by this process.
    pub builds: u64,
    /// Plans produced by the structured (BMMC) fast path.
    pub plans_structured: u64,
    /// Plans carrying affine descriptors (eligible for the map-free
    /// computed-index kernels).
    pub plans_affine: u64,
    /// Plans served (verified) from the on-disk store.
    pub store_hits: u64,
    /// Store files discarded as corrupt/colliding.
    pub store_rejects: u64,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that ran to completion (success or worker-side error).
    pub completed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Requests refused by admission control.
    pub admission_rejects: u64,
    /// Connections closed for sitting idle past the read timeout.
    pub idle_disconnects: u64,
    /// Connections refused at accept because the server was at its
    /// global connection cap.
    pub conn_rejects: u64,
    /// Plan handles currently registered across live sessions.
    pub registered_plans: u64,
    /// Live client connections.
    pub active_clients: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

/// Number of `u64` counter fields in a v1 `STATS_REPORT` body.
const STATS_FIELDS: u8 = 16;

/// One protocol message. `encode` and `decode` are exact inverses for
/// every well-formed frame (pinned by the proptest suite).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Register a permutation and receive a session-scoped handle.
    Register {
        /// Client-computed [`Permutation::fingerprint`]
        /// (`hmm_perm::Permutation::fingerprint`); `0` means "no claim"
        /// (used for BMMC registrations, where the client never
        /// materializes the index map). A nonzero claim is verified
        /// server-side.
        fingerprint: u64,
        /// Permutation length in elements.
        n: u64,
        /// Element width in bytes: 4 or 8.
        elem_width: u8,
        /// The permutation itself.
        perm: PermRepr,
    },
    /// Successful registration.
    Registered {
        /// Session-scoped plan handle.
        handle: u64,
    },
    /// Apply a registered plan to one payload.
    Permute {
        /// Handle from [`Frame::Registered`].
        handle: u64,
        /// `n × width` little-endian element bytes.
        payload: Vec<u8>,
    },
    /// Successful single permute.
    Permuted {
        /// The permuted payload, same length as the request's.
        payload: Vec<u8>,
    },
    /// Apply a registered plan to many payloads in one queue batch.
    PermuteBatch {
        /// Handle from [`Frame::Registered`].
        handle: u64,
        /// The payloads, each `n × width` bytes.
        payloads: Vec<Vec<u8>>,
    },
    /// Successful batch permute; outputs in request order.
    PermutedBatch {
        /// The permuted payloads.
        payloads: Vec<Vec<u8>>,
    },
    /// Request a [`ServerStats`] snapshot.
    Stats,
    /// Stats snapshot response.
    StatsReport(ServerStats),
    /// Graceful shutdown: stop accepting, flush the queue, then close.
    Drain,
    /// Drain completed; the connection closes after this frame.
    DrainOk,
    /// Typed refusal — the server's answer to anything it cannot serve.
    Err {
        /// Machine-readable error class.
        code: ErrCode,
        /// Human-readable diagnosis (≤ [`MAX_ERR_MSG`] bytes).
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Body codec helpers (cursor-style, mirroring the hmm-plan codec)
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(ProtoError::Truncated { what })?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated { what });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    fn finish(self) -> Result<(), ProtoError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(ProtoError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn malformed(reason: impl Into<String>) -> ProtoError {
    ProtoError::Malformed {
        reason: reason.into(),
    }
}

impl Frame {
    /// The frame's wire kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Register { .. } => kind::REGISTER,
            Frame::Registered { .. } => kind::REGISTERED,
            Frame::Permute { .. } => kind::PERMUTE,
            Frame::Permuted { .. } => kind::PERMUTED,
            Frame::PermuteBatch { .. } => kind::PERMUTE_BATCH,
            Frame::PermutedBatch { .. } => kind::PERMUTED_BATCH,
            Frame::Stats => kind::STATS,
            Frame::StatsReport(_) => kind::STATS_REPORT,
            Frame::Drain => kind::DRAIN,
            Frame::DrainOk => kind::DRAIN_OK,
            Frame::Err { .. } => kind::ERR,
        }
    }

    /// Short name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Register { .. } => "REGISTER",
            Frame::Registered { .. } => "REGISTERED",
            Frame::Permute { .. } => "PERMUTE",
            Frame::Permuted { .. } => "PERMUTED",
            Frame::PermuteBatch { .. } => "PERMUTE_BATCH",
            Frame::PermutedBatch { .. } => "PERMUTED_BATCH",
            Frame::Stats => "STATS",
            Frame::StatsReport(_) => "STATS_REPORT",
            Frame::Drain => "DRAIN",
            Frame::DrainOk => "DRAIN_OK",
            Frame::Err { .. } => "ERR",
        }
    }

    /// Encode the complete frame: header, body, trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        debug_assert!(body.len() <= MAX_BODY, "encoder produced oversized body");
        let mut out = Vec::with_capacity(HEADER_LEN + body.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(self.kind());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        let sum = fnv1a(&out);
        put_u64(&mut out, sum);
        out
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Register {
                fingerprint,
                n,
                elem_width,
                perm,
            } => {
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, *n);
                out.push(*elem_width);
                match perm {
                    PermRepr::Index(map) => {
                        out.push(0);
                        for &v in map {
                            put_u32(&mut out, v);
                        }
                    }
                    PermRepr::Bmmc { bits, offset, cols } => {
                        out.push(1);
                        out.push(*bits);
                        put_u64(&mut out, *offset);
                        for &c in cols {
                            put_u64(&mut out, c);
                        }
                    }
                }
            }
            Frame::Registered { handle } => put_u64(&mut out, *handle),
            Frame::Permute { handle, payload } => {
                put_u64(&mut out, *handle);
                out.extend_from_slice(payload);
            }
            Frame::Permuted { payload } => out.extend_from_slice(payload),
            Frame::PermuteBatch { handle, payloads } => {
                put_u64(&mut out, *handle);
                put_u32(&mut out, payloads.len() as u32);
                for p in payloads {
                    put_u32(&mut out, p.len() as u32);
                    out.extend_from_slice(p);
                }
            }
            Frame::PermutedBatch { payloads } => {
                put_u32(&mut out, payloads.len() as u32);
                for p in payloads {
                    put_u32(&mut out, p.len() as u32);
                    out.extend_from_slice(p);
                }
            }
            Frame::Stats | Frame::Drain | Frame::DrainOk => {}
            Frame::StatsReport(s) => {
                out.push(STATS_FIELDS);
                for v in [
                    s.hits,
                    s.misses,
                    s.builds,
                    s.plans_structured,
                    s.plans_affine,
                    s.store_hits,
                    s.store_rejects,
                    s.submitted,
                    s.completed,
                    s.cancelled,
                    s.admission_rejects,
                    s.idle_disconnects,
                    s.conn_rejects,
                    s.registered_plans,
                    s.active_clients,
                    u64::from(s.draining),
                ] {
                    put_u64(&mut out, v);
                }
            }
            Frame::Err { code, message } => {
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                let msg = message.as_bytes();
                let take = msg.len().min(MAX_ERR_MSG);
                put_u32(&mut out, take as u32);
                out.extend_from_slice(&msg[..take]);
            }
        }
        out
    }

    /// Decode a complete frame from a contiguous buffer (header, body,
    /// checksum). The streaming path ([`read_frame`]) performs the same
    /// checks incrementally; this entry exists for tests and in-memory
    /// use.
    ///
    /// [`read_frame`]: crate::framing::read_frame
    pub fn decode(bytes: &[u8]) -> Result<Frame, ProtoError> {
        if bytes.len() < HEADER_LEN {
            return Err(ProtoError::Truncated { what: "header" });
        }
        if bytes[..4] != MAGIC {
            return Err(ProtoError::BadMagic);
        }
        if bytes[4] != PROTOCOL_VERSION {
            return Err(ProtoError::BadVersion { got: bytes[4] });
        }
        let kind = bytes[5];
        let body_len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
        if body_len > MAX_BODY {
            return Err(ProtoError::Oversized {
                len: body_len as u64,
                max: MAX_BODY as u64,
            });
        }
        let total = HEADER_LEN + body_len + CHECKSUM_LEN;
        if bytes.len() < total {
            return Err(ProtoError::Truncated {
                what: if bytes.len() < HEADER_LEN + body_len {
                    "body"
                } else {
                    "checksum"
                },
            });
        }
        if bytes.len() > total {
            return Err(ProtoError::TrailingBytes {
                extra: bytes.len() - total,
            });
        }
        let sum_at = HEADER_LEN + body_len;
        let stored = u64::from_le_bytes(bytes[sum_at..].try_into().unwrap());
        let computed = fnv1a(&bytes[..sum_at]);
        if stored != computed {
            return Err(ProtoError::ChecksumMismatch { stored, computed });
        }
        Frame::decode_body(kind, &bytes[HEADER_LEN..sum_at])
    }

    /// Decode a frame body whose header (and checksum) already passed.
    pub fn decode_body(kind: u8, body: &[u8]) -> Result<Frame, ProtoError> {
        let mut r = Reader::new(body);
        let frame = match kind {
            kind::REGISTER => {
                let fingerprint = r.u64("register fingerprint")?;
                let n = r.u64("register n")?;
                let elem_width = r.u8("register width")?;
                let repr = r.u8("register repr tag")?;
                let perm = match repr {
                    0 => {
                        let entries = r.rest();
                        if !entries.len().is_multiple_of(4) {
                            return Err(malformed("index map bytes not a multiple of 4"));
                        }
                        let count = entries.len() / 4;
                        if count as u64 != n {
                            return Err(malformed(format!(
                                "index map has {count} entries, header claims n={n}"
                            )));
                        }
                        PermRepr::Index(
                            entries
                                .chunks_exact(4)
                                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                                .collect(),
                        )
                    }
                    1 => {
                        let bits = r.u8("bmmc bits")?;
                        if bits > MAX_BMMC_BITS {
                            return Err(ProtoError::Oversized {
                                len: u64::from(bits),
                                max: u64::from(MAX_BMMC_BITS),
                            });
                        }
                        let offset = r.u64("bmmc offset")?;
                        let mut cols = Vec::with_capacity(usize::from(bits));
                        for _ in 0..bits {
                            cols.push(r.u64("bmmc column")?);
                        }
                        if n != 1u64 << bits {
                            return Err(malformed(format!(
                                "bmmc bits={bits} implies n={}, header claims n={n}",
                                1u64 << bits
                            )));
                        }
                        PermRepr::Bmmc { bits, offset, cols }
                    }
                    other => return Err(malformed(format!("unknown perm repr tag {other}"))),
                };
                Frame::Register {
                    fingerprint,
                    n,
                    elem_width,
                    perm,
                }
            }
            kind::REGISTERED => Frame::Registered {
                handle: r.u64("registered handle")?,
            },
            kind::PERMUTE => {
                let handle = r.u64("permute handle")?;
                Frame::Permute {
                    handle,
                    payload: r.rest().to_vec(),
                }
            }
            kind::PERMUTED => Frame::Permuted {
                payload: r.rest().to_vec(),
            },
            kind::PERMUTE_BATCH => {
                let handle = r.u64("batch handle")?;
                let payloads = decode_payload_list(&mut r)?;
                Frame::PermuteBatch { handle, payloads }
            }
            kind::PERMUTED_BATCH => Frame::PermutedBatch {
                payloads: decode_payload_list(&mut r)?,
            },
            kind::STATS => Frame::Stats,
            kind::STATS_REPORT => {
                let fields = r.u8("stats field count")?;
                if fields != STATS_FIELDS {
                    return Err(malformed(format!(
                        "stats report carries {fields} fields, v1 defines {STATS_FIELDS}"
                    )));
                }
                let mut v = [0u64; STATS_FIELDS as usize];
                for slot in v.iter_mut() {
                    *slot = r.u64("stats field")?;
                }
                Frame::StatsReport(ServerStats {
                    hits: v[0],
                    misses: v[1],
                    builds: v[2],
                    plans_structured: v[3],
                    plans_affine: v[4],
                    store_hits: v[5],
                    store_rejects: v[6],
                    submitted: v[7],
                    completed: v[8],
                    cancelled: v[9],
                    admission_rejects: v[10],
                    idle_disconnects: v[11],
                    conn_rejects: v[12],
                    registered_plans: v[13],
                    active_clients: v[14],
                    draining: v[15] != 0,
                })
            }
            kind::DRAIN => Frame::Drain,
            kind::DRAIN_OK => Frame::DrainOk,
            kind::ERR => {
                let code = ErrCode::from_u16(r.u16("err code")?);
                let len = r.u32("err message length")? as usize;
                if len > MAX_ERR_MSG {
                    return Err(ProtoError::Oversized {
                        len: len as u64,
                        max: MAX_ERR_MSG as u64,
                    });
                }
                let bytes = r.take(len, "err message")?;
                let message = std::str::from_utf8(bytes)
                    .map_err(|_| malformed("err message is not utf-8"))?
                    .to_string();
                Frame::Err { code, message }
            }
            other => return Err(ProtoError::BadKind { got: other }),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Shared grammar of `PERMUTE_BATCH` / `PERMUTED_BATCH` bodies:
/// `count u32`, then `count × (len u32, bytes)`. The count cap plus the
/// already-capped body length bound total allocation.
fn decode_payload_list(r: &mut Reader<'_>) -> Result<Vec<Vec<u8>>, ProtoError> {
    let count = r.u32("batch count")? as usize;
    if count > MAX_BATCH {
        return Err(ProtoError::Oversized {
            len: count as u64,
            max: MAX_BATCH as u64,
        });
    }
    let mut payloads = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u32("batch payload length")? as usize;
        payloads.push(r.take(len, "batch payload")?.to_vec());
    }
    Ok(payloads)
}
