//! The `hmm-server` binary: `serve` runs the TCP front door until a
//! client drains it; `bench-client` is the load generator the
//! `repro serve` bench arm (and the cross-process conformance suite)
//! spawns as a real separate process.
//!
//! ```text
//! hmm-server serve [--addr 127.0.0.1:0] [--width W] [--store DIR]
//!                  [--max-plans N] [--max-inflight N]
//!                  [--idle-timeout-ms MS] [--max-conns N]
//! hmm-server bench-client --addr HOST:PORT [--n N] [--family NAME]
//!                  [--seed S] [--reps R] [--batch K] [--u64]
//! ```
//!
//! `serve` prints exactly one `LISTENING <addr>` line once the port is
//! bound (machine-readable: spawners parse it to learn the OS-assigned
//! port), then blocks until a `DRAIN` arrives and prints `DRAINED`.
//!
//! `bench-client` registers one family permutation, verifies the first
//! response against the naive `b[P[i]] = a[i]` reference, then streams
//! `--reps` timed permutes and prints one parseable line:
//! `CLIENT <family> <n> <reps> <seconds> <elements_per_sec>`.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use hmm_perm::families::Family;
use hmm_server::{AdmissionConfig, Client, Elem, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let rest = if args.is_empty() { &[][..] } else { &args[1..] };
    match mode {
        Some("serve") => serve(rest),
        Some("bench-client") => bench_client(rest),
        _ => {
            eprintln!("usage: hmm-server <serve|bench-client> [flags]");
            ExitCode::FAILURE
        }
    }
}

/// Minimal `--flag value` lookup.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value for {name}: {raw}")),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let addr = flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:0")
            .to_string();
        let width = parse(args, "--width", 32usize)?;
        let defaults = AdmissionConfig::default();
        let admission = AdmissionConfig {
            max_plans: parse(args, "--max-plans", defaults.max_plans)?,
            max_inflight: parse(args, "--max-inflight", defaults.max_inflight)?,
        };
        let store_dir = flag_value(args, "--store").map(Into::into);
        let config_defaults = ServerConfig::default();
        // 0 disables the idle reap entirely.
        let idle_ms = parse(
            args,
            "--idle-timeout-ms",
            config_defaults
                .idle_timeout
                .map_or(0, |t| t.as_millis() as u64),
        )?;
        let server = Server::bind(
            addr.as_str(),
            ServerConfig {
                width,
                admission,
                store_dir,
                idle_timeout: (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms)),
                max_connections: parse(args, "--max-conns", config_defaults.max_connections)?,
            },
        )
        .map_err(|e| e.to_string())?;
        // The spawner blocks on this line to learn the bound port.
        println!("LISTENING {}", server.local_addr());
        std::io::stdout().flush().ok();
        server.wait_drained();
        println!("DRAINED");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hmm-server serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn family_by_name(name: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == name)
}

/// The conformance suite's standard input pattern: distinct-ish values
/// with structure a stuck-at-zero bug cannot fake.
fn input<T: Elem + From<u32>>(n: usize) -> Vec<T> {
    (0..n as u32)
        .map(|v| T::from(v.wrapping_mul(0x9e37_79b9) ^ 0x5eed))
        .collect()
}

fn bench_client(args: &[String]) -> ExitCode {
    match bench_client_inner(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hmm-server bench-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn bench_client_inner(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").ok_or("missing --addr")?;
    let n = parse(args, "--n", 1usize << 16)?;
    let reps = parse(args, "--reps", 8usize)?;
    let batch = parse(args, "--batch", 1usize)?;
    let seed = parse(args, "--seed", 1u64)?;
    let family_name = flag_value(args, "--family").unwrap_or("random");
    let family =
        family_by_name(family_name).ok_or_else(|| format!("unknown family {family_name}"))?;
    let p = family.build(n, seed).map_err(|e| e.to_string())?;

    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    if has_flag(args, "--u64") {
        drive::<u64>(&mut client, &p, family_name, n, reps, batch)
    } else {
        drive::<u32>(&mut client, &p, family_name, n, reps, batch)
    }
}

fn drive<T: Elem + From<u32>>(
    client: &mut Client,
    p: &hmm_perm::Permutation,
    family: &str,
    n: usize,
    reps: usize,
    batch: usize,
) -> Result<(), String> {
    let handle = client.register::<T>(p).map_err(|e| e.to_string())?;
    let src = input::<T>(n);

    // First response is verified against the naive reference — the
    // bench refuses to time a wrong answer.
    let out = client.permute(&handle, &src).map_err(|e| e.to_string())?;
    let mut expect = vec![T::default(); n];
    for (i, &v) in src.iter().enumerate() {
        expect[p.apply(i)] = v;
    }
    if out != expect {
        return Err("server output diverges from naive reference".into());
    }

    let start = Instant::now();
    if batch > 1 {
        let srcs: Vec<Vec<T>> = (0..batch).map(|_| src.clone()).collect();
        let rounds = reps.div_ceil(batch);
        for _ in 0..rounds {
            client
                .permute_batch(&handle, &srcs)
                .map_err(|e| e.to_string())?;
        }
    } else {
        for _ in 0..reps {
            client.permute(&handle, &src).map_err(|e| e.to_string())?;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let total = if batch > 1 {
        reps.div_ceil(batch) * batch
    } else {
        reps
    };
    let eps = (total * n) as f64 / seconds.max(1e-12);
    println!("CLIENT {family} {n} {total} {seconds:.6} {eps:.1}");
    Ok(())
}
