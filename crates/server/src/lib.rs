//! # hmm-server — permutation-as-a-service over a std-only TCP protocol
//!
//! The plan cache is the asset: König/BMMC compilation is expensive
//! once, then every caller streams payloads through the cached plan.
//! [`SharedEngine`](hmm_native::SharedEngine) already amortizes it
//! across threads of one process; this crate is the network front door
//! that amortizes it across *processes* — the fourth front door beside
//! the blocking API, the submission queue, and the batch path.
//!
//! Layering (all `std`, no async runtime — the workspace's
//! vendored-deps constraint):
//!
//! * [`proto`] — the v1 frame grammar: length-prefixed bodies, FNV-1a
//!   checksums (the same hash as `hmm-plan` plan files), typed
//!   [`ErrCode`]s. Decoding never panics and never allocates more than
//!   [`proto::MAX_BODY`] on hostile input.
//! * [`framing`] — streaming frame I/O over `Read`/`Write`.
//! * [`admission`] — per-session quotas (registered plans, in-flight
//!   jobs), layered above the queue's global backpressure.
//! * [`server`] — thread-per-connection accept loop; each connection
//!   gets a private handle namespace and drains into the engine queue.
//! * [`client`] — the blocking typed client.
//!
//! ```no_run
//! use hmm_server::{Client, Server, ServerConfig};
//! use hmm_perm::families;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let p = families::bit_reversal(1 << 10).unwrap();
//! let handle = client.register::<u32>(&p).unwrap();
//! let src: Vec<u32> = (0..1u32 << 10).collect();
//! let out = client.permute(&handle, &src).unwrap();
//! assert_eq!(out[p.apply(3)], src[3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod client;
pub mod framing;
pub mod proto;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionError};
pub use client::{Client, ClientError, PlanHandle};
pub use framing::{read_frame, write_frame};
pub use proto::{
    bytes_to_elems, elems_to_bytes, Elem, ErrCode, Frame, PermRepr, ProtoError, ServerStats,
    MAX_BATCH, MAX_BODY, MAX_ERR_MSG, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerError};
