//! The server: a thread-per-connection accept loop draining into the
//! two `SharedEngine` queues (one per element width).
//!
//! Shape of the thing:
//!
//! * [`Server::bind`] binds a `TcpListener`, builds one
//!   `SharedEngine<u32>` and one `SharedEngine<u64>` (optionally
//!   sharing a single on-disk [`PlanStore`](hmm_plan::PlanStore)
//!   directory — `PlanIr` is element-agnostic, so both widths reuse
//!   the same plan files), and spawns the accept thread.
//! * Each accepted connection gets its own handler thread and its own
//!   *session*: a private handle namespace mapping `u64` handles to
//!   registered permutations. Handles never leak across connections,
//!   and a disconnect releases everything the session registered.
//! * `PERMUTE`/`PERMUTE_BATCH` route through
//!   [`SharedEngine::submit`]/[`submit_batch`] — the same bounded MPMC
//!   queue, backpressure, and panic isolation every in-process caller
//!   gets. A frame is read *completely* before anything is submitted,
//!   so a client dying mid-payload can never strand a queue slot: the
//!   partial frame surfaces as an I/O error and the handler just reaps
//!   the connection.
//! * `DRAIN` (or [`Server::drain`]) stops the accept loop, waits for
//!   `submitted == completed + cancelled` on both engines, then
//!   answers `DRAIN_OK` and closes.
//!
//! [`SharedEngine::submit`]: hmm_native::SharedEngine::submit
//! [`submit_batch`]: hmm_native::SharedEngine::submit_batch

use std::collections::HashMap;
use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hmm_native::{JobError, SharedEngine};
use hmm_perm::{Bmmc, Permutation};

use crate::admission::AdmissionConfig;
use crate::framing::{read_frame, write_frame};
use crate::proto::{
    bytes_to_elems, elems_to_bytes, Elem, ErrCode, Frame, PermRepr, ProtoError, ServerStats,
    MAX_BMMC_BITS,
};

/// Server construction / runtime errors.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure binding or accepting.
    Io(std::io::Error),
    /// Engine construction failed (e.g. the plan-store directory).
    Plan(hmm_plan::PlanError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Plan(e) => write!(f, "server engine error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Schedule width `w` for both engines (the paper's warp width).
    pub width: usize,
    /// Per-session quotas.
    pub admission: AdmissionConfig,
    /// Optional `PlanStore` directory shared by both engines; restarts
    /// against a warm store complete registrations with `builds == 0`.
    pub store_dir: Option<PathBuf>,
    /// Close connections that send no complete frame for this long
    /// (`None` disables the reap). A tripped timeout is answered with a
    /// typed `ERR idle-timeout` before the close and counted in
    /// [`ServerStats::idle_disconnects`]. A client trickling bytes
    /// mid-frame slower than this is reaped too — the timeout bounds
    /// how long a handler thread can be held by one silent peer.
    pub idle_timeout: Option<Duration>,
    /// Global cap on concurrently live connections. An accept past the
    /// cap is answered with a typed `ERR busy` and closed immediately,
    /// counted in [`ServerStats::conn_rejects`] — the thread-per-
    /// connection model is only safe with a bound on the thread count.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            width: 32,
            admission: AdmissionConfig::default(),
            store_dir: None,
            idle_timeout: Some(Duration::from_secs(60)),
            max_connections: 256,
        }
    }
}

/// State shared by the accept loop, every connection handler, and the
/// owning [`Server`] handle.
struct Shared {
    addr: SocketAddr,
    engine_u32: SharedEngine<u32>,
    engine_u64: SharedEngine<u64>,
    admission: AdmissionConfig,
    idle_timeout: Option<Duration>,
    max_connections: usize,
    draining: AtomicBool,
    drained: Mutex<bool>,
    drained_cv: Condvar,
    registered_plans: AtomicU64,
    active_clients: AtomicU64,
    idle_disconnects: AtomicU64,
    conn_rejects: AtomicU64,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let a = self.engine_u32.stats();
        let b = self.engine_u64.stats();
        ServerStats {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
            builds: a.builds + b.builds,
            plans_structured: a.plans_structured + b.plans_structured,
            plans_affine: a.plans_affine + b.plans_affine,
            store_hits: a.store_hits + b.store_hits,
            store_rejects: a.store_rejects + b.store_rejects,
            submitted: a.submitted + b.submitted,
            completed: a.completed + b.completed,
            cancelled: a.cancelled + b.cancelled,
            admission_rejects: a.admission_rejects + b.admission_rejects,
            idle_disconnects: self.idle_disconnects.load(Ordering::Relaxed),
            conn_rejects: self.conn_rejects.load(Ordering::Relaxed),
            registered_plans: self.registered_plans.load(Ordering::Relaxed),
            active_clients: self.active_clients.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, then block until both engine queues have fully
    /// flushed (`submitted == completed + cancelled`). Idempotent; safe
    /// to call from a handler thread (it joins the *accept* thread, not
    /// itself). Does NOT signal [`Server::wait_drained`] — callers do
    /// that via [`Shared::mark_drained`] once any pending `DRAIN_OK`
    /// reply is on the wire, so a `serve` process cannot exit between
    /// the flush and the acknowledgement.
    fn flush_for_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // The accept thread is parked in `accept()`; a throwaway
        // connection to ourselves wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self
            .accept
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
        self.engine_u32.drain();
        self.engine_u64.drain();
    }

    /// Wake [`Server::wait_drained`] waiters. Only call after
    /// [`Shared::flush_for_drain`].
    fn mark_drained(&self) {
        let mut done = self
            .drained
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = true;
        self.drained_cv.notify_all();
    }
}

/// A running permutation server. Dropping the handle stops the accept
/// loop (without flushing); call [`Server::drain`] first for a graceful
/// shutdown.
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (use port 0 for an OS-assigned port), build both
    /// engines, and start accepting.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (engine_u32, engine_u64) = match &config.store_dir {
            Some(dir) => (
                SharedEngine::with_store(config.width, dir.clone()).map_err(ServerError::Plan)?,
                SharedEngine::with_store(config.width, dir.clone()).map_err(ServerError::Plan)?,
            ),
            None => (
                SharedEngine::new(config.width),
                SharedEngine::new(config.width),
            ),
        };
        let shared = Arc::new(Shared {
            addr,
            engine_u32,
            engine_u64,
            admission: config.admission,
            idle_timeout: config.idle_timeout,
            max_connections: config.max_connections.max(1),
            draining: AtomicBool::new(false),
            drained: Mutex::new(false),
            drained_cv: Condvar::new(),
            registered_plans: AtomicU64::new(0),
            active_clients: AtomicU64::new(0),
            idle_disconnects: AtomicU64::new(0),
            conn_rejects: AtomicU64::new(0),
            accept: Mutex::new(None),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("hmm-server-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        *shared
            .accept
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(accept);
        Ok(Server { shared })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Snapshot of the aggregated server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop accepting, flush both queues, then
    /// return. Equivalent to a client sending `DRAIN`.
    pub fn drain(&self) {
        self.shared.flush_for_drain();
        self.shared.mark_drained();
    }

    /// Block until a drain (from any source — [`Server::drain`] or a
    /// client's `DRAIN` frame) has completed.
    pub fn wait_drained(&self) {
        let mut done = self
            .shared
            .drained
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*done {
            done = self
                .shared
                .drained_cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Stop the accept loop so the listener port is released; no
        // flush — `drain()` is the graceful path.
        self.shared.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(handle) = self
            .shared
            .accept
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Global connection cap: refuse with a typed ERR instead of
        // spawning an unbounded number of handler threads. The reply is
        // best-effort — a peer that already vanished just loses it.
        if shared.active_clients.load(Ordering::Relaxed) >= shared.max_connections as u64 {
            shared.conn_rejects.fetch_add(1, Ordering::Relaxed);
            let mut writer = BufWriter::new(stream);
            let _ = write_frame(
                &mut writer,
                &Frame::Err {
                    code: ErrCode::Busy,
                    message: format!("server at its connection cap ({})", shared.max_connections),
                },
            );
            continue;
        }
        shared.active_clients.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("hmm-server-conn".into())
            .spawn(move || session_loop(conn_shared, stream));
        if spawned.is_err() {
            shared.active_clients.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// One registered plan in a session's private namespace.
struct Registered {
    perm: Arc<Permutation>,
    elem_width: u8,
}

/// Per-connection state: the handle namespace. Handles are dense
/// session-scoped integers; nothing a client sends can reach another
/// session's plans.
struct Session {
    plans: HashMap<u64, Registered>,
    next_handle: u64,
}

/// What the dispatcher decided to do with the connection after a reply.
enum After {
    KeepOpen,
    Close,
}

fn session_loop(shared: Arc<Shared>, stream: TcpStream) {
    let mut session = Session {
        plans: HashMap::new(),
        next_handle: 1,
    };
    // The read timeout is a socket-level option, shared with the clone
    // below; a tripped timeout surfaces from `read_frame` as an I/O
    // error with `WouldBlock`/`TimedOut` (platform-dependent which).
    if let Some(t) = shared.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
    }
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.active_clients.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            // The idle reap: no complete frame arrived within the
            // timeout. Diagnose with a typed ERR (best effort), count
            // it, and release the handler thread.
            Err(ProtoError::Io {
                kind: std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut,
                ..
            }) if shared.idle_timeout.is_some() => {
                shared.idle_disconnects.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut writer,
                    &Frame::Err {
                        code: ErrCode::IdleTimeout,
                        message: format!(
                            "connection idle past the {:?} read timeout",
                            shared.idle_timeout.unwrap_or_default()
                        ),
                    },
                );
                break;
            }
            // Clean close between frames, or the socket died (including
            // mid-payload). Nothing was submitted for a partial frame —
            // frames are fully read before dispatch — so there is no
            // queue slot to reap; just release the session.
            Err(ProtoError::Closed) | Err(ProtoError::Io { .. }) => break,
            // Stream-level corruption: the byte stream can no longer be
            // trusted to be frame-aligned. Diagnose, then close.
            Err(
                e @ (ProtoError::BadMagic
                | ProtoError::BadVersion { .. }
                | ProtoError::ChecksumMismatch { .. }
                | ProtoError::Oversized { .. }),
            ) => {
                let _ = write_frame(
                    &mut writer,
                    &Frame::Err {
                        code: ErrCode::BadFrame,
                        message: e.to_string(),
                    },
                );
                break;
            }
            // Body-level violation: the frame was fully consumed, the
            // stream is still aligned — diagnose and keep serving.
            Err(e) => {
                if write_frame(
                    &mut writer,
                    &Frame::Err {
                        code: ErrCode::Malformed,
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };

        // DRAIN is special-cased so the `DRAIN_OK` is flushed to the
        // socket *before* `wait_drained` waiters (e.g. the `serve`
        // binary's main thread) can exit the process.
        if matches!(frame, Frame::Drain) {
            shared.flush_for_drain();
            let _ = write_frame(&mut writer, &Frame::DrainOk);
            shared.mark_drained();
            break;
        }

        let (reply, after) = respond(&shared, &mut session, frame);
        if write_frame(&mut writer, &reply).is_err() {
            break;
        }
        if matches!(after, After::Close) {
            break;
        }
    }

    shared
        .registered_plans
        .fetch_sub(session.plans.len() as u64, Ordering::Relaxed);
    shared.active_clients.fetch_sub(1, Ordering::Relaxed);
}

fn err(code: ErrCode, message: impl Into<String>) -> (Frame, After) {
    (
        Frame::Err {
            code,
            message: message.into(),
        },
        After::KeepOpen,
    )
}

fn respond(shared: &Shared, session: &mut Session, frame: Frame) -> (Frame, After) {
    match frame {
        Frame::Register {
            fingerprint,
            n,
            elem_width,
            perm,
        } => register(shared, session, fingerprint, n, elem_width, perm),
        Frame::Permute { handle, payload } => {
            permute(shared, session, handle, vec![payload], false)
        }
        Frame::PermuteBatch { handle, payloads } => {
            permute(shared, session, handle, payloads, true)
        }
        Frame::Stats => (Frame::StatsReport(shared.stats()), After::KeepOpen),
        // Handled in `session_loop` (reply-ordering constraint).
        Frame::Drain => (Frame::DrainOk, After::Close),
        other => err(
            ErrCode::Malformed,
            format!("unexpected {} frame from client", other.kind_name()),
        ),
    }
}

fn register(
    shared: &Shared,
    session: &mut Session,
    fingerprint: u64,
    n: u64,
    elem_width: u8,
    perm: PermRepr,
) -> (Frame, After) {
    if shared.draining.load(Ordering::SeqCst) {
        return err(ErrCode::Draining, "server is draining");
    }
    if elem_width != 4 && elem_width != 8 {
        return err(
            ErrCode::Unsupported,
            format!("element width {elem_width} (serve 4 and 8)"),
        );
    }
    let note_reject = || {
        if elem_width == 4 {
            shared.engine_u32.note_admission_reject();
        } else {
            shared.engine_u64.note_admission_reject();
        }
    };
    if let Err(e) = shared.admission.admit_plan(session.plans.len()) {
        note_reject();
        return err(e.code(), e.to_string());
    }

    let p = match build_permutation(n, perm) {
        Ok(p) => p,
        Err((code, msg)) => return err(code, msg),
    };
    // Server-side integrity check: a nonzero claim must match what the
    // bytes actually decode to (the same fingerprint the engine keys
    // its verified cache on).
    let computed = p.fingerprint();
    if fingerprint != 0 && fingerprint != computed {
        return err(
            ErrCode::FingerprintMismatch,
            format!("claimed {fingerprint:#018x}, permutation hashes to {computed:#018x}"),
        );
    }

    // Warm the verified plan cache now, so the first PERMUTE is pure
    // execution and registration errors surface at registration time.
    let planned = match elem_width {
        4 => shared.engine_u32.plan(&p).map(|_| ()),
        _ => shared.engine_u64.plan(&p).map(|_| ()),
    };
    if let Err(e) = planned {
        return err(ErrCode::Plan, e.to_string());
    }

    let handle = session.next_handle;
    session.next_handle += 1;
    session.plans.insert(
        handle,
        Registered {
            perm: Arc::new(p),
            elem_width,
        },
    );
    shared.registered_plans.fetch_add(1, Ordering::Relaxed);
    (Frame::Registered { handle }, After::KeepOpen)
}

fn build_permutation(n: u64, perm: PermRepr) -> Result<Permutation, (ErrCode, String)> {
    match perm {
        PermRepr::Index(map) => {
            let map: Vec<usize> = map.into_iter().map(|v| v as usize).collect();
            debug_assert_eq!(map.len() as u64, n, "decoder enforces entries == n");
            Permutation::from_vec(map).map_err(|e| {
                (
                    ErrCode::Malformed,
                    format!("index map is not a permutation: {e}"),
                )
            })
        }
        PermRepr::Bmmc { bits, offset, cols } => {
            if bits > MAX_BMMC_BITS {
                return Err((
                    ErrCode::Unsupported,
                    format!("bmmc bits {bits} exceeds cap {MAX_BMMC_BITS}"),
                ));
            }
            let cols: Vec<usize> = cols.into_iter().map(|c| c as usize).collect();
            let m = Bmmc::from_cols(cols, offset as usize)
                .map_err(|e| (ErrCode::Malformed, format!("bmmc matrix rejected: {e}")))?;
            let p = m.to_permutation();
            if p.len() as u64 != n {
                return Err((
                    ErrCode::SizeMismatch,
                    format!("bmmc expands to n={}, header claims n={n}", p.len()),
                ));
            }
            Ok(p)
        }
    }
}

fn permute(
    shared: &Shared,
    session: &mut Session,
    handle: u64,
    payloads: Vec<Vec<u8>>,
    batch: bool,
) -> (Frame, After) {
    if shared.draining.load(Ordering::SeqCst) {
        return err(ErrCode::Draining, "server is draining");
    }
    let registered = match session.plans.get(&handle) {
        Some(r) => r,
        None => {
            return err(
                ErrCode::UnknownHandle,
                format!("handle {handle} is not registered on this connection"),
            )
        }
    };
    if let Err(e) = shared.admission.admit_jobs(payloads.len()) {
        if registered.elem_width == 4 {
            shared.engine_u32.note_admission_reject();
        } else {
            shared.engine_u64.note_admission_reject();
        }
        return err(e.code(), e.to_string());
    }

    let perm = Arc::clone(&registered.perm);
    let outcome = if registered.elem_width == 4 {
        run_jobs::<u32>(&shared.engine_u32, &perm, payloads)
    } else {
        run_jobs::<u64>(&shared.engine_u64, &perm, payloads)
    };
    match outcome {
        Ok(mut outputs) => {
            if batch {
                (Frame::PermutedBatch { payloads: outputs }, After::KeepOpen)
            } else {
                (
                    Frame::Permuted {
                        payload: outputs.pop().unwrap_or_default(),
                    },
                    After::KeepOpen,
                )
            }
        }
        Err((code, msg)) => err(code, msg),
    }
}

fn job_err(e: JobError) -> (ErrCode, String) {
    (ErrCode::Plan, format!("job failed: {e}"))
}

/// Decode payloads, route them through the engine's submission queue,
/// and re-encode the outputs. The queue path — not a direct `permute`
/// call — so network tenants share backpressure, stats, and panic
/// isolation with every in-process submitter.
fn run_jobs<T: Elem>(
    engine: &SharedEngine<T>,
    perm: &Permutation,
    payloads: Vec<Vec<u8>>,
) -> Result<Vec<Vec<u8>>, (ErrCode, String)> {
    let n = perm.len();
    let mut srcs: Vec<Vec<T>> = Vec::with_capacity(payloads.len());
    for (i, bytes) in payloads.iter().enumerate() {
        if bytes.len() != n * T::WIDTH {
            return Err((
                ErrCode::SizeMismatch,
                format!(
                    "payload {i} is {} bytes, plan needs n×width = {}×{} = {}",
                    bytes.len(),
                    n,
                    T::WIDTH,
                    n * T::WIDTH
                ),
            ));
        }
        srcs.push(bytes_to_elems::<T>(bytes).expect("length checked above"));
    }

    if srcs.len() == 1 {
        let src = srcs.pop().expect("len == 1");
        let report = engine
            .submit(perm, src, vec![T::default(); n])
            .wait()
            .map_err(job_err)?;
        return Ok(vec![elems_to_bytes(&report.dst)]);
    }

    let jobs: Vec<(Arc<[T]>, Vec<T>)> = srcs
        .into_iter()
        .map(|s| (Arc::from(s), vec![T::default(); n]))
        .collect();
    let reports = engine.submit_batch(perm, jobs).wait();
    let mut outputs = Vec::with_capacity(reports.len());
    for report in reports {
        outputs.push(elems_to_bytes(&report.map_err(job_err)?.dst));
    }
    Ok(outputs)
}
