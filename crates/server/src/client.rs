//! The client library: a blocking, typed façade over the wire protocol.
//!
//! One [`Client`] is one connection — and therefore one server-side
//! session/handle namespace. The client computes the permutation
//! fingerprint locally before a [`Client::register`], so the server can
//! verify the bytes survived the trip; BMMC registrations
//! ([`Client::register_bmmc`]) send the O(log² n) matrix instead of the
//! O(n) map and skip the claim (the server fingerprints the expansion).

use std::io::{BufReader, BufWriter};
use std::marker::PhantomData;
use std::net::{TcpStream, ToSocketAddrs};

use hmm_perm::{Bmmc, Permutation};

use crate::framing::{read_frame, write_frame};
use crate::proto::{
    bytes_to_elems, elems_to_bytes, Elem, ErrCode, Frame, PermRepr, ProtoError, ServerStats,
};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Wire-level failure (codec or socket).
    Proto(ProtoError),
    /// The server answered with a typed `ERR` frame.
    Server {
        /// Machine-readable error class.
        code: ErrCode,
        /// The server's diagnosis.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong kind.
    Unexpected {
        /// Kind name of the frame received.
        got: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code}): {message}")
            }
            ClientError::Unexpected { got } => write!(f, "unexpected {got} frame from server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A registered plan, typed by element width. Only valid on the
/// [`Client`] that registered it (handles are session-scoped).
#[derive(Debug, Clone, Copy)]
pub struct PlanHandle<T> {
    id: u64,
    n: usize,
    _elem: PhantomData<T>,
}

impl<T> PlanHandle<T> {
    /// The wire handle id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The plan's permutation length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the (degenerate) empty plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// One blocking connection to an `hmm-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| {
            ClientError::Proto(ProtoError::Io {
                kind: e.kind(),
                context: "connect",
            })
        })?;
        let reader_stream = stream.try_clone().map_err(|e| {
            ClientError::Proto(ProtoError::Io {
                kind: e.kind(),
                context: "connect",
            })
        })?;
        Ok(Client {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response round trip; `ERR` frames become
    /// [`ClientError::Server`].
    fn roundtrip(&mut self, request: &Frame) -> Result<Frame> {
        write_frame(&mut self.writer, request)?;
        match read_frame(&mut self.reader)? {
            Frame::Err { code, message } => Err(ClientError::Server { code, message }),
            reply => Ok(reply),
        }
    }

    /// Register an explicit permutation; the fingerprint claim is
    /// computed here and verified server-side.
    pub fn register<T: Elem>(&mut self, p: &Permutation) -> Result<PlanHandle<T>> {
        let map: Vec<u32> = p.as_slice().iter().map(|&v| v as u32).collect();
        let request = Frame::Register {
            fingerprint: p.fingerprint(),
            n: p.len() as u64,
            elem_width: T::WIDTH as u8,
            perm: PermRepr::Index(map),
        };
        self.finish_register(request, p.len())
    }

    /// Register an affine (BMMC) permutation by its GF(2) matrix —
    /// O(log² n) bytes on the wire; the server expands and fingerprints
    /// it.
    pub fn register_bmmc<T: Elem>(&mut self, m: &Bmmc) -> Result<PlanHandle<T>> {
        let bits = m.bits();
        let cols: Vec<u64> = (0..bits).map(|j| m.col(j) as u64).collect();
        let request = Frame::Register {
            fingerprint: 0,
            n: m.len() as u64,
            elem_width: T::WIDTH as u8,
            perm: PermRepr::Bmmc {
                bits: bits as u8,
                offset: m.offset() as u64,
                cols,
            },
        };
        self.finish_register(request, m.len())
    }

    fn finish_register<T: Elem>(&mut self, request: Frame, n: usize) -> Result<PlanHandle<T>> {
        match self.roundtrip(&request)? {
            Frame::Registered { handle } => Ok(PlanHandle {
                id: handle,
                n,
                _elem: PhantomData,
            }),
            other => Err(ClientError::Unexpected {
                got: other.kind_name(),
            }),
        }
    }

    /// Apply a registered plan to one payload.
    pub fn permute<T: Elem>(&mut self, handle: &PlanHandle<T>, src: &[T]) -> Result<Vec<T>> {
        let reply = self.roundtrip(&Frame::Permute {
            handle: handle.id,
            payload: elems_to_bytes(src),
        })?;
        match reply {
            Frame::Permuted { payload } => bytes_to_elems(&payload).ok_or_else(|| {
                ClientError::Proto(ProtoError::Malformed {
                    reason: "permuted payload length not a multiple of width".into(),
                })
            }),
            other => Err(ClientError::Unexpected {
                got: other.kind_name(),
            }),
        }
    }

    /// Apply a registered plan to many payloads in one queue batch;
    /// outputs come back in request order.
    pub fn permute_batch<T: Elem>(
        &mut self,
        handle: &PlanHandle<T>,
        srcs: &[Vec<T>],
    ) -> Result<Vec<Vec<T>>> {
        let reply = self.roundtrip(&Frame::PermuteBatch {
            handle: handle.id,
            payloads: srcs.iter().map(|s| elems_to_bytes(s)).collect(),
        })?;
        match reply {
            Frame::PermutedBatch { payloads } => payloads
                .iter()
                .map(|p| {
                    bytes_to_elems(p).ok_or_else(|| {
                        ClientError::Proto(ProtoError::Malformed {
                            reason: "permuted payload length not a multiple of width".into(),
                        })
                    })
                })
                .collect(),
            other => Err(ClientError::Unexpected {
                got: other.kind_name(),
            }),
        }
    }

    /// Fetch the server's aggregated counters.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.roundtrip(&Frame::Stats)? {
            Frame::StatsReport(s) => Ok(s),
            other => Err(ClientError::Unexpected {
                got: other.kind_name(),
            }),
        }
    }

    /// Ask the server to drain: stop accepting, flush the queue, close.
    /// Returns once `DRAIN_OK` arrives (the connection is then dead).
    pub fn drain(&mut self) -> Result<()> {
        match self.roundtrip(&Frame::Drain)? {
            Frame::DrainOk => Ok(()),
            other => Err(ClientError::Unexpected {
                got: other.kind_name(),
            }),
        }
    }
}
