//! Wire-protocol codec suite: round-trip every frame type, then decoder
//! vs hostile bytes — truncation, oversized length prefixes, bit-flipped
//! checksums, wrong magic/version — asserting typed errors and bounded
//! allocation, mirroring the plan-codec corruption tests.

use proptest::prelude::*;

use hmm_server::proto::{
    kind, Frame, PermRepr, ProtoError, ServerStats, CHECKSUM_LEN, HEADER_LEN, MAGIC, MAX_BATCH,
    MAX_BODY, MAX_ERR_MSG,
};
use hmm_server::{read_frame, ErrCode};

// ---------------------------------------------------------------------------
// Exhaustive fixed round trips: one of every frame kind
// ---------------------------------------------------------------------------

fn one_of_each() -> Vec<Frame> {
    vec![
        Frame::Register {
            fingerprint: 0xdead_beef_cafe_f00d,
            n: 4,
            elem_width: 4,
            perm: PermRepr::Index(vec![2, 3, 0, 1]),
        },
        Frame::Register {
            fingerprint: 0,
            n: 8,
            elem_width: 8,
            perm: PermRepr::Bmmc {
                bits: 3,
                offset: 0b101,
                cols: vec![0b100, 0b010, 0b001],
            },
        },
        Frame::Registered { handle: 42 },
        Frame::Permute {
            handle: 7,
            payload: vec![1, 2, 3, 4, 5, 6, 7, 8],
        },
        Frame::Permuted {
            payload: vec![8, 7, 6, 5],
        },
        Frame::PermuteBatch {
            handle: 9,
            payloads: vec![vec![1, 2, 3, 4], vec![], vec![9, 9, 9, 9]],
        },
        Frame::PermutedBatch {
            payloads: vec![vec![4, 3, 2, 1], vec![0, 0, 0, 0]],
        },
        Frame::Stats,
        Frame::StatsReport(ServerStats {
            hits: 1,
            misses: 2,
            builds: 3,
            plans_structured: 4,
            plans_affine: 5,
            store_hits: 6,
            store_rejects: 7,
            submitted: 8,
            completed: 9,
            cancelled: 10,
            admission_rejects: 11,
            idle_disconnects: 12,
            conn_rejects: 13,
            registered_plans: 14,
            active_clients: 15,
            draining: true,
        }),
        Frame::Drain,
        Frame::DrainOk,
        Frame::Err {
            code: ErrCode::UnknownHandle,
            message: "no such handle".into(),
        },
    ]
}

#[test]
fn every_frame_kind_round_trips() {
    for frame in one_of_each() {
        let bytes = frame.encode();
        let back = Frame::decode(&bytes)
            .unwrap_or_else(|e| panic!("{} failed to round-trip: {e}", frame.kind_name()));
        assert_eq!(back, frame, "{} round trip", frame.kind_name());
        // And through the streaming reader, byte for byte.
        let streamed = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(streamed, frame, "{} streamed round trip", frame.kind_name());
    }
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for frame in one_of_each() {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut])
                .expect_err("truncated frame must not decode")
                .to_string();
            assert!(!err.is_empty());
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected_never_a_panic() {
    // Bit-level corruption anywhere in the frame must be *detected*
    // (checksum, magic, version, or structural check) — same contract
    // the plan codec pins for disk corruption.
    for frame in one_of_each() {
        let clean = frame.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut evil = clean.clone();
                evil[byte] ^= 1 << bit;
                match Frame::decode(&evil) {
                    Err(_) => {}
                    Ok(decoded) => panic!(
                        "flip at byte {byte} bit {bit} of {} decoded as {}",
                        frame.kind_name(),
                        decoded.kind_name()
                    ),
                }
            }
        }
    }
}

#[test]
fn wrong_magic_and_version_are_distinct_errors() {
    let mut bytes = Frame::Stats.encode();
    bytes[0] = b'X';
    assert_eq!(Frame::decode(&bytes), Err(ProtoError::BadMagic));

    let mut bytes = Frame::Stats.encode();
    bytes[4] = 99;
    assert_eq!(
        Frame::decode(&bytes),
        Err(ProtoError::BadVersion { got: 99 })
    );
}

#[test]
fn unknown_kind_is_typed() {
    // Rebuild a frame with an unassigned kind byte and a valid checksum,
    // so the failure is attributable to the kind alone.
    let mut bytes = Frame::Stats.encode();
    bytes[5] = 77;
    let sum_at = bytes.len() - CHECKSUM_LEN;
    let sum = hmm_plan::fnv1a(&bytes[..sum_at]);
    bytes[sum_at..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(Frame::decode(&bytes), Err(ProtoError::BadKind { got: 77 }));
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = Frame::Drain.encode();
    bytes.push(0);
    assert_eq!(
        Frame::decode(&bytes),
        Err(ProtoError::TrailingBytes { extra: 1 })
    );
}

// ---------------------------------------------------------------------------
// Bounded allocation: length prefixes cannot drive memory use
// ---------------------------------------------------------------------------

/// A reader that serves a fixed prefix and then *panics* — proof the
/// decoder never even asks for the body of an oversized frame.
struct TripwireReader {
    served: Vec<u8>,
    pos: usize,
}

impl std::io::Read for TripwireReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.served.len() {
            panic!("decoder read past the header of an oversized frame");
        }
        let take = buf.len().min(self.served.len() - self.pos);
        buf[..take].copy_from_slice(&self.served[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

#[test]
fn oversized_length_prefix_is_refused_before_any_body_read() {
    // Header claiming a 4 GiB - 1 body; the reader has nothing after it.
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.push(1); // version
    header.push(kind::PERMUTE);
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(header.len(), HEADER_LEN);

    let mut reader = TripwireReader {
        served: header,
        pos: 0,
    };
    let err = read_frame(&mut reader).expect_err("oversized must be refused");
    assert_eq!(
        err,
        ProtoError::Oversized {
            len: u64::from(u32::MAX),
            max: MAX_BODY as u64,
        }
    );
}

#[test]
fn buffer_decode_rejects_oversized_without_reading_past_header() {
    // The contiguous-buffer path makes the same decision from the
    // header alone, even though "body bytes" would be available.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(1);
    bytes.push(kind::PERMUTE);
    bytes.extend_from_slice(&((MAX_BODY as u32) + 1).to_le_bytes());
    bytes.resize(bytes.len() + 64, 0xab);
    assert!(matches!(
        Frame::decode(&bytes),
        Err(ProtoError::Oversized { .. })
    ));
}

#[test]
fn inner_count_caps_hold_independent_of_body_len() {
    // A PERMUTE_BATCH claiming MAX_BATCH+1 payloads inside a small,
    // checksum-valid body must be refused by the count cap, not by
    // running out of bytes into a huge Vec::with_capacity.
    let mut body = Vec::new();
    body.extend_from_slice(&7u64.to_le_bytes()); // handle
    body.extend_from_slice(&((MAX_BATCH as u32) + 1).to_le_bytes());
    let err = Frame::decode_body(kind::PERMUTE_BATCH, &body).expect_err("cap must hold");
    assert_eq!(
        err,
        ProtoError::Oversized {
            len: (MAX_BATCH as u64) + 1,
            max: MAX_BATCH as u64,
        }
    );

    // Same for an ERR message length prefix.
    let mut body = Vec::new();
    body.extend_from_slice(&1u16.to_le_bytes());
    body.extend_from_slice(&((MAX_ERR_MSG as u32) + 1).to_le_bytes());
    let err = Frame::decode_body(kind::ERR, &body).expect_err("cap must hold");
    assert!(matches!(err, ProtoError::Oversized { .. }));
}

#[test]
fn clean_close_is_distinguished_from_mid_frame_death() {
    // EOF before any byte: a clean close.
    let empty: &[u8] = &[];
    assert_eq!(read_frame(&mut &*empty), Err(ProtoError::Closed));

    // EOF inside the header / body: an I/O error, not a clean close.
    let bytes = Frame::Stats.encode();
    for cut in 1..bytes.len() {
        match read_frame(&mut &bytes[..cut]) {
            Err(ProtoError::Io { kind, .. }) => {
                assert_eq!(kind, std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("cut at {cut}: expected Io(UnexpectedEof), got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// SplitMix64 — a deterministic byte stream from one seed, so the
/// vendored proptest subset (no `collection::vec`) can still generate
/// arbitrary payloads.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seeded_payload(seed: &mut u64, max: usize) -> Vec<u8> {
    let len = (splitmix(seed) as usize) % (max + 1);
    (0..len).map(|_| splitmix(seed) as u8).collect()
}

/// One frame of every kind, driven by (variant selector, seed) — the
/// seed fans out into every field via SplitMix64.
fn seeded_frame(variant: usize, mut seed: u64) -> Frame {
    let s = &mut seed;
    match variant % 12 {
        0 => {
            let k = (splitmix(s) % 6 + 1) as u8;
            let n = 1u64 << k;
            Frame::Register {
                fingerprint: splitmix(s),
                n,
                elem_width: 4,
                perm: PermRepr::Index((0..n as u32).rev().collect()),
            }
        }
        1 => {
            let k = (splitmix(s) % 6 + 1) as u8;
            let n = 1u64 << k;
            // Identity-ish columns: validity is the codec's concern
            // here, not the matrix algebra's.
            Frame::Register {
                fingerprint: 0,
                n,
                elem_width: 8,
                perm: PermRepr::Bmmc {
                    bits: k,
                    offset: splitmix(s) & (n - 1),
                    cols: (0..k).map(|j| 1u64 << j).collect(),
                },
            }
        }
        2 => Frame::Registered {
            handle: splitmix(s),
        },
        3 => Frame::Permute {
            handle: splitmix(s),
            payload: seeded_payload(s, 256),
        },
        4 => Frame::Permuted {
            payload: seeded_payload(s, 256),
        },
        5 => {
            let count = (splitmix(s) % 8) as usize;
            Frame::PermuteBatch {
                handle: splitmix(s),
                payloads: (0..count).map(|_| seeded_payload(s, 64)).collect(),
            }
        }
        6 => {
            let count = (splitmix(s) % 8) as usize;
            Frame::PermutedBatch {
                payloads: (0..count).map(|_| seeded_payload(s, 64)).collect(),
            }
        }
        7 => Frame::Stats,
        8 => Frame::StatsReport(ServerStats {
            hits: splitmix(s),
            misses: splitmix(s),
            builds: splitmix(s),
            plans_structured: splitmix(s),
            plans_affine: splitmix(s),
            store_hits: splitmix(s),
            store_rejects: splitmix(s),
            submitted: splitmix(s),
            completed: splitmix(s),
            cancelled: splitmix(s),
            admission_rejects: splitmix(s),
            idle_disconnects: splitmix(s),
            conn_rejects: splitmix(s),
            registered_plans: splitmix(s),
            active_clients: splitmix(s),
            draining: splitmix(s) % 2 == 1,
        }),
        9 => Frame::Drain,
        10 => Frame::DrainOk,
        _ => {
            let len = (splitmix(s) % 65) as usize;
            Frame::Err {
                code: ErrCode::from_u16((splitmix(s) % 14) as u16),
                message: (0..len)
                    .map(|_| char::from(b' ' + (splitmix(s) % 95) as u8))
                    .collect(),
            }
        }
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (0usize..12, any::<u64>()).prop_map(|(variant, seed)| seeded_frame(variant, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_frames_round_trip(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(Frame::decode(&bytes).unwrap(), frame.clone());
        prop_assert_eq!(read_frame(&mut bytes.as_slice()).unwrap(), frame);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(seed in any::<u64>()) {
        // Typed error or (vanishingly unlikely) a valid frame — never a
        // panic, never an unbounded allocation.
        let mut s = seed;
        let bytes = seeded_payload(&mut s, 512);
        let _ = Frame::decode(&bytes);
        let _ = read_frame(&mut bytes.as_slice());
    }

    #[test]
    fn corrupted_valid_frames_never_panic(frame in arb_frame(), byte in 0usize..1 << 20, bit in 0u8..8) {
        let mut bytes = frame.encode();
        let at = byte % bytes.len();
        bytes[at] ^= 1 << bit;
        let _ = Frame::decode(&bytes);
        let _ = read_frame(&mut bytes.as_slice());
    }
}
