//! Robustness suite for the ugly paths: clients dying mid-payload,
//! hostile bytes on a live socket, slow readers, `DRAIN` racing an
//! in-flight batch, and admission rejections — each pinned against the
//! engine-stats ledger (`submitted == completed + cancelled`) so a
//! leaked queue slot cannot hide.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hmm_perm::families;
use hmm_server::proto::{elems_to_bytes, Frame, ServerStats};
use hmm_server::{
    read_frame, write_frame, AdmissionConfig, Client, ClientError, ErrCode, Server, ServerConfig,
};

fn server() -> Server {
    Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap()
}

fn small_server(admission: AdmissionConfig) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            admission,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Poll until `pred` holds or 5 s elapse — connection teardown is
/// asynchronous (the handler thread notices EOF on its own schedule).
fn wait_for(server: &Server, pred: impl Fn(&ServerStats) -> bool) -> ServerStats {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = server.stats();
        if pred(&s) {
            return s;
        }
        if Instant::now() > deadline {
            panic!("condition not reached within 5s; stats: {s:?}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn ledger_balanced(s: &ServerStats) -> bool {
    s.submitted == s.completed + s.cancelled
}

#[test]
fn disconnect_mid_payload_leaks_nothing() {
    let server = server();
    let n = 1 << 10;

    // A well-behaved client registers and runs one job, so the engine
    // has real traffic on the books.
    let mut good = Client::connect(server.local_addr()).unwrap();
    let p = families::random(n, 7);
    let h = good.register::<u32>(&p).unwrap();
    let src: Vec<u32> = (0..n as u32).collect();
    good.permute(&h, &src).unwrap();

    // A doomed client sends a PERMUTE frame header + half the body,
    // then dies. The server must reap the connection without ever
    // submitting a job (frames are fully read before dispatch).
    let before = server.stats();
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        let frame = Frame::Permute {
            handle: h.id(),
            payload: elems_to_bytes(&src),
        };
        let bytes = frame.encode();
        raw.write_all(&bytes[..bytes.len() / 2]).unwrap();
        raw.flush().unwrap();
        // Dropped here: TCP FIN mid-frame.
    }

    let after = wait_for(&server, |s| s.active_clients == 1 && ledger_balanced(s));
    assert_eq!(
        after.submitted, before.submitted,
        "a half-received frame must never reach the queue"
    );

    // The engine still serves the well-behaved client.
    let out = good.permute(&h, &src).unwrap();
    assert_eq!(out.len(), n);
}

#[test]
fn hostile_bytes_get_a_typed_err_frame_not_a_silent_disconnect() {
    let server = server();

    // Garbage magic: the server must diagnose (ERR BadFrame) and close.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"GETX/1.1 not a permutation protocol\r\n\r\n")
        .unwrap();
    raw.flush().unwrap();
    let reply = read_frame(&mut raw.try_clone().unwrap()).unwrap();
    match reply {
        Frame::Err { code, message } => {
            assert_eq!(code, ErrCode::BadFrame);
            assert!(!message.is_empty());
        }
        other => panic!("expected ERR, got {}", other.kind_name()),
    }
    // ...and the connection is then closed by the server.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // Bit-flipped checksum on an otherwise valid frame: same contract.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut bytes = Frame::Stats.encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    raw.write_all(&bytes).unwrap();
    raw.flush().unwrap();
    match read_frame(&mut raw.try_clone().unwrap()).unwrap() {
        Frame::Err { code, .. } => assert_eq!(code, ErrCode::BadFrame),
        other => panic!("expected ERR, got {}", other.kind_name()),
    }

    // A well-formed frame of a kind only servers send: diagnosed as
    // Malformed, and the connection KEEPS serving (stream still
    // frame-aligned).
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = raw.try_clone().unwrap();
    write_frame(&mut raw, &Frame::DrainOk).unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::Err { code, .. } => assert_eq!(code, ErrCode::Malformed),
        other => panic!("expected ERR, got {}", other.kind_name()),
    }
    write_frame(&mut raw, &Frame::Stats).unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::StatsReport(_) => {}
        other => panic!("connection should still serve; got {}", other.kind_name()),
    }
}

#[test]
fn slow_reader_pipelined_requests_all_complete() {
    let server = server();
    // 4 KiB payloads × 16 pipelined = 64 KiB per direction: enough to
    // make the reader genuinely lag, small enough that kernel socket
    // buffers absorb it without mutually blocking the test itself.
    let n = 1 << 10;
    let p = families::bit_reversal(n).unwrap();

    // Register through the typed client, then pipeline 8 PERMUTE frames
    // on the raw socket without reading a single response: the server's
    // writes land in the socket buffer while the reader lags.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = raw.try_clone().unwrap();
    let src: Vec<u32> = (0..n as u32).map(|v| v.rotate_left(9) ^ 0xa5a5).collect();
    write_frame(
        &mut raw,
        &Frame::Register {
            fingerprint: p.fingerprint(),
            n: n as u64,
            elem_width: 4,
            perm: hmm_server::PermRepr::Index(p.as_slice().iter().map(|&v| v as u32).collect()),
        },
    )
    .unwrap();
    let handle = match read_frame(&mut reader).unwrap() {
        Frame::Registered { handle } => handle,
        other => panic!("expected REGISTERED, got {}", other.kind_name()),
    };

    const PIPELINED: usize = 16;
    for _ in 0..PIPELINED {
        write_frame(
            &mut raw,
            &Frame::Permute {
                handle,
                payload: elems_to_bytes(&src),
            },
        )
        .unwrap();
    }
    // Lag, then drain all eight responses; every one must be the
    // correct permutation, in order.
    std::thread::sleep(Duration::from_millis(100));
    let mut expect = vec![0u32; n];
    p.permute(&src, &mut expect).unwrap();
    let expect_bytes = elems_to_bytes(&expect);
    for i in 0..PIPELINED {
        match read_frame(&mut reader).unwrap() {
            Frame::Permuted { payload } => assert_eq!(payload, expect_bytes, "response {i}"),
            other => panic!("response {i}: expected PERMUTED, got {}", other.kind_name()),
        }
    }
    let stats = server.stats();
    assert!(ledger_balanced(&stats), "ledger unbalanced: {stats:?}");
}

#[test]
fn drain_during_in_flight_batch_flushes_then_acks() {
    let server = server();
    let n = 1 << 14;
    let p = families::random(n, 99);
    let addr = server.local_addr();

    let mut client_a = Client::connect(addr).unwrap();
    let h = client_a.register::<u32>(&p).unwrap();
    let srcs: Vec<Vec<u32>> = (0..48)
        .map(|k| (0..n as u32).map(|v| v.wrapping_add(k)).collect())
        .collect();

    // Client A fires a 48-payload batch; client B drains concurrently.
    let batch_thread = std::thread::spawn(move || client_a.permute_batch(&h, &srcs));
    let drain_thread = std::thread::spawn(move || {
        let mut client_b = Client::connect(addr).unwrap();
        client_b.drain()
    });

    let batch = batch_thread.join().unwrap();
    drain_thread.join().unwrap().unwrap();
    server.wait_drained();

    // Every batch member either completed (drain flushed it) — the only
    // acceptable alternative would be a typed Draining refusal if DRAIN
    // won the race to the dispatcher. A hang or a dropped member is a
    // failure either way.
    match batch {
        Ok(outputs) => {
            assert_eq!(outputs.len(), 48);
            let mut expect = vec![0u32; n];
            let src0: Vec<u32> = (0..n as u32).collect();
            p.permute(&src0, &mut expect).unwrap();
            assert_eq!(outputs[0], expect);
        }
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::Draining),
        Err(other) => panic!("batch neither completed nor typed-refused: {other}"),
    }

    let stats = server.stats();
    assert!(stats.draining);
    assert!(
        ledger_balanced(&stats),
        "drain left the ledger unbalanced: {stats:?}"
    );
}

#[test]
fn admission_rejections_are_typed_and_counted_in_engine_stats() {
    let server = small_server(AdmissionConfig {
        max_plans: 1,
        max_inflight: 4,
    });
    let n = 1 << 10;
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Plan quota: the second REGISTER on one session must be refused.
    let p1 = families::bit_reversal(n).unwrap();
    let p2 = families::random(n, 3);
    let h1 = client.register::<u32>(&p1).unwrap();
    match client.register::<u32>(&p2) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::AdmissionPlans),
        other => panic!("expected AdmissionPlans refusal, got {other:?}"),
    }

    // In-flight quota: a 5-payload batch against max_inflight = 4.
    let src: Vec<u32> = (0..n as u32).collect();
    let five: Vec<Vec<u32>> = (0..5).map(|_| src.clone()).collect();
    match client.permute_batch(&h1, &five) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::AdmissionInFlight),
        other => panic!("expected AdmissionInFlight refusal, got {other:?}"),
    }

    // Both rejections surface in the shared stats snapshot, and a
    // conforming batch still goes through afterwards.
    let stats = server.stats();
    assert_eq!(stats.admission_rejects, 2);
    let four: Vec<Vec<u32>> = (0..4).map(|_| src.clone()).collect();
    let outs = client.permute_batch(&h1, &four).unwrap();
    assert_eq!(outs.len(), 4);

    // A *different* session gets its own quota: registering there works.
    let mut other = Client::connect(server.local_addr()).unwrap();
    other.register::<u32>(&p2).unwrap();
}

#[test]
fn unknown_handle_fingerprint_mismatch_and_size_mismatch_are_typed() {
    let server = server();
    let n = 1 << 10;
    let mut client = Client::connect(server.local_addr()).unwrap();
    let p = families::shuffle(n).unwrap();
    let h = client.register::<u32>(&p).unwrap();

    // Unknown handle.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = raw.try_clone().unwrap();
    write_frame(
        &mut raw,
        &Frame::Permute {
            handle: 999,
            payload: vec![0; 4],
        },
    )
    .unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::Err { code, .. } => assert_eq!(code, ErrCode::UnknownHandle),
        other => panic!("expected ERR, got {}", other.kind_name()),
    }

    // Fingerprint mismatch: claim a wrong hash for a valid map.
    write_frame(
        &mut raw,
        &Frame::Register {
            fingerprint: p.fingerprint() ^ 1,
            n: n as u64,
            elem_width: 4,
            perm: hmm_server::PermRepr::Index(p.as_slice().iter().map(|&v| v as u32).collect()),
        },
    )
    .unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::Err { code, .. } => assert_eq!(code, ErrCode::FingerprintMismatch),
        other => panic!("expected ERR, got {}", other.kind_name()),
    }

    // Size mismatch: payload shorter than n × width, via the typed client.
    let short: Vec<u32> = (0..16).collect();
    match client.permute(&h, &short) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::SizeMismatch),
        other => panic!("expected SizeMismatch refusal, got {other:?}"),
    }

    // Handles are session-scoped: another connection cannot use ours.
    let mut intruder = Client::connect(server.local_addr()).unwrap();
    let stolen = h; // same id, different session
    let src: Vec<u32> = (0..n as u32).collect();
    match intruder.permute(&stolen, &src) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::UnknownHandle),
        other => panic!("handle leaked across sessions: {other:?}"),
    }
}

#[test]
fn idle_connections_are_reaped_with_a_typed_timeout() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let n = 1 << 10;

    // An active client keeps working on its own thread: every request
    // lands well inside the timeout window, so the reap must never
    // touch it even while the silent peer below is being collected.
    let mut busy = Client::connect(server.local_addr()).unwrap();
    let p = families::bit_reversal(n).unwrap();
    let h = busy.register::<u32>(&p).unwrap();
    let src: Vec<u32> = (0..n as u32).collect();
    let worker = std::thread::spawn(move || {
        let mut out = Vec::new();
        for _ in 0..40 {
            out = busy.permute(&h, &src).unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        (busy, out)
    });

    // A silent client connects and sends nothing. It must receive a
    // typed ERR IdleTimeout followed by a close — not a silent drop.
    let mut idle = TcpStream::connect(server.local_addr()).unwrap();
    match read_frame(&mut idle.try_clone().unwrap()).unwrap() {
        Frame::Err { code, message } => {
            assert_eq!(code, ErrCode::IdleTimeout);
            assert!(!message.is_empty());
        }
        other => panic!("expected ERR IdleTimeout, got {}", other.kind_name()),
    }
    let mut rest = Vec::new();
    idle.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after the timeout ERR");

    // The busy client outlived the reap with correct answers throughout.
    let (_busy, out) = worker.join().unwrap();
    assert_eq!(out.len(), n);
    let stats = wait_for(&server, |s| {
        s.idle_disconnects == 1 && s.active_clients == 1
    });
    assert_eq!(stats.conn_rejects, 0);
}

#[test]
fn connection_cap_refuses_with_typed_busy_and_recovers() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 2,
            idle_timeout: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Fill the cap with two live sessions; a STATS round trip per client
    // proves each handler thread is up (the gauge increments at accept).
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    a.stats().unwrap();
    b.stats().unwrap();
    wait_for(&server, |s| s.active_clients == 2);

    // The third connection is refused with a typed ERR Busy, then closed.
    let mut third = TcpStream::connect(server.local_addr()).unwrap();
    match read_frame(&mut third.try_clone().unwrap()).unwrap() {
        Frame::Err { code, message } => {
            assert_eq!(code, ErrCode::Busy);
            assert!(message.contains('2'), "cap should be named: {message}");
        }
        other => panic!("expected ERR Busy, got {}", other.kind_name()),
    }
    let mut rest = Vec::new();
    third.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close a refused connection");
    let stats = wait_for(&server, |s| s.conn_rejects == 1);
    assert_eq!(stats.active_clients, 2, "cap reject must not leak a slot");

    // Capacity frees when a session ends: dropping one client admits a
    // newcomer.
    drop(a);
    wait_for(&server, |s| s.active_clients == 1);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let s = c.stats().unwrap();
    assert_eq!(s.conn_rejects, 1);
    b.stats().unwrap();
}

#[test]
fn requests_after_drain_are_refused_as_draining() {
    let server = server();
    let n = 1 << 10;
    let mut client = Client::connect(server.local_addr()).unwrap();
    let p = families::bit_reversal(n).unwrap();
    let h = client.register::<u32>(&p).unwrap();

    server.drain();
    server.wait_drained();

    // The existing connection survives the drain; new work is refused
    // with a typed Draining, not a hang or a silent close.
    let src: Vec<u32> = (0..n as u32).collect();
    match client.permute(&h, &src) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::Draining),
        other => panic!("expected Draining refusal, got {other:?}"),
    }
    match client.register::<u32>(&families::random(n, 5)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::Draining),
        other => panic!("expected Draining refusal, got {other:?}"),
    }
    // STATS still answers (observability survives the drain).
    let stats = client.stats().unwrap();
    assert!(stats.draining);
}
