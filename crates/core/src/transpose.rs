//! Matrix transpose on the HMM (Section V).
//!
//! The matrix is processed in `w × w` tiles. Each tile is staged through
//! shared memory in the **diagonal arrangement** (Figure 4): tile element
//! `(i, j)` is stored at shared index `i·w + (i + j) mod w`, which puts both
//! every row *and* every column of the tile in pairwise-distinct banks, so
//! the shared accesses of both passes are conflict-free while both global
//! accesses stream full rows (coalesced).
//!
//! Per Table I the transpose costs exactly one coalesced read, one
//! conflict-free write, one conflict-free read, and one coalesced write:
//! `2(n/w + l − 1) + 2·n/w` time units.

use crate::error::{OffpermError, Result};
use crate::report::RunReport;
use hmm_machine::{GlobalBuf, Hmm};
use hmm_perm::MatrixShape;

/// Shared index of tile element `(i, j)` under the diagonal arrangement.
#[inline]
pub fn diagonal_index(i: usize, j: usize, w: usize) -> usize {
    i * w + ((i + j) & (w - 1))
}

/// Transpose the `shape.rows × shape.cols` matrix in `a` (row-major) into
/// `b` as a `cols × rows` matrix (row-major). Both dimensions must be
/// multiples of the machine width; `a` and `b` must not alias.
pub fn transpose(
    hmm: &mut Hmm,
    shape: MatrixShape,
    a: GlobalBuf,
    b: GlobalBuf,
) -> Result<RunReport> {
    let w = hmm.config().width;
    let elem_bytes = hmm.config().elem.bytes();
    if !shape.tiles_by(w) {
        return Err(OffpermError::UnsupportedSize {
            n: shape.len(),
            reason: "matrix dimensions must be multiples of the machine width",
        });
    }
    for buf in [a, b] {
        if buf.len() != shape.len() {
            return Err(OffpermError::SizeMismatch {
                expected: shape.len(),
                got: buf.len(),
            });
        }
    }
    let (r, c) = (shape.rows, shape.cols);
    let tiles_per_row = c / w;
    let grid = (r / w) * tiles_per_row;
    let lanes = w * w;
    let mark = hmm.mark();
    hmm.launch(grid, lanes, |blk| {
        let tile = blk.block_id();
        let tr = tile / tiles_per_row; // tile row in the input
        let tc = tile % tiles_per_row; // tile col in the input
        let s = blk.shared_alloc(w * w, elem_bytes)?;

        // Pass 1: coalesced read of the input tile, conflict-free write
        // into the diagonal arrangement. Lane (i, j) handles input element
        // (tr·w + i, tc·w + j).
        let mut addrs = Vec::with_capacity(lanes);
        let mut sidx = Vec::with_capacity(lanes);
        for i in 0..w {
            for j in 0..w {
                addrs.push(a.addr((tr * w + i) * c + tc * w + j));
                sidx.push(diagonal_index(i, j, w));
            }
        }
        let vals = blk.global_read(&addrs)?;
        blk.shared_write(s, &sidx, &vals)?;

        // Pass 2: conflict-free read of the transposed element, coalesced
        // write of the output tile. Lane (i, j) writes output element
        // (tc·w + i, tr·w + j) = input element (tr·w + j, tc·w + i), which
        // pass 1 stored at diagonal_index(j, i).
        let mut out_addrs = Vec::with_capacity(lanes);
        let mut rd_idx = Vec::with_capacity(lanes);
        for i in 0..w {
            for j in 0..w {
                rd_idx.push(diagonal_index(j, i, w));
                out_addrs.push(b.addr((tc * w + i) * r + tr * w + j));
            }
        }
        let tvals = blk.shared_read(s, &rd_idx)?;
        blk.global_write(&out_addrs, &tvals)
    })?;
    Ok(RunReport::new(hmm.since(mark), 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::{MachineConfig, Word};
    use hmm_perm::families;

    const W: usize = 8;
    const L: usize = 16;

    fn machine() -> Hmm {
        Hmm::new(MachineConfig::pure(W, L)).unwrap()
    }

    fn host_transpose(shape: MatrixShape, data: &[Word]) -> Vec<Word> {
        let mut out = vec![0; data.len()];
        for i in 0..shape.rows {
            for j in 0..shape.cols {
                out[j * shape.rows + i] = data[i * shape.cols + j];
            }
        }
        out
    }

    #[test]
    fn diagonal_arrangement_matches_figure4() {
        // Figure 4 (w = 4): row 1 is stored as [1,3] [1,0] [1,1] [1,2],
        // i.e. element (1, j) sits at column (1 + j) mod 4.
        assert_eq!(diagonal_index(0, 0, 4), 0);
        assert_eq!(diagonal_index(1, 3, 4), 4); // (1,3) -> slot 1*4+0
        assert_eq!(diagonal_index(2, 2, 4), 8);
        assert_eq!(diagonal_index(3, 1, 4), 12);
    }

    #[test]
    fn diagonal_rows_and_columns_are_conflict_free() {
        let w = 8;
        for i in 0..w {
            let banks: std::collections::HashSet<usize> =
                (0..w).map(|j| diagonal_index(i, j, w) % w).collect();
            assert_eq!(banks.len(), w, "row {i}");
        }
        for j in 0..w {
            let banks: std::collections::HashSet<usize> =
                (0..w).map(|i| diagonal_index(i, j, w) % w).collect();
            assert_eq!(banks.len(), w, "col {j}");
        }
    }

    #[test]
    fn square_transpose_is_correct() {
        let shape = MatrixShape::new(4 * W, 4 * W).unwrap();
        let n = shape.len();
        let mut hmm = machine();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let data: Vec<Word> = (0..n as Word).collect();
        hmm.host_write(a, &data).unwrap();
        transpose(&mut hmm, shape, a, b).unwrap();
        assert_eq!(hmm.host_read(b), host_transpose(shape, &data));
    }

    #[test]
    fn rectangular_transpose_is_correct() {
        let shape = MatrixShape::new(2 * W, 6 * W).unwrap();
        let n = shape.len();
        let mut hmm = machine();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let data: Vec<Word> = (0..n as Word).map(|v| v * 3 + 5).collect();
        hmm.host_write(a, &data).unwrap();
        transpose(&mut hmm, shape, a, b).unwrap();
        assert_eq!(hmm.host_read(b), host_transpose(shape, &data));
    }

    #[test]
    fn transpose_matches_transpose_permutation() {
        // The kernel must agree with the `transpose` permutation family.
        let shape = MatrixShape::new(2 * W, 4 * W).unwrap();
        let n = shape.len();
        let p = families::transpose(shape.rows, shape.cols, n).unwrap();
        let mut hmm = machine();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let data: Vec<Word> = (0..n as Word).map(|v| v + 11).collect();
        hmm.host_write(a, &data).unwrap();
        transpose(&mut hmm, shape, a, b).unwrap();
        let mut want = vec![0; n];
        p.permute(&data, &mut want).unwrap();
        assert_eq!(hmm.host_read(b), want);
    }

    #[test]
    fn round_counts_and_time_match_table1() {
        let shape = MatrixShape::new(4 * W, 4 * W).unwrap();
        let n = shape.len();
        let mut hmm = machine();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let report = transpose(&mut hmm, shape, a, b).unwrap();
        let s = &report.summary;
        assert_eq!(s.coalesced_read.rounds, 1);
        assert_eq!(s.coalesced_write.rounds, 1);
        assert_eq!(s.conflict_free_read.rounds, 1);
        assert_eq!(s.conflict_free_write.rounds, 1);
        assert_eq!(s.shared_casual.rounds, 0, "bank conflict detected");
        let nw = (n / W) as u64;
        let l = L as u64;
        assert_eq!(report.time, 2 * (nw + l - 1) + 2 * nw);
    }

    #[test]
    fn double_transpose_is_identity() {
        let shape = MatrixShape::new(2 * W, 3 * W).unwrap();
        let n = shape.len();
        let mut hmm = machine();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let c = hmm.alloc_global(n);
        let data: Vec<Word> = (0..n as Word).map(|v| v ^ 0x5a).collect();
        hmm.host_write(a, &data).unwrap();
        transpose(&mut hmm, shape, a, b).unwrap();
        transpose(&mut hmm, shape.transposed(), b, c).unwrap();
        assert_eq!(hmm.host_read(c), data);
    }

    #[test]
    fn rejects_untiled_shapes_and_bad_buffers() {
        let mut hmm = machine();
        let shape = MatrixShape::new(W + 1, W).unwrap();
        let a = hmm.alloc_global(shape.len());
        let b = hmm.alloc_global(shape.len());
        assert!(matches!(
            transpose(&mut hmm, shape, a, b),
            Err(OffpermError::UnsupportedSize { .. })
        ));
        let good = MatrixShape::new(W, W).unwrap();
        let small = hmm.alloc_global(W);
        assert!(matches!(
            transpose(&mut hmm, good, small, b),
            Err(OffpermError::SizeMismatch { .. })
        ));
    }
}
