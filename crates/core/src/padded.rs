//! Arbitrary-size scheduled permutation via padding — a usability
//! extension beyond the paper, which assumes `n = r·c` with both factors
//! multiples of `w` "for simplicity".
//!
//! A permutation of any `n` is embedded into the next feasible size
//! `m ≥ max(next_power_of_two(n), w²)` by extending it with the identity on
//! the tail `[n, m)`; the padded elements travel through the three passes
//! like everyone else and are stripped on readback. The overhead is at
//! most 2× in elements (so at most 2× in time units), preserving the
//! `O(n/w + l)` bound.

use crate::error::Result;
use crate::report::RunReport;
use crate::scheduled::{ScheduledPermutation, StagedScheduled};
use hmm_graph::Strategy;
use hmm_machine::{GlobalBuf, Hmm, Word};
use hmm_perm::Permutation;

/// A scheduled permutation of arbitrary size `n`, built by padding.
#[derive(Debug, Clone)]
pub struct PaddedScheduled {
    inner: ScheduledPermutation,
    n: usize,
}

impl PaddedScheduled {
    /// The smallest feasible scheduled size covering `n` on a width-`w`
    /// machine: a power of two, at least `w²` (below that a single DMM
    /// holds the whole array and [`crate::smallperm`] applies).
    pub fn padded_len(n: usize, width: usize) -> usize {
        n.next_power_of_two().max(width * width)
    }

    /// Build for any `n ≥ 1`.
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        Self::build_with(p, width, Strategy::Hybrid)
    }

    /// Build with an explicit coloring strategy.
    pub fn build_with(p: &Permutation, width: usize, strategy: Strategy) -> Result<Self> {
        let n = p.len();
        let m = Self::padded_len(n, width);
        let inner = if m == n {
            ScheduledPermutation::build_with(p, width, strategy)?
        } else {
            let mut map = Vec::with_capacity(m);
            map.extend_from_slice(p.as_slice());
            map.extend(n..m); // identity tail
            let padded = Permutation::from_vec_unchecked(map);
            ScheduledPermutation::build_with(&padded, width, strategy)?
        };
        Ok(PaddedScheduled { inner, n })
    }

    /// The logical (unpadded) size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for zero-length permutations (which [`PaddedScheduled::build`]
    /// rejects, so never).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The padded size actually permuted on the machine.
    pub fn padded(&self) -> usize {
        self.inner.len()
    }

    /// Stage onto a machine.
    pub fn stage(&self, hmm: &mut Hmm) -> Result<StagedPadded> {
        Ok(StagedPadded {
            inner: self.inner.stage(hmm)?,
            n: self.n,
        })
    }
}

/// A staged [`PaddedScheduled`], ready to run.
#[derive(Debug, Clone, Copy)]
pub struct StagedPadded {
    inner: StagedScheduled,
    n: usize,
}

impl StagedPadded {
    /// Allocate the four padded working buffers on `hmm`.
    pub fn alloc_buffers(&self, hmm: &mut Hmm) -> [GlobalBuf; 4] {
        let m = self.inner.shape().len();
        [
            hmm.alloc_global(m),
            hmm.alloc_global(m),
            hmm.alloc_global(m),
            hmm.alloc_global(m),
        ]
    }

    /// Permute `input` (length `n`): stages it into the padded input
    /// buffer (tail zeroed), runs the five kernels, and returns the first
    /// `n` elements of the output.
    pub fn run(
        &self,
        hmm: &mut Hmm,
        bufs: &[GlobalBuf; 4],
        input: &[Word],
    ) -> Result<(RunReport, Vec<Word>)> {
        if input.len() != self.n {
            return Err(crate::error::OffpermError::SizeMismatch {
                expected: self.n,
                got: input.len(),
            });
        }
        let m = self.inner.shape().len();
        let mut padded_input = Vec::with_capacity(m);
        padded_input.extend_from_slice(input);
        padded_input.resize(m, 0);
        hmm.host_write(bufs[0], &padded_input)?;
        let report = self.inner.run(hmm, bufs[0], bufs[1], bufs[2], bufs[3])?;
        let mut out = hmm.host_read(bufs[1]);
        out.truncate(self.n);
        Ok((report, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::MachineConfig;
    use hmm_perm::families;

    const W: usize = 8;

    fn run_padded(p: &Permutation) -> Vec<Word> {
        let mut hmm = Hmm::new(MachineConfig::pure(W, 16)).unwrap();
        let sched = PaddedScheduled::build(p, W).unwrap();
        let staged = sched.stage(&mut hmm).unwrap();
        let bufs = staged.alloc_buffers(&mut hmm);
        let input: Vec<Word> = (0..p.len() as Word).map(|v| v * 3 + 1).collect();
        let (report, out) = staged.run(&mut hmm, &bufs, &input).unwrap();
        assert_eq!(report.rounds(), 32);
        let mut want = vec![0; p.len()];
        p.permute(&input, &mut want).unwrap();
        assert_eq!(out, want);
        out
    }

    #[test]
    fn non_power_of_two_sizes_work() {
        for n in [65usize, 100, 1000, 1025, 3000] {
            let p = families::random(n, n as u64);
            run_padded(&p);
        }
    }

    #[test]
    fn tiny_sizes_pad_to_w_squared() {
        assert_eq!(PaddedScheduled::padded_len(1, 8), 64);
        assert_eq!(PaddedScheduled::padded_len(63, 8), 64);
        for n in [1usize, 2, 7, 63] {
            let p = families::random(n, 5);
            run_padded(&p);
        }
    }

    #[test]
    fn exact_sizes_pay_no_padding() {
        let p = families::random(1 << 10, 9);
        let sched = PaddedScheduled::build(&p, W).unwrap();
        assert_eq!(sched.padded(), 1 << 10);
        assert_eq!(sched.len(), 1 << 10);
        assert!(!sched.is_empty());
        run_padded(&p);
    }

    #[test]
    fn padding_at_most_doubles() {
        for n in [65usize, 1025, 100_000] {
            let m = PaddedScheduled::padded_len(n, 32);
            assert!(m >= n && m < 2 * n.max(1024), "n={n} m={m}");
        }
    }

    #[test]
    fn reusable_across_inputs() {
        let n = 500;
        let p = families::random(n, 11);
        let mut hmm = Hmm::new(MachineConfig::pure(W, 16)).unwrap();
        let staged = PaddedScheduled::build(&p, W)
            .unwrap()
            .stage(&mut hmm)
            .unwrap();
        let bufs = staged.alloc_buffers(&mut hmm);
        for round in 0..3u64 {
            let input: Vec<Word> = (0..n as Word).map(|v| v + round * 1000).collect();
            let (_, out) = staged.run(&mut hmm, &bufs, &input).unwrap();
            let mut want = vec![0; n];
            p.permute(&input, &mut want).unwrap();
            assert_eq!(out, want, "round {round}");
        }
    }

    #[test]
    fn wrong_input_length_rejected() {
        let p = families::random(100, 1);
        let mut hmm = Hmm::new(MachineConfig::pure(W, 16)).unwrap();
        let staged = PaddedScheduled::build(&p, W)
            .unwrap()
            .stage(&mut hmm)
            .unwrap();
        let bufs = staged.alloc_buffers(&mut hmm);
        assert!(staged.run(&mut hmm, &bufs, &vec![0; 99]).is_err());
    }
}
