//! Conflict-free permutation of small arrays on a single DMM — the
//! authors' earlier result (\[8\], \[9\]) that the paper's introduction uses to
//! motivate the HMM algorithm (246 ns conventional vs 165 ns conflict-free
//! for 1024 floats on one SM of a GTX-680).
//!
//! Both arrays live in the shared memory of one DMM. The conventional
//! kernel does three rounds, the last of which (`b[p[i]] = a[i]`) suffers
//! bank conflicts; the conflict-free kernel spends four rounds but colors
//! the moves (same construction as [`crate::rowwise`]) so that no round
//! conflicts. On the DMM cost model the conflict-free version wins whenever
//! the permutation's *bank* distribution exceeds ~2× — e.g. for random
//! permutations — matching the 1.5× the authors measured.

use crate::error::Result;
use hmm_graph::{edge_color, RegularBipartite};
use hmm_machine::{Dmm, Word};
use hmm_perm::Permutation;

/// Output and model time of one DMM permutation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmmRun {
    /// The permuted array.
    pub output: Vec<Word>,
    /// Total DMM time units.
    pub time: u64,
    /// Number of memory-access rounds.
    pub rounds: usize,
}

/// The conventional permutation on one DMM: rounds `p[i]`, `a[i]`,
/// `b[p[i]] = a[i]`. `n` must be a multiple of `width`.
pub fn dmm_conventional(
    width: usize,
    latency: usize,
    p: &Permutation,
    input: &[Word],
) -> Result<DmmRun> {
    let n = check_inputs(width, p, input)?;
    // Memory layout: a [0,n), b [n,2n), p [2n,3n).
    let mut dmm = Dmm::new(width, latency, 3 * n)?;
    dmm.memory_mut()[..n].copy_from_slice(input);
    for (i, &dst) in p.as_slice().iter().enumerate() {
        dmm.memory_mut()[2 * n + i] = dst as Word;
    }
    let idx: Vec<usize> = (0..n).collect();
    let p_addrs: Vec<usize> = idx.iter().map(|&i| 2 * n + i).collect();
    let dests = dmm.read_round(&p_addrs)?;
    let vals = dmm.read_round(&idx)?;
    let b_addrs: Vec<usize> = dests.iter().map(|&d| n + d as usize).collect();
    dmm.write_round(&b_addrs, &vals)?;
    Ok(DmmRun {
        output: dmm.memory()[n..2 * n].to_vec(),
        time: dmm.total_time(),
        rounds: dmm.ledger().len(),
    })
}

/// The conflict-free permutation on one DMM (\[8\]): offline-colored `s`/`d`
/// schedules make all four rounds conflict-free. `n` must be a multiple of
/// `width`.
pub fn dmm_conflict_free(
    width: usize,
    latency: usize,
    p: &Permutation,
    input: &[Word],
) -> Result<DmmRun> {
    let n = check_inputs(width, p, input)?;
    let (s, d) = conflict_free_schedule(p, width)?;
    // Memory layout: a [0,n), b [n,2n), s [2n,3n), d [3n,4n).
    let mut dmm = Dmm::new(width, latency, 4 * n)?;
    dmm.memory_mut()[..n].copy_from_slice(input);
    for t in 0..n {
        dmm.memory_mut()[2 * n + t] = s[t] as Word;
        dmm.memory_mut()[3 * n + t] = d[t] as Word;
    }
    let s_addrs: Vec<usize> = (0..n).map(|t| 2 * n + t).collect();
    let d_addrs: Vec<usize> = (0..n).map(|t| 3 * n + t).collect();
    let sv = dmm.read_round(&s_addrs)?;
    let dv = dmm.read_round(&d_addrs)?;
    let a_addrs: Vec<usize> = sv.iter().map(|&v| v as usize).collect();
    let vals = dmm.read_round(&a_addrs)?;
    let b_addrs: Vec<usize> = dv.iter().map(|&v| n + v as usize).collect();
    dmm.write_round(&b_addrs, &vals)?;
    Ok(DmmRun {
        output: dmm.memory()[n..2 * n].to_vec(),
        time: dmm.total_time(),
        rounds: dmm.ledger().len(),
    })
}

/// The coloring-derived `(s, d)` slot schedule with `p(s[t]) = d[t]` and
/// every aligned `width`-chunk of `s` (and of `d`) hitting distinct banks.
pub fn conflict_free_schedule(p: &Permutation, width: usize) -> Result<(Vec<u32>, Vec<u32>)> {
    let n = p.len();
    let edges: Vec<(usize, usize)> = (0..n).map(|j| (j % width, p.apply(j) % width)).collect();
    let graph = RegularBipartite::new(width, edges)?;
    let coloring = edge_color(&graph)?;
    let mut s = vec![0u32; n];
    let mut d = vec![0u32; n];
    for j in 0..n {
        let slot = coloring.colors[j] * width + (j % width);
        s[slot] = j as u32;
        d[slot] = p.apply(j) as u32;
    }
    Ok((s, d))
}

fn check_inputs(width: usize, p: &Permutation, input: &[Word]) -> Result<usize> {
    let n = p.len();
    if input.len() != n {
        return Err(crate::error::OffpermError::SizeMismatch {
            expected: n,
            got: input.len(),
        });
    }
    if n == 0 || !n.is_multiple_of(width) {
        return Err(crate::error::OffpermError::UnsupportedSize {
            n,
            reason: "DMM permutation needs n to be a positive multiple of the width",
        });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_perm::families;

    const W: usize = 32;

    fn reference(p: &Permutation, input: &[Word]) -> Vec<Word> {
        let mut out = vec![0; input.len()];
        p.permute(input, &mut out).unwrap();
        out
    }

    #[test]
    fn both_kernels_are_correct() {
        let n = 1024;
        let input: Vec<Word> = (0..n as Word).map(|v| v + 100).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 41).unwrap();
            let conv = dmm_conventional(W, 1, &p, &input).unwrap();
            let cf = dmm_conflict_free(W, 1, &p, &input).unwrap();
            let want = reference(&p, &input);
            assert_eq!(conv.output, want, "conventional {}", fam.name());
            assert_eq!(cf.output, want, "conflict-free {}", fam.name());
        }
    }

    #[test]
    fn conflict_free_never_conflicts() {
        let n = 1024;
        let input: Vec<Word> = (0..n as Word).collect();
        let p = families::random(n, 42);
        let cf = dmm_conflict_free(W, 1, &p, &input).unwrap();
        // 4 rounds, each n/w stages: time = 4 n/w with latency 1.
        assert_eq!(cf.rounds, 4);
        assert_eq!(cf.time, 4 * (n / W) as u64);
    }

    #[test]
    fn conflict_free_beats_conventional_on_random_permutations() {
        // The paper's [9] experiment: random 1024 floats, conventional
        // 246 ns vs conflict-free 165 ns (1.5x). On the model the same
        // direction must hold.
        let n = 1024;
        let input: Vec<Word> = (0..n as Word).collect();
        let mut wins = 0;
        for seed in 0..10 {
            let p = families::random(n, seed);
            let conv = dmm_conventional(W, 1, &p, &input).unwrap();
            let cf = dmm_conflict_free(W, 1, &p, &input).unwrap();
            if cf.time < conv.time {
                wins += 1;
            }
        }
        assert!(wins >= 9, "conflict-free won only {wins}/10");
    }

    #[test]
    fn conventional_wins_on_identity() {
        let n = 1024;
        let input: Vec<Word> = (0..n as Word).collect();
        let p = families::identical(n);
        let conv = dmm_conventional(W, 1, &p, &input).unwrap();
        let cf = dmm_conflict_free(W, 1, &p, &input).unwrap();
        // 3 conflict-free rounds beat 4.
        assert_eq!(conv.time, 3 * (n / W) as u64);
        assert!(conv.time < cf.time);
    }

    #[test]
    fn schedule_is_conflict_free_and_consistent() {
        let n = 512;
        let p = families::bit_reversal(n).unwrap();
        let (s, d) = conflict_free_schedule(&p, W).unwrap();
        for t in 0..n {
            assert_eq!(p.apply(s[t] as usize), d[t] as usize);
        }
        for chunk in s.chunks(W).chain(d.chunks(W)) {
            let banks: std::collections::HashSet<usize> =
                chunk.iter().map(|&v| v as usize % W).collect();
            assert_eq!(banks.len(), W);
        }
    }

    #[test]
    fn bad_sizes_rejected() {
        let p = families::random(100, 1); // not a multiple of 32
        let input = vec![0; 100];
        assert!(dmm_conventional(W, 1, &p, &input).is_err());
        let p = families::random(64, 1);
        assert!(dmm_conventional(W, 1, &p, &vec![0; 32]).is_err());
    }
}
