//! Column-wise permutation (Section VI): transpose, row-wise permute,
//! transpose back.
//!
//! Moving `a[p_j(i)][j] ← a[i][j]` along per-column permutations is done by
//! transposing the `r × c` matrix to `c × r`, permuting the former columns
//! as rows, and transposing back — Table I: 5 coalesced reads, 3 coalesced
//! writes, 4 + 4 conflict-free shared rounds,
//! `8(n/w + l − 1) + 8·n/w` time units.

use crate::error::{OffpermError, Result};
use crate::report::RunReport;
use crate::rowwise::{row_wise_permute, RowSchedule, StagedRowSchedule};
use crate::transpose::transpose;
use hmm_machine::{GlobalBuf, Hmm, RoundSummary};
use hmm_perm::{MatrixShape, Permutation};

/// Offline schedule for one column-wise pass on an `r × c` matrix: a
/// row-wise schedule for the transposed `c × r` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColSchedule {
    shape: MatrixShape,
    inner: RowSchedule,
}

impl ColSchedule {
    /// Build from per-column permutations (one per column, each permuting
    /// the `shape.rows` row indices of that column).
    pub fn build(shape: MatrixShape, perms: &[Permutation], width: usize) -> Result<Self> {
        if perms.len() != shape.cols {
            return Err(OffpermError::SizeMismatch {
                expected: shape.cols,
                got: perms.len(),
            });
        }
        let inner = RowSchedule::build(shape.transposed(), perms, width)?;
        Ok(ColSchedule { shape, inner })
    }

    /// The (untransposed) matrix shape this schedule permutes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// Stage into a machine's global memory.
    pub fn stage(&self, hmm: &mut Hmm) -> Result<StagedColSchedule> {
        Ok(StagedColSchedule {
            shape: self.shape,
            inner: self.inner.stage(hmm)?,
        })
    }
}

/// A [`ColSchedule`] resident in global memory.
#[derive(Debug, Clone, Copy)]
pub struct StagedColSchedule {
    shape: MatrixShape,
    inner: StagedRowSchedule,
}

impl StagedColSchedule {
    /// The (untransposed) matrix shape this schedule permutes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }
}

/// Execute the column-wise permutation `b[p_j(i)][j] = a[i][j]`.
///
/// `t1` and `t2` are caller-provided scratch buffers of `shape.len()`
/// elements (they hold the transposed intermediates); `a`, `b`, `t1`, `t2`
/// must be pairwise distinct allocations.
pub fn column_wise_permute(
    hmm: &mut Hmm,
    sched: &StagedColSchedule,
    a: GlobalBuf,
    b: GlobalBuf,
    t1: GlobalBuf,
    t2: GlobalBuf,
) -> Result<RunReport> {
    let shape = sched.shape;
    for buf in [a, b, t1, t2] {
        if buf.len() != shape.len() {
            return Err(OffpermError::SizeMismatch {
                expected: shape.len(),
                got: buf.len(),
            });
        }
    }
    let mut summary = RoundSummary::default();
    let mut add = |r: RunReport| {
        summary = merge(&summary, &r.summary);
    };
    add(transpose(hmm, shape, a, t1)?);
    add(row_wise_permute(hmm, &sched.inner, t1, t2)?);
    add(transpose(hmm, shape.transposed(), t2, b)?);
    Ok(RunReport::new(summary, 3))
}

/// Field-wise sum of two round summaries.
pub(crate) fn merge(x: &RoundSummary, y: &RoundSummary) -> RoundSummary {
    use hmm_machine::KindTotals;
    let add = |a: KindTotals, b: KindTotals| KindTotals {
        rounds: a.rounds + b.rounds,
        time: a.time + b.time,
    };
    RoundSummary {
        casual_read: add(x.casual_read, y.casual_read),
        casual_write: add(x.casual_write, y.casual_write),
        coalesced_read: add(x.coalesced_read, y.coalesced_read),
        coalesced_write: add(x.coalesced_write, y.coalesced_write),
        conflict_free_read: add(x.conflict_free_read, y.conflict_free_read),
        conflict_free_write: add(x.conflict_free_write, y.conflict_free_write),
        shared_casual: add(x.shared_casual, y.shared_casual),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::{MachineConfig, Word};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const W: usize = 8;
    const L: usize = 32;

    fn run_case(shape: MatrixShape, perms: &[Permutation]) -> (RunReport, Vec<Word>, Vec<Word>) {
        let mut hmm = Hmm::new(MachineConfig::pure(W, L)).unwrap();
        let sched = ColSchedule::build(shape, perms, W).unwrap();
        let staged = sched.stage(&mut hmm).unwrap();
        let n = shape.len();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let t1 = hmm.alloc_global(n);
        let t2 = hmm.alloc_global(n);
        let data: Vec<Word> = (0..n as Word).map(|v| v * 5 + 3).collect();
        hmm.host_write(a, &data).unwrap();
        let report = column_wise_permute(&mut hmm, &staged, a, b, t1, t2).unwrap();
        let mut want = vec![0; n];
        for i in 0..shape.rows {
            for j in 0..shape.cols {
                want[perms[j].apply(i) * shape.cols + j] = data[i * shape.cols + j];
            }
        }
        (report, hmm.host_read(b), want)
    }

    fn random_col_perms(shape: MatrixShape, seed: u64) -> Vec<Permutation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..shape.cols)
            .map(|_| Permutation::random(shape.rows, &mut rng))
            .collect()
    }

    #[test]
    fn random_column_permutations_are_correct() {
        let shape = MatrixShape::new(2 * W, 4 * W).unwrap();
        let perms = random_col_perms(shape, 11);
        let (report, got, want) = run_case(shape, &perms);
        assert_eq!(got, want);
        assert_eq!(report.summary.shared_casual.rounds, 0);
        assert_eq!(report.summary.casual_read.rounds, 0);
        assert_eq!(report.summary.casual_write.rounds, 0);
    }

    #[test]
    fn identity_columns_are_identity() {
        let shape = MatrixShape::new(W, W).unwrap();
        let perms = vec![Permutation::identity(W); W];
        let (_, got, want) = run_case(shape, &perms);
        assert_eq!(got, want);
    }

    #[test]
    fn round_counts_and_time_match_table1() {
        let shape = MatrixShape::new(2 * W, 2 * W).unwrap();
        let perms = random_col_perms(shape, 12);
        let (report, _, _) = run_case(shape, &perms);
        let s = &report.summary;
        assert_eq!(s.coalesced_read.rounds, 5);
        assert_eq!(s.coalesced_write.rounds, 3);
        assert_eq!(s.conflict_free_read.rounds, 4);
        assert_eq!(s.conflict_free_write.rounds, 4);
        assert_eq!(report.rounds(), 16);
        assert_eq!(report.launches, 3);
        let n = shape.len() as u64;
        let (w, l) = (W as u64, L as u64);
        assert_eq!(report.time, 8 * (n / w + l - 1) + 8 * (n / w));
    }

    #[test]
    fn rectangular_shapes_work() {
        let shape = MatrixShape::new(W, 4 * W).unwrap();
        let perms = random_col_perms(shape, 13);
        let (_, got, want) = run_case(shape, &perms);
        assert_eq!(got, want);
    }

    #[test]
    fn wrong_perm_count_rejected() {
        let shape = MatrixShape::new(W, 2 * W).unwrap();
        let perms = vec![Permutation::identity(W); 3];
        assert!(matches!(
            ColSchedule::build(shape, &perms, W),
            Err(OffpermError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = RoundSummary::default();
        a.coalesced_read.rounds = 2;
        a.coalesced_read.time = 10;
        let mut b = RoundSummary::default();
        b.coalesced_read.rounds = 3;
        b.coalesced_read.time = 7;
        b.casual_write.rounds = 1;
        let m = merge(&a, &b);
        assert_eq!(m.coalesced_read.rounds, 5);
        assert_eq!(m.coalesced_read.time, 17);
        assert_eq!(m.casual_write.rounds, 1);
    }
}
