//! Offline construction of the three-step scheduled permutation
//! (Section VII) — the simulator-side staging adapter over the
//! backend-neutral plan IR.
//!
//! An arbitrary permutation `P` of `n = r·c` elements, viewed on an
//! `r × c` matrix, is decomposed into
//!
//! 1. a **row-wise** permutation that moves every element into the column
//!    named by its color,
//! 2. a **column-wise** permutation that moves every element into its
//!    destination row,
//! 3. a **row-wise** permutation that moves every element into its
//!    destination column,
//!
//! where the colors come from edge-coloring the `c`-regular bipartite
//! multigraph whose left/right nodes are the source/destination rows and
//! whose edges are the `n` element moves. A proper `c`-coloring guarantees
//! (1) each row holds at most one element of each color (step 1 is a
//! permutation of its row) and (2) elements of one color have pairwise
//! distinct destination rows (step 2 is a permutation of each column) —
//! exactly the argument of Figure 6.
//!
//! The decomposition itself lives in [`hmm_plan::PlanIr`] (it is shared
//! with the CPU backend and the on-disk plan store); [`Decomposition`]
//! is the thin simulator-facing view: per-row [`Permutation`]s ready for
//! schedule staging, plus the Figure 6 inspection helpers.

use crate::colwise::ColSchedule;
use crate::error::Result;
use crate::rowwise::RowSchedule;
use hmm_graph::Strategy;
use hmm_perm::{MatrixShape, Permutation};
pub use hmm_plan::PlanIr;

/// The per-step row/column permutations of the decomposition — useful for
/// inspection, golden tests, and the Figure 6 reproduction; the runnable
/// artifact is [`crate::scheduled::ScheduledPermutation`].
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The matrix shape (`rows × cols`, both multiples of `w`).
    pub shape: MatrixShape,
    /// Step 1: for each row `i`, a permutation of its `cols` columns.
    pub step1_rows: Vec<Permutation>,
    /// Step 2: for each column `k`, a permutation of its `rows` rows.
    pub step2_cols: Vec<Permutation>,
    /// Step 3: for each row `i'`, a permutation of its `cols` columns.
    pub step3_rows: Vec<Permutation>,
}

impl Decomposition {
    /// Decompose `p` for a width-`w` machine using the default coloring
    /// strategy.
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        Self::build_with(p, width, Strategy::Hybrid)
    }

    /// Decompose `p` with an explicit coloring strategy.
    pub fn build_with(p: &Permutation, width: usize, strategy: Strategy) -> Result<Self> {
        Ok(Self::from_ir(&PlanIr::build_with(p, width, strategy)?))
    }

    /// Decompose `p` on an explicit matrix shape (exposed for tests with
    /// non-default shapes; `shape.len()` must equal `p.len()`).
    pub fn build_for_shape(
        p: &Permutation,
        shape: MatrixShape,
        strategy: Strategy,
    ) -> Result<Self> {
        // The nominal width only feeds the IR's recorded γ_w; the staging
        // adapter has no width of its own.
        let width = shape.rows.min(shape.cols).max(1);
        Ok(Self::from_ir(&PlanIr::build_for_shape(
            p, shape, width, strategy,
        )?))
    }

    /// Stage an already-built backend-neutral plan for the simulator: the
    /// IR's flat pass maps become one [`Permutation`] per row/column. This
    /// is how one König coloring (or one plan-store load) backs a
    /// simulator run and a native plan without being recomputed.
    pub fn from_ir(ir: &PlanIr) -> Self {
        Decomposition {
            shape: ir.shape(),
            step1_rows: ir.step1_row_perms(),
            step2_cols: ir.step2_col_perms(),
            step3_rows: ir.step3_row_perms(),
        }
    }

    /// Compose the three steps back into a flat permutation — used by tests
    /// to prove the decomposition is exactly `p`.
    pub fn recompose(&self) -> Permutation {
        let (r, c) = (self.shape.rows, self.shape.cols);
        let mut map = vec![0usize; r * c];
        for i in 0..r {
            for j in 0..c {
                let k = self.step1_rows[i].apply(j); // column after step 1
                let di = self.step2_cols[k].apply(i); // row after step 2
                let dj = self.step3_rows[di].apply(k); // column after step 3
                map[i * c + j] = di * c + dj;
            }
        }
        Permutation::from_vec_unchecked(map)
    }

    /// Matrix snapshots of an element-identity input after each step —
    /// the data of the paper's Figure 6. Entry `(row, col)` holds the
    /// element's *source* flat index.
    pub fn snapshots(&self) -> [Vec<usize>; 4] {
        let (r, c) = (self.shape.rows, self.shape.cols);
        let n = r * c;
        let input: Vec<usize> = (0..n).collect();
        let mut after1 = vec![0usize; n];
        let mut after2 = vec![0usize; n];
        let mut after3 = vec![0usize; n];
        for i in 0..r {
            for j in 0..c {
                let k = self.step1_rows[i].apply(j);
                after1[i * c + k] = input[i * c + j];
            }
        }
        for k in 0..c {
            for i in 0..r {
                let di = self.step2_cols[k].apply(i);
                after2[di * c + k] = after1[i * c + k];
            }
        }
        for di in 0..r {
            for k in 0..c {
                let dj = self.step3_rows[di].apply(k);
                after3[di * c + dj] = after2[di * c + k];
            }
        }
        [input, after1, after2, after3]
    }

    /// Build the stageable kernels: row-wise schedules for steps 1 and 3
    /// and a column-wise schedule for step 2.
    pub fn schedules(
        &self,
        width: usize,
        strategy: Strategy,
    ) -> Result<(RowSchedule, ColSchedule, RowSchedule)> {
        let s1 = RowSchedule::build_with(self.shape, &self.step1_rows, width, strategy)?;
        let s2 = ColSchedule::build(self.shape, &self.step2_cols, width)?;
        let s3 = RowSchedule::build_with(self.shape, &self.step3_rows, width, strategy)?;
        Ok((s1, s2, s3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OffpermError;
    use hmm_perm::families;

    const W: usize = 8;

    #[test]
    fn decomposition_recomposes_for_all_families() {
        let n = 1 << 10;
        for fam in families::Family::ALL {
            let p = fam.build(n, 21).unwrap();
            let d = Decomposition::build(&p, W).unwrap();
            assert_eq!(d.recompose(), p, "{}", fam.name());
        }
    }

    #[test]
    fn decomposition_recomposes_for_random_rectangular() {
        // Odd power of two: rectangular shape.
        let n = 1 << 11;
        let p = families::random(n, 3);
        let d = Decomposition::build(&p, W).unwrap();
        assert_eq!(d.shape.rows * 2, d.shape.cols);
        assert_eq!(d.recompose(), p);
    }

    #[test]
    fn step_permutations_are_valid_and_sized() {
        let n = 1 << 10;
        let p = families::random(n, 4);
        let d = Decomposition::build(&p, W).unwrap();
        let (r, c) = (d.shape.rows, d.shape.cols);
        assert_eq!(d.step1_rows.len(), r);
        assert_eq!(d.step2_cols.len(), c);
        assert_eq!(d.step3_rows.len(), r);
        assert!(d.step1_rows.iter().all(|q| q.len() == c));
        assert!(d.step2_cols.iter().all(|q| q.len() == r));
        assert!(d.step3_rows.iter().all(|q| q.len() == c));
    }

    #[test]
    fn snapshots_track_elements_figure6_style() {
        let n = 256;
        let p = families::random(n, 5);
        let d = Decomposition::build(&p, W).unwrap();
        let [input, after1, after2, after3] = d.snapshots();
        let (r, c) = (d.shape.rows, d.shape.cols);
        // Input is the identity layout.
        assert_eq!(input, (0..n).collect::<Vec<_>>());
        // Step 1 permutes within rows only.
        for i in 0..r {
            let mut row: Vec<usize> = after1[i * c..(i + 1) * c].to_vec();
            row.sort_unstable();
            assert_eq!(row, (i * c..(i + 1) * c).collect::<Vec<_>>());
        }
        // Step 2 permutes within columns only.
        for k in 0..c {
            let mut col1: Vec<usize> = (0..r).map(|i| after1[i * c + k]).collect();
            let mut col2: Vec<usize> = (0..r).map(|i| after2[i * c + k]).collect();
            col1.sort_unstable();
            col2.sort_unstable();
            assert_eq!(col1, col2, "column {k} changed membership in step 2");
        }
        // Final snapshot realizes P: element src sits at position P[src].
        for (pos, &src) in after3.iter().enumerate() {
            assert_eq!(p.apply(src), pos);
        }
    }

    #[test]
    fn identity_decomposition_steps_are_cheap() {
        let n = 256;
        let p = families::identical(n);
        let d = Decomposition::build(&p, W).unwrap();
        assert_eq!(d.recompose(), p);
        // Step 2 must be the identity on every column: elements never
        // change rows.
        for q in &d.step2_cols {
            assert!(q.is_identity());
        }
    }

    #[test]
    fn explicit_shape_must_match_length() {
        let p = families::random(64, 6);
        let shape = MatrixShape::new(4, 8).unwrap();
        assert!(matches!(
            Decomposition::build_for_shape(&p, shape, Strategy::Hybrid),
            Err(OffpermError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn too_small_or_odd_sizes_rejected() {
        let p = families::random(100, 7); // not a power of two
        assert!(Decomposition::build(&p, W).is_err());
        let p = families::random(32, 8); // rows would be 4 < w = 8
        assert!(Decomposition::build(&p, W).is_err());
    }

    #[test]
    fn schedules_build_from_decomposition() {
        let n = 1 << 10;
        let p = families::bit_reversal(n).unwrap();
        let d = Decomposition::build(&p, W).unwrap();
        let (s1, s2, s3) = d.schedules(W, Strategy::Hybrid).unwrap();
        assert_eq!(s1.shape(), d.shape);
        assert_eq!(s2.shape(), d.shape);
        assert_eq!(s3.shape(), d.shape);
    }
}
