//! Run reports: model-time and round-classification results of executing an
//! algorithm on the simulated HMM.

use hmm_machine::RoundSummary;

/// What one algorithm execution cost on the machine.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Round counts and per-kind time (the shape of the paper's Table I).
    pub summary: RoundSummary,
    /// Total simulated time units.
    pub time: u64,
    /// Number of kernel launches performed (the paper's scheduled
    /// implementation uses five sequential kernels).
    pub launches: usize,
}

impl RunReport {
    /// Build from a ledger summary.
    pub fn new(summary: RoundSummary, launches: usize) -> Self {
        RunReport {
            time: summary.total_time(),
            summary,
            launches,
        }
    }

    /// Total memory-access rounds.
    pub fn rounds(&self) -> u64 {
        self.summary.total_rounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_mirrors_summary() {
        let r = RunReport::new(RoundSummary::default(), 5);
        assert_eq!(r.time, 0);
        assert_eq!(r.rounds(), 0);
        assert_eq!(r.launches, 5);
    }
}
