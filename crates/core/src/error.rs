//! Unified error type for the offline-permutation algorithms.

use core::fmt;
use hmm_graph::GraphError;
use hmm_machine::MachineError;
use hmm_perm::PermError;

/// Errors raised by the algorithms in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OffpermError {
    /// An underlying machine operation failed (capacity, bounds, config).
    Machine(MachineError),
    /// A permutation was malformed or incompatible.
    Perm(PermError),
    /// Schedule construction failed in the graph substrate.
    Graph(GraphError),
    /// The input size is unsupported by an algorithm (e.g. the scheduled
    /// algorithm needs `n = r·c` with both factors multiples of `w`).
    UnsupportedSize {
        /// The offending size.
        n: usize,
        /// Why it is unsupported.
        reason: &'static str,
    },
    /// Sizes of two inputs disagree (e.g. permutation vs array length).
    SizeMismatch {
        /// What the algorithm expected.
        expected: usize,
        /// What it got.
        got: usize,
    },
    /// A plan-layer failure that has no structural equivalent here (codec
    /// or store errors surfacing through a simulator-facing API).
    Plan(hmm_plan::PlanError),
}

impl fmt::Display for OffpermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffpermError::Machine(e) => write!(f, "machine error: {e}"),
            OffpermError::Perm(e) => write!(f, "permutation error: {e}"),
            OffpermError::Graph(e) => write!(f, "graph error: {e}"),
            OffpermError::UnsupportedSize { n, reason } => {
                write!(f, "unsupported size {n}: {reason}")
            }
            OffpermError::SizeMismatch { expected, got } => {
                write!(f, "size mismatch: expected {expected}, got {got}")
            }
            OffpermError::Plan(e) => write!(f, "plan error: {e}"),
        }
    }
}

impl std::error::Error for OffpermError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OffpermError::Machine(e) => Some(e),
            OffpermError::Perm(e) => Some(e),
            OffpermError::Graph(e) => Some(e),
            OffpermError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for OffpermError {
    fn from(e: MachineError) -> Self {
        OffpermError::Machine(e)
    }
}

impl From<PermError> for OffpermError {
    fn from(e: PermError) -> Self {
        OffpermError::Perm(e)
    }
}

impl From<GraphError> for OffpermError {
    fn from(e: GraphError) -> Self {
        OffpermError::Graph(e)
    }
}

impl From<hmm_plan::PlanError> for OffpermError {
    fn from(e: hmm_plan::PlanError) -> Self {
        // Structural mapping where a twin variant exists, so callers that
        // match on `OffpermError::SizeMismatch` etc. see the same shapes
        // whether the failure arose here or in the plan layer.
        use hmm_plan::PlanError;
        match e {
            PlanError::Perm(e) => OffpermError::Perm(e),
            PlanError::Graph(e) => OffpermError::Graph(e),
            PlanError::UnsupportedSize { n, reason } => OffpermError::UnsupportedSize { n, reason },
            PlanError::SizeMismatch { expected, got } => {
                OffpermError::SizeMismatch { expected, got }
            }
            e @ (PlanError::Codec { .. } | PlanError::Store { .. } | PlanError::Invalid { .. }) => {
                OffpermError::Plan(e)
            }
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, OffpermError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: OffpermError = MachineError::EmptyLaunch.into();
        assert!(matches!(e, OffpermError::Machine(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: OffpermError = PermError::NotPowerOfTwo { n: 3 }.into();
        assert!(e.to_string().contains("permutation"));
        let e = OffpermError::UnsupportedSize {
            n: 40,
            reason: "not a power of two",
        };
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("40"));
    }
}
