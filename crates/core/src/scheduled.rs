//! The scheduled offline permutation algorithm (Section VII) — the paper's
//! main contribution.
//!
//! Executes the three-step decomposition of [`crate::schedule`] as five
//! sequential kernels (row-wise, transpose, row-wise, transpose, row-wise),
//! every round coalesced or conflict-free. On the pure HMM the total is
//! exactly the Table I figure:
//!
//! ```text
//! 16 · (n/w + l − 1)   global rounds (11 coalesced reads + 5 writes)
//! 16 · (n/w)           shared rounds ( 8 conflict-free reads + 8 writes)
//! = 32·n/w + 16(l − 1) time units, independent of the permutation
//! ```
//!
//! against the `2(n/w) + l − 1` lower bound — optimal up to the constant.

use crate::colwise::{column_wise_permute, merge, StagedColSchedule};
use crate::error::{OffpermError, Result};
use crate::report::RunReport;
use crate::rowwise::{row_wise_permute, StagedRowSchedule};
use crate::schedule::Decomposition;
use hmm_graph::Strategy;
use hmm_machine::{GlobalBuf, Hmm, RoundSummary};
use hmm_perm::{MatrixShape, Permutation};

/// A fully built (but not yet staged) scheduled permutation.
#[derive(Debug, Clone)]
pub struct ScheduledPermutation {
    shape: MatrixShape,
    s1: crate::rowwise::RowSchedule,
    s2: crate::colwise::ColSchedule,
    s3: crate::rowwise::RowSchedule,
}

impl ScheduledPermutation {
    /// Build the offline schedule for permutation `p` on a width-`w`
    /// machine. This is the precomputation the paper assumes "given in
    /// advance"; its cost is host-side and not charged to the machine.
    pub fn build(p: &Permutation, width: usize) -> Result<Self> {
        Self::build_with(p, width, Strategy::Hybrid)
    }

    /// [`ScheduledPermutation::build`] with an explicit coloring strategy
    /// (for the ablation bench).
    pub fn build_with(p: &Permutation, width: usize, strategy: Strategy) -> Result<Self> {
        let decomposition = Decomposition::build_with(p, width, strategy)?;
        Self::from_decomposition(&decomposition, width, strategy)
    }

    /// Build from an existing decomposition.
    pub fn from_decomposition(d: &Decomposition, width: usize, strategy: Strategy) -> Result<Self> {
        let (s1, s2, s3) = d.schedules(width, strategy)?;
        Ok(ScheduledPermutation {
            shape: d.shape,
            s1,
            s2,
            s3,
        })
    }

    /// The matrix shape used by the three passes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// Number of elements permuted.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// True for the empty schedule (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stage the three schedules into a machine's global memory (six
    /// 16-bit arrays of `n` entries).
    pub fn stage(&self, hmm: &mut Hmm) -> Result<StagedScheduled> {
        Ok(StagedScheduled {
            shape: self.shape,
            s1: self.s1.stage(hmm)?,
            s2: self.s2.stage(hmm)?,
            s3: self.s3.stage(hmm)?,
        })
    }
}

/// A [`ScheduledPermutation`] resident in a machine's global memory,
/// ready to run any number of times.
#[derive(Debug, Clone, Copy)]
pub struct StagedScheduled {
    shape: MatrixShape,
    s1: StagedRowSchedule,
    s2: StagedColSchedule,
    s3: StagedRowSchedule,
}

impl StagedScheduled {
    /// The matrix shape used by the three passes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// Execute the permutation: `b[P[i]] = a[i]`.
    ///
    /// `t1` and `t2` are scratch buffers of `n` elements (`a`, `b`, `t1`,
    /// `t2` pairwise distinct). Five kernels run: row-wise (step 1), then
    /// transpose / row-wise / transpose (step 2), then row-wise (step 3).
    pub fn run(
        &self,
        hmm: &mut Hmm,
        a: GlobalBuf,
        b: GlobalBuf,
        t1: GlobalBuf,
        t2: GlobalBuf,
    ) -> Result<RunReport> {
        let n = self.shape.len();
        for buf in [a, b, t1, t2] {
            if buf.len() != n {
                return Err(OffpermError::SizeMismatch {
                    expected: n,
                    got: buf.len(),
                });
            }
        }
        let mut summary = RoundSummary::default();
        // Step 1 (row-wise): a -> t1.
        let r1 = row_wise_permute(hmm, &self.s1, a, t1)?;
        summary = merge(&summary, &r1.summary);
        // Step 2 (column-wise = transpose + row-wise + transpose):
        // t1 -> b, scratching through t2 and a. `a` is dead after step 1,
        // so the column-wise pass may clobber it — this keeps the footprint
        // at four n-element buffers, like the paper's five-kernel chain.
        let r2 = column_wise_permute(hmm, &self.s2, t1, t2, b, a)?;
        summary = merge(&summary, &r2.summary);
        // Step 3 (row-wise): t2 -> b.
        let r3 = row_wise_permute(hmm, &self.s3, t2, b)?;
        summary = merge(&summary, &r3.summary);
        Ok(RunReport::new(summary, 5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::{MachineConfig, Word};
    use hmm_perm::families;

    const W: usize = 8;
    const L: usize = 32;

    fn run_scheduled(p: &Permutation) -> (RunReport, Vec<Word>, Vec<Word>) {
        let n = p.len();
        let mut hmm = Hmm::new(MachineConfig::pure(W, L)).unwrap();
        let sched = ScheduledPermutation::build(p, W).unwrap();
        let staged = sched.stage(&mut hmm).unwrap();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let t1 = hmm.alloc_global(n);
        let t2 = hmm.alloc_global(n);
        let data: Vec<Word> = (0..n as Word).map(|v| v * 17 + 29).collect();
        hmm.host_write(a, &data).unwrap();
        let report = staged.run(&mut hmm, a, b, t1, t2).unwrap();
        let mut want = vec![0; n];
        p.permute(&data, &mut want).unwrap();
        (report, hmm.host_read(b), want)
    }

    #[test]
    fn correct_for_all_families_square() {
        let n = 1 << 10;
        for fam in families::Family::ALL {
            let p = fam.build(n, 31).unwrap();
            let (report, got, want) = run_scheduled(&p);
            assert_eq!(got, want, "{}", fam.name());
            assert_eq!(report.summary.shared_casual.rounds, 0, "{}", fam.name());
        }
    }

    #[test]
    fn correct_for_all_families_rectangular() {
        let n = 1 << 11;
        for fam in families::Family::ALL {
            let p = fam.build(n, 32).unwrap();
            let (_, got, want) = run_scheduled(&p);
            assert_eq!(got, want, "{}", fam.name());
        }
    }

    #[test]
    fn round_counts_match_table1() {
        let n = 1 << 10;
        let p = families::bit_reversal(n).unwrap();
        let (report, _, _) = run_scheduled(&p);
        let s = &report.summary;
        assert_eq!(s.coalesced_read.rounds, 11);
        assert_eq!(s.coalesced_write.rounds, 5);
        assert_eq!(s.conflict_free_read.rounds, 8);
        assert_eq!(s.conflict_free_write.rounds, 8);
        assert_eq!(s.casual_read.rounds, 0);
        assert_eq!(s.casual_write.rounds, 0);
        assert_eq!(report.rounds(), 32, "the paper's 32 rounds");
        assert_eq!(report.launches, 5, "the paper's five kernel calls");
    }

    #[test]
    fn time_is_32nw_plus_16l_for_every_permutation() {
        let n = 1 << 10;
        let want_time = {
            let (nw, l) = ((n / W) as u64, L as u64);
            16 * (nw + l - 1) + 16 * nw
        };
        for fam in families::Family::ALL {
            let p = fam.build(n, 33).unwrap();
            let (report, _, _) = run_scheduled(&p);
            assert_eq!(
                report.time,
                want_time,
                "{}: scheduled time must be permutation-independent",
                fam.name()
            );
        }
    }

    #[test]
    fn many_random_permutations_are_correct() {
        for seed in 0..10 {
            let p = families::random(256, seed);
            let (_, got, want) = run_scheduled(&p);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn buffer_mismatch_rejected() {
        let p = families::random(256, 1);
        let mut hmm = Hmm::new(MachineConfig::pure(W, L)).unwrap();
        let sched = ScheduledPermutation::build(&p, W).unwrap();
        let staged = sched.stage(&mut hmm).unwrap();
        let a = hmm.alloc_global(256);
        let b = hmm.alloc_global(256);
        let t1 = hmm.alloc_global(256);
        let bad = hmm.alloc_global(128);
        assert!(matches!(
            staged.run(&mut hmm, a, b, t1, bad),
            Err(OffpermError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn accessors() {
        let p = families::random(256, 2);
        let sched = ScheduledPermutation::build(&p, W).unwrap();
        assert_eq!(sched.len(), 256);
        assert!(!sched.is_empty());
        assert_eq!(sched.shape().len(), 256);
    }
}
