//! Row-wise permutation on the HMM (Section VI).
//!
//! Given a matrix `a` of shape `r × c` and one permutation `p_i` per row,
//! move `a[i][j]` to `b[i][p_i(j)]` for all `(i, j)` with every memory
//! round coalesced or conflict-free.
//!
//! The trick is the offline **schedule**: for each row, draw the bipartite
//! multigraph whose nodes are the `w` shared-memory banks on each side and
//! whose edges are the row's moves `(j mod w) → (p_i(j) mod w)`. The graph
//! is `(c/w)`-regular, so by König's theorem it can be edge-colored with
//! `c/w` colors. Ordering each color class by source bank yields arrays
//! `s` and `d` with `p_i(s[t]) = d[t]` such that every aligned group of `w`
//! consecutive entries of `s` hits `w` distinct banks, and likewise for `d`
//! — i.e. the shared-memory gather `A[s[t]]` and scatter `B[d[t]]` are both
//! conflict-free.
//!
//! The kernel then performs exactly the Table I rounds: 3 coalesced global
//! reads (`a`, `s`, `d`), 2 conflict-free shared writes (`A`, `B`),
//! 2 conflict-free shared reads, and 1 coalesced global write (`b`):
//! `4(n/w + l − 1) + 4·n/w` time units.

use crate::error::{OffpermError, Result};
use crate::report::RunReport;
use hmm_graph::{edge_color_with, RegularBipartite, Strategy};
use hmm_machine::{GlobalBuf, Hmm, Word};
use hmm_perm::{MatrixShape, Permutation};

/// Element width (bytes) of the staged `s`/`d` schedule arrays for a row
/// length of `cols`: the paper uses `short int` ("at most 16 bits are
/// necessary"), which holds for every size it evaluates; rows longer than
/// 65536 need 32-bit entries and pay double the streaming cost.
pub const fn schedule_bytes(cols: usize) -> usize {
    if cols <= 1 << 16 {
        2
    } else {
        4
    }
}

/// The offline-computed conflict-free schedule for one row-wise
/// permutation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSchedule {
    shape: MatrixShape,
    /// Flattened `r × c`: within row `i`, slot `t` reads `A[s[i*c + t]]`...
    s: Vec<u32>,
    /// ...and writes `B[d[i*c + t]]`.
    d: Vec<u32>,
}

impl RowSchedule {
    /// Build the schedule for per-row permutations `perms` (one per row,
    /// each of length `shape.cols`) on a width-`w` machine.
    ///
    /// `strategy` selects the edge-coloring algorithm; use
    /// [`Strategy::Hybrid`] unless benchmarking the coloring itself.
    pub fn build_with(
        shape: MatrixShape,
        perms: &[Permutation],
        width: usize,
        strategy: Strategy,
    ) -> Result<Self> {
        if !shape.tiles_by(width) {
            return Err(OffpermError::UnsupportedSize {
                n: shape.len(),
                reason: "matrix dimensions must be multiples of the machine width",
            });
        }
        if perms.len() != shape.rows {
            return Err(OffpermError::SizeMismatch {
                expected: shape.rows,
                got: perms.len(),
            });
        }
        let c = shape.cols;
        for p in perms {
            if p.len() != c {
                return Err(OffpermError::SizeMismatch {
                    expected: c,
                    got: p.len(),
                });
            }
        }
        let mut s = vec![0u32; shape.len()];
        let mut d = vec![0u32; shape.len()];
        // Rows are independent coloring problems: parallelize the offline
        // construction over bands of rows (std scoped threads; results are
        // bit-identical to the sequential order since each row writes only
        // its own slice).
        let workers = std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
            .min(shape.rows);
        let band = shape.rows.div_ceil(workers);
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for ((s_band, d_band), perm_band) in s
                .chunks_mut(band * c)
                .zip(d.chunks_mut(band * c))
                .zip(perms.chunks(band))
            {
                handles.push(
                    scope.spawn(move || schedule_rows(perm_band, width, strategy, s_band, d_band)),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("schedule worker panicked"))
                .collect()
        });
        for r in results {
            r?;
        }
        Ok(RowSchedule { shape, s, d })
    }

    /// [`RowSchedule::build_with`] using the default coloring strategy.
    pub fn build(shape: MatrixShape, perms: &[Permutation], width: usize) -> Result<Self> {
        Self::build_with(shape, perms, width, Strategy::Hybrid)
    }

    /// The matrix shape this schedule permutes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }

    /// The flattened source schedule (for inspection / golden tests).
    pub fn s(&self) -> &[u32] {
        &self.s
    }

    /// The flattened destination schedule.
    pub fn d(&self) -> &[u32] {
        &self.d
    }

    /// Stage the schedule into the machine's global memory as the two
    /// 16-bit arrays the kernel streams.
    pub fn stage(&self, hmm: &mut Hmm) -> Result<StagedRowSchedule> {
        let s_buf = hmm.alloc_global(self.s.len());
        let d_buf = hmm.alloc_global(self.d.len());
        let s_words: Vec<Word> = self.s.iter().map(|&v| v as Word).collect();
        let d_words: Vec<Word> = self.d.iter().map(|&v| v as Word).collect();
        hmm.host_write(s_buf, &s_words)?;
        hmm.host_write(d_buf, &d_words)?;
        Ok(StagedRowSchedule {
            shape: self.shape,
            s: s_buf,
            d: d_buf,
        })
    }
}

/// Color one band of rows into its `s`/`d` slices (each of
/// `perms.len() * cols` entries).
fn schedule_rows(
    perms: &[Permutation],
    width: usize,
    strategy: Strategy,
    s: &mut [u32],
    d: &mut [u32],
) -> Result<()> {
    let c = perms.first().map(Permutation::len).unwrap_or(0);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(c);
    for (i, p) in perms.iter().enumerate() {
        // Edge j connects source bank (j mod w) to dest bank (p(j) mod w).
        edges.clear();
        edges.extend((0..c).map(|j| (j % width, p.apply(j) % width)));
        let graph = RegularBipartite::new(width, edges.clone())?;
        let coloring = edge_color_with(&graph, strategy)?;
        debug_assert_eq!(coloring.num_colors, c / width);
        let row_s = &mut s[i * c..(i + 1) * c];
        let row_d = &mut d[i * c..(i + 1) * c];
        for j in 0..c {
            // Within a color class, order by source bank: the class has
            // exactly one edge per source bank.
            let slot = coloring.colors[j] * width + (j % width);
            row_s[slot] = j as u32;
            row_d[slot] = p.apply(j) as u32;
        }
    }
    Ok(())
}

/// A [`RowSchedule`] resident in a machine's global memory.
#[derive(Debug, Clone, Copy)]
pub struct StagedRowSchedule {
    shape: MatrixShape,
    s: GlobalBuf,
    d: GlobalBuf,
}

impl StagedRowSchedule {
    /// The matrix shape this schedule permutes.
    pub fn shape(&self) -> MatrixShape {
        self.shape
    }
}

/// Execute the row-wise permutation: `b[i][p_i(j)] = a[i][j]` using the
/// staged schedule. One block per row; per-block shared memory holds the
/// two data arrays `A` and `B` of `cols` elements each (the 48 KB capacity
/// check happens here).
pub fn row_wise_permute(
    hmm: &mut Hmm,
    sched: &StagedRowSchedule,
    a: GlobalBuf,
    b: GlobalBuf,
) -> Result<RunReport> {
    let shape = sched.shape;
    let elem_bytes = hmm.config().elem.bytes();
    for buf in [a, b] {
        if buf.len() != shape.len() {
            return Err(OffpermError::SizeMismatch {
                expected: shape.len(),
                got: buf.len(),
            });
        }
    }
    let c = shape.cols;
    let (s_buf, d_buf) = (sched.s, sched.d);
    let mark = hmm.mark();
    hmm.launch(shape.rows, c, |blk| {
        let i = blk.block_id();
        let shared_a = blk.shared_alloc(c, elem_bytes)?;
        let shared_b = blk.shared_alloc(c, elem_bytes)?;
        let row: Vec<usize> = (i * c..(i + 1) * c).collect();
        let idx: Vec<usize> = (0..c).collect();

        // Step 1: coalesced read of the row; conflict-free (identity)
        // staging into shared A.
        let a_addrs: Vec<usize> = row.iter().map(|&x| a.addr(x)).collect();
        let vals = blk.global_read(&a_addrs)?;
        blk.shared_write(shared_a, &idx, &vals)?;

        // Step 2: coalesced reads of the 16-bit schedule arrays into
        // registers.
        let s_addrs: Vec<usize> = row.iter().map(|&x| s_buf.addr(x)).collect();
        let d_addrs: Vec<usize> = row.iter().map(|&x| d_buf.addr(x)).collect();
        let sv = blk.global_read_as(&s_addrs, schedule_bytes(c))?;
        let dv = blk.global_read_as(&d_addrs, schedule_bytes(c))?;

        // Step 3: conflict-free gather A[s] and scatter B[d].
        let s_idx: Vec<usize> = sv.iter().map(|&v| v as usize).collect();
        let d_idx: Vec<usize> = dv.iter().map(|&v| v as usize).collect();
        let moved = blk.shared_read(shared_a, &s_idx)?;
        blk.shared_write(shared_b, &d_idx, &moved)?;

        // Step 4: conflict-free (identity) read of B; coalesced write of
        // the output row.
        let out = blk.shared_read(shared_b, &idx)?;
        let b_addrs: Vec<usize> = row.iter().map(|&x| b.addr(x)).collect();
        blk.global_write(&b_addrs, &out)
    })?;
    Ok(RunReport::new(hmm.since(mark), 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::MachineConfig;
    use hmm_perm::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const W: usize = 8;
    const L: usize = 32;

    fn machine() -> Hmm {
        Hmm::new(MachineConfig::pure(W, L)).unwrap()
    }

    fn random_row_perms(shape: MatrixShape, seed: u64) -> Vec<Permutation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..shape.rows)
            .map(|_| Permutation::random(shape.cols, &mut rng))
            .collect()
    }

    fn reference(shape: MatrixShape, perms: &[Permutation], data: &[Word]) -> Vec<Word> {
        let mut out = vec![0; data.len()];
        for (i, p) in perms.iter().enumerate() {
            for j in 0..shape.cols {
                out[i * shape.cols + p.apply(j)] = data[i * shape.cols + j];
            }
        }
        out
    }

    fn run_case(shape: MatrixShape, perms: &[Permutation]) -> (RunReport, Vec<Word>, Vec<Word>) {
        let mut hmm = machine();
        let sched = RowSchedule::build(shape, perms, W).unwrap();
        let staged = sched.stage(&mut hmm).unwrap();
        let a = hmm.alloc_global(shape.len());
        let b = hmm.alloc_global(shape.len());
        let data: Vec<Word> = (0..shape.len() as Word).map(|v| v * 13 + 7).collect();
        hmm.host_write(a, &data).unwrap();
        let report = row_wise_permute(&mut hmm, &staged, a, b).unwrap();
        let got = hmm.host_read(b);
        let want = reference(shape, perms, &data);
        (report, got, want)
    }

    #[test]
    fn schedule_slots_are_bank_disjoint() {
        let shape = MatrixShape::new(2 * W, 4 * W).unwrap();
        let perms = random_row_perms(shape, 5);
        let sched = RowSchedule::build(shape, &perms, W).unwrap();
        let c = shape.cols;
        for i in 0..shape.rows {
            for slot_group in sched.s()[i * c..(i + 1) * c].chunks(W) {
                let banks: std::collections::HashSet<usize> =
                    slot_group.iter().map(|&v| v as usize % W).collect();
                assert_eq!(banks.len(), W, "s slots conflict in row {i}");
            }
            for slot_group in sched.d()[i * c..(i + 1) * c].chunks(W) {
                let banks: std::collections::HashSet<usize> =
                    slot_group.iter().map(|&v| v as usize % W).collect();
                assert_eq!(banks.len(), W, "d slots conflict in row {i}");
            }
        }
    }

    #[test]
    fn schedule_is_consistent_with_permutations() {
        // p_i(s[t]) == d[t] for every slot.
        let shape = MatrixShape::new(W, 2 * W).unwrap();
        let perms = random_row_perms(shape, 6);
        let sched = RowSchedule::build(shape, &perms, W).unwrap();
        let c = shape.cols;
        for (i, p) in perms.iter().enumerate() {
            for t in 0..c {
                let s = sched.s()[i * c + t] as usize;
                let d = sched.d()[i * c + t] as usize;
                assert_eq!(p.apply(s), d, "row {i} slot {t}");
            }
        }
    }

    #[test]
    fn random_row_permutations_are_correct() {
        let shape = MatrixShape::new(2 * W, 4 * W).unwrap();
        let perms = random_row_perms(shape, 7);
        let (report, got, want) = run_case(shape, &perms);
        assert_eq!(got, want);
        assert_eq!(report.summary.shared_casual.rounds, 0);
        assert_eq!(report.summary.casual_read.rounds, 0);
        assert_eq!(report.summary.casual_write.rounds, 0);
    }

    #[test]
    fn identity_rows_are_correct() {
        let shape = MatrixShape::new(W, W).unwrap();
        let perms: Vec<Permutation> = (0..W).map(|_| Permutation::identity(W)).collect();
        let (_, got, want) = run_case(shape, &perms);
        assert_eq!(got, want);
    }

    #[test]
    fn reversal_rows_are_correct() {
        let shape = MatrixShape::new(W, 4 * W).unwrap();
        let c = shape.cols;
        let rev = Permutation::from_vec((0..c).map(|j| c - 1 - j).collect()).unwrap();
        let perms: Vec<Permutation> = (0..shape.rows).map(|_| rev.clone()).collect();
        let (_, got, want) = run_case(shape, &perms);
        assert_eq!(got, want);
    }

    #[test]
    fn distinct_permutation_per_row() {
        let shape = MatrixShape::new(2 * W, 2 * W).unwrap();
        let c = shape.cols;
        let perms: Vec<Permutation> = (0..shape.rows)
            .map(|i| families::rotation(c, i % c))
            .collect();
        let (_, got, want) = run_case(shape, &perms);
        assert_eq!(got, want);
    }

    #[test]
    fn round_counts_and_time_match_table1() {
        let shape = MatrixShape::new(2 * W, 4 * W).unwrap();
        let perms = random_row_perms(shape, 8);
        let (report, _, _) = run_case(shape, &perms);
        let s = &report.summary;
        assert_eq!(s.coalesced_read.rounds, 3);
        assert_eq!(s.coalesced_write.rounds, 1);
        assert_eq!(s.conflict_free_read.rounds, 2);
        assert_eq!(s.conflict_free_write.rounds, 2);
        assert_eq!(report.rounds(), 8);
        let n = shape.len() as u64;
        let (w, l) = (W as u64, L as u64);
        assert_eq!(report.time, 4 * (n / w + l - 1) + 4 * (n / w));
    }

    #[test]
    fn matching_only_strategy_also_correct() {
        let shape = MatrixShape::new(W, 2 * W).unwrap();
        let perms = random_row_perms(shape, 9);
        let sched = RowSchedule::build_with(shape, &perms, W, Strategy::MatchingOnly).unwrap();
        let mut hmm = machine();
        let staged = sched.stage(&mut hmm).unwrap();
        let a = hmm.alloc_global(shape.len());
        let b = hmm.alloc_global(shape.len());
        let data: Vec<Word> = (0..shape.len() as Word).collect();
        hmm.host_write(a, &data).unwrap();
        let report = row_wise_permute(&mut hmm, &staged, a, b).unwrap();
        assert_eq!(hmm.host_read(b), reference(shape, &perms, &data));
        assert_eq!(report.summary.shared_casual.rounds, 0);
    }

    #[test]
    fn wrong_perm_count_or_length_rejected() {
        let shape = MatrixShape::new(W, W).unwrap();
        let too_few = vec![Permutation::identity(W); W - 1];
        assert!(RowSchedule::build(shape, &too_few, W).is_err());
        let wrong_len = vec![Permutation::identity(2 * W); W];
        assert!(RowSchedule::build(shape, &wrong_len, W).is_err());
        let bad_shape = MatrixShape::new(W + 1, W).unwrap();
        assert!(RowSchedule::build(bad_shape, &too_few, W).is_err());
    }

    #[test]
    fn buffer_size_mismatch_rejected() {
        let shape = MatrixShape::new(W, W).unwrap();
        let perms = vec![Permutation::identity(W); W];
        let sched = RowSchedule::build(shape, &perms, W).unwrap();
        let mut hmm = machine();
        let staged = sched.stage(&mut hmm).unwrap();
        let a = hmm.alloc_global(shape.len());
        let small = hmm.alloc_global(W);
        assert!(matches!(
            row_wise_permute(&mut hmm, &staged, a, small),
            Err(OffpermError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn schedule_width_follows_row_length() {
        // The paper's short-int claim holds to 64K columns; beyond that the
        // model charges 32-bit streaming.
        assert_eq!(schedule_bytes(32), 2);
        assert_eq!(schedule_bytes(1 << 16), 2);
        assert_eq!(schedule_bytes((1 << 16) + 1), 4);
    }

    #[test]
    fn shared_capacity_enforced() {
        // Shrink shared memory so the two row buffers don't fit.
        let shape = MatrixShape::new(W, 4 * W).unwrap();
        let perms = vec![Permutation::identity(shape.cols); shape.rows];
        let sched = RowSchedule::build(shape, &perms, W).unwrap();
        let cfg = MachineConfig {
            shared_bytes: shape.cols * 4, // room for one array, not two
            ..MachineConfig::pure(W, L)
        };
        let mut hmm = Hmm::new(cfg).unwrap();
        let staged = sched.stage(&mut hmm).unwrap();
        let a = hmm.alloc_global(shape.len());
        let b = hmm.alloc_global(shape.len());
        let err = row_wise_permute(&mut hmm, &staged, a, b).unwrap_err();
        assert!(matches!(
            err,
            OffpermError::Machine(hmm_machine::MachineError::SharedCapacityExceeded { .. })
        ));
    }
}
