//! Closed-form running times of Table I and the optimality bound
//! (Sections IV–VII).
//!
//! All formulas are in HMM time units on the pure model (no cache,
//! element-group segments) and are asserted against the simulator's
//! measured ledgers in this crate's tests and in `tests/table1.rs`.

/// Time of one coalesced global round by `n` threads: `n/w + l − 1`
/// (Lemma 1).
pub fn coalesced_round(n: usize, w: usize, l: usize) -> u64 {
    (n / w) as u64 + l as u64 - 1
}

/// Time of one conflict-free shared round by `n` threads: `n/w` (Lemma 1
/// with latency 1).
pub fn conflict_free_round(n: usize, w: usize) -> u64 {
    (n / w) as u64
}

/// Time of the conventional algorithms' casual round for a permutation of
/// distribution `γ_w`: `γ_w·n/w + l − 1` (Lemma 4). `γ_w ∈ [1, w]`.
pub fn casual_round(n: usize, w: usize, l: usize, gamma: f64) -> u64 {
    (gamma * (n as f64 / w as f64)).round() as u64 + l as u64 - 1
}

/// D-designated (and S-designated) total: two coalesced rounds plus one
/// casual round — `2(n/w + l − 1) + γ_w·n/w + l − 1` (Table I).
pub fn conventional_time(n: usize, w: usize, l: usize, gamma: f64) -> u64 {
    2 * coalesced_round(n, w, l) + casual_round(n, w, l, gamma)
}

/// Matrix transpose: 2 coalesced + 2 conflict-free rounds (Table I).
pub fn transpose_time(n: usize, w: usize, l: usize) -> u64 {
    2 * coalesced_round(n, w, l) + 2 * conflict_free_round(n, w)
}

/// Row-wise permutation: 4 coalesced + 4 conflict-free rounds (Table I).
pub fn row_wise_time(n: usize, w: usize, l: usize) -> u64 {
    4 * coalesced_round(n, w, l) + 4 * conflict_free_round(n, w)
}

/// Column-wise permutation: row-wise plus two transposes (Table I).
pub fn column_wise_time(n: usize, w: usize, l: usize) -> u64 {
    row_wise_time(n, w, l) + 2 * transpose_time(n, w, l)
}

/// The scheduled permutation: two row-wise passes and one column-wise pass
/// — `16(n/w + l − 1) + 16·n/w = 32·n/w + 16(l − 1)` (Theorem 9),
/// independent of the permutation.
pub fn scheduled_time(n: usize, w: usize, l: usize) -> u64 {
    2 * row_wise_time(n, w, l) + column_wise_time(n, w, l)
}

/// Lower bound for *any* offline permutation on the HMM (Section VII):
/// every element must be read once and written once, at most `w` per time
/// unit, and the last access pays the pipeline latency:
/// `2·n/w + l − 1` time units.
pub fn lower_bound(n: usize, w: usize, l: usize) -> u64 {
    2 * (n / w) as u64 + l as u64 - 1
}

/// Ratio of the scheduled algorithm's time to the lower bound — the
/// paper's "constant factor". Under these closed forms it is *identically*
/// 16: `32·n/w + 16(l−1) = 16·(2·n/w + l − 1)`.
pub fn optimality_ratio(n: usize, w: usize, l: usize) -> f64 {
    scheduled_time(n, w, l) as f64 / lower_bound(n, w, l) as f64
}

/// Predicted crossover: the distribution `γ_w` above which the scheduled
/// algorithm beats the conventional one on the pure model, from
/// `conventional_time > scheduled_time`. Returns `None` if the scheduled
/// algorithm cannot win at this size (small `n`, huge `l`).
pub fn crossover_gamma(n: usize, w: usize, l: usize) -> Option<f64> {
    let nw = n as f64 / w as f64;
    let l1 = (l - 1) as f64;
    // 2(nw + l1) + γ·nw + l1 > 32·nw + 16·l1  ⇔  γ > 30 + 13·l1/nw.
    let gamma = 30.0 + 13.0 * l1 / nw;
    (gamma <= w as f64).then_some(gamma)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 20;
    const W: usize = 32;
    const L: usize = 512;

    #[test]
    fn scheduled_closed_form() {
        let nw = (N / W) as u64;
        assert_eq!(scheduled_time(N, W, L), 32 * nw + 16 * (L as u64 - 1));
    }

    #[test]
    fn conventional_tracks_gamma() {
        let slow = conventional_time(N, W, L, W as f64);
        let fast = conventional_time(N, W, L, 1.0);
        assert!(slow > fast);
        let nw = (N / W) as u64;
        assert_eq!(fast, 3 * (nw + L as u64 - 1));
        assert_eq!(slow, 2 * (nw + L as u64 - 1) + (N as u64 + L as u64 - 1));
    }

    #[test]
    fn scheduled_beats_conventional_at_max_gamma() {
        assert!(scheduled_time(N, W, L) < conventional_time(N, W, L, W as f64));
    }

    #[test]
    fn conventional_beats_scheduled_at_min_gamma() {
        assert!(conventional_time(N, W, L, 1.0) < scheduled_time(N, W, L));
    }

    #[test]
    fn everything_respects_lower_bound() {
        for n in [1 << 12, 1 << 16, 1 << 20] {
            let lb = lower_bound(n, W, L);
            assert!(scheduled_time(n, W, L) >= lb);
            assert!(conventional_time(n, W, L, 1.0) >= lb);
            assert!(transpose_time(n, W, L) >= lb);
            assert!(row_wise_time(n, W, L) >= lb);
            assert!(column_wise_time(n, W, L) >= lb);
        }
    }

    #[test]
    fn optimality_ratio_is_exactly_16() {
        // 32·n/w + 16(l−1) = 16·(2·n/w + l−1): constant-factor optimal.
        for n in [1 << 12, 1 << 20, 1 << 26] {
            for l in [1usize, 2, 512, 4096] {
                let r = optimality_ratio(n, W, l);
                assert!((r - 16.0).abs() < 1e-9, "n={n} l={l}: ratio {r}");
            }
        }
    }

    #[test]
    fn crossover_gamma_behaviour() {
        // Large n: crossover just above 30.
        let g = crossover_gamma(1 << 22, W, L).unwrap();
        assert!(g > 30.0 && g < 30.1);
        // Tiny n with huge latency: the scheduled algorithm cannot win.
        assert!(crossover_gamma(1 << 10, W, 1 << 20).is_none());
    }

    #[test]
    fn component_sums() {
        assert_eq!(
            scheduled_time(N, W, L),
            2 * row_wise_time(N, W, L) + column_wise_time(N, W, L)
        );
        assert_eq!(
            column_wise_time(N, W, L),
            row_wise_time(N, W, L) + 2 * transpose_time(N, W, L)
        );
    }
}
