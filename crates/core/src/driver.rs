//! High-level one-call drivers: build a machine, stage a permutation, run
//! an algorithm, verify the output.
//!
//! This is the API the examples and the reproduction harness use; the
//! lower-level building blocks ([`crate::conventional`],
//! [`crate::scheduled`], ...) remain available for custom pipelines (e.g.
//! running many permutations on one machine instance).

use crate::conventional::{d_designated, s_designated, stage_destination_map, stage_source_map};
use crate::error::Result;
use crate::padded::PaddedScheduled;
use crate::report::RunReport;
use crate::schedule::Decomposition;
use crate::scheduled::ScheduledPermutation;
use hmm_graph::Strategy;
use hmm_machine::{Hmm, MachineConfig, Word};
use hmm_perm::Permutation;

/// The three algorithms compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Conventional `b[p[i]] = a[i]` (Section IV).
    DDesignated,
    /// Conventional `b[i] = a[q[i]]` (Section IV).
    SDesignated,
    /// The paper's scheduled three-step algorithm (Section VII).
    Scheduled,
}

impl Algorithm {
    /// All three, in the paper's column order.
    pub const ALL: [Algorithm; 3] = [
        Algorithm::DDesignated,
        Algorithm::SDesignated,
        Algorithm::Scheduled,
    ];

    /// Human-readable name as printed in Table II.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::DDesignated => "D-designated",
            Algorithm::SDesignated => "S-designated",
            Algorithm::Scheduled => "scheduled",
        }
    }
}

/// Result of a high-level run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The permuted output array.
    pub output: Vec<Word>,
    /// Model cost report.
    pub report: RunReport,
    /// Whether the output matched the host-side reference permutation.
    pub verified: bool,
}

/// Run `algorithm` for permutation `p` over `input` on a fresh machine with
/// configuration `cfg`, verifying the result against the host reference.
pub fn run_permutation(
    cfg: &MachineConfig,
    algorithm: Algorithm,
    p: &Permutation,
    input: &[Word],
) -> Result<RunOutcome> {
    let mut hmm = Hmm::new(cfg.clone())?;
    let report = run_on(&mut hmm, algorithm, p, input)?;
    let b_data = report.1;
    let mut want = vec![0; input.len()];
    p.permute(input, &mut want)?;
    Ok(RunOutcome {
        verified: b_data == want,
        output: b_data,
        report: report.0,
    })
}

/// Run `algorithm` on an existing machine (allocating its own buffers), so
/// a harness can share one machine/cache across phases. Returns the report
/// and the output data.
pub fn run_on(
    hmm: &mut Hmm,
    algorithm: Algorithm,
    p: &Permutation,
    input: &[Word],
) -> Result<(RunReport, Vec<Word>)> {
    if input.len() != p.len() {
        return Err(crate::error::OffpermError::SizeMismatch {
            expected: p.len(),
            got: input.len(),
        });
    }
    let n = p.len();
    // The scheduled arm stages its own (possibly padded) buffers, so the
    // conventional a/b pair is allocated only where it is actually used —
    // allocating it up front leaked 2n words of global memory per
    // scheduled run and skewed `global_len` accounting.
    if let Algorithm::Scheduled = algorithm {
        // The padded form handles any n (it degenerates to the exact
        // algorithm for feasible sizes).
        let sched = PaddedScheduled::build(p, hmm.config().width)?;
        let staged = sched.stage(hmm)?;
        let bufs = staged.alloc_buffers(hmm);
        let (report, out) = staged.run(hmm, &bufs, input)?;
        return Ok((report, out));
    }
    let a = hmm.alloc_global(n);
    let b = hmm.alloc_global(n);
    hmm.host_write(a, input)?;
    let report = match algorithm {
        Algorithm::DDesignated => {
            let pb = stage_destination_map(hmm, p)?;
            d_designated(hmm, a, b, pb)?
        }
        Algorithm::SDesignated => {
            let qb = stage_source_map(hmm, p)?;
            s_designated(hmm, a, b, qb)?
        }
        Algorithm::Scheduled => unreachable!("handled above"),
    };
    Ok((report, hmm.host_read(b)))
}

/// Run the scheduled algorithm on `hmm` from a **prebuilt** decomposition,
/// so one König coloring can back both a simulator run and a native plan
/// (`hmm-native`'s `NativeScheduled::from_decomposition` accepts the same
/// `Decomposition`). The decomposition's size must be feasible for the
/// machine (the shape `Decomposition::build` produces for a power-of-two
/// `n ≥ width²`); for other sizes use [`Algorithm::Scheduled`] via
/// [`run_on`], which pads.
pub fn run_scheduled_decomposition(
    hmm: &mut Hmm,
    d: &Decomposition,
    input: &[Word],
) -> Result<(RunReport, Vec<Word>)> {
    let n = d.shape.len();
    if input.len() != n {
        return Err(crate::error::OffpermError::SizeMismatch {
            expected: n,
            got: input.len(),
        });
    }
    let sched = ScheduledPermutation::from_decomposition(d, hmm.config().width, Strategy::Hybrid)?;
    let staged = sched.stage(hmm)?;
    let bufs = [
        hmm.alloc_global(n),
        hmm.alloc_global(n),
        hmm.alloc_global(n),
        hmm.alloc_global(n),
    ];
    hmm.host_write(bufs[0], input)?;
    let report = staged.run(hmm, bufs[0], bufs[1], bufs[2], bufs[3])?;
    Ok((report, hmm.host_read(bufs[1])))
}

/// A reusable runner: one machine, persistent input/output buffers, and
/// per-run scratch that is reclaimed between runs — the shape a downstream
/// user wants for permuting many arrays (or benchmarking many
/// permutations) without re-building machines.
pub struct Engine {
    hmm: Hmm,
    n: usize,
    base_len: usize,
    last_output: Vec<Word>,
}

impl Engine {
    /// Build an engine for arrays of `n` elements on configuration `cfg`.
    pub fn new(cfg: MachineConfig, n: usize) -> Result<Self> {
        let hmm = Hmm::new(cfg)?;
        let base_len = hmm.global_len();
        Ok(Engine {
            hmm,
            n,
            base_len,
            last_output: Vec::new(),
        })
    }

    /// Array size this engine permutes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a zero-length engine.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The underlying machine (ledger, cache stats, config).
    pub fn machine(&self) -> &Hmm {
        &self.hmm
    }

    /// Run one algorithm over `input` along `p`. All staging from previous
    /// runs is reclaimed first; set `cold_costs` to also clear the ledger
    /// and cache (fresh-machine semantics for benchmarking).
    pub fn run(
        &mut self,
        algorithm: Algorithm,
        p: &Permutation,
        input: &[Word],
        cold_costs: bool,
    ) -> Result<RunReport> {
        if p.len() != self.n {
            return Err(crate::error::OffpermError::SizeMismatch {
                expected: self.n,
                got: p.len(),
            });
        }
        self.hmm.truncate_global(self.base_len);
        if cold_costs {
            self.hmm.reset_costs();
        }
        let (report, out) = run_on(&mut self.hmm, algorithm, p, input)?;
        self.last_output = out;
        Ok(report)
    }

    /// The output of the most recent [`Engine::run`].
    pub fn output(&self) -> &[Word] {
        &self.last_output
    }

    /// Verify the most recent output against the host reference for `p`.
    pub fn verify(&self, p: &Permutation, input: &[Word]) -> Result<bool> {
        let mut want = vec![0; input.len()];
        p.permute(input, &mut want)?;
        Ok(self.last_output == want)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::ElemWidth;
    use hmm_perm::families;

    #[test]
    fn all_algorithms_verify_on_pure_machine() {
        let cfg = MachineConfig::pure(8, 16);
        let n = 1 << 10;
        let input: Vec<Word> = (0..n as Word).map(|v| v ^ 0xbeef).collect();
        for fam in families::Family::ALL {
            let p = fam.build(n, 51).unwrap();
            for alg in Algorithm::ALL {
                let out = run_permutation(&cfg, alg, &p, &input).unwrap();
                assert!(out.verified, "{} {}", alg.name(), fam.name());
            }
        }
    }

    #[test]
    fn all_algorithms_verify_on_cached_machine() {
        let cfg = MachineConfig::gtx680(ElemWidth::F32);
        let n = 1 << 12;
        let input: Vec<Word> = (0..n as Word).collect();
        let p = families::bit_reversal(n).unwrap();
        for alg in Algorithm::ALL {
            let out = run_permutation(&cfg, alg, &p, &input).unwrap();
            assert!(out.verified, "{}", alg.name());
        }
    }

    #[test]
    fn shared_decomposition_run_matches_driver_run() {
        let cfg = MachineConfig::pure(8, 16);
        let n = 1 << 10;
        let input: Vec<Word> = (0..n as Word).map(|v| v * 7 + 3).collect();
        let p = families::random(n, 77);
        // One decomposition, shared: drive the simulator from it...
        let d = Decomposition::build(&p, cfg.width).unwrap();
        let mut hmm = Hmm::new(cfg.clone()).unwrap();
        let (report, out) = run_scheduled_decomposition(&mut hmm, &d, &input).unwrap();
        assert_eq!(report.rounds(), 32);
        // ...and it must agree with the one-call driver path.
        let via_driver = run_permutation(&cfg, Algorithm::Scheduled, &p, &input).unwrap();
        assert!(via_driver.verified);
        assert_eq!(out, via_driver.output);
    }

    #[test]
    fn shared_decomposition_rejects_wrong_input_len() {
        let cfg = MachineConfig::pure(8, 16);
        let p = families::random(256, 9);
        let d = Decomposition::build(&p, cfg.width).unwrap();
        let mut hmm = Hmm::new(cfg).unwrap();
        assert!(run_scheduled_decomposition(&mut hmm, &d, &vec![0; 128]).is_err());
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::DDesignated.name(), "D-designated");
        assert_eq!(Algorithm::SDesignated.name(), "S-designated");
        assert_eq!(Algorithm::Scheduled.name(), "scheduled");
        assert_eq!(Algorithm::ALL.len(), 3);
    }

    #[test]
    fn input_length_mismatch_rejected() {
        let cfg = MachineConfig::pure(8, 16);
        let p = families::random(256, 1);
        let input = vec![0; 128];
        assert!(run_permutation(&cfg, Algorithm::DDesignated, &p, &input).is_err());
    }

    #[test]
    fn scheduled_now_accepts_any_size() {
        // Auto-padding: non-power-of-two and tiny sizes just work.
        let cfg = MachineConfig::pure(8, 16);
        for n in [1usize, 50, 100, 1000] {
            let p = families::random(n, n as u64);
            let input: Vec<Word> = (0..n as Word).collect();
            let out = run_permutation(&cfg, Algorithm::Scheduled, &p, &input).unwrap();
            assert!(out.verified, "n = {n}");
            assert_eq!(out.output.len(), n);
        }
    }

    #[test]
    fn engine_reuses_machine_across_runs() {
        let n = 1 << 10;
        let cfg = MachineConfig::pure(8, 16);
        let mut engine = Engine::new(cfg, n).unwrap();
        assert_eq!(engine.len(), n);
        assert!(!engine.is_empty());
        let input: Vec<Word> = (0..n as Word).collect();
        let global_after_first = {
            engine
                .run(Algorithm::Scheduled, &families::random(n, 1), &input, true)
                .unwrap();
            engine.machine().global_len()
        };
        for seed in 2..6 {
            let p = families::random(n, seed);
            let report = engine.run(Algorithm::Scheduled, &p, &input, true).unwrap();
            assert_eq!(report.rounds(), 32);
            assert!(engine.verify(&p, &input).unwrap(), "seed {seed}");
            assert_eq!(
                engine.machine().global_len(),
                global_after_first,
                "global memory must not grow run-over-run"
            );
        }
        // cold_costs = true resets the ledger each run.
        assert_eq!(engine.machine().ledger().len(), 32);
        // Footprint pin: the scheduled arm must allocate exactly what a
        // manual stage allocates — not the 2n-word conventional a/b pair
        // it never reads (that leak skewed global_len accounting).
        let mut manual = Hmm::new(MachineConfig::pure(8, 16)).unwrap();
        let sched = PaddedScheduled::build(&families::random(n, 1), 8).unwrap();
        let staged = sched.stage(&mut manual).unwrap();
        let _bufs = staged.alloc_buffers(&mut manual);
        assert_eq!(
            global_after_first,
            manual.global_len(),
            "scheduled run must not allocate the unused conventional a/b buffers"
        );
    }

    #[test]
    fn engine_warm_costs_accumulate() {
        let n = 256;
        let mut engine = Engine::new(MachineConfig::pure(8, 16), n).unwrap();
        let input: Vec<Word> = (0..n as Word).collect();
        let p = families::random(n, 3);
        engine
            .run(Algorithm::DDesignated, &p, &input, false)
            .unwrap();
        engine
            .run(Algorithm::DDesignated, &p, &input, false)
            .unwrap();
        assert_eq!(engine.machine().ledger().len(), 6, "3 rounds x 2 runs");
    }

    #[test]
    fn engine_rejects_wrong_size() {
        let mut engine = Engine::new(MachineConfig::pure(8, 16), 64).unwrap();
        let p = families::random(128, 1);
        let input = vec![0; 128];
        assert!(engine.run(Algorithm::Scheduled, &p, &input, true).is_err());
    }

    #[test]
    fn scheduled_time_constant_conventional_not() {
        let cfg = MachineConfig::pure(32, 128);
        let n = 1 << 12;
        let input: Vec<Word> = (0..n as Word).collect();
        let ident = families::identical(n);
        let bitrev = families::bit_reversal(n).unwrap();
        let t = |alg, p: &Permutation| run_permutation(&cfg, alg, p, &input).unwrap().report.time;
        // Scheduled: same time for both permutations.
        assert_eq!(
            t(Algorithm::Scheduled, &ident),
            t(Algorithm::Scheduled, &bitrev)
        );
        // Conventional: bit-reversal costs much more than identity.
        assert!(t(Algorithm::DDesignated, &bitrev) > 2 * t(Algorithm::DDesignated, &ident));
    }
}
