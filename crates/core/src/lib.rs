//! # hmm-offperm — the optimal offline permutation algorithm on the HMM
//!
//! A faithful reproduction of *Kasagi, Nakano, Ito: "An Optimal Offline
//! Permutation Algorithm on the Hierarchical Memory Machine, with the GPU
//! implementation"* (ICPP 2013), running on the executable HMM simulator of
//! [`hmm_machine`].
//!
//! ## What's here
//!
//! * [`conventional`] — the two baseline algorithms (Section IV):
//!   destination-designated `b[p[i]] = a[i]` and source-designated
//!   `b[i] = a[q[i]]`; three memory rounds, one of them *casual* and priced
//!   by the permutation's distribution `γ_w(P)` (Lemma 4).
//! * [`transpose`] — matrix transpose through the diagonal arrangement of
//!   shared memory (Section V, Figure 4); 4 rounds, all coalesced or
//!   conflict-free.
//! * [`rowwise`] / [`colwise`] — row-wise and column-wise permutation with
//!   offline König-colored `s`/`d` schedules (Section VI, Theorem 6).
//! * [`schedule`] / [`scheduled`] — the three-step decomposition of an
//!   arbitrary permutation and its five-kernel execution (Section VII):
//!   32 rounds, `32·n/w + 16(l − 1)` time units for **every** permutation,
//!   against the `2·n/w + l − 1` lower bound.
//! * [`smallperm`] — the single-DMM conflict-free permutation of the
//!   authors' earlier work (\[8\],\[9\]) used as motivation in Section I.
//! * [`analysis`] — the Table I closed forms, the lower bound, and the
//!   crossover predictor.
//! * [`driver`] — one-call runners used by examples and the harness.
//!
//! ## Quick start
//!
//! ```
//! use hmm_machine::MachineConfig;
//! use hmm_offperm::driver::{run_permutation, Algorithm};
//! use hmm_perm::families;
//!
//! let n = 1 << 16; // large enough for the crossover (paper: n >= 256K)
//! let p = families::bit_reversal(n).unwrap();
//! let input: Vec<u64> = (0..n as u64).collect();
//! let cfg = MachineConfig::pure(32, 128);
//!
//! let fast = run_permutation(&cfg, Algorithm::Scheduled, &p, &input).unwrap();
//! let slow = run_permutation(&cfg, Algorithm::DDesignated, &p, &input).unwrap();
//! assert!(fast.verified && slow.verified);
//! assert!(fast.report.time < slow.report.time); // the paper's headline
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod colwise;
pub mod conventional;
pub mod driver;
pub mod error;
pub mod padded;
pub mod report;
pub mod rowwise;
pub mod schedule;
pub mod scheduled;
pub mod smallperm;
pub mod transpose;

pub use driver::{run_permutation, Algorithm, Engine, RunOutcome};
pub use error::{OffpermError, Result};
pub use hmm_plan::PlanIr;
pub use padded::{PaddedScheduled, StagedPadded};
pub use report::RunReport;
pub use scheduled::{ScheduledPermutation, StagedScheduled};
