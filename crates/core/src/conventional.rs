//! The conventional one-kernel permutation algorithms (Section IV).
//!
//! * **Destination-designated** (`b[p[i]] = a[i]`): coalesced reads of `p`
//!   and `a`, one *casual* scatter write into `b`.
//! * **Source-designated** (`b[i] = a[q[i]]`, `q = P⁻¹`): coalesced read of
//!   `q`, one *casual* gather read of `a`, coalesced write of `b`.
//!
//! Both take `2(n/w + l − 1) + γ_w(P)·n/w + l − 1` time units on the pure
//! HMM (Lemma 4): fast for permutations with small distribution `γ_w`
//! (identical, shuffle), slow for large ones (random, bit-reversal,
//! transpose).

use crate::error::{OffpermError, Result};
use crate::report::RunReport;
use hmm_machine::{GlobalBuf, Hmm, Word};
use hmm_perm::Permutation;

/// Schedule-array element width: the paper stores `p` and `q` as 32-bit
/// `int` ("at most 32 bits are necessary").
pub const INDEX_BYTES: usize = 4;

/// Lanes per simulated block for the conventional kernels. Any divisor
/// works (cost is aggregated launch-wide); this merely bounds per-block
/// scratch.
const BLOCK_LANES: usize = 4096;

fn block_geometry(n: usize) -> (usize, usize) {
    let threads = n.min(BLOCK_LANES);
    (n.div_ceil(threads), threads)
}

/// Stage a permutation's destination map into global memory (the array `p`
/// with `b[p[i]] = a[i]`).
pub fn stage_destination_map(hmm: &mut Hmm, p: &Permutation) -> Result<GlobalBuf> {
    let buf = hmm.alloc_global(p.len());
    let words: Vec<Word> = p.as_slice().iter().map(|&d| d as Word).collect();
    hmm.host_write(buf, &words)?;
    Ok(buf)
}

/// Stage the inverse map `q = P⁻¹` (the array used by the source-designated
/// algorithm).
pub fn stage_source_map(hmm: &mut Hmm, p: &Permutation) -> Result<GlobalBuf> {
    let inv = p.inverse();
    let buf = hmm.alloc_global(inv.len());
    let words: Vec<Word> = inv.as_slice().iter().map(|&s| s as Word).collect();
    hmm.host_write(buf, &words)?;
    Ok(buf)
}

/// Destination-designated permutation: for all `i` in parallel,
/// `b[p[i]] = a[i]`. `p` must hold the destination map (see
/// [`stage_destination_map`]); `a`, `b`, `p` must all have equal length.
pub fn d_designated(hmm: &mut Hmm, a: GlobalBuf, b: GlobalBuf, p: GlobalBuf) -> Result<RunReport> {
    check_equal_lengths(&[a, b, p])?;
    let n = a.len();
    let (grid, threads) = block_geometry(n);
    let mark = hmm.mark();
    hmm.launch(grid, threads, |blk| {
        let start = blk.block_id() * threads;
        let end = (start + threads).min(n);
        let p_addrs: Vec<usize> = (start..end).map(|i| p.addr(i)).collect();
        let dests = blk.global_read_as(&p_addrs, INDEX_BYTES)?;
        let a_addrs: Vec<usize> = (start..end).map(|i| a.addr(i)).collect();
        let vals = blk.global_read(&a_addrs)?;
        let b_addrs: Vec<usize> = dests.iter().map(|&d| b.addr(d as usize)).collect();
        blk.global_write(&b_addrs, &vals)
    })?;
    Ok(RunReport::new(hmm.since(mark), 1))
}

/// Source-designated permutation: for all `i` in parallel,
/// `b[i] = a[q[i]]` with `q = P⁻¹` (see [`stage_source_map`]).
pub fn s_designated(hmm: &mut Hmm, a: GlobalBuf, b: GlobalBuf, q: GlobalBuf) -> Result<RunReport> {
    check_equal_lengths(&[a, b, q])?;
    let n = a.len();
    let (grid, threads) = block_geometry(n);
    let mark = hmm.mark();
    hmm.launch(grid, threads, |blk| {
        let start = blk.block_id() * threads;
        let end = (start + threads).min(n);
        let q_addrs: Vec<usize> = (start..end).map(|i| q.addr(i)).collect();
        let srcs = blk.global_read_as(&q_addrs, INDEX_BYTES)?;
        let a_addrs: Vec<usize> = srcs.iter().map(|&s| a.addr(s as usize)).collect();
        let vals = blk.global_read(&a_addrs)?;
        let b_addrs: Vec<usize> = (start..end).map(|i| b.addr(i)).collect();
        blk.global_write(&b_addrs, &vals)
    })?;
    Ok(RunReport::new(hmm.since(mark), 1))
}

fn check_equal_lengths(bufs: &[GlobalBuf]) -> Result<()> {
    let n = bufs[0].len();
    if n == 0 {
        return Err(OffpermError::UnsupportedSize {
            n,
            reason: "empty array",
        });
    }
    for b in bufs {
        if b.len() != n {
            return Err(OffpermError::SizeMismatch {
                expected: n,
                got: b.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_machine::MachineConfig;
    use hmm_perm::families;

    const W: usize = 32;
    const L: usize = 64;

    fn setup(n: usize) -> (Hmm, GlobalBuf, GlobalBuf, Vec<Word>) {
        let mut hmm = Hmm::new(MachineConfig::pure(W, L)).unwrap();
        let a = hmm.alloc_global(n);
        let b = hmm.alloc_global(n);
        let input: Vec<Word> = (0..n as Word).map(|v| v * 7 + 1).collect();
        hmm.host_write(a, &input).unwrap();
        (hmm, a, b, input)
    }

    fn reference(p: &Permutation, input: &[Word]) -> Vec<Word> {
        let mut out = vec![0; input.len()];
        p.permute(input, &mut out).unwrap();
        out
    }

    #[test]
    fn d_designated_is_correct_for_all_families() {
        let n = 1 << 12;
        for fam in families::Family::ALL {
            let p = fam.build(n, 3).unwrap();
            let (mut hmm, a, b, input) = setup(n);
            let pb = stage_destination_map(&mut hmm, &p).unwrap();
            d_designated(&mut hmm, a, b, pb).unwrap();
            assert_eq!(hmm.host_read(b), reference(&p, &input), "{}", fam.name());
        }
    }

    #[test]
    fn s_designated_is_correct_for_all_families() {
        let n = 1 << 12;
        for fam in families::Family::ALL {
            let p = fam.build(n, 4).unwrap();
            let (mut hmm, a, b, input) = setup(n);
            let qb = stage_source_map(&mut hmm, &p).unwrap();
            s_designated(&mut hmm, a, b, qb).unwrap();
            assert_eq!(hmm.host_read(b), reference(&p, &input), "{}", fam.name());
        }
    }

    #[test]
    fn d_designated_round_counts_match_table1() {
        // Table I: 2 coalesced reads, 1 casual write... except for γ = 1
        // permutations where the write classifies as coalesced too; use a
        // high-distribution permutation.
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let (mut hmm, a, b, _) = setup(n);
        let pb = stage_destination_map(&mut hmm, &p).unwrap();
        let report = d_designated(&mut hmm, a, b, pb).unwrap();
        assert_eq!(report.summary.coalesced_read.rounds, 2);
        assert_eq!(report.summary.casual_write.rounds, 1);
        assert_eq!(report.rounds(), 3);
        assert_eq!(report.launches, 1);
    }

    #[test]
    fn s_designated_round_counts_match_table1() {
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let (mut hmm, a, b, _) = setup(n);
        let qb = stage_source_map(&mut hmm, &p).unwrap();
        let report = s_designated(&mut hmm, a, b, qb).unwrap();
        assert_eq!(report.summary.coalesced_read.rounds, 1);
        assert_eq!(report.summary.casual_read.rounds, 1);
        assert_eq!(report.summary.coalesced_write.rounds, 1);
        assert_eq!(report.rounds(), 3);
    }

    #[test]
    fn d_designated_time_matches_lemma4() {
        // time = 2(n/w + l - 1) + γ·n/w + l - 1 with γ = w for bit-reversal.
        let n = 1 << 12;
        let p = families::bit_reversal(n).unwrap();
        let (mut hmm, a, b, _) = setup(n);
        let pb = stage_destination_map(&mut hmm, &p).unwrap();
        let report = d_designated(&mut hmm, a, b, pb).unwrap();
        let nw = (n / W) as u64;
        let l = L as u64;
        assert_eq!(report.time, 2 * (nw + l - 1) + (W as u64 * nw + l - 1));
    }

    #[test]
    fn identical_permutation_write_is_coalesced() {
        let n = 1 << 12;
        let p = families::identical(n);
        let (mut hmm, a, b, _) = setup(n);
        let pb = stage_destination_map(&mut hmm, &p).unwrap();
        let report = d_designated(&mut hmm, a, b, pb).unwrap();
        // γ = 1: the "casual" write is observed coalesced.
        assert_eq!(report.summary.coalesced_write.rounds, 1);
        assert_eq!(report.summary.casual_write.rounds, 0);
        let nw = (n / W) as u64;
        assert_eq!(report.time, 3 * (nw + L as u64 - 1));
    }

    #[test]
    fn gather_scatter_agree() {
        let n = 1 << 10;
        let p = families::random(n, 9);
        let (mut hmm, a, b1, _) = setup(n);
        let b2 = hmm.alloc_global(n);
        let pb = stage_destination_map(&mut hmm, &p).unwrap();
        let qb = stage_source_map(&mut hmm, &p).unwrap();
        d_designated(&mut hmm, a, b1, pb).unwrap();
        s_designated(&mut hmm, a, b2, qb).unwrap();
        assert_eq!(hmm.host_read(b1), hmm.host_read(b2));
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let (mut hmm, a, b, _) = setup(64);
        let small = hmm.alloc_global(32);
        assert!(matches!(
            d_designated(&mut hmm, a, b, small),
            Err(OffpermError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn non_power_of_two_and_partial_blocks_work() {
        // The conventional algorithms have no size restrictions.
        let n = 5000;
        let p = families::random(n, 1);
        let (mut hmm, a, b, input) = setup(n);
        let pb = stage_destination_map(&mut hmm, &p).unwrap();
        d_designated(&mut hmm, a, b, pb).unwrap();
        assert_eq!(hmm.host_read(b), reference(&p, &input));
    }

    #[test]
    fn casual_write_class_detected() {
        let n = 1 << 11;
        let p = families::random(n, 2);
        let (mut hmm, a, b, _) = setup(n);
        let pb = stage_destination_map(&mut hmm, &p).unwrap();
        let report = d_designated(&mut hmm, a, b, pb).unwrap();
        // A random permutation's write classifies casual; no shared rounds
        // are involved at all.
        assert_eq!(report.summary.casual_write.rounds, 1);
        assert_eq!(report.summary.shared_casual.rounds, 0);
        assert_eq!(report.summary.conflict_free_read.rounds, 0);
    }
}
