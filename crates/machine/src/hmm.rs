//! The Hierarchical Memory Machine: `d` DMMs sharing one UMM (Section II,
//! Figure 2).
//!
//! Kernels are written as host closures over a [`BlockCtx`] and executed in
//! SPMD lock-step: every block performs the same sequence of memory-access
//! *rounds*, and the machine aggregates each round's pipeline stages across
//! all blocks to charge the paper's cost,
//! `time = total stages + latency − 1` (Lemma 1). Shared memory is
//! per-block, capacity-checked, and banked; global memory is segmented into
//! address groups and optionally fronted by the L2 cache model.
//!
//! ```
//! use hmm_machine::{Hmm, MachineConfig};
//!
//! let mut hmm = Hmm::new(MachineConfig::pure(32, 128)).unwrap();
//! let a = hmm.alloc_global(1024);
//! let b = hmm.alloc_global(1024);
//! hmm.host_write(a, &(0..1024).collect::<Vec<_>>()).unwrap();
//!
//! // One block of 256 threads copies a -> b; each thread moves 4 elements.
//! hmm.launch(1, 256, |blk| {
//!     for chunk in 0..4 {
//!         let addrs: Vec<usize> =
//!             (0..256).map(|t| a.addr(chunk * 256 + t)).collect();
//!         let vals = blk.global_read(&addrs)?;
//!         let out: Vec<usize> =
//!             (0..256).map(|t| b.addr(chunk * 256 + t)).collect();
//!         blk.global_write(&out, &vals)?;
//!     }
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(hmm.host_read(b), (0..1024).collect::<Vec<_>>());
//! ```

use crate::cache::{Cache, CacheStats};
use crate::config::MachineConfig;
use crate::cost::{CostLedger, RoundSummary};
use crate::error::{MachineError, Result};
use crate::global::{GlobalBuf, GlobalMemory, Word};
use crate::pipeline;
use crate::round::{AccessClass, Dir, RoundRecord, Space};
use crate::shared::{SharedBuf, SharedSpace};

/// Sanity bound on *model* threads per block.
///
/// The HMM itself has no block-size limit — the paper analyzes kernels with
/// `n` threads. (Real CUDA blocks cap at 1024 threads and serialize a long
/// row into chunks, which only adds `(chunks−1)(l−1)` pipeline-drain time;
/// the model charges the single-round cost, and so do we.) The bound below
/// merely catches runaway launches.
pub const MAX_BLOCK_THREADS: usize = 1 << 22;

/// Per-round aggregation while a launch is in flight.
struct RoundAgg {
    space: Space,
    dir: Dir,
    cost_stages: u64,
    warps: u64,
    class_ok: bool,
    /// Shared-round stages per DMM (for `parallel_shared_dispatch`).
    dmm_stages: Vec<u64>,
}

/// Result of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// The rounds the kernel performed, in order.
    pub rounds: Vec<RoundRecord>,
    /// Total time units charged to the launch.
    pub time: u64,
    /// Cache hits/misses incurred by this launch alone (when the cache
    /// model is active).
    pub cache: Option<CacheStats>,
}

/// The simulated Hierarchical Memory Machine.
pub struct Hmm {
    cfg: MachineConfig,
    global: GlobalMemory,
    cache: Option<Cache>,
    ledger: CostLedger,
    trace: Option<crate::trace::AccessTrace>,
}

impl Hmm {
    /// Build a machine from a validated configuration.
    pub fn new(cfg: MachineConfig) -> Result<Self> {
        cfg.validate()?;
        let cache = match &cfg.cache {
            Some(c) => Some(Cache::new(*c)?),
            None => None,
        };
        Ok(Hmm {
            cfg,
            global: GlobalMemory::new(),
            cache,
            ledger: CostLedger::new(),
            trace: None,
        })
    }

    /// Start recording an access heatmap (see [`crate::trace`]). Any
    /// previously collected trace is discarded.
    pub fn start_trace(&mut self) {
        self.trace = Some(crate::trace::AccessTrace {
            global_segments: Vec::new(),
            shared_banks: vec![0; self.cfg.width],
        });
    }

    /// Stop tracing and take the collected [`crate::trace::AccessTrace`];
    /// `None` if tracing was never started.
    pub fn take_trace(&mut self) -> Option<crate::trace::AccessTrace> {
        self.trace.take()
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Allocate a zero-initialized global array.
    pub fn alloc_global(&mut self, len: usize) -> GlobalBuf {
        self.global.alloc(len)
    }

    /// Total elements currently allocated in global memory; pair with
    /// [`Hmm::truncate_global`] to reclaim per-run scratch.
    pub fn global_len(&self) -> usize {
        self.global.len()
    }

    /// Free all global allocations past `len` elements (see
    /// [`GlobalMemory::truncate`]).
    pub fn truncate_global(&mut self, len: usize) {
        self.global.truncate(len);
    }

    /// Cost-free host write (input staging).
    pub fn host_write(&mut self, buf: GlobalBuf, values: &[Word]) -> Result<()> {
        self.global.host_write(buf, values)
    }

    /// Cost-free host read (result readback).
    pub fn host_read(&self, buf: GlobalBuf) -> Vec<Word> {
        self.global.host_read(buf)
    }

    /// The accumulated cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Bookmark into the ledger; combine with [`Hmm::since`].
    pub fn mark(&self) -> usize {
        self.ledger.mark()
    }

    /// Summary of rounds executed after `mark`.
    pub fn since(&self, mark: usize) -> RoundSummary {
        self.ledger.since(mark)
    }

    /// Total time units charged so far.
    pub fn total_time(&self) -> u64 {
        self.ledger.total_time()
    }

    /// Cache hit/miss counters, if the cache model is active.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Clear the ledger and (if present) the cache contents, keeping the
    /// global memory intact. Useful between timed phases of a harness.
    pub fn reset_costs(&mut self) {
        self.ledger.clear();
        if let Some(c) = &mut self.cache {
            c.reset();
        }
    }

    /// Execute a kernel over `grid` blocks of `block_threads` threads.
    ///
    /// The kernel closure runs once per block (sequentially — the simulation
    /// is deterministic) and must issue the same sequence of rounds in every
    /// block; cost is aggregated launch-wide per round as if all blocks'
    /// warps streamed through the MMU pipeline together, which is exactly
    /// the HMM's dispatch model.
    pub fn launch<F>(
        &mut self,
        grid: usize,
        block_threads: usize,
        mut kernel: F,
    ) -> Result<LaunchStats>
    where
        F: FnMut(&mut BlockCtx<'_>) -> Result<()>,
    {
        if grid == 0 || block_threads == 0 {
            return Err(MachineError::EmptyLaunch);
        }
        if block_threads > MAX_BLOCK_THREADS {
            return Err(MachineError::InvalidConfig(format!(
                "block_threads {block_threads} exceeds the {MAX_BLOCK_THREADS}-thread limit"
            )));
        }
        let cache_before = self.cache_stats();
        let mut aggs: Vec<RoundAgg> = Vec::new();
        let num_dmms = self.cfg.num_dmms;
        for block in 0..grid {
            let mut ctx = BlockCtx {
                cfg: &self.cfg,
                global: &mut self.global,
                cache: &mut self.cache,
                trace: &mut self.trace,
                shared: SharedSpace::new(self.cfg.shared_bytes),
                aggs: &mut aggs,
                seq: 0,
                block,
                grid,
                threads: block_threads,
                dmm: block % num_dmms,
            };
            kernel(&mut ctx)?;
            let rounds_issued = ctx.seq;
            if block > 0 && rounds_issued != aggs.len() {
                return Err(MachineError::DivergentRounds {
                    block,
                    round: rounds_issued.min(aggs.len()),
                });
            }
        }
        self.finalize(aggs, cache_before)
    }

    fn finalize(
        &mut self,
        aggs: Vec<RoundAgg>,
        cache_before: Option<CacheStats>,
    ) -> Result<LaunchStats> {
        let mut rounds = Vec::with_capacity(aggs.len());
        let mut total_time = 0u64;
        let base_seq = self.ledger.len();
        for (i, agg) in aggs.into_iter().enumerate() {
            let (class, time) = match agg.space {
                Space::Global => {
                    let class = if agg.class_ok {
                        AccessClass::Coalesced
                    } else {
                        AccessClass::Casual
                    };
                    let time = if agg.cost_stages == 0 {
                        0
                    } else {
                        agg.cost_stages + self.cfg.latency as u64 - 1
                    };
                    (class, time)
                }
                Space::Shared => {
                    let class = if agg.class_ok {
                        AccessClass::ConflictFree
                    } else {
                        AccessClass::Casual
                    };
                    let stages = if self.cfg.parallel_shared_dispatch {
                        agg.dmm_stages.iter().copied().max().unwrap_or(0)
                    } else {
                        agg.cost_stages
                    };
                    (class, stages)
                }
            };
            total_time += time;
            let record = RoundRecord {
                seq: base_seq + i,
                space: agg.space,
                dir: agg.dir,
                class,
                warps: agg.warps,
                stages: agg.cost_stages,
                time,
            };
            rounds.push(record.clone());
            self.ledger.push(record);
        }
        let cache = match (cache_before, self.cache_stats()) {
            (Some(before), Some(after)) => Some(CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            }),
            _ => None,
        };
        Ok(LaunchStats {
            rounds,
            time: total_time,
            cache,
        })
    }
}

/// The view a kernel has of the machine while executing one block.
pub struct BlockCtx<'m> {
    cfg: &'m MachineConfig,
    global: &'m mut GlobalMemory,
    cache: &'m mut Option<Cache>,
    trace: &'m mut Option<crate::trace::AccessTrace>,
    shared: SharedSpace,
    aggs: &'m mut Vec<RoundAgg>,
    seq: usize,
    block: usize,
    grid: usize,
    threads: usize,
    dmm: usize,
}

impl BlockCtx<'_> {
    /// This block's index in the grid.
    #[inline]
    pub fn block_id(&self) -> usize {
        self.block
    }

    /// Number of blocks in the launch.
    #[inline]
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Threads per block.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The DMM this block is resident on (`block % d`).
    #[inline]
    pub fn dmm(&self) -> usize {
        self.dmm
    }

    /// The machine configuration (width, latency, ...).
    #[inline]
    pub fn config(&self) -> &MachineConfig {
        self.cfg
    }

    /// Allocate a per-block shared array of `len` elements that occupy
    /// `elem_bytes` each on the real device (the capacity check is in
    /// bytes; values are simulated as words regardless).
    pub fn shared_alloc(&mut self, len: usize, elem_bytes: usize) -> Result<SharedBuf> {
        self.shared.alloc(len, elem_bytes)
    }

    /// One round of global-memory reads: lane `t` (thread `t` of this block)
    /// loads `addrs[t]`. Fewer addresses than threads leaves trailing
    /// threads idle for the round; more is an error. Elements are costed at
    /// the machine's configured data width.
    pub fn global_read(&mut self, addrs: &[usize]) -> Result<Vec<Word>> {
        self.global_read_as(addrs, self.cfg.elem.bytes())
    }

    /// Like [`BlockCtx::global_read`], but the array's elements occupy
    /// `elem_bytes` each for *cost* purposes — e.g. the scheduled
    /// algorithm's `s`/`d` arrays hold 16-bit entries, so a warp streams
    /// twice as many of them per 128-byte segment. Has no effect under the
    /// pure element-group rule, which the paper defines width-independent.
    pub fn global_read_as(&mut self, addrs: &[usize], elem_bytes: usize) -> Result<Vec<Word>> {
        self.check_lanes(addrs.len())?;
        let mut out = Vec::with_capacity(addrs.len());
        for &a in addrs {
            out.push(self.global.load(a)?);
        }
        self.account_global(Dir::Read, addrs, elem_bytes)?;
        Ok(out)
    }

    /// One round of global-memory writes: lane `t` stores `values[t]` to
    /// `addrs[t]`.
    pub fn global_write(&mut self, addrs: &[usize], values: &[Word]) -> Result<()> {
        self.global_write_as(addrs, values, self.cfg.elem.bytes())
    }

    /// Width-overriding variant of [`BlockCtx::global_write`]; see
    /// [`BlockCtx::global_read_as`].
    pub fn global_write_as(
        &mut self,
        addrs: &[usize],
        values: &[Word],
        elem_bytes: usize,
    ) -> Result<()> {
        self.check_lanes(addrs.len())?;
        if values.len() != addrs.len() {
            return Err(MachineError::LengthMismatch {
                expected: addrs.len(),
                got: values.len(),
            });
        }
        for (&a, &v) in addrs.iter().zip(values) {
            self.global.store(a, v)?;
        }
        self.account_global(Dir::Write, addrs, elem_bytes)
    }

    /// One round of shared-memory reads from `buf`: lane `t` loads
    /// `buf[indices[t]]`.
    pub fn shared_read(&mut self, buf: SharedBuf, indices: &[usize]) -> Result<Vec<Word>> {
        self.check_lanes(indices.len())?;
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            out.push(self.shared.load(buf, i)?);
        }
        self.account_shared(Dir::Read, indices)?;
        Ok(out)
    }

    /// One round of shared-memory writes to `buf`: lane `t` stores
    /// `values[t]` at `buf[indices[t]]`.
    pub fn shared_write(
        &mut self,
        buf: SharedBuf,
        indices: &[usize],
        values: &[Word],
    ) -> Result<()> {
        self.check_lanes(indices.len())?;
        if values.len() != indices.len() {
            return Err(MachineError::LengthMismatch {
                expected: indices.len(),
                got: values.len(),
            });
        }
        for (&i, &v) in indices.iter().zip(values) {
            self.shared.store(buf, i, v)?;
        }
        self.account_shared(Dir::Write, indices)
    }

    fn check_lanes(&self, lanes: usize) -> Result<()> {
        if lanes > self.threads {
            return Err(MachineError::LengthMismatch {
                expected: self.threads,
                got: lanes,
            });
        }
        Ok(())
    }

    /// Fetch (creating on block 0 / validating on later blocks) the
    /// aggregation slot for the current round, then advance `seq`.
    fn agg_slot(&mut self, space: Space, dir: Dir) -> Result<&mut RoundAgg> {
        let seq = self.seq;
        self.seq += 1;
        if self.block == 0 {
            debug_assert_eq!(seq, self.aggs.len());
            self.aggs.push(RoundAgg {
                space,
                dir,
                cost_stages: 0,
                warps: 0,
                class_ok: true,
                dmm_stages: vec![0; self.cfg.num_dmms],
            });
        }
        match self.aggs.get_mut(seq) {
            Some(agg) if agg.space == space && agg.dir == dir => Ok(agg),
            _ => Err(MachineError::DivergentRounds {
                block: self.block,
                round: seq,
            }),
        }
    }

    fn account_global(&mut self, dir: Dir, addrs: &[usize], elem_bytes: usize) -> Result<()> {
        let width = self.cfg.width;
        // Cost segments: the paper's pure rule charges per w-element group
        // regardless of element width; the byte rule charges per cache line,
        // keyed in (approximate) byte space so arrays of different element
        // widths share one coherent line index space.
        let seg_elems = match self.cfg.segment_rule {
            crate::config::SegmentRule::ElementGroup => width,
            crate::config::SegmentRule::ByteSegment { line_bytes } => {
                (line_bytes / elem_bytes.max(1)).max(1)
            }
        };
        let miss_stages = self.cfg.miss_stages as u64;
        if let Some(trace) = self.trace.as_mut() {
            for &a in addrs {
                let seg = a / seg_elems;
                if trace.global_segments.len() <= seg {
                    trace.global_segments.resize(seg + 1, 0);
                }
                trace.global_segments[seg] += 1;
            }
        }
        // Classification always uses the paper's w-element address groups.
        let mut class_ok = true;
        let mut cost_stages = 0u64;
        let mut warps = 0u64;
        for warp in addrs.chunks(width) {
            warps += 1;
            if pipeline::umm_stages(warp, width) > 1 {
                class_ok = false;
            }
            match self.cache.as_mut() {
                None => {
                    cost_stages += pipeline::umm_stages(warp, seg_elems) as u64;
                }
                Some(cache) => {
                    // Write misses allocate only under the write-allocate
                    // policy (GTX-680-like; see MachineConfig).
                    let allocate = dir == Dir::Read || self.cfg.write_allocate;
                    for seg in pipeline::warp_segments(warp, seg_elems) {
                        // Under the byte rule, `seg_elems` already maps the
                        // element address into line granularity, so `seg`
                        // *is* the line index (byte address / line size)
                        // regardless of the round's element width.
                        cost_stages += if cache.access_with(seg as u64, allocate) {
                            1
                        } else {
                            miss_stages
                        };
                    }
                }
            }
        }
        let agg = self.agg_slot(Space::Global, dir)?;
        agg.cost_stages += cost_stages;
        agg.warps += warps;
        agg.class_ok &= class_ok;
        Ok(())
    }

    fn account_shared(&mut self, dir: Dir, indices: &[usize]) -> Result<()> {
        let width = self.cfg.width;
        if let Some(trace) = self.trace.as_mut() {
            for &i in indices {
                trace.shared_banks[i & (width - 1)] += 1;
            }
        }
        let mut stages = 0u64;
        let mut warps = 0u64;
        let mut class_ok = true;
        for warp in indices.chunks(width) {
            warps += 1;
            let s = pipeline::dmm_stages(warp, width) as u64;
            if s > 1 {
                class_ok = false;
            }
            stages += s;
        }
        let dmm = self.dmm;
        let agg = self.agg_slot(Space::Shared, dir)?;
        agg.cost_stages += stages;
        agg.warps += warps;
        agg.class_ok &= class_ok;
        agg.dmm_stages[dmm] += stages;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SegmentRule;
    use crate::round::AccessClass;

    fn machine(width: usize, latency: usize) -> Hmm {
        Hmm::new(MachineConfig::pure(width, latency)).unwrap()
    }

    #[test]
    fn coalesced_copy_cost_matches_lemma1() {
        // n = 1024 elements, w = 32, l = 100: one coalesced round of reads
        // and one of writes, each n/w + l - 1 = 32 + 99 = 131 time units.
        let mut hmm = machine(32, 100);
        let a = hmm.alloc_global(1024);
        let b = hmm.alloc_global(1024);
        hmm.host_write(a, &(0..1024).collect::<Vec<_>>()).unwrap();
        let stats = hmm
            .launch(1, 1024, |blk| {
                let addrs: Vec<usize> = (0..1024).map(|i| a.addr(i)).collect();
                let vals = blk.global_read(&addrs)?;
                let outs: Vec<usize> = (0..1024).map(|i| b.addr(i)).collect();
                blk.global_write(&outs, &vals)
            })
            .unwrap();
        assert_eq!(stats.rounds.len(), 2);
        for r in &stats.rounds {
            assert_eq!(r.class, AccessClass::Coalesced);
            assert_eq!(r.stages, 32);
            assert_eq!(r.time, 32 + 100 - 1);
        }
        assert_eq!(stats.time, 2 * 131);
        assert_eq!(hmm.host_read(b), (0..1024).collect::<Vec<_>>());
    }

    #[test]
    fn casual_round_costs_distribution_times_groups() {
        // Each of the 2 warps writes to w distinct groups: gamma = w, so the
        // round costs n + l - 1 time units (Lemma 4 with gamma = w).
        let w = 32;
        let l = 50;
        let n = 2 * w;
        let mut hmm = machine(w, l);
        let a = hmm.alloc_global(n * w);
        let stats = hmm
            .launch(1, n, |blk| {
                // Thread t writes address t*w: all in distinct groups.
                let addrs: Vec<usize> = (0..n).map(|t| a.addr(t * w)).collect();
                blk.global_write(&addrs, &vec![0; n])
            })
            .unwrap();
        let r = &stats.rounds[0];
        assert_eq!(r.class, AccessClass::Casual);
        assert_eq!(r.stages, n as u64); // w groups per warp x n/w warps
        assert_eq!(r.time, n as u64 + l as u64 - 1);
    }

    #[test]
    fn multi_block_rounds_aggregate() {
        // 4 blocks x 64 threads, coalesced: stages = 4 blocks x 2 warps.
        let mut hmm = machine(32, 10);
        let a = hmm.alloc_global(256);
        let stats = hmm
            .launch(4, 64, |blk| {
                let base = blk.block_id() * 64;
                let addrs: Vec<usize> = (0..64).map(|t| a.addr(base + t)).collect();
                blk.global_read(&addrs).map(|_| ())
            })
            .unwrap();
        assert_eq!(stats.rounds.len(), 1);
        assert_eq!(stats.rounds[0].stages, 8);
        assert_eq!(stats.rounds[0].warps, 8);
        assert_eq!(stats.rounds[0].time, 8 + 9);
    }

    #[test]
    fn shared_round_classification_and_cost() {
        let mut hmm = machine(4, 10);
        let stats = hmm
            .launch(1, 4, |blk| {
                let s = blk.shared_alloc(16, 4)?;
                // Conflict-free: distinct banks 0..3.
                blk.shared_write(s, &[0, 1, 2, 3], &[9, 9, 9, 9])?;
                // Conflicted: 0, 4, 8, 12 all hit bank 0 -> 4 stages.
                blk.shared_read(s, &[0, 4, 8, 12]).map(|_| ())
            })
            .unwrap();
        assert_eq!(stats.rounds[0].class, AccessClass::ConflictFree);
        assert_eq!(stats.rounds[0].time, 1);
        assert_eq!(stats.rounds[1].class, AccessClass::Casual);
        assert_eq!(stats.rounds[1].time, 4);
    }

    #[test]
    fn shared_memory_is_per_block() {
        let mut hmm = machine(4, 10);
        let out = hmm.alloc_global(8);
        hmm.launch(2, 4, |blk| {
            let s = blk.shared_alloc(4, 8)?;
            let vals: Vec<Word> = (0..4).map(|t| (blk.block_id() * 100 + t) as Word).collect();
            blk.shared_write(s, &[0, 1, 2, 3], &vals)?;
            let read = blk.shared_read(s, &[0, 1, 2, 3])?;
            let addrs: Vec<usize> = (0..4).map(|t| out.addr(blk.block_id() * 4 + t)).collect();
            blk.global_write(&addrs, &read)
        })
        .unwrap();
        assert_eq!(hmm.host_read(out), vec![0, 1, 2, 3, 100, 101, 102, 103]);
    }

    #[test]
    fn empty_launch_rejected() {
        let mut hmm = machine(32, 10);
        assert_eq!(
            hmm.launch(0, 32, |_| Ok(())).unwrap_err(),
            MachineError::EmptyLaunch
        );
        assert_eq!(
            hmm.launch(1, 0, |_| Ok(())).unwrap_err(),
            MachineError::EmptyLaunch
        );
    }

    #[test]
    fn oversized_block_rejected() {
        let mut hmm = machine(32, 10);
        assert!(hmm.launch(1, MAX_BLOCK_THREADS + 1, |_| Ok(())).is_err());
        // Model blocks larger than a CUDA block are fine (see the
        // MAX_BLOCK_THREADS docs).
        assert!(hmm.launch(1, 2048, |_| Ok(())).is_ok());
    }

    #[test]
    fn too_many_lanes_rejected() {
        let mut hmm = machine(32, 10);
        let a = hmm.alloc_global(64);
        let err = hmm
            .launch(1, 32, |blk| {
                let addrs: Vec<usize> = (0..64).map(|i| a.addr(i)).collect();
                blk.global_read(&addrs).map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, MachineError::LengthMismatch { .. }));
    }

    #[test]
    fn divergent_round_counts_detected() {
        let mut hmm = machine(32, 10);
        let a = hmm.alloc_global(64);
        let err = hmm
            .launch(2, 32, |blk| {
                let addrs: Vec<usize> = (0..32).map(|i| a.addr(i)).collect();
                blk.global_read(&addrs)?;
                if blk.block_id() == 1 {
                    blk.global_read(&addrs)?; // extra round in block 1
                }
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(
            err,
            MachineError::DivergentRounds { block: 1, .. }
        ));
    }

    #[test]
    fn divergent_round_kind_detected() {
        let mut hmm = machine(32, 10);
        let a = hmm.alloc_global(64);
        let err = hmm
            .launch(2, 32, |blk| {
                let addrs: Vec<usize> = (0..32).map(|i| a.addr(i)).collect();
                if blk.block_id() == 0 {
                    blk.global_read(&addrs)?;
                } else {
                    blk.global_write(&addrs, &vec![0; 32])?;
                }
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(
            err,
            MachineError::DivergentRounds { block: 1, .. }
        ));
    }

    #[test]
    fn ledger_accumulates_across_launches() {
        let mut hmm = machine(32, 10);
        let a = hmm.alloc_global(32);
        for _ in 0..3 {
            hmm.launch(1, 32, |blk| {
                let addrs: Vec<usize> = (0..32).map(|i| a.addr(i)).collect();
                blk.global_read(&addrs).map(|_| ())
            })
            .unwrap();
        }
        assert_eq!(hmm.ledger().len(), 3);
        let mark = hmm.mark();
        assert_eq!(hmm.since(mark).total_rounds(), 0);
        assert_eq!(hmm.total_time(), 3 * (1 + 9));
    }

    #[test]
    fn cache_model_reduces_repeat_access_cost() {
        let cfg = MachineConfig {
            width: 32,
            latency: 10,
            segment_rule: SegmentRule::ByteSegment { line_bytes: 128 },
            cache: Some(crate::cache::CacheConfig {
                capacity_bytes: 4096,
                line_bytes: 128,
                ways: 4,
            }),
            miss_stages: 4,
            ..Default::default()
        };
        let mut hmm = Hmm::new(cfg).unwrap();
        let a = hmm.alloc_global(32);
        let addrs: Vec<usize> = (0..32).map(|i| a.addr(i)).collect();
        // First access: 1 segment miss -> 4 stages.
        let s1 = hmm
            .launch(1, 32, |blk| blk.global_read(&addrs).map(|_| ()))
            .unwrap();
        assert_eq!(s1.rounds[0].stages, 4);
        // Second access: hit -> 1 stage.
        let s2 = hmm
            .launch(1, 32, |blk| blk.global_read(&addrs).map(|_| ()))
            .unwrap();
        assert_eq!(s2.rounds[0].stages, 1);
        let stats = hmm.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // Per-launch deltas: the first launch missed, the second hit.
        assert_eq!(s1.cache, Some(CacheStats { hits: 0, misses: 1 }));
        assert_eq!(s2.cache, Some(CacheStats { hits: 1, misses: 0 }));
        hmm.reset_costs();
        assert_eq!(hmm.cache_stats().unwrap().accesses(), 0);
        assert!(hmm.ledger().is_empty());
    }

    #[test]
    fn f64_doubles_coalesced_cost_under_byte_segments() {
        use crate::config::ElemWidth;
        let mut f32m = Hmm::new(MachineConfig {
            cache: None,
            ..MachineConfig::gtx680(ElemWidth::F32)
        })
        .unwrap();
        let mut f64m = Hmm::new(MachineConfig {
            cache: None,
            ..MachineConfig::gtx680(ElemWidth::F64)
        })
        .unwrap();
        for (m, want_stages) in [(&mut f32m, 1u64), (&mut f64m, 2u64)] {
            let a = m.alloc_global(32);
            let addrs: Vec<usize> = (0..32).map(|i| a.addr(i)).collect();
            let s = m
                .launch(1, 32, |blk| blk.global_read(&addrs).map(|_| ()))
                .unwrap();
            assert_eq!(s.rounds[0].stages, want_stages);
            // Classification stays coalesced either way: it uses w-element
            // address groups, not byte segments.
            assert_eq!(s.rounds[0].class, AccessClass::Coalesced);
        }
    }

    #[test]
    fn parallel_shared_dispatch_divides_by_dmms() {
        let mk = |flag: bool| {
            Hmm::new(MachineConfig {
                width: 4,
                latency: 10,
                num_dmms: 2,
                parallel_shared_dispatch: flag,
                ..Default::default()
            })
            .unwrap()
        };
        let run = |hmm: &mut Hmm| {
            hmm.launch(2, 4, |blk| {
                let s = blk.shared_alloc(4, 4)?;
                blk.shared_write(s, &[0, 1, 2, 3], &[0, 0, 0, 0])
            })
            .unwrap()
            .time
        };
        // Two blocks on two DMMs, one conflict-free warp each.
        assert_eq!(run(&mut mk(false)), 2); // paper model: serialized
        assert_eq!(run(&mut mk(true)), 1); // ablation: parallel DMMs
    }

    #[test]
    fn trace_records_segments_and_banks() {
        let mut hmm = machine(4, 10);
        let a = hmm.alloc_global(16);
        hmm.start_trace();
        hmm.launch(1, 8, |blk| {
            // Global: touch addresses 0..8 (segments 0 and 1), twice.
            let addrs: Vec<usize> = (0..8).map(|i| a.addr(i)).collect();
            blk.global_read(&addrs)?;
            blk.global_read(&addrs)?;
            // Shared: everything into bank 1.
            let s = blk.shared_alloc(32, 4)?;
            blk.shared_write(s, &[1, 5, 9, 13, 17, 21, 25, 29], &[0; 8])
        })
        .unwrap();
        let trace = hmm.take_trace().unwrap();
        assert_eq!(trace.global_total(), 16);
        assert_eq!(trace.global_segments[0], 8); // segment 0: addrs 0..4 x2
        assert_eq!(trace.global_segments[1], 8);
        assert_eq!(trace.shared_total(), 8);
        assert_eq!(trace.shared_banks, vec![0, 8, 0, 0]);
        assert_eq!(trace.bank_imbalance(), 4.0);
        // Tracing is one-shot: taken means gone.
        assert!(hmm.take_trace().is_none());
    }

    #[test]
    fn blocks_map_to_dmms_round_robin() {
        let mut hmm = Hmm::new(MachineConfig {
            num_dmms: 3,
            ..MachineConfig::pure(32, 10)
        })
        .unwrap();
        let seen = std::cell::RefCell::new(Vec::new());
        hmm.launch(7, 32, |blk| {
            seen.borrow_mut().push((blk.block_id(), blk.dmm()));
            Ok(())
        })
        .unwrap();
        for (b, d) in seen.into_inner() {
            assert_eq!(d, b % 3);
        }
    }
}
