//! Access tracing: where in the address space a kernel's traffic lands.
//!
//! When enabled on an [`crate::Hmm`], every global-memory access bumps a
//! per-segment counter and every shared-memory access a per-bank counter.
//! The resulting [`AccessTrace`] renders as a text heatmap — the quickest
//! way to *see* the difference between the conventional algorithm's
//! scattered writes and the scheduled algorithm's streaming passes, or a
//! bank-conflict hot spot in a shared-memory kernel.

/// Aggregated access counts collected while tracing was enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    /// Accesses per global cost segment (index = segment id).
    pub global_segments: Vec<u64>,
    /// Accesses per shared-memory bank.
    pub shared_banks: Vec<u64>,
}

impl AccessTrace {
    /// Total global accesses recorded.
    pub fn global_total(&self) -> u64 {
        self.global_segments.iter().sum()
    }

    /// Total shared accesses recorded.
    pub fn shared_total(&self) -> u64 {
        self.shared_banks.iter().sum()
    }

    /// Bucket the global-segment counts into `buckets` equal address
    /// ranges (for rendering long traces compactly).
    pub fn bucketed(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0);
        let n = self.global_segments.len();
        if n == 0 {
            return vec![0; buckets];
        }
        let per = n.div_ceil(buckets);
        self.global_segments
            .chunks(per)
            .map(|c| c.iter().sum())
            .collect()
    }

    /// Render the global heatmap as one text line per bucket, each with a
    /// proportional bar of at most `bar_width` characters.
    pub fn render_global(&self, buckets: usize, bar_width: usize) -> String {
        let data = self.bucketed(buckets);
        let max = data.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &v) in data.iter().enumerate() {
            let bar = (v as usize * bar_width).div_ceil(max as usize);
            out.push_str(&format!(
                "seg bucket {i:>3} {:>10} {}\n",
                v,
                "#".repeat(if v == 0 { 0 } else { bar.max(1) })
            ));
        }
        out
    }

    /// Ratio of the busiest shared bank to the mean — 1.0 means perfectly
    /// balanced (conflict-free rounds), `w` means fully serialized.
    pub fn bank_imbalance(&self) -> f64 {
        let total = self.shared_total();
        if total == 0 || self.shared_banks.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.shared_banks.len() as f64;
        let max = *self.shared_banks.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(globals: Vec<u64>, banks: Vec<u64>) -> AccessTrace {
        AccessTrace {
            global_segments: globals,
            shared_banks: banks,
        }
    }

    #[test]
    fn totals() {
        let t = trace(vec![1, 2, 3], vec![4, 0]);
        assert_eq!(t.global_total(), 6);
        assert_eq!(t.shared_total(), 4);
    }

    #[test]
    fn bucketing_preserves_total() {
        let t = trace((0..100u64).collect(), vec![]);
        for buckets in [1usize, 3, 10, 100, 200] {
            let b = t.bucketed(buckets);
            assert_eq!(b.iter().sum::<u64>(), t.global_total(), "{buckets}");
            assert!(b.len() <= buckets.max(1));
        }
    }

    #[test]
    fn render_is_proportional() {
        let t = trace(vec![10, 0, 5], vec![]);
        let s = t.render_global(3, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].matches('#').count() > lines[2].matches('#').count());
        assert_eq!(lines[1].matches('#').count(), 0);
    }

    #[test]
    fn bank_imbalance_bounds() {
        assert_eq!(trace(vec![], vec![5, 5, 5, 5]).bank_imbalance(), 1.0);
        assert_eq!(trace(vec![], vec![20, 0, 0, 0]).bank_imbalance(), 4.0);
        assert_eq!(trace(vec![], vec![]).bank_imbalance(), 1.0);
        assert_eq!(trace(vec![], vec![0, 0]).bank_imbalance(), 1.0);
    }

    #[test]
    fn empty_trace_renders() {
        let t = AccessTrace::default();
        assert_eq!(t.bucketed(4), vec![0, 0, 0, 0]);
        assert!(t.render_global(2, 10).contains("bucket"));
    }
}
