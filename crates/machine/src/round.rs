//! Round records: what kind of memory access a kernel performed and what it
//! cost (Section III of the paper).
//!
//! A **round** is one memory access by every active thread. The paper
//! classifies rounds as *coalesced* (global, every warp inside one address
//! group), *conflict-free* (shared, every warp hits distinct banks), or
//! *casual* (no guarantee); Table I counts each algorithm's rounds by this
//! classification, and Lemmas 1–4 price them.

use core::fmt;

/// Which memory a round accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// The UMM's global memory (latency `l`).
    Global,
    /// A DMM's shared memory (latency 1).
    Shared,
}

/// Whether a round read or wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Memory-to-thread.
    Read,
    /// Thread-to-memory.
    Write,
}

/// The paper's three access classes (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Every warp's requests fall in a single address group of the global
    /// memory. (Classification always uses the paper's `w`-element groups,
    /// regardless of the cost model's segment rule.)
    Coalesced,
    /// Every warp's requests hit pairwise-distinct shared-memory banks.
    ConflictFree,
    /// Neither guarantee holds.
    Casual,
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessClass::Coalesced => "coalesced",
            AccessClass::ConflictFree => "conflict-free",
            AccessClass::Casual => "casual",
        };
        f.write_str(s)
    }
}

/// One completed round of memory access, with its measured cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Position of the round in its kernel (0-based).
    pub seq: usize,
    /// Which memory was accessed.
    pub space: Space,
    /// Read or write.
    pub dir: Dir,
    /// Observed classification over all warps of all blocks.
    pub class: AccessClass,
    /// Number of warps that issued at least one request.
    pub warps: u64,
    /// Total pipeline stages occupied (cost stages, i.e. including cache
    /// miss penalties when the cache model is active).
    pub stages: u64,
    /// Time units charged: `stages + latency - 1` for global rounds,
    /// `stages` for shared rounds (latency 1), possibly divided across DMMs
    /// when `parallel_shared_dispatch` is set.
    pub time: u64,
}

/// A `(space, dir, class)` triple — the row/column keys of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoundKind {
    /// Which memory.
    pub space: Space,
    /// Read or write.
    pub dir: Dir,
    /// Access class.
    pub class: AccessClass,
}

impl RoundRecord {
    /// The `(space, dir, class)` key of this record.
    #[inline]
    pub fn kind(&self) -> RoundKind {
        RoundKind {
            space: self.space,
            dir: self.dir,
            class: self.class,
        }
    }
}

impl fmt::Display for RoundRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "round {:>3}: {:6} {:5} {:13} warps={:<6} stages={:<8} time={}",
            self.seq,
            match self.space {
                Space::Global => "global",
                Space::Shared => "shared",
            },
            match self.dir {
                Dir::Read => "read",
                Dir::Write => "write",
            },
            self.class.to_string(),
            self.warps,
            self.stages,
            self.time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_all_fields() {
        let r = RoundRecord {
            seq: 7,
            space: Space::Global,
            dir: Dir::Write,
            class: AccessClass::Casual,
            warps: 4,
            stages: 99,
            time: 610,
        };
        let s = r.to_string();
        for needle in ["7", "global", "write", "casual", "99", "610"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn kind_extraction() {
        let r = RoundRecord {
            seq: 0,
            space: Space::Shared,
            dir: Dir::Read,
            class: AccessClass::ConflictFree,
            warps: 1,
            stages: 1,
            time: 1,
        };
        assert_eq!(
            r.kind(),
            RoundKind {
                space: Space::Shared,
                dir: Dir::Read,
                class: AccessClass::ConflictFree
            }
        );
    }

    #[test]
    fn class_display() {
        assert_eq!(AccessClass::Coalesced.to_string(), "coalesced");
        assert_eq!(AccessClass::ConflictFree.to_string(), "conflict-free");
        assert_eq!(AccessClass::Casual.to_string(), "casual");
    }
}
