//! # hmm-machine — simulators for the DMM, UMM, and HMM memory machines
//!
//! This crate implements executable versions of the three theoretical
//! parallel computing models used by Kasagi, Nakano, and Ito in *"An Optimal
//! Offline Permutation Algorithm on the Hierarchical Memory Machine, with
//! the GPU implementation"* (ICPP 2013):
//!
//! * the **Discrete Memory Machine** ([`Dmm`]) — a `w`-bank memory where a
//!   warp's requests to the same bank serialize (the *shared memory* of a
//!   CUDA streaming multiprocessor; Figure 1, left);
//! * the **Unified Memory Machine** ([`Umm`]) — a memory organized in
//!   *address groups* of `w` consecutive words, where a warp occupies one
//!   pipeline stage per distinct group it touches (the *global memory* of a
//!   GPU; Figure 1, right);
//! * the **Hierarchical Memory Machine** ([`Hmm`]) — `d` DMMs (latency 1)
//!   attached to a single UMM (latency `l`), with threads grouped in
//!   `w`-thread warps dispatched round-robin (Figure 2):
//!
//! ```text
//!   DMM 0          DMM 1            DMM d-1
//!  ┌────────┐     ┌────────┐       ┌────────┐
//!  │MB MB MB│     │MB MB MB│  ...  │MB MB MB│   shared memory (latency 1)
//!  │  MMU   │     │  MMU   │       │  MMU   │
//!  │T T T T │     │T T T T │       │T T T T │
//!  └───┬────┘     └───┬────┘       └───┬────┘
//!      └──────────────┼────────────────┘
//!                NoC and MMU
//!           ┌──────────────────────┐
//!           │  MB   MB   MB   MB   │   global memory (latency l)
//!           └──────────────────────┘
//! ```
//!
//! The simulators execute real data movement *and* charge the paper's exact
//! cost model, so algorithm implementations can be verified for correctness
//! and audited for their memory-access rounds at the same time. Costs are
//! accounted per **round** (one access by every active thread) following
//! Lemma 1: a round whose warps occupy `S` pipeline stages in total
//! completes in `S + latency − 1` time units. Rounds are classified as
//! *coalesced*, *conflict-free*, or *casual* exactly as in Section III, so
//! a ledger summary reproduces the columns of the paper's Table I.
//!
//! Two empirical extensions (both off in the default, pure configuration)
//! let the same machinery reproduce the paper's GPU measurements:
//! byte-addressed segments ([`SegmentRule::ByteSegment`]) make 64-bit
//! elements twice as expensive to stream, and the L2 cache model
//! ([`cache::Cache`]) reproduces the small-`n` advantage of the
//! conventional permutation algorithm (Section VIII attributes it to the
//! GTX-680's 512 KB L2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod cost;
pub mod dmm;
pub mod error;
pub mod global;
pub mod hmm;
pub mod pipeline;
pub mod presets;
pub mod round;
pub mod shared;
pub mod trace;
pub mod umm;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use config::{ElemWidth, MachineConfig, SegmentRule};
pub use cost::{CostLedger, KindTotals, RoundSummary};
pub use dmm::Dmm;
pub use error::{MachineError, Result};
pub use global::{GlobalBuf, GlobalMemory, Word};
pub use hmm::{BlockCtx, Hmm, LaunchStats, MAX_BLOCK_THREADS};
pub use round::{AccessClass, Dir, RoundKind, RoundRecord, Space};
pub use shared::{SharedBuf, SharedSpace};
pub use trace::AccessTrace;
pub use umm::Umm;
