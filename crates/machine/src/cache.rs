//! Set-associative LRU cache model of the GTX-680 L2.
//!
//! The paper attributes the conventional algorithm's advantage for
//! `n < 256K` to the GPU's 512 KB L2 cache absorbing the casual (scattered)
//! writes (Section VIII). The pure HMM has no cache; this module supplies the
//! empirical extension used by the `MachineConfig::gtx680` configuration to
//! reproduce the crossover in Table II.
//!
//! The model is deliberately simple: a physically indexed, set-associative,
//! LRU, write-allocate cache over fixed-size lines. A warp's global round is
//! charged per *distinct line touched*: 1 stage on a hit, `miss_stages`
//! stages on a miss (see [`crate::config::MachineConfig`]).

use crate::error::{MachineError, Result};

/// Geometry of the simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The GTX-680 L2: 512 KB, 128-byte lines, 16-way.
    pub const fn gtx680_l2() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// Number of lines the cache can hold.
    #[inline]
    pub const fn num_lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets.
    #[inline]
    pub const fn num_sets(&self) -> usize {
        self.num_lines() / self.ways
    }

    /// Validate the geometry.
    pub fn validate(&self) -> Result<()> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(MachineError::InvalidConfig(format!(
                "cache line_bytes must be a power of two > 0, got {}",
                self.line_bytes
            )));
        }
        if self.ways == 0 {
            return Err(MachineError::InvalidConfig(
                "cache ways must be >= 1".into(),
            ));
        }
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(self.line_bytes) {
            return Err(MachineError::InvalidConfig(format!(
                "cache capacity {} not a multiple of line size {}",
                self.capacity_bytes, self.line_bytes
            )));
        }
        let lines = self.num_lines();
        if !lines.is_multiple_of(self.ways) {
            return Err(MachineError::InvalidConfig(format!(
                "cache lines ({lines}) not divisible by ways ({})",
                self.ways
            )));
        }
        if !self.num_sets().is_power_of_two() {
            return Err(MachineError::InvalidConfig(format!(
                "cache set count {} must be a power of two",
                self.num_sets()
            )));
        }
        Ok(())
    }
}

/// Hit/miss counters accumulated by a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of probes that found the line resident.
    pub hits: u64,
    /// Number of probes that missed (and allocated the line).
    pub misses: u64,
}

impl CacheStats {
    /// Total probes.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative LRU cache keyed by line index.
///
/// Lines are identified by their line index (byte address / line size); the
/// caller performs that division because it also needs the line index for
/// stage counting.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    set_mask: usize,
    /// `sets[s]` holds up to `ways` tags ordered most-recently-used first.
    /// Associativity is small (16), so a linear scan over a `Vec` beats any
    /// fancier structure.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Result<Self> {
        cfg.validate()?;
        let num_sets = cfg.num_sets();
        Ok(Cache {
            cfg,
            set_mask: num_sets - 1,
            sets: vec![Vec::with_capacity(cfg.ways); num_sets],
            stats: CacheStats::default(),
        })
    }

    /// Geometry of this cache.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Probe (and allocate on miss) the given line. Returns `true` on a hit.
    ///
    /// Dirtiness is not tracked because write-back traffic is not part of
    /// the stage cost model.
    pub fn access(&mut self, line: u64) -> bool {
        self.access_with(line, true)
    }

    /// Probe the given line, allocating on miss only when
    /// `allocate_on_miss` is set — the write path of a write-around cache
    /// passes `false`. Returns `true` on a hit (hits still update recency).
    pub fn access_with(&mut self, line: u64, allocate_on_miss: bool) -> bool {
        let set = (line as usize) & self.set_mask;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU position.
            ways[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            if allocate_on_miss {
                if ways.len() == self.cfg.ways {
                    ways.pop(); // evict LRU
                }
                ways.insert(0, line);
            }
            self.stats.misses += 1;
            false
        }
    }

    /// Probe without allocating or updating recency (for diagnostics).
    pub fn contains(&self, line: u64) -> bool {
        let set = (line as usize) & self.set_mask;
        self.sets[set].contains(&line)
    }

    /// Counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident lines (diagnostics; `<= num_lines`).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drop all contents and counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(lines: usize, ways: usize) -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: lines * 64,
            line_bytes: 64,
            ways,
        })
        .unwrap()
    }

    #[test]
    fn gtx680_geometry() {
        let cfg = CacheConfig::gtx680_l2();
        cfg.validate().unwrap();
        assert_eq!(cfg.num_lines(), 4096);
        assert_eq!(cfg.num_sets(), 256);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache(16, 4);
        assert!(!c.access(42));
        assert!(c.access(42));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_eviction_within_set() {
        // 4 sets x 2 ways. Lines 0, 4, 8 map to set 0.
        let mut c = small_cache(8, 2);
        assert!(!c.access(0));
        assert!(!c.access(4));
        assert!(!c.access(8)); // evicts 0
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(c.contains(8));
        assert!(c.access(4)); // hit; 8 becomes LRU
        assert!(!c.access(0)); // evicts 8
        assert!(!c.contains(8));
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = small_cache(64, 4);
        for line in 0..64u64 {
            c.access(line);
        }
        let before = c.stats();
        for line in 0..64u64 {
            assert!(c.access(line), "line {line} should be resident");
        }
        let after = c.stats();
        assert_eq!(after.hits - before.hits, 64);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_under_lru() {
        // Sequential sweep over 2x capacity with LRU never hits.
        let mut c = small_cache(64, 4);
        for _ in 0..3 {
            for line in 0..128u64 {
                c.access(line);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn stats_invariants() {
        let mut c = small_cache(16, 4);
        for line in 0..100u64 {
            // 12 lines (3 per set) fit the 4-way sets: misses only on the
            // first pass, hits afterwards.
            c.access(line % 12);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 100);
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);
        assert!(c.resident_lines() <= 16);
    }

    #[test]
    fn write_around_probe_does_not_allocate() {
        let mut c = small_cache(16, 4);
        assert!(!c.access_with(7, false));
        assert!(!c.contains(7), "write-around must not install the line");
        assert!(!c.access_with(7, false), "still a miss");
        // A read installs it; subsequent write probes hit.
        assert!(!c.access_with(7, true));
        assert!(c.access_with(7, false));
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small_cache(16, 4);
        c.access(1);
        c.access(1);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.contains(1));
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(Cache::new(CacheConfig {
            capacity_bytes: 100,
            line_bytes: 64,
            ways: 2
        })
        .is_err());
        assert!(Cache::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 64,
            ways: 0
        })
        .is_err());
    }

    #[test]
    fn zero_access_hit_rate_is_zero() {
        let c = small_cache(16, 4);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
