//! Typed errors for machine construction and kernel execution.

use core::fmt;

/// Errors raised by the memory-machine simulators.
///
/// All fallible operations in this crate return [`MachineError`] rather than
/// panicking, so that harnesses can probe infeasible configurations (e.g. the
/// paper's observation that the scheduled algorithm cannot run for 4M doubles
/// because the per-block shared arrays exceed 48 KB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A configuration parameter is invalid (zero width, non-power-of-two
    /// width, zero latency, ...). The payload describes the offending field.
    InvalidConfig(String),
    /// A shared-memory allocation would exceed the per-DMM capacity.
    SharedCapacityExceeded {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes already allocated in the block.
        in_use: usize,
        /// Per-DMM capacity in bytes.
        capacity: usize,
    },
    /// A global-memory access referenced an address outside the allocated
    /// global space.
    GlobalOutOfBounds {
        /// The offending address (in elements).
        addr: usize,
        /// Size of the global memory (in elements).
        len: usize,
    },
    /// A shared-memory access referenced an index outside the array.
    SharedOutOfBounds {
        /// The offending index (in elements).
        index: usize,
        /// Length of the shared array (in elements).
        len: usize,
    },
    /// The per-thread address and value slices of a write round differ in
    /// length, or a round was issued with more lanes than launched threads.
    LengthMismatch {
        /// What the round expected.
        expected: usize,
        /// What the caller supplied.
        got: usize,
    },
    /// A kernel launch was requested with a zero-sized grid or block.
    EmptyLaunch,
    /// Two blocks of the same launch issued different round sequences, so the
    /// lock-step cost aggregation is undefined. Kernels must be SPMD: every
    /// block performs the same sequence of rounds.
    DivergentRounds {
        /// Index of the divergent block.
        block: usize,
        /// Round sequence number at which the divergence was detected.
        round: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidConfig(msg) => write!(f, "invalid machine config: {msg}"),
            MachineError::SharedCapacityExceeded {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "shared memory capacity exceeded: requested {requested} B with {in_use} B in use \
                 (capacity {capacity} B)"
            ),
            MachineError::GlobalOutOfBounds { addr, len } => {
                write!(f, "global address {addr} out of bounds (len {len})")
            }
            MachineError::SharedOutOfBounds { index, len } => {
                write!(f, "shared index {index} out of bounds (len {len})")
            }
            MachineError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            MachineError::EmptyLaunch => write!(f, "kernel launch with empty grid or block"),
            MachineError::DivergentRounds { block, round } => write!(
                f,
                "block {block} diverged from the launch round sequence at round {round}"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MachineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MachineError::SharedCapacityExceeded {
            requested: 1024,
            in_use: 48_000,
            capacity: 49_152,
        };
        let s = e.to_string();
        assert!(s.contains("1024"));
        assert!(s.contains("49152"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MachineError::EmptyLaunch);
    }

    #[test]
    fn equality_works() {
        assert_eq!(
            MachineError::GlobalOutOfBounds { addr: 5, len: 4 },
            MachineError::GlobalOutOfBounds { addr: 5, len: 4 }
        );
        assert_ne!(
            MachineError::EmptyLaunch,
            MachineError::InvalidConfig("x".into())
        );
    }
}
