//! The global memory of the UMM/HMM: a flat word array plus host-side
//! (cost-free) access for staging inputs and reading back results.

use crate::error::{MachineError, Result};

/// The simulated word type. Elements of any width (`f32`, `f64`, 16-bit
/// schedule entries, ...) are stored as opaque 64-bit words; the element
/// width only enters the *cost* model via [`crate::MachineConfig`].
pub type Word = u64;

/// A handle to a contiguous allocation in global memory.
///
/// Handles are plain offset/length pairs: cheap to copy, independent of the
/// machine's lifetime, and translated to absolute addresses with
/// [`GlobalBuf::addr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalBuf {
    offset: usize,
    len: usize,
}

impl GlobalBuf {
    /// Number of elements in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Absolute global address of element `i`.
    ///
    /// Bounds are checked by the machine when the address is used, but an
    /// assertion here catches index bugs closer to their source in debug
    /// builds.
    #[inline]
    pub fn addr(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "index {i} out of buffer of len {}", self.len);
        self.offset + i
    }

    /// Absolute address of the first element.
    #[inline]
    pub fn base(&self) -> usize {
        self.offset
    }
}

/// Flat global memory with bump allocation.
#[derive(Debug, Clone, Default)]
pub struct GlobalMemory {
    data: Vec<Word>,
}

impl GlobalMemory {
    /// New empty global memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` zero-initialized elements.
    pub fn alloc(&mut self, len: usize) -> GlobalBuf {
        let offset = self.data.len();
        self.data.resize(offset + len, 0);
        GlobalBuf { offset, len }
    }

    /// Total elements allocated.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Roll the allocator back to `len` elements, freeing every buffer
    /// allocated past that point. Handles into the freed region become
    /// dangling: any round that touches them fails the bounds check (no
    /// undefined behaviour, just an error). Used by engines that stage
    /// per-run scratch after a persistent prefix.
    ///
    /// # Panics
    /// Panics if `len` exceeds the current allocation size.
    pub fn truncate(&mut self, len: usize) {
        assert!(
            len <= self.data.len(),
            "cannot truncate {} to {len}",
            self.data.len()
        );
        self.data.truncate(len);
    }

    /// Cost-free host write of a whole buffer (input staging).
    pub fn host_write(&mut self, buf: GlobalBuf, values: &[Word]) -> Result<()> {
        if values.len() != buf.len {
            return Err(MachineError::LengthMismatch {
                expected: buf.len,
                got: values.len(),
            });
        }
        self.data[buf.offset..buf.offset + buf.len].copy_from_slice(values);
        Ok(())
    }

    /// Cost-free host read of a whole buffer (result readback).
    pub fn host_read(&self, buf: GlobalBuf) -> Vec<Word> {
        self.data[buf.offset..buf.offset + buf.len].to_vec()
    }

    /// Checked device-side load.
    #[inline]
    pub fn load(&self, addr: usize) -> Result<Word> {
        self.data
            .get(addr)
            .copied()
            .ok_or(MachineError::GlobalOutOfBounds {
                addr,
                len: self.data.len(),
            })
    }

    /// Checked device-side store.
    #[inline]
    pub fn store(&mut self, addr: usize, value: Word) -> Result<()> {
        let len = self.data.len();
        match self.data.get_mut(addr) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(MachineError::GlobalOutOfBounds { addr, len }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_contiguous_and_zeroed() {
        let mut g = GlobalMemory::new();
        let a = g.alloc(4);
        let b = g.alloc(2);
        assert_eq!(a.base(), 0);
        assert_eq!(b.base(), 4);
        assert_eq!(g.len(), 6);
        assert_eq!(g.host_read(a), vec![0; 4]);
    }

    #[test]
    fn host_roundtrip() {
        let mut g = GlobalMemory::new();
        let a = g.alloc(3);
        g.host_write(a, &[7, 8, 9]).unwrap();
        assert_eq!(g.host_read(a), vec![7, 8, 9]);
    }

    #[test]
    fn host_write_length_checked() {
        let mut g = GlobalMemory::new();
        let a = g.alloc(3);
        assert_eq!(
            g.host_write(a, &[1, 2]),
            Err(MachineError::LengthMismatch {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn device_access_bounds_checked() {
        let mut g = GlobalMemory::new();
        let a = g.alloc(2);
        g.store(a.addr(1), 5).unwrap();
        assert_eq!(g.load(a.addr(1)).unwrap(), 5);
        assert!(matches!(
            g.load(2),
            Err(MachineError::GlobalOutOfBounds { addr: 2, len: 2 })
        ));
        assert!(g.store(99, 0).is_err());
    }

    #[test]
    fn truncate_frees_tail_allocations() {
        let mut g = GlobalMemory::new();
        let a = g.alloc(4);
        let mark = g.len();
        let b = g.alloc(4);
        g.store(b.addr(0), 9).unwrap();
        g.truncate(mark);
        assert_eq!(g.len(), 4);
        // The freed handle now fails bounds checks instead of aliasing.
        assert!(g.load(b.addr(0)).is_err());
        // The surviving buffer is intact and reusable.
        g.store(a.addr(3), 7).unwrap();
        let b2 = g.alloc(2);
        assert_eq!(b2.base(), 4);
        assert_eq!(g.load(b2.addr(0)).unwrap(), 0, "realloc is zeroed");
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncate_beyond_length_panics() {
        let mut g = GlobalMemory::new();
        g.alloc(2);
        g.truncate(5);
    }

    #[test]
    fn buffer_addr_translation() {
        let mut g = GlobalMemory::new();
        let _pad = g.alloc(10);
        let a = g.alloc(5);
        assert_eq!(a.addr(0), 10);
        assert_eq!(a.addr(4), 14);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }
}
