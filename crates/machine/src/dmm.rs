//! The standalone Discrete Memory Machine (Section II): one banked memory,
//! `w`-thread warps dispatched round-robin, latency `l` (1 for the HMM's
//! shared memory, but parameterized here as in the authors' follow-up work).
//!
//! Used directly by the single-SM conflict-free permutation experiment
//! (`hmm-offperm::smallperm`) and by the Figure 3 reproduction.

use crate::cost::CostLedger;
use crate::error::{MachineError, Result};
use crate::global::Word;
use crate::pipeline;
use crate::round::{AccessClass, Dir, RoundRecord, Space};

/// A standalone DMM with `width` banks over a flat memory of `len` words.
#[derive(Debug, Clone)]
pub struct Dmm {
    width: usize,
    latency: usize,
    data: Vec<Word>,
    ledger: CostLedger,
}

impl Dmm {
    /// Build a DMM of the given width (power of two >= 2), memory size, and
    /// access latency.
    pub fn new(width: usize, latency: usize, len: usize) -> Result<Self> {
        if width < 2 || !width.is_power_of_two() {
            return Err(MachineError::InvalidConfig(format!(
                "width must be a power of two >= 2, got {width}"
            )));
        }
        if latency == 0 {
            return Err(MachineError::InvalidConfig("latency must be >= 1".into()));
        }
        Ok(Dmm {
            width,
            latency,
            data: vec![0; len],
            ledger: CostLedger::new(),
        })
    }

    /// Bank count / warp width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Memory size in words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the memory has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Cost-free host access to the whole memory.
    pub fn memory(&self) -> &[Word] {
        &self.data
    }

    /// Cost-free host mutation of the whole memory.
    pub fn memory_mut(&mut self) -> &mut [Word] {
        &mut self.data
    }

    /// Accumulated rounds.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Total time units charged so far.
    pub fn total_time(&self) -> u64 {
        self.ledger.total_time()
    }

    /// One round of reads: thread `t` loads `addrs[t]`; threads are grouped
    /// into warps of `width` in slice order.
    pub fn read_round(&mut self, addrs: &[usize]) -> Result<Vec<Word>> {
        let mut out = Vec::with_capacity(addrs.len());
        for &a in addrs {
            out.push(
                self.data
                    .get(a)
                    .copied()
                    .ok_or(MachineError::GlobalOutOfBounds {
                        addr: a,
                        len: self.data.len(),
                    })?,
            );
        }
        self.account(Dir::Read, addrs);
        Ok(out)
    }

    /// One round of writes: thread `t` stores `values[t]` at `addrs[t]`.
    pub fn write_round(&mut self, addrs: &[usize], values: &[Word]) -> Result<()> {
        if addrs.len() != values.len() {
            return Err(MachineError::LengthMismatch {
                expected: addrs.len(),
                got: values.len(),
            });
        }
        let len = self.data.len();
        for (&a, &v) in addrs.iter().zip(values) {
            *self
                .data
                .get_mut(a)
                .ok_or(MachineError::GlobalOutOfBounds { addr: a, len })? = v;
        }
        self.account(Dir::Write, addrs);
        Ok(())
    }

    fn account(&mut self, dir: Dir, addrs: &[usize]) {
        let mut stages = 0u64;
        let mut warps = 0u64;
        let mut conflict_free = true;
        for warp in addrs.chunks(self.width) {
            let s = pipeline::dmm_stages(warp, self.width) as u64;
            if s > 1 {
                conflict_free = false;
            }
            stages += s;
            warps += 1;
        }
        let time = if stages == 0 {
            0
        } else {
            stages + self.latency as u64 - 1
        };
        self.ledger.push(RoundRecord {
            seq: self.ledger.len(),
            space: Space::Shared,
            dir,
            class: if conflict_free {
                AccessClass::ConflictFree
            } else {
                AccessClass::Casual
            },
            warps,
            stages,
            time,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_round_cost() {
        // p = 16 threads, w = 4, latency 1: p/w = 4 time units (Lemma 1).
        let mut dmm = Dmm::new(4, 1, 16).unwrap();
        let addrs: Vec<usize> = (0..16).collect();
        dmm.read_round(&addrs).unwrap();
        let r = &dmm.ledger().records()[0];
        assert_eq!(r.class, AccessClass::ConflictFree);
        assert_eq!(r.time, 4);
    }

    #[test]
    fn fully_conflicting_round_cost() {
        // All 4 threads of each warp hit bank 0: 4 stages per warp.
        let mut dmm = Dmm::new(4, 1, 64).unwrap();
        let addrs: Vec<usize> = (0..16).map(|t| t * 4).collect();
        dmm.read_round(&addrs).unwrap();
        let r = &dmm.ledger().records()[0];
        assert_eq!(r.class, AccessClass::Casual);
        assert_eq!(r.time, 16);
    }

    #[test]
    fn figure3_dmm_example() {
        // Warps {7,5,15,0} and {10,11,12,13} with w=4, latency l: the round
        // occupies 2+1 stages and completes in l+2 time units.
        let l = 7;
        let mut dmm = Dmm::new(4, l, 16).unwrap();
        dmm.read_round(&[7, 5, 15, 0, 10, 11, 12, 13]).unwrap();
        assert_eq!(dmm.total_time(), (l + 2) as u64);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut dmm = Dmm::new(4, 1, 8).unwrap();
        dmm.write_round(&[0, 1, 2, 3], &[10, 11, 12, 13]).unwrap();
        let vals = dmm.read_round(&[3, 2, 1, 0]).unwrap();
        assert_eq!(vals, vec![13, 12, 11, 10]);
    }

    #[test]
    fn bounds_and_length_checks() {
        let mut dmm = Dmm::new(4, 1, 4).unwrap();
        assert!(dmm.read_round(&[4]).is_err());
        assert!(dmm.write_round(&[0], &[1, 2]).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Dmm::new(3, 1, 8).is_err());
        assert!(Dmm::new(4, 0, 8).is_err());
        assert!(Dmm::new(0, 1, 8).is_err());
    }

    #[test]
    fn host_memory_access() {
        let mut dmm = Dmm::new(4, 1, 4).unwrap();
        dmm.memory_mut().copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(dmm.memory(), &[1, 2, 3, 4]);
        assert_eq!(dmm.len(), 4);
        assert!(!dmm.is_empty());
    }
}
