//! Machine presets for several GPU generations.
//!
//! The paper measures one card (GTX-680, Kepler). The model predicts that
//! the conventional-vs-scheduled crossover tracks the L2 capacity — these
//! presets let the harness ask how the result ages across generations
//! (`repro generations`). Parameters are coarse public-spec values: width
//! and shared capacity barely move across generations; the L2 grows by an
//! order of magnitude.

use crate::cache::CacheConfig;
use crate::config::{ElemWidth, MachineConfig, SegmentRule};

/// A named machine generation.
#[derive(Debug, Clone)]
pub struct Generation {
    /// Marketing-ish name.
    pub name: &'static str,
    /// The machine configuration.
    pub config: MachineConfig,
}

fn with_l2(elem: ElemWidth, num_dmms: usize, capacity_bytes: usize, ways: usize) -> MachineConfig {
    MachineConfig {
        width: 32,
        latency: 512,
        num_dmms,
        shared_bytes: 48 * 1024,
        elem,
        segment_rule: SegmentRule::ByteSegment { line_bytes: 128 },
        cache: Some(CacheConfig {
            capacity_bytes,
            line_bytes: 128,
            ways,
        }),
        miss_stages: 4,
        write_allocate: true,
        parallel_shared_dispatch: false,
    }
}

/// Fermi-class (GTX 580): 768 KB L2, 16 SMs. 12 ways keeps the set count a
/// power of two.
pub fn fermi(elem: ElemWidth) -> MachineConfig {
    with_l2(elem, 16, 768 * 1024, 12)
}

/// Kepler-class (GTX 680) — the paper's card: 512 KB L2, 8 SMX.
pub fn kepler(elem: ElemWidth) -> MachineConfig {
    MachineConfig::gtx680(elem)
}

/// Maxwell-class (GTX 980): 2 MB L2, 16 SMs.
pub fn maxwell(elem: ElemWidth) -> MachineConfig {
    with_l2(elem, 16, 2 * 1024 * 1024, 16)
}

/// Pascal-class (GTX 1080-ish): 4 MB L2, 20 SMs (rounded to keep the cache
/// geometry power-of-two).
pub fn pascal(elem: ElemWidth) -> MachineConfig {
    with_l2(elem, 20, 4 * 1024 * 1024, 16)
}

/// All presets, oldest first.
pub fn all(elem: ElemWidth) -> Vec<Generation> {
    vec![
        Generation {
            name: "Fermi (GTX 580, 768 KB L2)",
            config: fermi(elem),
        },
        Generation {
            name: "Kepler (GTX 680, 512 KB L2)",
            config: kepler(elem),
        },
        Generation {
            name: "Maxwell (GTX 980, 2 MB L2)",
            config: maxwell(elem),
        },
        Generation {
            name: "Pascal (GTX 1080, 4 MB L2)",
            config: pascal(elem),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for generation in all(ElemWidth::F32).into_iter().chain(all(ElemWidth::F64)) {
            generation
                .config
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", generation.name));
        }
    }

    #[test]
    fn l2_capacities_are_ordered() {
        let caps: Vec<usize> = all(ElemWidth::F32)
            .iter()
            .map(|g| g.config.cache.expect("preset has L2").capacity_bytes)
            .collect();
        // Fermi(768K) > Kepler(512K); then monotone up.
        assert_eq!(caps[1], 512 * 1024);
        assert!(caps[2] > caps[0]);
        assert!(caps[3] > caps[2]);
    }

    #[test]
    fn kepler_is_the_paper_machine() {
        assert_eq!(
            kepler(ElemWidth::F32),
            MachineConfig::gtx680(ElemWidth::F32)
        );
    }
}
