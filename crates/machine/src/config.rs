//! Machine configuration: the `(w, l, d)` parameters of the paper plus the
//! empirical extensions (element size, shared-memory capacity, L2 cache).

use crate::cache::CacheConfig;
use crate::error::{MachineError, Result};

/// Width of a memory segment counted for global-memory stage costs.
///
/// The *pure* HMM of the paper charges one pipeline stage per **address
/// group** of `w` consecutive elements, independent of element size
/// (Section II). The *empirical* configuration instead charges per 128-byte
/// memory segment, which is how GTX-680-class hardware actually coalesces:
/// 32 floats fit one segment, but 32 doubles span two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentRule {
    /// One stage per group of `w` elements (the paper's theoretical model).
    ElementGroup,
    /// One stage per `line_bytes` segment (hardware-style; interacts with the
    /// element size and the optional L2 cache model).
    ByteSegment {
        /// Segment (cache line) size in bytes; 128 on GTX-680.
        line_bytes: usize,
    },
}

/// Element width in bytes for the data arrays moved by permutation kernels.
///
/// Only affects the [`SegmentRule::ByteSegment`] cost rule and shared-memory
/// capacity accounting; values are simulated as opaque 64-bit words either
/// way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemWidth {
    /// 32-bit elements (`float` in the paper's Table II(a)).
    F32,
    /// 64-bit elements (`double` in the paper's Table II(b)).
    F64,
}

impl ElemWidth {
    /// Size of one element in bytes.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            ElemWidth::F32 => 4,
            ElemWidth::F64 => 8,
        }
    }
}

/// Full configuration of a simulated HMM (or of a standalone DMM / UMM).
///
/// The defaults model the machine used throughout the paper's analysis:
/// width `w = 32`, global latency `l = 512` time units, `d = 8` DMMs, 48 KB
/// of shared memory per DMM, 32-bit elements, the theoretical element-group
/// segment rule, and no cache.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Width `w`: number of shared-memory banks, elements per address group,
    /// and threads per warp. Must be a power of two `>= 2`.
    pub width: usize,
    /// Global-memory access latency `l >= 1` in time units.
    pub latency: usize,
    /// Number of DMMs `d >= 1` (streaming multiprocessors).
    pub num_dmms: usize,
    /// Per-DMM shared-memory capacity in bytes (48 KB on GTX-680).
    pub shared_bytes: usize,
    /// Element width of the data arrays.
    pub elem: ElemWidth,
    /// How global-memory pipeline stages are counted.
    pub segment_rule: SegmentRule,
    /// Optional L2 cache in front of the global memory (empirical model).
    pub cache: Option<CacheConfig>,
    /// Extra stages charged for a missing segment when `cache` is `Some`.
    /// A hit costs 1 stage; a miss costs `miss_stages`. Ignored without a
    /// cache. Must be `>= 1`.
    pub miss_stages: usize,
    /// Write policy of the cache model: `true` (default) allocates lines on
    /// write misses like the GTX-680 L2 (write-allocate); `false` models a
    /// write-around cache where scattered writes never populate the cache —
    /// an ablation isolating how much of the conventional algorithm's
    /// small-`n` advantage comes from write locality. Ignored without a
    /// cache.
    pub write_allocate: bool,
    /// If `true`, shared-memory rounds are charged `p / (d * w)` instead of
    /// the paper's `p / w` (the paper serializes warp dispatch across DMMs
    /// even for shared accesses; see DESIGN.md §5). Default `false` to match
    /// the paper's Table I formulas exactly.
    pub parallel_shared_dispatch: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            width: 32,
            latency: 512,
            num_dmms: 8,
            shared_bytes: 48 * 1024,
            elem: ElemWidth::F32,
            segment_rule: SegmentRule::ElementGroup,
            cache: None,
            miss_stages: 4,
            write_allocate: true,
            parallel_shared_dispatch: false,
        }
    }
}

impl MachineConfig {
    /// The pure theoretical HMM of the paper with the given width and
    /// latency: element-group segments, no cache.
    pub fn pure(width: usize, latency: usize) -> Self {
        MachineConfig {
            width,
            latency,
            ..Default::default()
        }
    }

    /// An empirical GTX-680-flavoured configuration: 128-byte segments, a
    /// 512 KB 16-way L2 cache, and a 4-stage miss penalty. Reproduces the
    /// cache-induced crossover of Table II (see DESIGN.md §2).
    pub fn gtx680(elem: ElemWidth) -> Self {
        MachineConfig {
            width: 32,
            latency: 512,
            num_dmms: 8,
            shared_bytes: 48 * 1024,
            elem,
            segment_rule: SegmentRule::ByteSegment { line_bytes: 128 },
            cache: Some(CacheConfig::gtx680_l2()),
            miss_stages: 4,
            write_allocate: true,
            parallel_shared_dispatch: false,
        }
    }

    /// Validate every field, returning a descriptive error on the first
    /// violation.
    pub fn validate(&self) -> Result<()> {
        if self.width < 2 || !self.width.is_power_of_two() {
            return Err(MachineError::InvalidConfig(format!(
                "width must be a power of two >= 2, got {}",
                self.width
            )));
        }
        if self.latency == 0 {
            return Err(MachineError::InvalidConfig("latency must be >= 1".into()));
        }
        if self.num_dmms == 0 {
            return Err(MachineError::InvalidConfig("num_dmms must be >= 1".into()));
        }
        if self.shared_bytes == 0 {
            return Err(MachineError::InvalidConfig(
                "shared_bytes must be > 0".into(),
            ));
        }
        if self.miss_stages == 0 {
            return Err(MachineError::InvalidConfig(
                "miss_stages must be >= 1".into(),
            ));
        }
        if let SegmentRule::ByteSegment { line_bytes } = self.segment_rule {
            if line_bytes == 0 || !line_bytes.is_power_of_two() {
                return Err(MachineError::InvalidConfig(format!(
                    "line_bytes must be a power of two > 0, got {line_bytes}"
                )));
            }
            if line_bytes < self.elem.bytes() {
                return Err(MachineError::InvalidConfig(format!(
                    "line_bytes {} smaller than element size {}",
                    line_bytes,
                    self.elem.bytes()
                )));
            }
        }
        if let Some(cache) = &self.cache {
            cache.validate()?;
        }
        Ok(())
    }

    /// Number of elements per global-memory segment under the active
    /// segment rule.
    #[inline]
    pub fn segment_elems(&self) -> usize {
        match self.segment_rule {
            SegmentRule::ElementGroup => self.width,
            SegmentRule::ByteSegment { line_bytes } => (line_bytes / self.elem.bytes()).max(1),
        }
    }

    /// Global segment index of an element address.
    #[inline]
    pub fn segment_of(&self, addr: usize) -> usize {
        addr / self.segment_elems()
    }

    /// Shared-memory bank of a shared-array index.
    #[inline]
    pub fn bank_of(&self, index: usize) -> usize {
        index & (self.width - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        MachineConfig::default().validate().unwrap();
    }

    #[test]
    fn gtx680_config_is_valid() {
        MachineConfig::gtx680(ElemWidth::F32).validate().unwrap();
        MachineConfig::gtx680(ElemWidth::F64).validate().unwrap();
    }

    #[test]
    fn rejects_non_power_of_two_width() {
        let cfg = MachineConfig {
            width: 24,
            ..Default::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(MachineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_zero_latency() {
        let cfg = MachineConfig {
            latency: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_tiny_line() {
        let cfg = MachineConfig {
            segment_rule: SegmentRule::ByteSegment { line_bytes: 2 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn segment_elems_element_group_rule() {
        let cfg = MachineConfig::pure(32, 100);
        assert_eq!(cfg.segment_elems(), 32);
        assert_eq!(cfg.segment_of(0), 0);
        assert_eq!(cfg.segment_of(31), 0);
        assert_eq!(cfg.segment_of(32), 1);
    }

    #[test]
    fn segment_elems_byte_rule_depends_on_elem_width() {
        let f32cfg = MachineConfig::gtx680(ElemWidth::F32);
        let f64cfg = MachineConfig::gtx680(ElemWidth::F64);
        assert_eq!(f32cfg.segment_elems(), 32); // 128 B / 4 B
        assert_eq!(f64cfg.segment_elems(), 16); // 128 B / 8 B
    }

    #[test]
    fn bank_of_masks_low_bits() {
        let cfg = MachineConfig::pure(4, 1);
        assert_eq!(cfg.bank_of(7), 3);
        assert_eq!(cfg.bank_of(5), 1);
        assert_eq!(cfg.bank_of(15), 3);
        assert_eq!(cfg.bank_of(0), 0);
    }

    #[test]
    fn elem_width_bytes() {
        assert_eq!(ElemWidth::F32.bytes(), 4);
        assert_eq!(ElemWidth::F64.bytes(), 8);
    }
}
