//! Per-block shared memory: a capacity-limited arena of banked storage.
//!
//! Every block of a kernel launch receives a fresh [`SharedSpace`] (CUDA
//! shared memory has block lifetime). Allocations record their element width
//! so that the 48 KB capacity check reflects what the paper's implementation
//! allocates — e.g. the row-wise permutation's `D` array holds 16-bit
//! schedule entries while `A`/`B` hold data elements.

use crate::error::{MachineError, Result};
use crate::global::Word;

/// Handle to a shared-memory array within one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedBuf {
    offset: usize,
    len: usize,
}

impl SharedBuf {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One block's shared memory.
#[derive(Debug, Clone)]
pub struct SharedSpace {
    data: Vec<Word>,
    bytes_in_use: usize,
    capacity_bytes: usize,
}

impl SharedSpace {
    /// Fresh shared space with the given capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        SharedSpace {
            data: Vec::new(),
            bytes_in_use: 0,
            capacity_bytes,
        }
    }

    /// Allocate `len` elements of `elem_bytes` each, zero-initialized.
    ///
    /// Fails with [`MachineError::SharedCapacityExceeded`] when the block
    /// would exceed its capacity — this is exactly the limit that prevents
    /// the paper's scheduled algorithm from handling 4M doubles (Table
    /// II(b)).
    pub fn alloc(&mut self, len: usize, elem_bytes: usize) -> Result<SharedBuf> {
        let requested = len * elem_bytes;
        if self.bytes_in_use + requested > self.capacity_bytes {
            return Err(MachineError::SharedCapacityExceeded {
                requested,
                in_use: self.bytes_in_use,
                capacity: self.capacity_bytes,
            });
        }
        let offset = self.data.len();
        self.data.resize(offset + len, 0);
        self.bytes_in_use += requested;
        Ok(SharedBuf { offset, len })
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn bytes_in_use(&self) -> usize {
        self.bytes_in_use
    }

    /// Checked load from a shared array.
    #[inline]
    pub fn load(&self, buf: SharedBuf, index: usize) -> Result<Word> {
        if index >= buf.len {
            return Err(MachineError::SharedOutOfBounds {
                index,
                len: buf.len,
            });
        }
        Ok(self.data[buf.offset + index])
    }

    /// Checked store to a shared array.
    #[inline]
    pub fn store(&mut self, buf: SharedBuf, index: usize, value: Word) -> Result<()> {
        if index >= buf.len {
            return Err(MachineError::SharedOutOfBounds {
                index,
                len: buf.len,
            });
        }
        self.data[buf.offset + index] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_capacity() {
        let mut s = SharedSpace::new(1024);
        let a = s.alloc(64, 8).unwrap(); // 512 B
        let b = s.alloc(128, 4).unwrap(); // 512 B
        assert_eq!(a.len(), 64);
        assert_eq!(b.len(), 128);
        assert_eq!(s.bytes_in_use(), 1024);
    }

    #[test]
    fn alloc_beyond_capacity_fails() {
        let mut s = SharedSpace::new(100);
        assert!(s.alloc(10, 8).is_ok()); // 80 B
        let err = s.alloc(10, 8).unwrap_err();
        assert_eq!(
            err,
            MachineError::SharedCapacityExceeded {
                requested: 80,
                in_use: 80,
                capacity: 100
            }
        );
    }

    #[test]
    fn elem_width_matters_for_capacity() {
        // 48 KB holds 2 x 2048 doubles (32 KB) + 2048 u16 (4 KB) but not
        // 3 x 2048 doubles + 2048 u16.
        let mut s = SharedSpace::new(48 * 1024);
        s.alloc(2048, 8).unwrap();
        s.alloc(2048, 8).unwrap();
        s.alloc(2048, 2).unwrap();
        assert!(s.alloc(2048, 8).is_err());
    }

    #[test]
    fn load_store_roundtrip() {
        let mut s = SharedSpace::new(1024);
        let a = s.alloc(4, 8).unwrap();
        s.store(a, 2, 42).unwrap();
        assert_eq!(s.load(a, 2).unwrap(), 42);
        assert_eq!(s.load(a, 0).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_shared_access() {
        let mut s = SharedSpace::new(1024);
        let a = s.alloc(4, 8).unwrap();
        assert!(matches!(
            s.load(a, 4),
            Err(MachineError::SharedOutOfBounds { index: 4, len: 4 })
        ));
        assert!(s.store(a, 9, 0).is_err());
    }

    #[test]
    fn arrays_do_not_alias() {
        let mut s = SharedSpace::new(1024);
        let a = s.alloc(4, 8).unwrap();
        let b = s.alloc(4, 8).unwrap();
        s.store(a, 0, 1).unwrap();
        s.store(b, 0, 2).unwrap();
        assert_eq!(s.load(a, 0).unwrap(), 1);
        assert_eq!(s.load(b, 0).unwrap(), 2);
    }
}
