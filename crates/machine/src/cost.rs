//! The cost ledger: accumulates [`RoundRecord`]s across kernel launches and
//! summarizes them in the shape of the paper's Table I.

use crate::round::{AccessClass, Dir, RoundRecord, Space};
use core::fmt;

/// Aggregated counts for one `(space, dir, class)` cell of Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTotals {
    /// Number of rounds of this kind.
    pub rounds: u64,
    /// Total time units charged to rounds of this kind.
    pub time: u64,
}

/// Round-count summary in the layout of the paper's Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundSummary {
    /// Global-memory casual reads.
    pub casual_read: KindTotals,
    /// Global-memory casual writes.
    pub casual_write: KindTotals,
    /// Global-memory coalesced reads.
    pub coalesced_read: KindTotals,
    /// Global-memory coalesced writes.
    pub coalesced_write: KindTotals,
    /// Shared-memory conflict-free reads.
    pub conflict_free_read: KindTotals,
    /// Shared-memory conflict-free writes.
    pub conflict_free_write: KindTotals,
    /// Shared-memory rounds with bank conflicts (none for the paper's
    /// algorithms; tracked so violations are visible in tests).
    pub shared_casual: KindTotals,
}

impl RoundSummary {
    /// Total number of rounds.
    pub fn total_rounds(&self) -> u64 {
        self.casual_read.rounds
            + self.casual_write.rounds
            + self.coalesced_read.rounds
            + self.coalesced_write.rounds
            + self.conflict_free_read.rounds
            + self.conflict_free_write.rounds
            + self.shared_casual.rounds
    }

    /// Total time units.
    pub fn total_time(&self) -> u64 {
        self.casual_read.time
            + self.casual_write.time
            + self.coalesced_read.time
            + self.coalesced_write.time
            + self.conflict_free_read.time
            + self.conflict_free_write.time
            + self.shared_casual.time
    }
}

impl fmt::Display for RoundSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>7} {:>12}",
            "round kind", "rounds", "time units"
        )?;
        let rows = [
            ("global casual read", self.casual_read),
            ("global casual write", self.casual_write),
            ("global coalesced read", self.coalesced_read),
            ("global coalesced write", self.coalesced_write),
            ("shared conflict-free read", self.conflict_free_read),
            ("shared conflict-free write", self.conflict_free_write),
            ("shared with bank conflicts", self.shared_casual),
        ];
        for (name, t) in rows {
            if t.rounds > 0 {
                writeln!(f, "{:<28} {:>7} {:>12}", name, t.rounds, t.time)?;
            }
        }
        write!(
            f,
            "{:<28} {:>7} {:>12}",
            "total",
            self.total_rounds(),
            self.total_time()
        )
    }
}

/// Accumulates every round executed on a machine, across launches.
///
/// The ledger is append-only; [`CostLedger::mark`]/[`CostLedger::since`]
/// let callers carve out the rounds belonging to one phase (e.g. the five
/// kernels of the scheduled permutation).
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    records: Vec<RoundRecord>,
}

impl CostLedger {
    /// New empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a completed round.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All records, in execution order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// A bookmark for [`CostLedger::since`].
    pub fn mark(&self) -> usize {
        self.records.len()
    }

    /// Summarize the rounds recorded after `mark`.
    pub fn since(&self, mark: usize) -> RoundSummary {
        Self::summarize_slice(&self.records[mark.min(self.records.len())..])
    }

    /// Summarize every recorded round.
    pub fn summary(&self) -> RoundSummary {
        Self::summarize_slice(&self.records)
    }

    /// Total time units across all recorded rounds.
    pub fn total_time(&self) -> u64 {
        self.records.iter().map(|r| r.time).sum()
    }

    /// Drop all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    fn summarize_slice(records: &[RoundRecord]) -> RoundSummary {
        let mut s = RoundSummary::default();
        for r in records {
            let cell = match (r.space, r.dir, r.class) {
                (Space::Global, Dir::Read, AccessClass::Casual) => &mut s.casual_read,
                (Space::Global, Dir::Write, AccessClass::Casual) => &mut s.casual_write,
                (Space::Global, Dir::Read, AccessClass::Coalesced) => &mut s.coalesced_read,
                (Space::Global, Dir::Write, AccessClass::Coalesced) => &mut s.coalesced_write,
                (Space::Shared, Dir::Read, AccessClass::ConflictFree) => &mut s.conflict_free_read,
                (Space::Shared, Dir::Write, AccessClass::ConflictFree) => {
                    &mut s.conflict_free_write
                }
                // Global rounds never classify as ConflictFree and shared
                // rounds never classify as Coalesced (see Hmm round
                // classification); anything else is a conflicted shared
                // round.
                _ => &mut s.shared_casual,
            };
            cell.rounds += 1;
            cell.time += r.time;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: usize, space: Space, dir: Dir, class: AccessClass, time: u64) -> RoundRecord {
        RoundRecord {
            seq,
            space,
            dir,
            class,
            warps: 1,
            stages: time,
            time,
        }
    }

    #[test]
    fn summary_buckets_by_kind() {
        let mut ledger = CostLedger::new();
        ledger.push(rec(0, Space::Global, Dir::Read, AccessClass::Coalesced, 10));
        ledger.push(rec(1, Space::Global, Dir::Read, AccessClass::Coalesced, 10));
        ledger.push(rec(2, Space::Global, Dir::Write, AccessClass::Casual, 99));
        ledger.push(rec(
            3,
            Space::Shared,
            Dir::Write,
            AccessClass::ConflictFree,
            1,
        ));
        let s = ledger.summary();
        assert_eq!(s.coalesced_read.rounds, 2);
        assert_eq!(s.coalesced_read.time, 20);
        assert_eq!(s.casual_write.rounds, 1);
        assert_eq!(s.conflict_free_write.rounds, 1);
        assert_eq!(s.total_rounds(), 4);
        assert_eq!(s.total_time(), 120);
        assert_eq!(ledger.total_time(), 120);
    }

    #[test]
    fn mark_and_since_partition_phases() {
        let mut ledger = CostLedger::new();
        ledger.push(rec(0, Space::Global, Dir::Read, AccessClass::Coalesced, 5));
        let mark = ledger.mark();
        ledger.push(rec(0, Space::Global, Dir::Write, AccessClass::Coalesced, 7));
        let phase = ledger.since(mark);
        assert_eq!(phase.total_rounds(), 1);
        assert_eq!(phase.coalesced_write.time, 7);
        // Out-of-range marks are tolerated.
        assert_eq!(ledger.since(1000).total_rounds(), 0);
    }

    #[test]
    fn shared_conflicts_are_visible() {
        let mut ledger = CostLedger::new();
        ledger.push(rec(0, Space::Shared, Dir::Read, AccessClass::Casual, 32));
        assert_eq!(ledger.summary().shared_casual.rounds, 1);
    }

    #[test]
    fn display_contains_totals() {
        let mut ledger = CostLedger::new();
        ledger.push(rec(0, Space::Global, Dir::Read, AccessClass::Coalesced, 42));
        let s = ledger.summary().to_string();
        assert!(s.contains("coalesced read"));
        assert!(s.contains("42"));
        assert!(s.contains("total"));
    }

    #[test]
    fn clear_resets() {
        let mut ledger = CostLedger::new();
        ledger.push(rec(0, Space::Global, Dir::Read, AccessClass::Casual, 1));
        assert!(!ledger.is_empty());
        ledger.clear();
        assert!(ledger.is_empty());
        assert_eq!(ledger.len(), 0);
    }
}
