//! Pipeline-stage accounting for warp memory access (Section II, Figure 3).
//!
//! A warp of `w` threads sends up to `w` memory requests at once. The MMU
//! moves requests towards the memory banks in a pipeline; how many pipeline
//! stages the warp occupies determines how long the machine is busy:
//!
//! * **DMM (shared memory)** — each stage can carry at most one request per
//!   *memory bank*, so a warp occupies `max_b |{requests in bank b}|` stages.
//! * **UMM (global memory)** — each stage carries requests for a single
//!   *address group* (segment) of `w` consecutive words, so a warp occupies
//!   one stage per distinct group it touches.
//!
//! A round of memory access by `p` threads then takes
//! `(total stages over all warps) + (latency - 1)` time units, because the
//! stage streams overlap in the pipeline and only the last request pays the
//! full latency (Lemma 1).
//!
//! [`dmm_stage_layout`] / [`umm_stage_layout`] additionally report *which*
//! request lands in which stage, which is how the harness re-draws Figure 3.

/// Number of DMM pipeline stages occupied by one warp accessing `addrs`
/// through `width` banks: the maximum number of requests destined for any
/// single bank.
///
/// `width` must be a power of two. An empty warp occupies zero stages.
pub fn dmm_stages(addrs: &[usize], width: usize) -> usize {
    debug_assert!(width.is_power_of_two());
    let mut counts = vec![0usize; width];
    let mut max = 0;
    for &a in addrs {
        let b = a & (width - 1);
        counts[b] += 1;
        if counts[b] > max {
            max = counts[b];
        }
    }
    max
}

/// Number of UMM pipeline stages occupied by one warp accessing `addrs` with
/// address groups of `group_elems` consecutive words: the number of distinct
/// groups touched.
///
/// An empty warp occupies zero stages.
pub fn umm_stages(addrs: &[usize], group_elems: usize) -> usize {
    debug_assert!(group_elems > 0);
    distinct_keys(addrs, |a| a / group_elems)
}

/// Count distinct values of `key` over `addrs` without allocating a hash
/// table: warps are tiny (`w <= 64` in practice), so a sorted scratch vector
/// is faster and allocation-light.
fn distinct_keys(addrs: &[usize], key: impl Fn(usize) -> usize) -> usize {
    match addrs.len() {
        0 => 0,
        1 => 1,
        _ => {
            let mut keys: Vec<usize> = addrs.iter().map(|&a| key(a)).collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        }
    }
}

/// Distinct global segments touched by one warp (used by the cost model to
/// probe the cache once per segment).
pub fn warp_segments(addrs: &[usize], group_elems: usize) -> Vec<usize> {
    let mut keys: Vec<usize> = addrs.iter().map(|&a| a / group_elems).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Assign each request of a warp to a DMM pipeline stage.
///
/// Returns `stages[s]` = the addresses carried by stage `s`, in the order the
/// requests appear in `addrs`. Stage `s` receives the `(s+1)`-th request for
/// each bank, matching the round-robin service order of the model.
pub fn dmm_stage_layout(addrs: &[usize], width: usize) -> Vec<Vec<usize>> {
    let mut seen = vec![0usize; width];
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for &a in addrs {
        let b = a & (width - 1);
        let s = seen[b];
        seen[b] += 1;
        if stages.len() <= s {
            stages.resize_with(s + 1, Vec::new);
        }
        stages[s].push(a);
    }
    stages
}

/// Assign each request of a warp to a UMM pipeline stage.
///
/// All requests for the same address group share one stage; groups are served
/// in first-touch order.
pub fn umm_stage_layout(addrs: &[usize], group_elems: usize) -> Vec<Vec<usize>> {
    let mut group_order: Vec<usize> = Vec::new();
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for &a in addrs {
        let g = a / group_elems;
        let s = match group_order.iter().position(|&x| x == g) {
            Some(s) => s,
            None => {
                group_order.push(g);
                stages.push(Vec::new());
                group_order.len() - 1
            }
        };
        stages[s].push(a);
    }
    stages
}

/// Total time units for a sequence of warps whose stage counts are given,
/// with the given access latency: `sum(stages) + latency - 1` (Lemma 1's
/// pipeline argument), or 0 if no warp issued any request.
pub fn round_time(stage_counts: &[usize], latency: usize) -> u64 {
    let total: u64 = stage_counts.iter().map(|&s| s as u64).sum();
    if total == 0 {
        0
    } else {
        total + latency as u64 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 3 example: width 4, warp W0 accesses {7,5,15,0} and warp
    /// W1 accesses {10,11,12,13}.
    const W0: [usize; 4] = [7, 5, 15, 0];
    const W1: [usize; 4] = [10, 11, 12, 13];

    #[test]
    fn figure3_dmm_stage_counts() {
        // 7 and 15 share bank 3 -> W0 takes 2 stages; W1 banks 2,3,0,1 -> 1.
        assert_eq!(dmm_stages(&W0, 4), 2);
        assert_eq!(dmm_stages(&W1, 4), 1);
    }

    #[test]
    fn figure3_umm_stage_counts() {
        // W0 groups {1,1,3,0} -> 3 stages; W1 groups {2,2,3,3} -> 2 stages.
        assert_eq!(umm_stages(&W0, 4), 3);
        assert_eq!(umm_stages(&W1, 4), 2);
    }

    #[test]
    fn figure3_total_times() {
        // DMM: 2+1 stages -> l+2 time units; UMM: 3+2 stages -> l+4.
        let l = 10;
        let dmm = round_time(&[dmm_stages(&W0, 4), dmm_stages(&W1, 4)], 1);
        assert_eq!(dmm, 3); // shared latency 1: stages + 0
        let umm = round_time(&[umm_stages(&W0, 4), umm_stages(&W1, 4)], l);
        assert_eq!(umm, 5 + l as u64 - 1);
    }

    #[test]
    fn dmm_layout_round_robin_per_bank() {
        let layout = dmm_stage_layout(&W0, 4);
        assert_eq!(layout.len(), 2);
        assert_eq!(layout[0], vec![7, 5, 0]);
        assert_eq!(layout[1], vec![15]);
    }

    #[test]
    fn umm_layout_groups_by_segment() {
        let layout = umm_stage_layout(&W0, 4);
        assert_eq!(layout.len(), 3);
        assert_eq!(layout[0], vec![7, 5]); // group 1
        assert_eq!(layout[1], vec![15]); // group 3
        assert_eq!(layout[2], vec![0]); // group 0
    }

    #[test]
    fn empty_warp_occupies_no_stage() {
        assert_eq!(dmm_stages(&[], 4), 0);
        assert_eq!(umm_stages(&[], 4), 0);
        assert_eq!(round_time(&[0, 0], 100), 0);
        assert!(dmm_stage_layout(&[], 4).is_empty());
        assert!(umm_stage_layout(&[], 4).is_empty());
    }

    #[test]
    fn single_request_is_one_stage() {
        assert_eq!(dmm_stages(&[123], 32), 1);
        assert_eq!(umm_stages(&[123], 32), 1);
    }

    #[test]
    fn fully_conflicting_warp_takes_w_stages() {
        // All requests in the same bank.
        let addrs: Vec<usize> = (0..32).map(|i| i * 32).collect();
        assert_eq!(dmm_stages(&addrs, 32), 32);
        // ... and each in its own group for the UMM.
        assert_eq!(umm_stages(&addrs, 32), 32);
    }

    #[test]
    fn coalesced_warp_takes_one_stage() {
        let addrs: Vec<usize> = (64..96).collect();
        assert_eq!(dmm_stages(&addrs, 32), 1);
        assert_eq!(umm_stages(&addrs, 32), 1);
    }

    #[test]
    fn same_address_twice_conflicts_in_dmm_not_umm() {
        // Two requests to the same address are in the same bank (2 stages on
        // the DMM) but the same group (1 stage on the UMM).
        assert_eq!(dmm_stages(&[5, 5], 4), 2);
        assert_eq!(umm_stages(&[5, 5], 4), 1);
    }

    #[test]
    fn layouts_cover_all_requests_exactly_once() {
        let addrs: Vec<usize> = vec![3, 3, 7, 11, 2, 2, 2, 9];
        for layout in [dmm_stage_layout(&addrs, 4), umm_stage_layout(&addrs, 4)] {
            let mut flat: Vec<usize> = layout.into_iter().flatten().collect();
            flat.sort_unstable();
            let mut want = addrs.clone();
            want.sort_unstable();
            assert_eq!(flat, want);
        }
    }

    #[test]
    fn warp_segments_dedups_and_sorts() {
        assert_eq!(warp_segments(&[130, 1, 65, 2, 64], 64), vec![0, 1, 2]);
    }

    #[test]
    fn round_time_is_stage_sum_plus_latency_minus_one() {
        assert_eq!(round_time(&[1, 1, 1, 1], 100), 4 + 99);
        assert_eq!(round_time(&[4], 1), 4);
    }
}
