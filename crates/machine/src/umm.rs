//! The standalone Unified Memory Machine (Section II): one memory organized
//! in address groups of `w` consecutive words, `w`-thread warps, latency `l`.

use crate::cost::CostLedger;
use crate::error::{MachineError, Result};
use crate::global::Word;
use crate::pipeline;
use crate::round::{AccessClass, Dir, RoundRecord, Space};

/// A standalone UMM of the given width and latency over a flat memory.
#[derive(Debug, Clone)]
pub struct Umm {
    width: usize,
    latency: usize,
    data: Vec<Word>,
    ledger: CostLedger,
}

impl Umm {
    /// Build a UMM of the given width (power of two >= 2), latency, and
    /// memory size.
    pub fn new(width: usize, latency: usize, len: usize) -> Result<Self> {
        if width < 2 || !width.is_power_of_two() {
            return Err(MachineError::InvalidConfig(format!(
                "width must be a power of two >= 2, got {width}"
            )));
        }
        if latency == 0 {
            return Err(MachineError::InvalidConfig("latency must be >= 1".into()));
        }
        Ok(Umm {
            width,
            latency,
            data: vec![0; len],
            ledger: CostLedger::new(),
        })
    }

    /// Warp width / address-group size.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Memory size in words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the memory has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Cost-free host view of the memory.
    pub fn memory(&self) -> &[Word] {
        &self.data
    }

    /// Cost-free host mutation of the memory.
    pub fn memory_mut(&mut self) -> &mut [Word] {
        &mut self.data
    }

    /// Accumulated rounds.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Total time units charged so far.
    pub fn total_time(&self) -> u64 {
        self.ledger.total_time()
    }

    /// One round of reads: thread `t` loads `addrs[t]`.
    pub fn read_round(&mut self, addrs: &[usize]) -> Result<Vec<Word>> {
        let mut out = Vec::with_capacity(addrs.len());
        for &a in addrs {
            out.push(
                self.data
                    .get(a)
                    .copied()
                    .ok_or(MachineError::GlobalOutOfBounds {
                        addr: a,
                        len: self.data.len(),
                    })?,
            );
        }
        self.account(Dir::Read, addrs);
        Ok(out)
    }

    /// One round of writes: thread `t` stores `values[t]` at `addrs[t]`.
    pub fn write_round(&mut self, addrs: &[usize], values: &[Word]) -> Result<()> {
        if addrs.len() != values.len() {
            return Err(MachineError::LengthMismatch {
                expected: addrs.len(),
                got: values.len(),
            });
        }
        let len = self.data.len();
        for (&a, &v) in addrs.iter().zip(values) {
            *self
                .data
                .get_mut(a)
                .ok_or(MachineError::GlobalOutOfBounds { addr: a, len })? = v;
        }
        self.account(Dir::Write, addrs);
        Ok(())
    }

    fn account(&mut self, dir: Dir, addrs: &[usize]) {
        let mut stages = 0u64;
        let mut warps = 0u64;
        let mut coalesced = true;
        for warp in addrs.chunks(self.width) {
            let s = pipeline::umm_stages(warp, self.width) as u64;
            if s > 1 {
                coalesced = false;
            }
            stages += s;
            warps += 1;
        }
        let time = if stages == 0 {
            0
        } else {
            stages + self.latency as u64 - 1
        };
        self.ledger.push(RoundRecord {
            seq: self.ledger.len(),
            space: Space::Global,
            dir,
            class: if coalesced {
                AccessClass::Coalesced
            } else {
                AccessClass::Casual
            },
            warps,
            stages,
            time,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_umm_example() {
        // Warps {7,5,15,0} and {10,11,12,13} with w=4: 3+2 stages, l+4 time.
        let l = 7;
        let mut umm = Umm::new(4, l, 16).unwrap();
        umm.read_round(&[7, 5, 15, 0, 10, 11, 12, 13]).unwrap();
        assert_eq!(umm.total_time(), (l + 4) as u64);
        assert_eq!(umm.ledger().records()[0].class, AccessClass::Casual);
    }

    #[test]
    fn coalesced_round_cost_matches_lemma1() {
        // p = 64 threads, w = 8, l = 20: p/w + l - 1 = 8 + 19 = 27.
        let mut umm = Umm::new(8, 20, 64).unwrap();
        let addrs: Vec<usize> = (0..64).collect();
        umm.read_round(&addrs).unwrap();
        let r = &umm.ledger().records()[0];
        assert_eq!(r.class, AccessClass::Coalesced);
        assert_eq!(r.time, 27);
    }

    #[test]
    fn stride_w_round_is_casual_and_slow() {
        // Each thread in its own group: p + l - 1 time units.
        let mut umm = Umm::new(8, 20, 512).unwrap();
        let addrs: Vec<usize> = (0..64).map(|t| t * 8).collect();
        umm.read_round(&addrs).unwrap();
        let r = &umm.ledger().records()[0];
        assert_eq!(r.class, AccessClass::Casual);
        assert_eq!(r.time, 64 + 19);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut umm = Umm::new(4, 2, 8).unwrap();
        umm.write_round(&[4, 5, 6, 7], &[1, 2, 3, 4]).unwrap();
        assert_eq!(umm.read_round(&[4, 5, 6, 7]).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn bounds_checked() {
        let mut umm = Umm::new(4, 2, 4).unwrap();
        assert!(umm.read_round(&[9]).is_err());
        assert!(umm.write_round(&[0, 1], &[1]).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Umm::new(5, 1, 8).is_err());
        assert!(Umm::new(4, 0, 8).is_err());
    }
}
