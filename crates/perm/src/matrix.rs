//! Row-major matrix views of flat arrays.
//!
//! The scheduled permutation algorithm treats the arrays `a` and `b` as
//! matrices of shape `√n × √n` (Section VII assumes square for simplicity;
//! for odd powers of two we use the natural `r × 2r` rectangle). Both
//! dimensions must be multiples of the machine width `w` so that rows tile
//! into full warps and `w × w` transpose tiles.

use crate::error::{PermError, Result};
use crate::permutation::Permutation;

/// A `rows × cols` row-major shape over `rows*cols` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixShape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl MatrixShape {
    /// Build a shape, checking that it is non-degenerate.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(PermError::BadShape {
                n: rows * cols,
                rows,
                cols,
            });
        }
        Ok(MatrixShape { rows, cols })
    }

    /// Total elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the shape covers no elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of `(row, col)`.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// `(row, col)` of a flat index.
    #[inline]
    pub fn coords(&self, index: usize) -> (usize, usize) {
        debug_assert!(index < self.len());
        (index / self.cols, index % self.cols)
    }

    /// The transposed shape.
    #[inline]
    pub fn transposed(&self) -> MatrixShape {
        MatrixShape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// True when both dimensions are multiples of `w`.
    pub fn tiles_by(&self, w: usize) -> bool {
        w > 0 && self.rows.is_multiple_of(w) && self.cols.is_multiple_of(w)
    }
}

/// Choose the matrix shape the scheduled algorithm uses for an `n`-element
/// array on a width-`w` machine: the most-square power-of-two factorization
/// `r × c` with `r ≤ c` and both multiples of `w`.
///
/// Requires `n` to be a power of two with `n ≥ w²` (smaller arrays fit in a
/// single DMM and don't need the three-pass algorithm).
pub fn scheduled_shape(n: usize, w: usize) -> Result<MatrixShape> {
    if !n.is_power_of_two() {
        return Err(PermError::NotPowerOfTwo { n });
    }
    if w == 0 || !w.is_power_of_two() {
        return Err(PermError::NotPowerOfTwo { n: w });
    }
    let k = n.trailing_zeros();
    let rows = 1usize << (k / 2);
    let cols = n / rows;
    let shape = MatrixShape { rows, cols };
    if !shape.tiles_by(w) {
        return Err(PermError::NoValidShape { n, width: w });
    }
    Ok(shape)
}

/// An affine bit-matrix (BMMC) permutation on `2^bits` indices:
/// `dest(x) = M·x ⊕ b` over GF(2), with `M` an invertible `bits × bits`
/// bit matrix and `b` a `bits`-bit offset.
///
/// This family covers every structured permutation the paper benchmarks —
/// transpose, bit-reversal, shuffle/unshuffle (and their powers), hypercube
/// exchange (`butterfly`), Gray code — and is closed under composition and
/// inversion, which is what makes closed-form plan emission and plan fusion
/// possible (see "Efficient GPU Implementation of Affine Index Permutations
/// on Arrays", PAPERS.md).
///
/// The matrix is stored column-major as bit masks: `col(j)` is the image
/// `M·e_j` of index bit `j`, so `M·x` is the XOR of `col(j)` over the set
/// bits of `x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bmmc {
    bits: u32,
    /// `cols[j] = M·e_j`, each a `bits`-bit mask.
    cols: Vec<usize>,
    /// The affine offset `b`.
    offset: usize,
}

impl Bmmc {
    /// Build from the matrix columns (images of the index bits) and the
    /// affine offset. Fails with [`PermError::SingularMatrix`] when the
    /// columns are linearly dependent (the map would not be a bijection),
    /// and with [`PermError::NotABijection`] when a column or the offset
    /// has bits outside the `bits`-bit domain.
    pub fn from_cols(cols: Vec<usize>, offset: usize) -> Result<Self> {
        let bits = cols.len() as u32;
        // bits < usize::BITS so that 1 << bits (the domain size) is
        // representable; a 2^64-element permutation is not.
        if bits >= usize::BITS {
            return Err(PermError::NotPowerOfTwo { n: usize::MAX });
        }
        let mask = (1usize << bits) - 1;
        if offset & !mask != 0 || cols.iter().any(|&c| c & !mask != 0) {
            return Err(PermError::NotABijection {
                len: mask + 1,
                offender: offset | cols.iter().fold(0, |a, &c| a | c),
            });
        }
        if gf2_rank(&cols) != bits as usize {
            return Err(PermError::SingularMatrix { bits });
        }
        Ok(Bmmc { bits, cols, offset })
    }

    /// The identity map on `2^bits` indices.
    pub fn identity(bits: u32) -> Result<Self> {
        Self::from_cols((0..bits).map(|j| 1usize << j).collect(), 0)
    }

    /// Number of index bits (`log2` of the domain size).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Domain size `2^bits`.
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.bits
    }

    /// True when the domain is the single index 0.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Image `M·e_j` of index bit `j` under the linear part.
    #[inline]
    pub fn col(&self, j: u32) -> usize {
        self.cols[j as usize]
    }

    /// The affine offset `b` (`dest(0)`).
    #[inline]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// True when the map is purely linear (`b = 0`).
    #[inline]
    pub fn is_linear(&self) -> bool {
        self.offset == 0
    }

    /// The linear part `M·x` (no offset).
    #[inline]
    pub fn apply_linear(&self, mut x: usize) -> usize {
        let mut out = 0;
        while x != 0 {
            out ^= self.cols[x.trailing_zeros() as usize];
            x &= x - 1;
        }
        out
    }

    /// The full map `M·x ⊕ b`.
    #[inline]
    pub fn apply(&self, x: usize) -> usize {
        self.apply_linear(x) ^ self.offset
    }

    /// Composition `self ∘ other`: the map sending `x` to
    /// `self.apply(other.apply(x))` — apply `other` first, like
    /// [`Permutation::compose`]. Computed as the matrix product
    /// `M_self · M_other` with offset `M_self·b_other ⊕ b_self`.
    ///
    /// # Panics
    ///
    /// Panics when the two maps have different bit widths.
    pub fn compose(&self, other: &Bmmc) -> Bmmc {
        assert_eq!(
            self.bits, other.bits,
            "cannot compose BMMC maps on different domains"
        );
        Bmmc {
            bits: self.bits,
            cols: other.cols.iter().map(|&c| self.apply_linear(c)).collect(),
            offset: self.apply(other.offset),
        }
    }

    /// The inverse map `x ↦ M⁻¹·(x ⊕ b)`, via Gauss–Jordan elimination
    /// over GF(2). Always succeeds: `M` is invertible by construction.
    pub fn inverse(&self) -> Bmmc {
        let b = self.bits as usize;
        // Row-reduce [M | I] column-wise: work[j] holds column j of M in the
        // low half and column j of the accumulating inverse in the high
        // half conceptually; easier as two parallel column sets.
        let mut m = self.cols.clone();
        let mut inv: Vec<usize> = (0..b).map(|j| 1usize << j).collect();
        // Forward elimination with column pivoting into position.
        for row in 0..b {
            let bit = 1usize << row;
            let pivot = (row..b)
                .find(|&j| m[j] & bit != 0)
                .expect("invertible matrix has a pivot in every row");
            m.swap(row, pivot);
            inv.swap(row, pivot);
            for j in 0..b {
                if j != row && m[j] & bit != 0 {
                    m[j] ^= m[row];
                    inv[j] ^= inv[row];
                }
            }
        }
        // Now m is the identity and inv holds M⁻¹'s columns.
        let offset = {
            let mut out = 0;
            let mut x = self.offset;
            while x != 0 {
                out ^= inv[x.trailing_zeros() as usize];
                x &= x - 1;
            }
            out
        };
        Bmmc {
            bits: self.bits,
            cols: inv,
            offset,
        }
    }

    /// Materialize the map as a [`Permutation`] (destination convention:
    /// the returned table sends source index `i` to `self.apply(i)`).
    ///
    /// Walks the domain maintaining the image incrementally (each step
    /// XORs the columns of the bits that changed), so the fill is O(n)
    /// amortized rather than O(n log n).
    pub fn to_permutation(&self) -> Permutation {
        let n = self.len();
        let mut map = vec![0usize; n];
        let mut val = self.offset;
        for (i, slot) in map.iter_mut().enumerate() {
            if i > 0 {
                let mut changed = (i - 1) ^ i;
                while changed != 0 {
                    val ^= self.cols[changed.trailing_zeros() as usize];
                    changed &= changed - 1;
                }
            }
            *slot = val;
        }
        Permutation::from_vec_unchecked(map)
    }
}

/// Rank of a set of GF(2) column vectors (bit masks), by incremental
/// insertion into a leading-bit echelon basis.
pub(crate) fn gf2_rank(cols: &[usize]) -> usize {
    let mut basis: Vec<usize> = Vec::with_capacity(cols.len());
    let mut rank = 0;
    for &c in cols {
        let mut v = c;
        for &b in &basis {
            v = v.min(v ^ b);
        }
        if v != 0 {
            basis.push(v);
            // Keep the basis sorted descending by leading bit so the
            // reduction loop above always makes progress.
            basis.sort_unstable_by(|a, b| b.cmp(a));
            rank += 1;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_roundtrip() {
        let s = MatrixShape::new(4, 8).unwrap();
        for i in 0..s.len() {
            let (r, c) = s.coords(i);
            assert_eq!(s.index(r, c), i);
        }
        assert_eq!(s.len(), 32);
        assert!(!s.is_empty());
    }

    #[test]
    fn transposed_swaps_dims() {
        let s = MatrixShape::new(4, 8).unwrap();
        let t = s.transposed();
        assert_eq!((t.rows, t.cols), (8, 4));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(MatrixShape::new(0, 5).is_err());
        assert!(MatrixShape::new(5, 0).is_err());
    }

    #[test]
    fn scheduled_shape_even_power() {
        // n = 2^20, w = 32: 1024 x 1024.
        let s = scheduled_shape(1 << 20, 32).unwrap();
        assert_eq!((s.rows, s.cols), (1024, 1024));
        assert!(s.tiles_by(32));
    }

    #[test]
    fn scheduled_shape_odd_power() {
        // n = 2^21: 1024 x 2048 (r <= c).
        let s = scheduled_shape(1 << 21, 32).unwrap();
        assert_eq!((s.rows, s.cols), (1024, 2048));
    }

    #[test]
    fn scheduled_shape_minimum_size() {
        // n = w^2 = 1024: 32 x 32 just tiles.
        let s = scheduled_shape(1024, 32).unwrap();
        assert_eq!((s.rows, s.cols), (32, 32));
        // n = 512 = 16 x 32: rows=16 not a multiple of 32.
        assert!(matches!(
            scheduled_shape(512, 32),
            Err(PermError::NoValidShape { .. })
        ));
    }

    #[test]
    fn scheduled_shape_rejects_non_power_of_two() {
        assert!(scheduled_shape(1000, 32).is_err());
        assert!(scheduled_shape(1024, 24).is_err());
    }

    #[test]
    fn tiles_by_edge_cases() {
        let s = MatrixShape::new(64, 64).unwrap();
        assert!(s.tiles_by(32));
        assert!(!s.tiles_by(48));
        assert!(!s.tiles_by(0));
    }

    #[test]
    fn bmmc_identity_and_offset() {
        let id = Bmmc::identity(4).unwrap();
        assert!(id.is_linear());
        for x in 0..16 {
            assert_eq!(id.apply(x), x);
        }
        // Pure-offset map: x ⊕ 0b101.
        let cols: Vec<usize> = (0..4).map(|j| 1usize << j).collect();
        let m = Bmmc::from_cols(cols, 0b101).unwrap();
        assert!(!m.is_linear());
        assert_eq!(m.apply(0), 0b101);
        assert_eq!(m.apply(0b101), 0);
        assert_eq!(m.offset(), 0b101);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
    }

    #[test]
    fn bmmc_rejects_singular_and_out_of_range() {
        // Two equal columns: singular.
        assert!(matches!(
            Bmmc::from_cols(vec![1, 1], 0),
            Err(PermError::SingularMatrix { bits: 2 })
        ));
        // Column with a bit outside the 2-bit domain.
        assert!(Bmmc::from_cols(vec![1, 4], 0).is_err());
        // Offset outside the domain.
        assert!(Bmmc::from_cols(vec![1, 2], 4).is_err());
    }

    #[test]
    fn bmmc_compose_matches_pointwise_composition() {
        // Bit-reversal then shuffle on 3 bits, composed both ways.
        let rev = Bmmc::from_cols(vec![4, 2, 1], 0).unwrap();
        let shuf = Bmmc::from_cols(vec![2, 4, 1], 0b011).unwrap();
        let c = shuf.compose(&rev);
        for x in 0..8 {
            assert_eq!(c.apply(x), shuf.apply(rev.apply(x)), "x = {x}");
        }
        let p = c.to_permutation();
        assert_eq!(p, shuf.to_permutation().compose(&rev.to_permutation()));
    }

    #[test]
    fn bmmc_inverse_round_trips() {
        let m = Bmmc::from_cols(vec![0b011, 0b110, 0b100], 0b010).unwrap();
        let inv = m.inverse();
        for x in 0..8 {
            assert_eq!(inv.apply(m.apply(x)), x);
            assert_eq!(m.apply(inv.apply(x)), x);
        }
        let composed = m.compose(&inv);
        assert_eq!(composed, Bmmc::identity(3).unwrap());
    }

    #[test]
    fn bmmc_to_permutation_matches_apply() {
        let m = Bmmc::from_cols(vec![0b0001, 0b0011, 0b0100, 0b1100], 0b0111).unwrap();
        let p = m.to_permutation();
        for x in 0..16 {
            assert_eq!(p.apply(x), m.apply(x));
        }
    }

    #[test]
    fn bmmc_zero_bits_domain() {
        let m = Bmmc::identity(0).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.apply(0), 0);
        assert_eq!(m.to_permutation().len(), 1);
    }

    #[test]
    fn gf2_rank_counts_independent_columns() {
        assert_eq!(gf2_rank(&[]), 0);
        assert_eq!(gf2_rank(&[0]), 0);
        assert_eq!(gf2_rank(&[1, 2, 4]), 3);
        assert_eq!(gf2_rank(&[1, 2, 3]), 2);
        assert_eq!(gf2_rank(&[0b111, 0b011, 0b100, 0b001]), 3);
    }
}
