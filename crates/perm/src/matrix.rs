//! Row-major matrix views of flat arrays.
//!
//! The scheduled permutation algorithm treats the arrays `a` and `b` as
//! matrices of shape `√n × √n` (Section VII assumes square for simplicity;
//! for odd powers of two we use the natural `r × 2r` rectangle). Both
//! dimensions must be multiples of the machine width `w` so that rows tile
//! into full warps and `w × w` transpose tiles.

use crate::error::{PermError, Result};

/// A `rows × cols` row-major shape over `rows*cols` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixShape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl MatrixShape {
    /// Build a shape, checking that it is non-degenerate.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(PermError::BadShape {
                n: rows * cols,
                rows,
                cols,
            });
        }
        Ok(MatrixShape { rows, cols })
    }

    /// Total elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the shape covers no elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of `(row, col)`.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// `(row, col)` of a flat index.
    #[inline]
    pub fn coords(&self, index: usize) -> (usize, usize) {
        debug_assert!(index < self.len());
        (index / self.cols, index % self.cols)
    }

    /// The transposed shape.
    #[inline]
    pub fn transposed(&self) -> MatrixShape {
        MatrixShape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// True when both dimensions are multiples of `w`.
    pub fn tiles_by(&self, w: usize) -> bool {
        w > 0 && self.rows.is_multiple_of(w) && self.cols.is_multiple_of(w)
    }
}

/// Choose the matrix shape the scheduled algorithm uses for an `n`-element
/// array on a width-`w` machine: the most-square power-of-two factorization
/// `r × c` with `r ≤ c` and both multiples of `w`.
///
/// Requires `n` to be a power of two with `n ≥ w²` (smaller arrays fit in a
/// single DMM and don't need the three-pass algorithm).
pub fn scheduled_shape(n: usize, w: usize) -> Result<MatrixShape> {
    if !n.is_power_of_two() {
        return Err(PermError::NotPowerOfTwo { n });
    }
    if w == 0 || !w.is_power_of_two() {
        return Err(PermError::NotPowerOfTwo { n: w });
    }
    let k = n.trailing_zeros();
    let rows = 1usize << (k / 2);
    let cols = n / rows;
    let shape = MatrixShape { rows, cols };
    if !shape.tiles_by(w) {
        return Err(PermError::NoValidShape { n, width: w });
    }
    Ok(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_roundtrip() {
        let s = MatrixShape::new(4, 8).unwrap();
        for i in 0..s.len() {
            let (r, c) = s.coords(i);
            assert_eq!(s.index(r, c), i);
        }
        assert_eq!(s.len(), 32);
        assert!(!s.is_empty());
    }

    #[test]
    fn transposed_swaps_dims() {
        let s = MatrixShape::new(4, 8).unwrap();
        let t = s.transposed();
        assert_eq!((t.rows, t.cols), (8, 4));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(MatrixShape::new(0, 5).is_err());
        assert!(MatrixShape::new(5, 0).is_err());
    }

    #[test]
    fn scheduled_shape_even_power() {
        // n = 2^20, w = 32: 1024 x 1024.
        let s = scheduled_shape(1 << 20, 32).unwrap();
        assert_eq!((s.rows, s.cols), (1024, 1024));
        assert!(s.tiles_by(32));
    }

    #[test]
    fn scheduled_shape_odd_power() {
        // n = 2^21: 1024 x 2048 (r <= c).
        let s = scheduled_shape(1 << 21, 32).unwrap();
        assert_eq!((s.rows, s.cols), (1024, 2048));
    }

    #[test]
    fn scheduled_shape_minimum_size() {
        // n = w^2 = 1024: 32 x 32 just tiles.
        let s = scheduled_shape(1024, 32).unwrap();
        assert_eq!((s.rows, s.cols), (32, 32));
        // n = 512 = 16 x 32: rows=16 not a multiple of 32.
        assert!(matches!(
            scheduled_shape(512, 32),
            Err(PermError::NoValidShape { .. })
        ));
    }

    #[test]
    fn scheduled_shape_rejects_non_power_of_two() {
        assert!(scheduled_shape(1000, 32).is_err());
        assert!(scheduled_shape(1024, 24).is_err());
    }

    #[test]
    fn tiles_by_edge_cases() {
        let s = MatrixShape::new(64, 64).unwrap();
        assert!(s.tiles_by(32));
        assert!(!s.tiles_by(48));
        assert!(!s.tiles_by(0));
    }
}
